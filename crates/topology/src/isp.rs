//! ISP backbone topologies for the §3.4 discussion.
//!
//! §3.4 argues that power proportionality pays off even more directly in
//! ISP networks — all network, no compute, and structurally underutilized
//! because capacity is provisioned for peaks that occur a few hours per
//! day. We ship the classic Abilene research backbone as a concrete,
//! publicly documented topology to quantify that claim on.

use npp_units::Gbps;

use crate::graph::{NodeId, Topology};

/// Names of the 11 Abilene PoPs, in the order their nodes are created.
pub const ABILENE_POPS: [&str; 11] = [
    "Seattle",
    "Sunnyvale",
    "LosAngeles",
    "Denver",
    "KansasCity",
    "Houston",
    "Chicago",
    "Indianapolis",
    "Atlanta",
    "WashingtonDC",
    "NewYork",
];

/// The 14 Abilene backbone links as index pairs into [`ABILENE_POPS`].
pub const ABILENE_LINKS: [(usize, usize); 14] = [
    (0, 1),  // Seattle–Sunnyvale
    (0, 3),  // Seattle–Denver
    (1, 2),  // Sunnyvale–LosAngeles
    (1, 3),  // Sunnyvale–Denver
    (2, 5),  // LosAngeles–Houston
    (3, 4),  // Denver–KansasCity
    (4, 5),  // KansasCity–Houston
    (4, 6),  // KansasCity–Chicago
    (5, 8),  // Houston–Atlanta
    (6, 7),  // Chicago–Indianapolis
    (7, 8),  // Indianapolis–Atlanta
    (7, 10), // Indianapolis–NewYork
    (8, 9),  // Atlanta–WashingtonDC
    (9, 10), // WashingtonDC–NewYork
];

/// Builds the Abilene backbone with the given link capacity. Each PoP is a
/// tier-0 switch with one attached host standing in for the PoP's customer
/// aggregate (traffic source/sink).
pub fn abilene(link_speed: Gbps) -> Topology {
    let mut t = Topology::new();
    let pops: Vec<NodeId> = ABILENE_POPS
        .iter()
        .map(|name| t.add_switch(*name, 0))
        .collect();
    for (a, b) in ABILENE_LINKS {
        t.add_link(pops[a], pops[b], link_speed)
            .expect("static link table is valid");
    }
    for (i, &pop) in pops.iter().enumerate() {
        let h = t.add_host(format!("{}/clients", ABILENE_POPS[i]));
        t.add_link(h, pop, link_speed)
            .expect("static link table is valid");
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abilene_shape() {
        let t = abilene(Gbps::new(100.0));
        assert_eq!(t.switches().len(), 11);
        assert_eq!(t.hosts().len(), 11);
        assert_eq!(t.inter_switch_links().len(), 14);
        assert_eq!(t.links().len(), 25);
    }

    #[test]
    fn abilene_is_connected() {
        let t = abilene(Gbps::new(100.0));
        let hosts = t.hosts();
        for &h in &hosts[1..] {
            assert!(t.distance(hosts[0], h).is_some());
        }
    }

    #[test]
    fn coast_to_coast_path_length() {
        let t = abilene(Gbps::new(100.0));
        let hosts = t.hosts();
        // Seattle clients ↔ NewYork clients: host + ≥4 backbone hops + host.
        let d = t.distance(hosts[0], hosts[10]).unwrap();
        assert!(d >= 5, "distance {d}");
    }

    #[test]
    fn redundant_paths_exist() {
        // Abilene is 2-connected: ECMP or failover paths exist between
        // most PoP pairs (e.g. Denver↔Chicago via KC or via Seattle).
        let t = abilene(Gbps::new(100.0));
        let denver = NodeId(3);
        let chicago = NodeId(6);
        let d = t.distance(denver, chicago).unwrap();
        assert_eq!(d, 2); // Denver–KC–Chicago
    }
}
