//! Per-link load accounting: route a demand set over ECMP shortest paths
//! and measure what each link actually carries.
//!
//! §3.4 argues that underutilization is structural — in fat trees because
//! not all paths are used at all times, in ISP backbones because capacity
//! is provisioned for peaks. This module turns a demand matrix into
//! per-link utilizations so both claims can be measured on concrete
//! topologies.

use serde::{Deserialize, Serialize};

use npp_units::{Gbps, Ratio};

use crate::graph::{LinkId, NodeId, Topology};
use crate::{Result, TopologyError};

/// Per-link carried load, aligned with [`Topology::links`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkLoads {
    loads: Vec<f64>, // Gbps per link
}

impl LinkLoads {
    /// Routes `demands` (src, dst, rate) over the topology, splitting
    /// each demand evenly across up to `ecmp_limit` equal-cost shortest
    /// paths (ECMP's idealized fluid behaviour).
    ///
    /// # Errors
    ///
    /// [`TopologyError::UnknownNode`] for demands between unknown or
    /// disconnected nodes.
    pub fn route(
        topo: &Topology,
        demands: &[(NodeId, NodeId, Gbps)],
        ecmp_limit: usize,
    ) -> Result<Self> {
        let mut loads = vec![0.0; topo.links().len()];
        for &(src, dst, rate) in demands {
            if src == dst || rate.value() <= 0.0 {
                continue;
            }
            let paths = topo.ecmp_paths(src, dst, ecmp_limit.max(1));
            if paths.is_empty() {
                return Err(TopologyError::UnknownNode(src.0));
            }
            let share = rate.value() / paths.len() as f64;
            for path in &paths {
                for hop in path.windows(2) {
                    let link = link_between(topo, hop[0], hop[1])?;
                    loads[link.0] += share;
                }
            }
        }
        Ok(Self { loads })
    }

    /// Load carried by one link.
    pub fn load(&self, link: LinkId) -> Gbps {
        Gbps::new(self.loads.get(link.0).copied().unwrap_or(0.0))
    }

    /// Utilization of each link (load / capacity), aligned with
    /// [`Topology::links`].
    pub fn utilizations(&self, topo: &Topology) -> Vec<Ratio> {
        topo.links()
            .iter()
            .map(|l| Ratio::new(self.loads[l.id.0] / l.capacity.value()))
            .collect()
    }

    /// The busiest link's utilization.
    pub fn max_utilization(&self, topo: &Topology) -> Ratio {
        self.utilizations(topo)
            .into_iter()
            .fold(Ratio::ZERO, |a, b| if b > a { b } else { a })
    }

    /// Mean utilization across all links.
    pub fn mean_utilization(&self, topo: &Topology) -> Ratio {
        let u = self.utilizations(topo);
        if u.is_empty() {
            return Ratio::ZERO;
        }
        Ratio::new(u.iter().map(|r| r.fraction()).sum::<f64>() / u.len() as f64)
    }

    /// Links carrying exactly nothing (candidates for switching off).
    pub fn unused_links(&self, topo: &Topology) -> Vec<LinkId> {
        topo.links()
            .iter()
            .filter(|l| self.loads[l.id.0] == 0.0)
            .map(|l| l.id)
            .collect()
    }

    /// Links below a utilization threshold but not unused — the
    /// "underutilized rather than completely unused" §3.4 category.
    pub fn underutilized_links(&self, topo: &Topology, below: Ratio) -> Vec<LinkId> {
        topo.links()
            .iter()
            .filter(|l| {
                let u = self.loads[l.id.0] / l.capacity.value();
                u > 0.0 && u < below.fraction()
            })
            .map(|l| l.id)
            .collect()
    }

    /// Scales every load by a factor (diurnal modulation).
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            loads: self.loads.iter().map(|l| l * factor).collect(),
        }
    }
}

/// Finds a link connecting two adjacent nodes (first match on parallel
/// links).
fn link_between(topo: &Topology, a: NodeId, b: NodeId) -> Result<LinkId> {
    topo.neighbors(a)
        .iter()
        .find(|(peer, _)| *peer == b)
        .map(|&(_, l)| l)
        .ok_or(TopologyError::UnknownNode(b.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::three_tier_fat_tree;
    use crate::isp::abilene;

    #[test]
    fn single_demand_single_path() {
        let topo = abilene(Gbps::new(100.0));
        let hosts = topo.hosts();
        let loads = LinkLoads::route(&topo, &[(hosts[0], hosts[1], Gbps::new(40.0))], 1).unwrap();
        // Seattle-clients → Sunnyvale-clients: host link + backbone link
        // + host link all carry 40 G.
        let carried: Vec<f64> = topo
            .links()
            .iter()
            .map(|l| loads.load(l.id).value())
            .filter(|&v| v > 0.0)
            .collect();
        assert_eq!(carried.len(), 3);
        assert!(carried.iter().all(|&v| (v - 40.0).abs() < 1e-9));
        assert!(loads
            .max_utilization(&topo)
            .approx_eq(Ratio::new(0.4), 1e-12));
    }

    #[test]
    fn ecmp_splits_across_cores() {
        let topo = three_tier_fat_tree(4, Gbps::new(100.0)).unwrap();
        let hosts = topo.hosts();
        // Cross-pod demand: 4 equal-cost paths.
        let loads = LinkLoads::route(&topo, &[(hosts[0], hosts[15], Gbps::new(80.0))], 64).unwrap();
        // The host links carry the full 80 G; each of the 4 core paths
        // carries 20 G on its agg-core hops.
        let max = loads.max_utilization(&topo);
        assert!(max.approx_eq(Ratio::new(0.8), 1e-9), "max {max}");
        let agg_core_loads: Vec<f64> = topo
            .links()
            .iter()
            .filter(|l| {
                let (a, b) = (topo.node(l.a).unwrap(), topo.node(l.b).unwrap());
                a.kind.is_switch() && b.kind.is_switch()
            })
            .map(|l| loads.load(l.id).value())
            .filter(|&v| v > 0.0)
            .collect();
        // ECMP fans out: every used inter-switch link carries ≤ 40 G.
        assert!(agg_core_loads.iter().all(|&v| v <= 40.0 + 1e-9));
    }

    #[test]
    fn fat_tree_single_job_leaves_links_unused() {
        // The §3.4 observation: one demand lights up only a sliver of a
        // full-bisection fabric.
        let topo = three_tier_fat_tree(4, Gbps::new(100.0)).unwrap();
        let hosts = topo.hosts();
        let loads = LinkLoads::route(&topo, &[(hosts[0], hosts[1], Gbps::new(50.0))], 64).unwrap();
        let unused = loads.unused_links(&topo);
        assert!(
            unused.len() > topo.links().len() / 2,
            "unused {} of {}",
            unused.len(),
            topo.links().len()
        );
    }

    #[test]
    fn underutilized_category_excludes_unused() {
        let topo = abilene(Gbps::new(100.0));
        let hosts = topo.hosts();
        let loads = LinkLoads::route(&topo, &[(hosts[0], hosts[10], Gbps::new(10.0))], 4).unwrap();
        let under = loads.underutilized_links(&topo, Ratio::new(0.5));
        let unused = loads.unused_links(&topo);
        for l in &under {
            assert!(!unused.contains(l));
            assert!(loads.load(*l).value() > 0.0);
        }
        assert!(!under.is_empty());
        assert!(!unused.is_empty());
    }

    #[test]
    fn scaling_and_means() {
        let topo = abilene(Gbps::new(100.0));
        let hosts = topo.hosts();
        let loads = LinkLoads::route(&topo, &[(hosts[0], hosts[1], Gbps::new(40.0))], 1).unwrap();
        let half = loads.scaled(0.5);
        assert!(half.mean_utilization(&topo).approx_eq(
            Ratio::new(loads.mean_utilization(&topo).fraction() / 2.0),
            1e-12
        ));
    }

    #[test]
    fn self_and_zero_demands_ignored() {
        let topo = abilene(Gbps::new(100.0));
        let hosts = topo.hosts();
        let loads = LinkLoads::route(
            &topo,
            &[
                (hosts[0], hosts[0], Gbps::new(10.0)),
                (hosts[0], hosts[1], Gbps::ZERO),
            ],
            4,
        )
        .unwrap();
        assert_eq!(loads.mean_utilization(&topo), Ratio::ZERO);
    }

    #[test]
    fn disconnected_demand_errors() {
        let mut topo = Topology::new();
        let a = topo.add_host("a");
        let b = topo.add_host("b");
        assert!(LinkLoads::route(&topo, &[(a, b, Gbps::new(1.0))], 4).is_err());
    }
}
