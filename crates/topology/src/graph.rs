//! Explicit topology graphs: nodes, links, BFS routing, ECMP enumeration.
//!
//! The analytic model in [`crate::fattree`] answers "how much hardware";
//! this module answers "which boxes and which wires", which the simulator
//! and the §4 mechanism evaluations need. The representation is a simple
//! undirected multigraph with typed nodes.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

use npp_units::Gbps;

use crate::{Result, TopologyError};

/// Identifier of a node in a [`Topology`] (index into the node table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// Identifier of a link in a [`Topology`] (index into the link table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub usize);

/// What a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// An endpoint (GPU/NIC in the ML cluster, PoP router client side in
    /// the ISP scenario).
    Host,
    /// A switch at the given tier (0 = edge/ToR, 1 = aggregation,
    /// 2 = core, …).
    Switch {
        /// Tier within the fabric; 0 is closest to hosts.
        tier: u8,
    },
}

impl NodeKind {
    /// Whether the node is a switch.
    pub fn is_switch(self) -> bool {
        matches!(self, NodeKind::Switch { .. })
    }
}

/// A node of the topology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// The node's id (equals its index).
    pub id: NodeId,
    /// Host or switch (+tier).
    pub kind: NodeKind,
    /// Human-readable name ("pod0/edge1", "host42").
    pub name: String,
}

/// An undirected link between two nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// The link's id (equals its index).
    pub id: LinkId,
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Link capacity.
    pub capacity: Gbps,
}

impl Link {
    /// The endpoint opposite to `n`, if `n` is an endpoint of this link.
    pub fn other(&self, n: NodeId) -> Option<NodeId> {
        if n == self.a {
            Some(self.b)
        } else if n == self.b {
            Some(self.a)
        } else {
            None
        }
    }
}

/// An undirected multigraph of hosts, switches, and capacitated links.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// adjacency\[node\] = list of (neighbor, link).
    adj: Vec<Vec<(NodeId, LinkId)>>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a host node and returns its id.
    pub fn add_host(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(NodeKind::Host, name)
    }

    /// Adds a switch node at the given tier and returns its id.
    pub fn add_switch(&mut self, name: impl Into<String>, tier: u8) -> NodeId {
        self.add_node(NodeKind::Switch { tier }, name)
    }

    fn add_node(&mut self, kind: NodeKind, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            id,
            kind,
            name: name.into(),
        });
        self.adj.push(Vec::new());
        id
    }

    /// Adds an undirected link of the given capacity.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownNode`] if either endpoint does not
    /// exist, and [`TopologyError::Build`] for self-loops.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, capacity: Gbps) -> Result<LinkId> {
        if a.0 >= self.nodes.len() {
            return Err(TopologyError::UnknownNode(a.0));
        }
        if b.0 >= self.nodes.len() {
            return Err(TopologyError::UnknownNode(b.0));
        }
        if a == b {
            return Err(TopologyError::Build(format!("self-loop on node {}", a.0)));
        }
        let id = LinkId(self.links.len());
        self.links.push(Link { id, a, b, capacity });
        self.adj[a.0].push((b, id));
        self.adj[b.0].push((a, id));
        Ok(id)
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Looks up a node.
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id.0)
    }

    /// Looks up a link.
    pub fn link(&self, id: LinkId) -> Option<&Link> {
        self.links.get(id.0)
    }

    /// Ids of all host nodes.
    pub fn hosts(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Host)
            .map(|n| n.id)
            .collect()
    }

    /// Ids of all switch nodes (any tier).
    pub fn switches(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.kind.is_switch())
            .map(|n| n.id)
            .collect()
    }

    /// Ids of switches at one tier.
    pub fn switches_at_tier(&self, tier: u8) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Switch { tier })
            .map(|n| n.id)
            .collect()
    }

    /// Links with both endpoints being switches (these carry the optical
    /// transceivers in the paper's power model).
    pub fn inter_switch_links(&self) -> Vec<LinkId> {
        self.links
            .iter()
            .filter(|l| self.nodes[l.a.0].kind.is_switch() && self.nodes[l.b.0].kind.is_switch())
            .map(|l| l.id)
            .collect()
    }

    /// Neighbors of a node as (neighbor, link) pairs.
    pub fn neighbors(&self, n: NodeId) -> &[(NodeId, LinkId)] {
        &self.adj[n.0]
    }

    /// Degree (number of incident links) of a node.
    pub fn degree(&self, n: NodeId) -> usize {
        self.adj[n.0].len()
    }

    /// BFS shortest path (in hops) from `from` to `to`, inclusive of both
    /// endpoints. Returns `None` if unreachable.
    pub fn shortest_path(&self, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
        if from == to {
            return Some(vec![from]);
        }
        let mut prev: Vec<Option<NodeId>> = vec![None; self.nodes.len()];
        let mut seen = vec![false; self.nodes.len()];
        let mut q = VecDeque::new();
        seen[from.0] = true;
        q.push_back(from);
        while let Some(u) = q.pop_front() {
            for &(v, _) in &self.adj[u.0] {
                if !seen[v.0] {
                    seen[v.0] = true;
                    prev[v.0] = Some(u);
                    if v == to {
                        let mut path = vec![to];
                        let mut cur = to;
                        while let Some(p) = prev[cur.0] {
                            path.push(p);
                            cur = p;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    q.push_back(v);
                }
            }
        }
        None
    }

    /// Hop distance between two nodes, if connected.
    pub fn distance(&self, from: NodeId, to: NodeId) -> Option<usize> {
        self.shortest_path(from, to).map(|p| p.len() - 1)
    }

    /// Enumerates equal-cost shortest paths between two hosts, up to
    /// `limit` paths (ECMP). Paths are node sequences including endpoints.
    pub fn ecmp_paths(&self, from: NodeId, to: NodeId, limit: usize) -> Vec<Vec<NodeId>> {
        // BFS distance labels from `to`, then DFS along strictly
        // decreasing distances.
        if self.distance(from, to).is_none() {
            return Vec::new();
        }
        let mut dist = vec![usize::MAX; self.nodes.len()];
        let mut q = VecDeque::new();
        dist[to.0] = 0;
        q.push_back(to);
        while let Some(u) = q.pop_front() {
            for &(v, _) in &self.adj[u.0] {
                if dist[v.0] == usize::MAX {
                    dist[v.0] = dist[u.0] + 1;
                    q.push_back(v);
                }
            }
        }
        let mut out = Vec::new();
        let mut stack = vec![from];
        self.ecmp_dfs(from, to, &dist, &mut stack, &mut out, limit);
        out
    }

    fn ecmp_dfs(
        &self,
        u: NodeId,
        to: NodeId,
        dist: &[usize],
        stack: &mut Vec<NodeId>,
        out: &mut Vec<Vec<NodeId>>,
        limit: usize,
    ) {
        if out.len() >= limit {
            return;
        }
        if u == to {
            out.push(stack.clone());
            return;
        }
        for &(v, _) in &self.adj[u.0] {
            if dist[v.0] + 1 == dist[u.0] {
                stack.push(v);
                self.ecmp_dfs(v, to, dist, stack, out, limit);
                stack.pop();
                if out.len() >= limit {
                    return;
                }
            }
        }
    }

    /// Checks that no switch exceeds the given radix and every host has
    /// exactly one link.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::Build`] describing the first violation.
    pub fn validate(&self, radix: usize) -> Result<()> {
        for n in &self.nodes {
            let d = self.degree(n.id);
            match n.kind {
                NodeKind::Switch { .. } if d > radix => {
                    return Err(TopologyError::Build(format!(
                        "switch {} has degree {d} > radix {radix}",
                        n.name
                    )));
                }
                NodeKind::Host if d != 1 => {
                    return Err(TopologyError::Build(format!(
                        "host {} has degree {d}, expected 1",
                        n.name
                    )));
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Total capacity of all links.
    pub fn total_capacity(&self) -> Gbps {
        self.links.iter().map(|l| l.capacity).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// host0 - sw0 - sw1 - host1, plus a parallel path sw0 - sw2 - sw1.
    fn diamond() -> (Topology, NodeId, NodeId) {
        let mut t = Topology::new();
        let h0 = t.add_host("h0");
        let h1 = t.add_host("h1");
        let s0 = t.add_switch("s0", 0);
        let s1 = t.add_switch("s1", 0);
        let s2 = t.add_switch("s2", 1);
        let s3 = t.add_switch("s3", 1);
        let c = Gbps::new(100.0);
        t.add_link(h0, s0, c).unwrap();
        t.add_link(h1, s1, c).unwrap();
        t.add_link(s0, s2, c).unwrap();
        t.add_link(s2, s1, c).unwrap();
        t.add_link(s0, s3, c).unwrap();
        t.add_link(s3, s1, c).unwrap();
        (t, h0, h1)
    }

    #[test]
    fn build_and_count() {
        let (t, _, _) = diamond();
        assert_eq!(t.nodes().len(), 6);
        assert_eq!(t.links().len(), 6);
        assert_eq!(t.hosts().len(), 2);
        assert_eq!(t.switches().len(), 4);
        assert_eq!(t.switches_at_tier(1).len(), 2);
        assert_eq!(t.inter_switch_links().len(), 4);
        assert_eq!(t.total_capacity(), Gbps::new(600.0));
    }

    #[test]
    fn shortest_path_and_distance() {
        let (t, h0, h1) = diamond();
        let p = t.shortest_path(h0, h1).unwrap();
        assert_eq!(p.len(), 5); // h0, s0, s2|s3, s1, h1
        assert_eq!(p[0], h0);
        assert_eq!(*p.last().unwrap(), h1);
        assert_eq!(t.distance(h0, h1), Some(4));
        assert_eq!(t.distance(h0, h0), Some(0));
    }

    #[test]
    fn ecmp_finds_both_paths() {
        let (t, h0, h1) = diamond();
        let paths = t.ecmp_paths(h0, h1, 10);
        assert_eq!(paths.len(), 2);
        for p in &paths {
            assert_eq!(p.len(), 5);
        }
        // The two paths differ in the middle switch.
        assert_ne!(paths[0][2], paths[1][2]);
        // Limit is respected.
        assert_eq!(t.ecmp_paths(h0, h1, 1).len(), 1);
    }

    #[test]
    fn unreachable_nodes() {
        let mut t = Topology::new();
        let a = t.add_host("a");
        let b = t.add_host("b");
        assert_eq!(t.shortest_path(a, b), None);
        assert!(t.ecmp_paths(a, b, 4).is_empty());
    }

    #[test]
    fn link_errors() {
        let mut t = Topology::new();
        let a = t.add_host("a");
        assert!(t.add_link(a, a, Gbps::new(1.0)).is_err());
        assert!(t.add_link(a, NodeId(99), Gbps::new(1.0)).is_err());
        assert!(t.add_link(NodeId(99), a, Gbps::new(1.0)).is_err());
    }

    #[test]
    fn validate_degrees() {
        let (t, _, _) = diamond();
        assert!(t.validate(3).is_ok());
        assert!(t.validate(2).is_err()); // s0 and s1 have degree 3
        let mut t2 = Topology::new();
        let h = t2.add_host("h");
        let s = t2.add_switch("s", 0);
        t2.add_link(h, s, Gbps::new(1.0)).unwrap();
        t2.add_link(h, s, Gbps::new(1.0)).unwrap(); // host with degree 2
        assert!(t2.validate(8).is_err());
    }

    #[test]
    fn link_other_endpoint() {
        let (t, h0, _) = diamond();
        let l = &t.links()[0];
        assert_eq!(l.other(h0), Some(l.b));
        assert_eq!(l.other(l.b), Some(h0));
        assert_eq!(l.other(NodeId(42)), None);
    }
}
