//! # npp-topology
//!
//! Data-center and backbone network topology models for the `netpp`
//! workspace.
//!
//! Two complementary views are provided:
//!
//! 1. **Analytic sizing** ([`fattree`]): the paper's §2.4 model — given a
//!    host count and a switch radix, how many switches and inter-switch
//!    links does a fat tree need? Uses the closed-form fat-tree formulas
//!    (`hosts = 2·(k/2)ⁿ`, `switches = (2n−1)·(k/2)ⁿ⁻¹`) and the paper's
//!    "interpolate between stages" rule, realized as a *fractional stage
//!    count*. This model reproduces every cell of the paper's Table 3.
//! 2. **Explicit graphs** ([`graph`], [`builder`]): concrete node/link
//!    topologies (k-ary fat trees, leaf–spine with oversubscription, ISP
//!    backbones) used by the discrete-event simulator and the §4 mechanism
//!    evaluations, with BFS routing, ECMP path enumeration, and
//!    max-flow-based bisection bandwidth ([`bisection`]).
//!
//! [`ocs`] models optical circuit switches for the §4.2 topology
//! reconfiguration proposal, and [`isp`] provides a small backbone topology
//! for the §3.4 ISP discussion.
//!
//! ```
//! use npp_topology::FatTreeModel;
//!
//! // The paper's baseline fabric: 15,360 hosts on 128-port switches.
//! let tree = FatTreeModel::new(128).unwrap();
//! let size = tree.size_for_hosts(15_360.0).unwrap();
//! assert!((size.switches - 396.3).abs() < 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bisection;
pub mod builder;
pub mod fattree;
pub mod graph;
pub mod isp;
pub mod loads;
pub mod ocs;

pub use fattree::{FatTreeModel, FatTreeSize, InterpMode};
pub use graph::{LinkId, NodeId, NodeKind, Topology};

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologyError {
    /// Switch radix must be an even integer ≥ 2.
    InvalidRadix(usize),
    /// Host count must be positive.
    InvalidHostCount(f64),
    /// A node id did not exist in the topology.
    UnknownNode(usize),
    /// A circuit mapping was not a valid partial permutation.
    InvalidCircuit(String),
    /// A structural invariant was violated while building a topology.
    Build(String),
}

impl core::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TopologyError::InvalidRadix(k) => {
                write!(f, "switch radix {k} must be an even integer >= 2")
            }
            TopologyError::InvalidHostCount(h) => write!(f, "invalid host count {h}"),
            TopologyError::UnknownNode(id) => write!(f, "unknown node id {id}"),
            TopologyError::InvalidCircuit(msg) => write!(f, "invalid circuit mapping: {msg}"),
            TopologyError::Build(msg) => write!(f, "topology build error: {msg}"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, TopologyError>;
