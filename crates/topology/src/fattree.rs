//! Analytic fat-tree sizing — §2.4 of the paper.
//!
//! A folded-Clos "fat tree" built from identical k-port switches supports
//!
//! ```text
//! hosts(n)    = 2 · (k/2)ⁿ
//! switches(n) = (2n − 1) · (k/2)ⁿ⁻¹
//! links(n)    = hosts · (n − 1)        (inter-switch links)
//! ```
//!
//! for an integer number of stages `n` (n = 2 is leaf–spine, n = 3 the
//! classic 3-tier fat tree). The paper sizes the network for host counts
//! *between* stage capacities by interpolation; solving `hosts = 2·(k/2)ⁿ`
//! for a **fractional** `n` and evaluating the switch/link formulas at that
//! `n` reproduces every savings number in the paper's Table 3, so that is
//! the default [`InterpMode::FractionalStages`]. Two alternative rules are
//! provided for the ablation study (`ablation_interp` bench).

use serde::{Deserialize, Serialize};

use npp_units::Gbps;

use crate::{Result, TopologyError};

/// How to size a fat tree for a host count between integer-stage
/// capacities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum InterpMode {
    /// Solve for a fractional stage count (the paper's rule; default).
    #[default]
    FractionalStages,
    /// Round the stage count up and scale the full-tree switch/link counts
    /// proportionally to the host fraction used.
    CeilProportional,
    /// Round the stage count up and charge for the *full* tree (worst
    /// case: you deploy the whole fabric regardless of occupancy).
    CeilFull,
}

/// Analytic model of a fat tree built from identical `radix`-port switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FatTreeModel {
    radix: usize,
}

/// The sizing result for a given host count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FatTreeSize {
    /// Host (endpoint) count the tree was sized for.
    pub hosts: f64,
    /// Stage count used (fractional under the paper's rule).
    pub stages: f64,
    /// Number of switches (fractional: this is a continuous model).
    pub switches: f64,
    /// Number of inter-switch links.
    pub inter_switch_links: f64,
}

impl FatTreeModel {
    /// Creates a model for `radix`-port switches.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidRadix`] unless `radix` is an even
    /// integer ≥ 2.
    pub fn new(radix: usize) -> Result<Self> {
        if radix < 2 || radix % 2 != 0 {
            return Err(TopologyError::InvalidRadix(radix));
        }
        Ok(Self { radix })
    }

    /// Model for switches of the given aggregate capacity at the given
    /// port speed — e.g. 51.2 Tbps at 400 G gives a radix of 128.
    ///
    /// # Errors
    ///
    /// Propagates [`TopologyError::InvalidRadix`] (odd radixes arise when
    /// the capacity is not an even multiple of the port speed).
    pub fn from_switch_capacity(capacity: Gbps, port_speed: Gbps) -> Result<Self> {
        Self::new(capacity.ports_at(port_speed))
    }

    /// The switch radix (ports per switch).
    pub fn radix(&self) -> usize {
        self.radix
    }

    /// Half the radix — the branching factor of the tree.
    fn half(&self) -> f64 {
        self.radix as f64 / 2.0
    }

    /// Maximum hosts supported by an integer `stages`-stage tree:
    /// `2·(k/2)ⁿ`.
    pub fn capacity(&self, stages: u32) -> f64 {
        2.0 * self.half().powi(stages as i32)
    }

    /// Switches in a *full* integer `stages`-stage tree:
    /// `(2n−1)·(k/2)ⁿ⁻¹`.
    pub fn full_switches(&self, stages: u32) -> f64 {
        (2.0 * stages as f64 - 1.0) * self.half().powi(stages as i32 - 1)
    }

    /// Inter-switch links in a full integer `stages`-stage tree:
    /// every host contributes `stages − 1` links up the folded tree.
    pub fn full_links(&self, stages: u32) -> f64 {
        self.capacity(stages) * (stages as f64 - 1.0)
    }

    /// The (fractional) number of stages needed for `hosts` endpoints:
    /// `n = ln(hosts/2) / ln(k/2)`, clamped to at least 1.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidHostCount`] for non-positive or
    /// non-finite host counts.
    pub fn fractional_stages(&self, hosts: f64) -> Result<f64> {
        if !hosts.is_finite() || hosts <= 0.0 {
            return Err(TopologyError::InvalidHostCount(hosts));
        }
        Ok(((hosts / 2.0).ln() / self.half().ln()).max(1.0))
    }

    /// Sizes the tree for `hosts` endpoints using the paper's fractional
    /// interpolation rule.
    ///
    /// # Errors
    ///
    /// Propagates [`TopologyError::InvalidHostCount`].
    pub fn size_for_hosts(&self, hosts: f64) -> Result<FatTreeSize> {
        self.size_for_hosts_with(hosts, InterpMode::FractionalStages)
    }

    /// Sizes the tree for `hosts` endpoints under the given interpolation
    /// mode (see [`InterpMode`]).
    ///
    /// # Errors
    ///
    /// Propagates [`TopologyError::InvalidHostCount`].
    pub fn size_for_hosts_with(&self, hosts: f64, mode: InterpMode) -> Result<FatTreeSize> {
        let n_frac = self.fractional_stages(hosts)?;
        match mode {
            InterpMode::FractionalStages => {
                let switches = (2.0 * n_frac - 1.0) * self.half().powf(n_frac - 1.0);
                Ok(FatTreeSize {
                    hosts,
                    stages: n_frac,
                    switches,
                    inter_switch_links: hosts * (n_frac - 1.0),
                })
            }
            InterpMode::CeilProportional => {
                let n = n_frac.ceil().max(1.0) as u32;
                let fill = hosts / self.capacity(n);
                Ok(FatTreeSize {
                    hosts,
                    stages: n as f64,
                    switches: self.full_switches(n) * fill,
                    inter_switch_links: self.full_links(n) * fill,
                })
            }
            InterpMode::CeilFull => {
                let n = n_frac.ceil().max(1.0) as u32;
                Ok(FatTreeSize {
                    hosts,
                    stages: n as f64,
                    switches: self.full_switches(n),
                    inter_switch_links: self.full_links(n),
                })
            }
        }
    }
}

impl FatTreeSize {
    /// Switches per host — a useful density metric for sweeps.
    pub fn switches_per_host(&self) -> f64 {
        self.switches / self.hosts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_forms_match_textbook_values() {
        let m = FatTreeModel::new(4).unwrap();
        // k=4, 3-tier: 16 hosts, 20 switches, 32 inter-switch links.
        assert_eq!(m.capacity(3), 16.0);
        assert_eq!(m.full_switches(3), 20.0);
        assert_eq!(m.full_links(3), 32.0);
        // k=4, 2-tier: 8 hosts, 3·(k/2) = 6 switches, 8 links.
        assert_eq!(m.capacity(2), 8.0);
        assert_eq!(m.full_switches(2), 6.0);
        assert_eq!(m.full_links(2), 8.0);
        // One stage: a single switch, no inter-switch links.
        assert_eq!(m.capacity(1), 4.0);
        assert_eq!(m.full_switches(1), 1.0);
        assert_eq!(m.full_links(1), 0.0);
    }

    #[test]
    fn radix_validation() {
        assert!(FatTreeModel::new(0).is_err());
        assert!(FatTreeModel::new(3).is_err());
        assert!(FatTreeModel::new(2).is_ok());
        assert!(FatTreeModel::new(128).is_ok());
    }

    #[test]
    fn radix_from_asic_capacity() {
        let m =
            FatTreeModel::from_switch_capacity(Gbps::from_tbps(51.2), Gbps::new(400.0)).unwrap();
        assert_eq!(m.radix(), 128);
        let m =
            FatTreeModel::from_switch_capacity(Gbps::from_tbps(51.2), Gbps::new(1600.0)).unwrap();
        assert_eq!(m.radix(), 32);
    }

    #[test]
    fn fractional_stages_inverts_capacity() {
        let m = FatTreeModel::new(128).unwrap();
        for n in 1..=4u32 {
            let h = m.capacity(n);
            let back = m.fractional_stages(h).unwrap();
            assert!((back - n as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn fractional_sizing_matches_full_tree_at_integer_points() {
        let m = FatTreeModel::new(64).unwrap();
        for n in 1..=3u32 {
            let h = m.capacity(n);
            let s = m.size_for_hosts(h).unwrap();
            assert!((s.switches - m.full_switches(n)).abs() < 1e-6);
            assert!((s.inter_switch_links - m.full_links(n)).abs() < 1e-6);
        }
    }

    #[test]
    fn paper_baseline_sizing_400g() {
        // 15,360 hosts on 128-port switches: n ≈ 2.1507, ≈ 396 switches,
        // ≈ 17,676 inter-switch links. These counts, fed into the §2.3
        // power model, reproduce the paper's Table 3 (validated in
        // npp-core's tests).
        let m = FatTreeModel::new(128).unwrap();
        let s = m.size_for_hosts(15_360.0).unwrap();
        assert!((s.stages - 2.15115).abs() < 1e-4, "stages = {}", s.stages);
        assert!(
            (s.switches - 396.2).abs() < 0.5,
            "switches = {}",
            s.switches
        );
        assert!(
            (s.inter_switch_links - 17_681.7).abs() < 5.0,
            "links = {}",
            s.inter_switch_links
        );
    }

    #[test]
    fn sizing_is_monotonic_in_hosts() {
        let m = FatTreeModel::new(32).unwrap();
        let mut last = m.size_for_hosts(10.0).unwrap();
        for h in [100.0, 1_000.0, 10_000.0, 100_000.0] {
            let s = m.size_for_hosts(h).unwrap();
            assert!(s.switches > last.switches);
            assert!(s.inter_switch_links > last.inter_switch_links);
            last = s;
        }
    }

    #[test]
    fn smaller_radix_needs_more_switches() {
        // The mechanism behind the paper's bandwidth sweep: higher port
        // speed → smaller radix → deeper tree → more switches per host.
        let hosts = 15_360.0;
        let mut last = 0.0;
        for radix in [512, 256, 128, 64, 32] {
            let s = FatTreeModel::new(radix)
                .unwrap()
                .size_for_hosts(hosts)
                .unwrap();
            assert!(s.switches > last, "radix {radix}");
            last = s.switches;
        }
    }

    #[test]
    fn tiny_host_counts_clamp_to_one_stage() {
        let m = FatTreeModel::new(128).unwrap();
        let s = m.size_for_hosts(10.0).unwrap();
        assert_eq!(s.stages, 1.0);
        assert_eq!(s.inter_switch_links, 0.0);
        assert_eq!(s.switches, 1.0);
    }

    #[test]
    fn invalid_host_counts_rejected() {
        let m = FatTreeModel::new(128).unwrap();
        assert!(m.size_for_hosts(0.0).is_err());
        assert!(m.size_for_hosts(-5.0).is_err());
        assert!(m.size_for_hosts(f64::NAN).is_err());
        assert!(m.size_for_hosts(f64::INFINITY).is_err());
    }

    #[test]
    fn interp_modes_agree_at_integer_stages_and_order_in_between() {
        let m = FatTreeModel::new(16).unwrap();
        let h = m.capacity(2);
        for mode in [
            InterpMode::FractionalStages,
            InterpMode::CeilProportional,
            InterpMode::CeilFull,
        ] {
            let s = m.size_for_hosts_with(h, mode).unwrap();
            assert!((s.switches - m.full_switches(2)).abs() < 1e-9, "{mode:?}");
        }
        // Between stages, CeilFull charges the most.
        let h = m.capacity(2) * 3.0;
        let frac = m
            .size_for_hosts_with(h, InterpMode::FractionalStages)
            .unwrap();
        let prop = m
            .size_for_hosts_with(h, InterpMode::CeilProportional)
            .unwrap();
        let full = m.size_for_hosts_with(h, InterpMode::CeilFull).unwrap();
        assert!(full.switches >= prop.switches);
        assert!(full.switches >= frac.switches);
    }

    #[test]
    fn switches_per_host_density() {
        let m = FatTreeModel::new(128).unwrap();
        let s = m.size_for_hosts(15_360.0).unwrap();
        assert!((s.switches_per_host() - 396.2 / 15_360.0).abs() < 1e-4);
    }
}
