//! Bisection bandwidth via max-flow (Edmonds–Karp).
//!
//! §3.4 of the paper notes that even with compute/communication overlap,
//! full-bisection fabrics are underutilized because not all paths carry
//! traffic at all times. To reason about that quantitatively we need the
//! actual bisection bandwidth of a concrete topology, which this module
//! computes exactly with a BFS-augmenting max-flow between the two halves
//! of the host set.

use std::collections::VecDeque;

use npp_units::Gbps;

use crate::graph::{NodeId, Topology};

/// A directed-edge flow network derived from an undirected [`Topology`].
struct FlowNet {
    /// to\[e\], cap\[e\]; reverse edge of e is e^1.
    to: Vec<usize>,
    cap: Vec<f64>,
    head: Vec<Vec<usize>>,
}

impl FlowNet {
    fn new(n: usize) -> Self {
        Self {
            to: Vec::new(),
            cap: Vec::new(),
            head: vec![Vec::new(); n],
        }
    }

    fn add_edge(&mut self, u: usize, v: usize, c: f64) {
        self.head[u].push(self.to.len());
        self.to.push(v);
        self.cap.push(c);
        self.head[v].push(self.to.len());
        self.to.push(u);
        self.cap.push(c); // undirected: full capacity both ways
    }

    fn add_directed(&mut self, u: usize, v: usize, c: f64) {
        self.head[u].push(self.to.len());
        self.to.push(v);
        self.cap.push(c);
        self.head[v].push(self.to.len());
        self.to.push(u);
        self.cap.push(0.0);
    }

    /// Edmonds–Karp max flow from `s` to `t`.
    fn max_flow(&mut self, s: usize, t: usize) -> f64 {
        let mut flow = 0.0;
        loop {
            // BFS for an augmenting path.
            let mut pred: Vec<Option<usize>> = vec![None; self.head.len()];
            let mut q = VecDeque::new();
            q.push_back(s);
            'bfs: while let Some(u) = q.pop_front() {
                for &e in &self.head[u] {
                    let v = self.to[e];
                    if pred[v].is_none() && v != s && self.cap[e] > 1e-12 {
                        pred[v] = Some(e);
                        if v == t {
                            break 'bfs;
                        }
                        q.push_back(v);
                    }
                }
            }
            let Some(_) = pred[t] else { break };
            // Bottleneck.
            let mut df = f64::INFINITY;
            let mut v = t;
            while v != s {
                let e = pred[v].expect("path reconstruction");
                df = df.min(self.cap[e]);
                v = self.to[e ^ 1];
            }
            // Augment.
            let mut v = t;
            while v != s {
                let e = pred[v].expect("path reconstruction");
                self.cap[e] -= df;
                self.cap[e ^ 1] += df;
                v = self.to[e ^ 1];
            }
            flow += df;
        }
        flow
    }
}

/// Maximum flow (in Gbps) between two disjoint sets of hosts.
///
/// Host sets are connected to a super-source/super-sink with infinite
/// capacity; topology links contribute their capacity in both directions.
pub fn max_flow_between(t: &Topology, sources: &[NodeId], sinks: &[NodeId]) -> Gbps {
    let n = t.nodes().len();
    let mut net = FlowNet::new(n + 2);
    let (s, snk) = (n, n + 1);
    for l in t.links() {
        net.add_edge(l.a.0, l.b.0, l.capacity.value());
    }
    for &src in sources {
        net.add_directed(s, src.0, f64::INFINITY);
    }
    for &dst in sinks {
        net.add_directed(dst.0, snk, f64::INFINITY);
    }
    Gbps::new(net.max_flow(s, snk))
}

/// Bisection bandwidth: max flow between the first and second half of the
/// host set (hosts in construction order, which for the provided builders
/// is a worst-case-ish split across pods).
pub fn bisection_bandwidth(t: &Topology) -> Gbps {
    let hosts = t.hosts();
    if hosts.len() < 2 {
        return Gbps::ZERO;
    }
    let mid = hosts.len() / 2;
    max_flow_between(t, &hosts[..mid], &hosts[mid..])
}

/// The ideal (full) bisection bandwidth for `n_hosts` hosts with
/// `host_speed` interfaces: half the hosts talking across the cut at line
/// rate.
pub fn full_bisection(n_hosts: usize, host_speed: Gbps) -> Gbps {
    host_speed * (n_hosts / 2) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{leaf_spine, three_tier_fat_tree};

    #[test]
    fn fat_tree_has_full_bisection() {
        let speed = Gbps::new(100.0);
        let t = three_tier_fat_tree(4, speed).unwrap();
        let b = bisection_bandwidth(&t);
        let ideal = full_bisection(16, speed);
        assert!(b.approx_eq(ideal, 1e-6), "bisection {b} != ideal {ideal}");
    }

    #[test]
    fn oversubscribed_leaf_spine_loses_bisection() {
        let speed = Gbps::new(100.0);
        // 2:1 oversubscription: 4 hosts/leaf but only 2 uplinks.
        let t = leaf_spine(4, 2, 4, speed).unwrap();
        let b = bisection_bandwidth(&t);
        let ideal = full_bisection(16, speed);
        // The cut is limited by leaf uplinks: 8 hosts on one side behind
        // 2 leaves × 2 uplinks × 100 G = 400 G, vs ideal 800 G.
        assert!(b.approx_eq(ideal * 0.5, 1e-6), "bisection {b}");
    }

    #[test]
    fn nonblocking_leaf_spine_keeps_full_bisection() {
        let speed = Gbps::new(100.0);
        let t = leaf_spine(4, 4, 4, speed).unwrap();
        let b = bisection_bandwidth(&t);
        assert!(b.approx_eq(full_bisection(16, speed), 1e-6));
    }

    #[test]
    fn flow_between_single_pair_is_limited_by_host_link() {
        let speed = Gbps::new(100.0);
        let t = three_tier_fat_tree(4, speed).unwrap();
        let hosts = t.hosts();
        let f = max_flow_between(&t, &hosts[..1], &hosts[15..]);
        assert!(f.approx_eq(speed, 1e-9));
    }

    #[test]
    fn degenerate_topologies() {
        let t = Topology::new();
        assert_eq!(bisection_bandwidth(&t), Gbps::ZERO);
        let mut t = Topology::new();
        t.add_host("only");
        assert_eq!(bisection_bandwidth(&t), Gbps::ZERO);
    }

    #[test]
    fn disconnected_hosts_have_zero_flow() {
        let mut t = Topology::new();
        let a = t.add_host("a");
        let b = t.add_host("b");
        assert_eq!(max_flow_between(&t, &[a], &[b]), Gbps::ZERO);
    }
}
