//! Builders for standard data-center fabrics: k-ary fat trees and
//! leaf–spine fabrics with configurable oversubscription.

use npp_units::Gbps;

use crate::graph::{NodeId, Topology};
use crate::{Result, TopologyError};

/// Builds the classic 3-tier k-ary fat tree of Al-Fares et al.:
/// `k` pods, each with `k/2` edge and `k/2` aggregation switches,
/// `(k/2)²` core switches, and `k³/4` hosts. All links share one speed.
///
/// # Errors
///
/// Returns [`TopologyError::InvalidRadix`] unless `k` is even and ≥ 2.
pub fn three_tier_fat_tree(k: usize, link_speed: Gbps) -> Result<Topology> {
    if k < 2 || k % 2 != 0 {
        return Err(TopologyError::InvalidRadix(k));
    }
    let mut t = Topology::new();
    add_fat_tree_plane(&mut t, "", k, link_speed)?;
    t.validate(k)?;
    Ok(t)
}

/// Appends one complete k-ary fat tree to `t`, every node name prefixed
/// with `prefix`. Construction order (cores, then per pod: aggs, edges,
/// edge↔agg links, agg↔core links, hosts) is identical for every call,
/// so planes built with different prefixes are isomorphic **including**
/// their relative node/link id order — which is what lets isolated
/// planes produce bit-identical fluid dynamics under identical load.
fn add_fat_tree_plane(t: &mut Topology, prefix: &str, k: usize, link_speed: Gbps) -> Result<()> {
    let half = k / 2;

    // Core switches, addressed as a half×half grid: core[i][j].
    let mut core = Vec::with_capacity(half * half);
    for i in 0..half {
        for j in 0..half {
            core.push(t.add_switch(format!("{prefix}core{i}_{j}"), 2));
        }
    }

    for pod in 0..k {
        let mut aggs = Vec::with_capacity(half);
        for a in 0..half {
            aggs.push(t.add_switch(format!("{prefix}pod{pod}/agg{a}"), 1));
        }
        let mut edges = Vec::with_capacity(half);
        for e in 0..half {
            edges.push(t.add_switch(format!("{prefix}pod{pod}/edge{e}"), 0));
        }
        // Edge↔agg: complete bipartite within the pod.
        for &e in &edges {
            for &a in &aggs {
                t.add_link(e, a, link_speed)?;
            }
        }
        // Agg a connects to cores in row a: core[a][0..half].
        for (a, &agg) in aggs.iter().enumerate() {
            for &c in core.iter().skip(a * half).take(half) {
                t.add_link(agg, c, link_speed)?;
            }
        }
        // Hosts: half per edge switch.
        for (e, &edge) in edges.iter().enumerate() {
            for h in 0..half {
                let host = t.add_host(format!("{prefix}pod{pod}/edge{e}/host{h}"));
                t.add_link(host, edge, link_speed)?;
            }
        }
    }
    Ok(())
}

/// Builds `pods` *disconnected* k-ary fat-tree planes in one topology —
/// the "fat-tree pod" fabric of the paper's 15,360-GPU example, where
/// pods are joined only through an optical/datacenter spine that bulk
/// training traffic never crosses. Hosts are named
/// `plane{p}/pod{q}/edge{e}/host{h}` and appear plane-contiguous in
/// [`Topology::hosts`]; every plane holds `k³/4` hosts.
///
/// Like [`rail_optimized`], planes are electrically separate networks:
/// cross-plane distance is `None`. For the fluid simulator this is the
/// canonical many-component workload — each plane (or finer structure
/// within it) is an independent link-sharing component, which is what
/// the component-sharded parallel engine scales across.
///
/// # Errors
///
/// Returns [`TopologyError::Build`] for zero pods, and
/// [`TopologyError::InvalidRadix`] unless `k` is even and ≥ 2.
pub fn fat_tree_pods(pods: usize, k: usize, link_speed: Gbps) -> Result<Topology> {
    if pods == 0 {
        return Err(TopologyError::Build("pod count must be positive".into()));
    }
    if k < 2 || k % 2 != 0 {
        return Err(TopologyError::InvalidRadix(k));
    }
    let mut t = Topology::new();
    for p in 0..pods {
        add_fat_tree_plane(&mut t, &format!("plane{p}/"), k, link_speed)?;
    }
    t.validate(k)?;
    Ok(t)
}

/// Builds [`fat_tree_pods`] planes joined through a shared datacenter
/// spine: every plane's core switches uplink to each of the `spines`
/// tier-3 spine switches, so the fabric is **one** connected network —
/// and, for the fluid simulator, one link-sharing component whenever
/// traffic crosses the spine. This is the single-giant-component
/// counterpoint to [`fat_tree_pods`]: component sharding gets no
/// parallelism here, which is exactly what the within-component
/// splitter is measured against.
///
/// Spine switches are named `dcspine{s}` and appended after all planes,
/// so per-plane node/link id order matches [`fat_tree_pods`] exactly.
///
/// # Errors
///
/// Returns [`TopologyError::Build`] for zero pods or spines, and
/// [`TopologyError::InvalidRadix`] unless `k` is even and ≥ 2.
pub fn fat_tree_pods_spine(
    pods: usize,
    k: usize,
    spines: usize,
    link_speed: Gbps,
) -> Result<Topology> {
    if pods == 0 || spines == 0 {
        return Err(TopologyError::Build(
            "pod and spine counts must be positive".into(),
        ));
    }
    if k < 2 || k % 2 != 0 {
        return Err(TopologyError::InvalidRadix(k));
    }
    let mut t = Topology::new();
    for p in 0..pods {
        add_fat_tree_plane(&mut t, &format!("plane{p}/"), k, link_speed)?;
    }
    let cores = t.switches_at_tier(2);
    let spine_ids: Vec<NodeId> = (0..spines)
        .map(|s| t.add_switch(format!("dcspine{s}"), 3))
        .collect();
    for &c in &cores {
        for &s in &spine_ids {
            t.add_link(c, s, link_speed)?;
        }
    }
    // Spine uplinks raise core degree to k + spines; each spine's
    // degree is one port per core switch across every plane.
    t.validate((k + spines).max(pods * (k / 2) * (k / 2)))?;
    Ok(t)
}

/// Builds a 2-tier leaf–spine fabric.
///
/// Each of the `leaves` leaf switches hosts `hosts_per_leaf` endpoints and
/// connects to each of the `spines` spine switches with one uplink. With
/// `hosts_per_leaf == spines` the fabric is non-blocking; larger values
/// oversubscribe the leaf layer by `hosts_per_leaf / spines`.
///
/// # Errors
///
/// Returns [`TopologyError::Build`] for zero-sized dimensions.
pub fn leaf_spine(
    leaves: usize,
    spines: usize,
    hosts_per_leaf: usize,
    link_speed: Gbps,
) -> Result<Topology> {
    if leaves == 0 || spines == 0 || hosts_per_leaf == 0 {
        return Err(TopologyError::Build(
            "leaf-spine dimensions must be positive".into(),
        ));
    }
    let mut t = Topology::new();
    let spine_ids: Vec<NodeId> = (0..spines)
        .map(|s| t.add_switch(format!("spine{s}"), 1))
        .collect();
    for l in 0..leaves {
        let leaf = t.add_switch(format!("leaf{l}"), 0);
        for &s in &spine_ids {
            t.add_link(leaf, s, link_speed)?;
        }
        for h in 0..hosts_per_leaf {
            let host = t.add_host(format!("leaf{l}/host{h}"));
            t.add_link(host, leaf, link_speed)?;
        }
    }
    Ok(t)
}

/// The oversubscription ratio of a leaf–spine fabric: host-facing capacity
/// divided by uplink capacity at the most-loaded leaf. 1.0 means
/// non-blocking; values above 1 trade bisection for cost (§4.2 mentions
/// oversubscription as a coarse tool compared to OCS reconfiguration).
pub fn leaf_oversubscription(t: &Topology) -> f64 {
    let mut worst: f64 = 0.0;
    for leaf in t.switches_at_tier(0) {
        let mut down = 0.0;
        let mut up = 0.0;
        for &(peer, link) in t.neighbors(leaf) {
            let cap = t
                .link(link)
                .expect("adjacency is consistent")
                .capacity
                .value();
            match t.node(peer).expect("adjacency is consistent").kind {
                crate::graph::NodeKind::Host => down += cap,
                _ => up += cap,
            }
        }
        if up > 0.0 {
            worst = worst.max(down / up);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k4_fat_tree_counts() {
        let t = three_tier_fat_tree(4, Gbps::new(100.0)).unwrap();
        assert_eq!(t.hosts().len(), 16); // k³/4
        assert_eq!(t.switches().len(), 20); // 5k²/4
        assert_eq!(t.switches_at_tier(0).len(), 8);
        assert_eq!(t.switches_at_tier(1).len(), 8);
        assert_eq!(t.switches_at_tier(2).len(), 4);
        assert_eq!(t.inter_switch_links().len(), 32); // hosts·(n−1)
    }

    #[test]
    fn k8_fat_tree_matches_analytic_model() {
        let t = three_tier_fat_tree(8, Gbps::new(400.0)).unwrap();
        let m = crate::FatTreeModel::new(8).unwrap();
        assert_eq!(t.hosts().len() as f64, m.capacity(3));
        assert_eq!(t.switches().len() as f64, m.full_switches(3));
        assert_eq!(t.inter_switch_links().len() as f64, m.full_links(3));
    }

    #[test]
    fn fat_tree_any_to_any_reachability() {
        let t = three_tier_fat_tree(4, Gbps::new(100.0)).unwrap();
        let hosts = t.hosts();
        // Same-edge hosts are 2 hops apart, cross-pod are 6.
        let d_same = t.distance(hosts[0], hosts[1]).unwrap();
        assert_eq!(d_same, 2);
        let d_cross = t.distance(hosts[0], hosts[15]).unwrap();
        assert_eq!(d_cross, 6);
    }

    #[test]
    fn fat_tree_ecmp_width_cross_pod() {
        // Between pods in a k=4 fat tree there are (k/2)² = 4 shortest
        // paths (one per core switch).
        let t = three_tier_fat_tree(4, Gbps::new(100.0)).unwrap();
        let hosts = t.hosts();
        let paths = t.ecmp_paths(hosts[0], hosts[15], 64);
        assert_eq!(paths.len(), 4);
    }

    #[test]
    fn fat_tree_radix_respected() {
        for k in [4, 6, 8] {
            let t = three_tier_fat_tree(k, Gbps::new(100.0)).unwrap();
            assert!(t.validate(k).is_ok(), "k={k}");
        }
        assert!(three_tier_fat_tree(3, Gbps::new(100.0)).is_err());
        assert!(three_tier_fat_tree(0, Gbps::new(100.0)).is_err());
    }

    #[test]
    fn leaf_spine_counts_and_oversubscription() {
        // 4 leaves × 2 spines, 4 hosts per leaf ⇒ 2:1 oversubscribed.
        let t = leaf_spine(4, 2, 4, Gbps::new(100.0)).unwrap();
        assert_eq!(t.hosts().len(), 16);
        assert_eq!(t.switches().len(), 6);
        assert_eq!(t.inter_switch_links().len(), 8);
        assert!((leaf_oversubscription(&t) - 2.0).abs() < 1e-12);
        // Non-blocking variant.
        let t = leaf_spine(4, 4, 4, Gbps::new(100.0)).unwrap();
        assert!((leaf_oversubscription(&t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn leaf_spine_rejects_empty_dimensions() {
        assert!(leaf_spine(0, 1, 1, Gbps::new(1.0)).is_err());
        assert!(leaf_spine(1, 0, 1, Gbps::new(1.0)).is_err());
        assert!(leaf_spine(1, 1, 0, Gbps::new(1.0)).is_err());
    }

    #[test]
    fn fat_tree_pods_counts_scale_per_plane() {
        let one = three_tier_fat_tree(4, Gbps::new(100.0)).unwrap();
        let t = fat_tree_pods(3, 4, Gbps::new(100.0)).unwrap();
        assert_eq!(t.hosts().len(), 3 * one.hosts().len());
        assert_eq!(t.switches().len(), 3 * one.switches().len());
        assert_eq!(
            t.inter_switch_links().len(),
            3 * one.inter_switch_links().len()
        );
    }

    #[test]
    fn fat_tree_pods_planes_are_isolated() {
        let t = fat_tree_pods(2, 4, Gbps::new(100.0)).unwrap();
        let hosts = t.hosts();
        let per_plane = 16; // k³/4
                            // Within a plane: reachable; across planes: electrically separate.
        assert!(t.distance(hosts[0], hosts[per_plane - 1]).is_some());
        assert_eq!(t.distance(hosts[0], hosts[per_plane]), None);
        // Host ordering is plane-contiguous with per-plane names.
        let first = &t.node(hosts[0]).unwrap().name;
        let second = &t.node(hosts[per_plane]).unwrap().name;
        assert!(first.starts_with("plane0/"), "{first}");
        assert!(second.starts_with("plane1/"), "{second}");
    }

    #[test]
    fn fat_tree_pods_spine_joins_all_planes() {
        let flat = fat_tree_pods(2, 4, Gbps::new(100.0)).unwrap();
        let t = fat_tree_pods_spine(2, 4, 2, Gbps::new(100.0)).unwrap();
        let hosts = t.hosts();
        assert_eq!(hosts.len(), flat.hosts().len());
        // 2 extra spine switches, one uplink per core per spine.
        assert_eq!(t.switches().len(), flat.switches().len() + 2);
        assert_eq!(
            t.inter_switch_links().len(),
            flat.inter_switch_links().len() + 2 * 4 * 2
        );
        // Cross-plane hosts are now reachable: host→edge→agg→core→
        // spine→core→agg→edge→host = 8 hops.
        let per_plane = 16;
        assert_eq!(t.distance(hosts[0], hosts[per_plane]), Some(8));
        // Intra-plane routes are untouched by the spine.
        assert_eq!(
            t.distance(hosts[0], hosts[per_plane - 1]),
            flat.distance(hosts[0], hosts[per_plane - 1])
        );
    }

    #[test]
    fn fat_tree_pods_spine_validation() {
        assert!(fat_tree_pods_spine(0, 4, 1, Gbps::new(1.0)).is_err());
        assert!(fat_tree_pods_spine(2, 4, 0, Gbps::new(1.0)).is_err());
        assert!(fat_tree_pods_spine(2, 3, 1, Gbps::new(1.0)).is_err());
        // Many planes: the shared spine's degree exceeds k + spines and
        // must still validate.
        assert!(fat_tree_pods_spine(8, 4, 2, Gbps::new(1.0)).is_ok());
    }

    #[test]
    fn fat_tree_pods_validation() {
        assert!(fat_tree_pods(0, 4, Gbps::new(100.0)).is_err());
        assert!(fat_tree_pods(2, 3, Gbps::new(100.0)).is_err());
        assert!(fat_tree_pods(1, 4, Gbps::new(100.0)).is_ok());
    }
}

/// Builds a rail-optimized fabric: `rails` independent parallel planes
/// (one per GPU NIC/rail, as in Alibaba HPN-style GPU clusters), each a
/// non-blocking leaf–spine over the same servers. Hosts are modeled per
/// rail endpoint: server `s`'s rail `r` NIC is host node `s·rails + r`…
/// physically one server, but electrically `rails` independent networks,
/// which is what matters for power.
///
/// Rail-optimization concentrates collective traffic *within* a rail:
/// rank i's rail-r NIC only ever talks to other rail-r NICs, so an
/// all-reduce lights up exactly one plane per rail instead of a shared
/// monolithic fabric — which suits the §4.2 parking analysis.
///
/// # Errors
///
/// Returns [`TopologyError::Build`] for zero-sized dimensions.
pub fn rail_optimized(
    servers: usize,
    rails: usize,
    servers_per_leaf: usize,
    link_speed: Gbps,
) -> Result<Topology> {
    if servers == 0 || rails == 0 || servers_per_leaf == 0 {
        return Err(TopologyError::Build(
            "rail dimensions must be positive".into(),
        ));
    }
    if servers % servers_per_leaf != 0 {
        return Err(TopologyError::Build(format!(
            "servers {servers} must divide into leaves of {servers_per_leaf}"
        )));
    }
    let leaves_per_rail = servers / servers_per_leaf;
    let mut t = Topology::new();
    for r in 0..rails {
        // Non-blocking: one spine port per server per rail.
        let spines: Vec<NodeId> = (0..servers_per_leaf)
            .map(|sp| t.add_switch(format!("rail{r}/spine{sp}"), 1))
            .collect();
        for l in 0..leaves_per_rail {
            let leaf = t.add_switch(format!("rail{r}/leaf{l}"), 0);
            for &sp in &spines {
                t.add_link(leaf, sp, link_speed)?;
            }
            for s in 0..servers_per_leaf {
                let server = l * servers_per_leaf + s;
                let host = t.add_host(format!("server{server}/rail{r}"));
                t.add_link(host, leaf, link_speed)?;
            }
        }
    }
    Ok(t)
}

#[cfg(test)]
mod rail_tests {
    use super::*;
    use crate::bisection::{bisection_bandwidth, full_bisection};

    #[test]
    fn rail_counts() {
        // 16 servers × 8 rails, 4 servers per leaf.
        let t = rail_optimized(16, 8, 4, Gbps::new(400.0)).unwrap();
        assert_eq!(t.hosts().len(), 128); // one endpoint per rail NIC
                                          // Per rail: 4 leaves + 4 spines = 8 switches; ×8 rails = 64.
        assert_eq!(t.switches().len(), 64);
        // Per rail: 4 leaves × 4 spines uplinks = 16; ×8 = 128.
        assert_eq!(t.inter_switch_links().len(), 128);
    }

    #[test]
    fn rails_are_isolated_planes() {
        let t = rail_optimized(8, 2, 4, Gbps::new(100.0)).unwrap();
        let hosts = t.hosts();
        // server0/rail0 ↔ server1/rail0: connected.
        let rail0_a = hosts
            .iter()
            .find(|&&h| t.node(h).unwrap().name == "server0/rail0")
            .copied()
            .unwrap();
        let rail0_b = hosts
            .iter()
            .find(|&&h| t.node(h).unwrap().name == "server1/rail0")
            .copied()
            .unwrap();
        let rail1_a = hosts
            .iter()
            .find(|&&h| t.node(h).unwrap().name == "server0/rail1")
            .copied()
            .unwrap();
        assert!(t.distance(rail0_a, rail0_b).is_some());
        // Different rails never meet — electrically separate networks.
        assert_eq!(t.distance(rail0_a, rail1_a), None);
    }

    #[test]
    fn each_rail_is_non_blocking() {
        let t = rail_optimized(8, 1, 4, Gbps::new(100.0)).unwrap();
        let b = bisection_bandwidth(&t);
        assert!(
            b.approx_eq(full_bisection(8, Gbps::new(100.0)), 1e-6),
            "bisection {b}"
        );
    }

    #[test]
    fn rail_validation() {
        assert!(rail_optimized(0, 1, 1, Gbps::new(1.0)).is_err());
        assert!(rail_optimized(8, 0, 4, Gbps::new(1.0)).is_err());
        assert!(rail_optimized(7, 1, 4, Gbps::new(1.0)).is_err());
    }
}
