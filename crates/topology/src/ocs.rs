//! Optical circuit switches (OCS) — the reconfiguration substrate for the
//! §4.2 "scheduling network jobs" proposal.
//!
//! An OCS is a passive port-to-port patch panel with movable mirrors: it
//! performs no packet processing, draws a small constant power for mirror
//! control, and takes tens of milliseconds to reconfigure (off-the-shelf
//! devices). §4.2 argues that for ML training jobs — which last days and
//! need one reconfiguration at job start — that speed is ample, unlike the
//! nanosecond-scale demands of RotorNet/Sirius-style designs.

use serde::{Deserialize, Serialize};

use npp_units::{Seconds, Watts};

use crate::{Result, TopologyError};

/// Static parameters of an optical circuit switch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OcsSpec {
    /// Number of ports.
    pub ports: usize,
    /// Time to establish a new mirror configuration.
    pub reconfiguration_time: Seconds,
    /// Constant control power for the whole device.
    pub power: Watts,
}

impl OcsSpec {
    /// An off-the-shelf 3D-MEMS OCS: tens-of-ms reconfiguration (we use
    /// 25 ms) and ~45 W of control power for a 320-port device, scaled
    /// linearly in port count.
    pub fn off_the_shelf(ports: usize) -> Self {
        Self {
            ports,
            reconfiguration_time: Seconds::from_millis(25.0),
            power: Watts::new(45.0 * ports as f64 / 320.0),
        }
    }
}

/// A circuit switch with its current port-to-port mapping.
///
/// The mapping is an *involution without fixed points* on the connected
/// subset: if port `a` is wired to port `b`, then `b` is wired to `a`, and
/// no port is wired to itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CircuitSwitch {
    spec: OcsSpec,
    mapping: Vec<Option<usize>>,
    reconfigurations: usize,
}

impl CircuitSwitch {
    /// Creates a circuit switch with all ports unconnected.
    pub fn new(spec: OcsSpec) -> Self {
        Self {
            spec,
            mapping: vec![None; spec.ports],
            reconfigurations: 0,
        }
    }

    /// The device parameters.
    pub fn spec(&self) -> &OcsSpec {
        &self.spec
    }

    /// Number of reconfiguration operations performed so far.
    pub fn reconfigurations(&self) -> usize {
        self.reconfigurations
    }

    /// The port `p` is currently wired to, if any.
    pub fn peer(&self, p: usize) -> Option<usize> {
        self.mapping.get(p).copied().flatten()
    }

    /// Number of established circuits (port pairs).
    pub fn circuits(&self) -> usize {
        self.mapping.iter().flatten().count() / 2
    }

    /// Wires two ports together. Both must exist, be distinct, and be
    /// currently unconnected.
    ///
    /// # Errors
    ///
    /// [`TopologyError::InvalidCircuit`] on any violation.
    pub fn connect(&mut self, a: usize, b: usize) -> Result<()> {
        if a >= self.spec.ports || b >= self.spec.ports {
            return Err(TopologyError::InvalidCircuit(format!(
                "port out of range (ports={}, got {a},{b})",
                self.spec.ports
            )));
        }
        if a == b {
            return Err(TopologyError::InvalidCircuit(format!(
                "port {a} wired to itself"
            )));
        }
        if self.mapping[a].is_some() || self.mapping[b].is_some() {
            return Err(TopologyError::InvalidCircuit(format!(
                "port {a} or {b} already connected"
            )));
        }
        self.mapping[a] = Some(b);
        self.mapping[b] = Some(a);
        Ok(())
    }

    /// Tears down the circuit through port `p` (no-op if unconnected).
    pub fn disconnect(&mut self, p: usize) {
        if let Some(q) = self.mapping.get(p).copied().flatten() {
            self.mapping[p] = None;
            self.mapping[q] = None;
        }
    }

    /// Atomically replaces the whole configuration with the given port
    /// pairs and returns the reconfiguration latency the caller must wait.
    ///
    /// # Errors
    ///
    /// [`TopologyError::InvalidCircuit`] if the pairs do not form a valid
    /// partial matching; the previous configuration is restored on error.
    pub fn reconfigure(&mut self, pairs: &[(usize, usize)]) -> Result<Seconds> {
        let saved = self.mapping.clone();
        self.mapping.iter_mut().for_each(|m| *m = None);
        for &(a, b) in pairs {
            if let Err(e) = self.connect(a, b) {
                self.mapping = saved;
                return Err(e);
            }
        }
        self.reconfigurations += 1;
        Ok(self.spec.reconfiguration_time)
    }

    /// Verifies the involution invariant (used by property tests).
    pub fn check_invariants(&self) -> Result<()> {
        for (p, m) in self.mapping.iter().enumerate() {
            if let Some(q) = m {
                if *q == p {
                    return Err(TopologyError::InvalidCircuit(format!("fixed point at {p}")));
                }
                if self.mapping.get(*q).copied().flatten() != Some(p) {
                    return Err(TopologyError::InvalidCircuit(format!(
                        "asymmetric mapping at {p}->{q}"
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ocs8() -> CircuitSwitch {
        CircuitSwitch::new(OcsSpec::off_the_shelf(8))
    }

    #[test]
    fn connect_disconnect() {
        let mut cs = ocs8();
        cs.connect(0, 5).unwrap();
        assert_eq!(cs.peer(0), Some(5));
        assert_eq!(cs.peer(5), Some(0));
        assert_eq!(cs.circuits(), 1);
        cs.check_invariants().unwrap();
        cs.disconnect(5);
        assert_eq!(cs.peer(0), None);
        assert_eq!(cs.circuits(), 0);
    }

    #[test]
    fn invalid_connections_rejected() {
        let mut cs = ocs8();
        assert!(cs.connect(0, 0).is_err());
        assert!(cs.connect(0, 8).is_err());
        cs.connect(0, 1).unwrap();
        assert!(cs.connect(0, 2).is_err());
        assert!(cs.connect(2, 1).is_err());
    }

    #[test]
    fn reconfigure_is_atomic() {
        let mut cs = ocs8();
        cs.reconfigure(&[(0, 1), (2, 3)]).unwrap();
        assert_eq!(cs.circuits(), 2);
        // A bad batch (duplicate port 2) must roll back completely.
        let err = cs.reconfigure(&[(4, 5), (2, 2)]);
        assert!(err.is_err());
        assert_eq!(cs.peer(0), Some(1));
        assert_eq!(cs.peer(4), None);
        assert_eq!(cs.reconfigurations(), 1);
        cs.check_invariants().unwrap();
    }

    #[test]
    fn reconfiguration_latency_is_tens_of_ms() {
        let mut cs = ocs8();
        let dt = cs.reconfigure(&[(0, 7)]).unwrap();
        assert!(dt.as_millis() >= 10.0 && dt.as_millis() <= 100.0);
    }

    #[test]
    fn power_scales_with_ports() {
        let small = OcsSpec::off_the_shelf(32);
        let big = OcsSpec::off_the_shelf(320);
        assert!(big.power.value() > small.power.value());
        assert!((big.power.value() - 45.0).abs() < 1e-9);
        // An OCS draws far less than a packet switch of similar radix.
        assert!(big.power.value() < 750.0 / 10.0);
    }
}
