//! Property-based tests for the unit system's algebraic invariants.

use npp_units::{Bits, Bytes, Gbps, Joules, Ratio, Seconds, Watts};
use proptest::prelude::*;

/// Strategy for "physically plausible" finite positive values.
fn pos() -> impl Strategy<Value = f64> {
    1e-6..1e12f64
}

proptest! {
    /// power × time ÷ time round-trips back to the same power.
    #[test]
    fn energy_power_round_trip(p in pos(), t in pos()) {
        let power = Watts::new(p);
        let dur = Seconds::new(t);
        let energy: Joules = power * dur;
        let back = energy / dur;
        prop_assert!((back.value() - p).abs() <= p * 1e-12);
    }

    /// rate × time ÷ rate round-trips back to the duration.
    #[test]
    fn bandwidth_round_trip(r in pos(), t in pos()) {
        let rate = Gbps::new(r);
        let dur = Seconds::new(t);
        let data: Bits = rate * dur;
        let back = data / rate;
        prop_assert!((back.value() - t).abs() <= t * 1e-12);
    }

    /// bits ↔ bytes conversion is exact (factor 8 is a power of two).
    #[test]
    fn bits_bytes_exact(v in pos()) {
        let b = Bytes::new(v);
        prop_assert_eq!(b.to_bits().to_bytes(), b);
        let bits = Bits::new(v);
        prop_assert_eq!(bits.to_bytes().to_bits(), bits);
    }

    /// Addition on quantities is commutative and zero is the identity.
    #[test]
    fn additive_laws(a in pos(), b in pos()) {
        let (x, y) = (Watts::new(a), Watts::new(b));
        prop_assert_eq!(x + y, y + x);
        prop_assert_eq!(x + Watts::ZERO, x);
    }

    /// kWh round trip is exact to within floating-point tolerance.
    #[test]
    fn kwh_round_trip(v in pos()) {
        let e = Joules::from_kwh(v);
        prop_assert!((e.as_kwh() - v).abs() <= v * 1e-12);
    }

    /// A proper fraction's complement is also a proper fraction and the
    /// two sum to exactly 1.
    #[test]
    fn ratio_complement(f in 0.0..=1.0f64) {
        let r = Ratio::new_fraction(f).unwrap();
        let c = r.complement();
        prop_assert!((r.fraction() + c.fraction() - 1.0).abs() < 1e-15);
        prop_assert!(Ratio::new_fraction(c.fraction().clamp(0.0, 1.0)).is_ok());
    }

    /// Parsing the `Display` output of a quantity reproduces the value.
    #[test]
    fn display_parse_round_trip(v in pos()) {
        let p = Watts::new(v);
        let shown = format!("{p}");
        let parsed: Watts = shown.parse().unwrap();
        prop_assert!((parsed.value() - v).abs() <= v.abs() * 1e-9);
    }

    /// min/max are consistent with PartialOrd.
    #[test]
    fn min_max_consistent(a in pos(), b in pos()) {
        let (x, y) = (Seconds::new(a), Seconds::new(b));
        prop_assert!(x.min(y) <= x.max(y));
        prop_assert!(x.min(y) == x || x.min(y) == y);
    }
}
