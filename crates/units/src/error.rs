//! Error type for fallible unit operations.

/// Errors produced by checked constructors and parsers in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum UnitError {
    /// A string could not be parsed as the expected quantity.
    Parse {
        /// The offending input.
        input: String,
        /// The unit suffix that was expected.
        unit: &'static str,
    },
    /// A value fell outside the permitted range of a checked constructor.
    OutOfRange {
        /// Human-readable name of the quantity.
        what: &'static str,
        /// The offending value.
        value: f64,
        /// Inclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
    },
}

impl core::fmt::Display for UnitError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            UnitError::Parse { input, unit } => {
                write!(f, "cannot parse {input:?} as a quantity in {unit}")
            }
            UnitError::OutOfRange {
                what,
                value,
                lo,
                hi,
            } => {
                write!(f, "{what} = {value} is outside [{lo}, {hi}]")
            }
        }
    }
}

impl std::error::Error for UnitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = UnitError::Parse {
            input: "x".into(),
            unit: "W",
        };
        assert!(e.to_string().contains("cannot parse"));
        let e = UnitError::OutOfRange {
            what: "fraction",
            value: 2.0,
            lo: 0.0,
            hi: 1.0,
        };
        assert!(e.to_string().contains("outside"));
    }
}
