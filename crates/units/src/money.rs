//! Monetary amounts for the paper's operating-cost analysis (§3.2).

use serde::{Deserialize, Serialize};

/// An amount of money in US dollars.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Usd(pub(crate) f64);

crate::scalar_quantity!(Usd, "USD");

impl Usd {
    /// Returns the value in thousands of dollars (the paper reports "$416k").
    #[inline]
    pub fn as_thousands(self) -> f64 {
        self.0 / 1e3
    }

    /// Returns the value in millions of dollars.
    #[inline]
    pub fn as_millions(self) -> f64 {
        self.0 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling() {
        let m = Usd::new(416_000.0);
        assert_eq!(m.as_thousands(), 416.0);
        assert_eq!(m.as_millions(), 0.416);
    }
}
