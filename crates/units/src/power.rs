//! Electric power, in watts.

use serde::{Deserialize, Serialize};

use crate::{Joules, Seconds};

/// Electric power in watts (W).
///
/// This is the workhorse quantity of the workspace: every device model,
/// phase breakdown, and savings computation produces or consumes `Watts`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Watts(pub(crate) f64);

crate::scalar_quantity!(Watts, "W");

impl Watts {
    /// Creates a power from a value in kilowatts.
    #[inline]
    pub const fn from_kw(kw: f64) -> Self {
        Self(kw * 1e3)
    }

    /// Creates a power from a value in megawatts.
    #[inline]
    pub const fn from_mw(mw: f64) -> Self {
        Self(mw * 1e6)
    }

    /// Returns the value in kilowatts.
    #[inline]
    pub fn as_kw(self) -> f64 {
        self.0 / 1e3
    }

    /// Returns the value in megawatts.
    #[inline]
    pub fn as_mw(self) -> f64 {
        self.0 / 1e6
    }

    /// Energy consumed when drawing this power for `duration`.
    #[inline]
    pub fn energy_over(self, duration: Seconds) -> Joules {
        self * duration
    }
}

impl core::ops::Mul<Seconds> for Watts {
    type Output = Joules;

    /// Power × time = energy.
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules::new(self.0 * rhs.value())
    }
}

impl core::ops::Mul<Watts> for Seconds {
    type Output = Joules;

    /// Time × power = energy.
    #[inline]
    fn mul(self, rhs: Watts) -> Joules {
        Joules::new(self.value() * rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kw_mw_round_trip() {
        let p = Watts::from_kw(1.5);
        assert_eq!(p.value(), 1500.0);
        assert_eq!(p.as_kw(), 1.5);
        assert_eq!(Watts::from_mw(2.0).as_mw(), 2.0);
        assert_eq!(Watts::from_mw(2.0).as_kw(), 2000.0);
    }

    #[test]
    fn energy_over_duration() {
        // 750 W switch for a day.
        let e = Watts::new(750.0).energy_over(Seconds::from_hours(24.0));
        assert!((e.as_kwh() - 18.0).abs() < 1e-12);
    }

    #[test]
    fn serde_transparent() {
        let json = serde_json::to_string(&Watts::new(750.0)).unwrap();
        assert_eq!(json, "750.0");
        let back: Watts = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Watts::new(750.0));
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Watts::new(2.0) + Watts::new(3.0), Watts::new(5.0));
        assert_eq!(Watts::new(5.0) - Watts::new(3.0), Watts::new(2.0));
        assert_eq!(Watts::new(2.0) * 3.0, Watts::new(6.0));
        assert_eq!(3.0 * Watts::new(2.0), Watts::new(6.0));
        assert_eq!(Watts::new(6.0) / 3.0, Watts::new(2.0));
        assert_eq!(Watts::new(6.0) / Watts::new(3.0), 2.0);
        assert_eq!(-Watts::new(1.0), Watts::new(-1.0));
    }
}
