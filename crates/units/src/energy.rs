//! Energy, in joules.

use serde::{Deserialize, Serialize};

use crate::{Seconds, Watts};

/// Energy in joules (J).
///
/// Conversions to watt-hours are provided because electricity pricing and
/// the paper's cost analysis (§3.2) are expressed per kWh.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Joules(pub(crate) f64);

crate::scalar_quantity!(Joules, "J");

impl Joules {
    /// Number of joules in one kilowatt-hour.
    pub const PER_KWH: f64 = 3.6e6;

    /// Creates an energy from kilowatt-hours.
    #[inline]
    pub const fn from_kwh(kwh: f64) -> Self {
        Self(kwh * Self::PER_KWH)
    }

    /// Creates an energy from watt-hours.
    #[inline]
    pub const fn from_wh(wh: f64) -> Self {
        Self(wh * 3.6e3)
    }

    /// Returns the value in kilowatt-hours.
    #[inline]
    pub fn as_kwh(self) -> f64 {
        self.0 / Self::PER_KWH
    }

    /// Returns the value in megawatt-hours.
    #[inline]
    pub fn as_mwh(self) -> f64 {
        self.0 / (Self::PER_KWH * 1e3)
    }

    /// Average power when this energy is spread over `duration`.
    #[inline]
    pub fn average_power(self, duration: Seconds) -> Watts {
        self / duration
    }
}

impl core::ops::Div<Seconds> for Joules {
    type Output = Watts;

    /// Energy ÷ time = power.
    #[inline]
    fn div(self, rhs: Seconds) -> Watts {
        Watts::new(self.0 / rhs.value())
    }
}

impl core::ops::Div<Watts> for Joules {
    type Output = Seconds;

    /// Energy ÷ power = time.
    #[inline]
    fn div(self, rhs: Watts) -> Seconds {
        Seconds::new(self.0 / rhs.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kwh_round_trip() {
        let e = Joules::from_kwh(2.0);
        assert_eq!(e.value(), 7.2e6);
        assert_eq!(e.as_kwh(), 2.0);
        assert_eq!(Joules::from_wh(1000.0), Joules::from_kwh(1.0));
        assert_eq!(Joules::from_kwh(1500.0).as_mwh(), 1.5);
    }

    #[test]
    fn average_power() {
        let e = Joules::from_kwh(1.0);
        let p = e.average_power(Seconds::from_hours(1.0));
        assert!(p.approx_eq(Watts::from_kw(1.0), 1e-9));
    }
}
