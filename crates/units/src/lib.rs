//! # npp-units
//!
//! Strongly-typed physical quantities used throughout the `netpp` workspace.
//!
//! All quantities wrap an `f64` in a newtype so that the compiler rejects
//! dimensionally nonsensical expressions (adding watts to joules, say) while
//! the natural ones are expressed through operator overloads:
//!
//! ```
//! use npp_units::{Watts, Seconds, Joules, Gbps};
//!
//! let p = Watts::new(750.0);
//! let t = Seconds::new(3600.0);
//! let e: Joules = p * t;                  // power × time = energy
//! assert_eq!(e.as_kwh(), 0.75);           // 750 W for an hour = 0.75 kWh
//!
//! let link = Gbps::new(400.0);
//! assert_eq!(link.as_bits_per_sec(), 400e9);
//! ```
//!
//! The crate deliberately avoids generic dimensional-analysis machinery
//! (type-level integers etc.); each unit is a plain, documented newtype with
//! exactly the conversions the rest of the workspace needs. This follows the
//! "simplicity and robustness over type tricks" philosophy of the networking
//! guides this project adheres to.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bandwidth;
mod data;
mod energy;
mod error;
mod money;
mod power;
mod ratio;
mod time;

pub use bandwidth::Gbps;
pub use data::{Bits, Bytes};
pub use energy::Joules;
pub use error::UnitError;
pub use money::Usd;
pub use power::Watts;
pub use ratio::Ratio;
pub use time::Seconds;

/// Convenience result alias for fallible unit construction/parsing.
pub type Result<T> = std::result::Result<T, UnitError>;

/// Implements the standard scalar-quantity boilerplate for an `f64` newtype:
/// constructors, accessors, arithmetic with itself and with `f64`, ordering
/// helpers, iterator sums, and `Display` via the given unit suffix.
macro_rules! scalar_quantity {
    ($ty:ident, $suffix:expr) => {
        impl $ty {
            /// Creates a new quantity from a raw value in base units.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Returns the raw value in base units.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns `true` if the value is finite (not NaN or infinite).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns the maximum of `self` and `other`.
            ///
            /// NaN values are propagated per `f64::max` semantics.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the minimum of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Clamps the value into `[lo, hi]`.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Dimensionless ratio of two quantities of the same unit.
            #[inline]
            pub fn ratio_to(self, other: Self) -> f64 {
                self.0 / other.0
            }

            /// Returns `true` if the two values differ by at most `tol`
            /// (absolute, in base units). Used pervasively in tests.
            #[inline]
            pub fn approx_eq(self, other: Self, tol: f64) -> bool {
                (self.0 - other.0).abs() <= tol
            }
        }

        impl core::ops::Add for $ty {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl core::ops::AddAssign for $ty {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl core::ops::Sub for $ty {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl core::ops::SubAssign for $ty {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl core::ops::Mul<f64> for $ty {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl core::ops::Mul<$ty> for f64 {
            type Output = $ty;
            #[inline]
            fn mul(self, rhs: $ty) -> $ty {
                $ty(self * rhs.0)
            }
        }

        impl core::ops::Div<f64> for $ty {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl core::ops::Div for $ty {
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl core::ops::Neg for $ty {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl core::iter::Sum for $ty {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl<'a> core::iter::Sum<&'a $ty> for $ty {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl core::fmt::Display for $ty {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $suffix)
                } else {
                    write!(f, "{} {}", self.0, $suffix)
                }
            }
        }

        impl core::str::FromStr for $ty {
            type Err = $crate::UnitError;

            /// Parses either a bare number ("750") or a number followed by
            /// the unit suffix ("750 W"), in base units.
            fn from_str(s: &str) -> core::result::Result<Self, Self::Err> {
                let trimmed = s.trim();
                let body = trimmed
                    .strip_suffix($suffix)
                    .map(str::trim)
                    .unwrap_or(trimmed);
                body.parse::<f64>()
                    .map(Self)
                    .map_err(|_| $crate::UnitError::Parse {
                        input: s.to_string(),
                        unit: $suffix,
                    })
            }
        }
    };
}

pub(crate) use scalar_quantity;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_unit_power_time_energy() {
        let e = Watts::new(100.0) * Seconds::new(10.0);
        assert_eq!(e, Joules::new(1000.0));
        let p = Joules::new(1000.0) / Seconds::new(10.0);
        assert_eq!(p, Watts::new(100.0));
        let t = Joules::new(1000.0) / Watts::new(100.0);
        assert_eq!(t, Seconds::new(10.0));
    }

    #[test]
    fn bandwidth_times_time_is_data() {
        let d: Bits = Gbps::new(400.0) * Seconds::new(2.0);
        assert_eq!(d.value(), 800e9);
        let t: Seconds = Bits::new(800e9) / Gbps::new(400.0);
        assert_eq!(t, Seconds::new(2.0));
    }

    #[test]
    fn display_with_precision() {
        assert_eq!(format!("{:.2}", Watts::new(1.23456)), "1.23 W");
        assert_eq!(format!("{}", Seconds::new(2.0)), "2 s");
    }

    #[test]
    fn parse_with_and_without_suffix() {
        assert_eq!("750 W".parse::<Watts>().unwrap(), Watts::new(750.0));
        assert_eq!("750".parse::<Watts>().unwrap(), Watts::new(750.0));
        assert!("abc W".parse::<Watts>().is_err());
    }

    #[test]
    fn sum_iterators() {
        let total: Watts = [Watts::new(1.0), Watts::new(2.0), Watts::new(3.0)]
            .iter()
            .sum();
        assert_eq!(total, Watts::new(6.0));
    }
}
