//! Wall-clock durations, in seconds.

use serde::{Deserialize, Serialize};

/// A duration in seconds (s).
///
/// Analytic models use `Seconds` directly; the discrete-event simulator
/// (`npp-simnet`) uses integer nanoseconds internally and converts at the
/// boundary via [`Seconds::from_nanos`] / [`Seconds::as_nanos`].
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Seconds(pub(crate) f64);

crate::scalar_quantity!(Seconds, "s");

impl Seconds {
    /// Number of seconds in a (non-leap) year; used by annualized cost math.
    pub const PER_YEAR: f64 = 365.0 * 24.0 * 3600.0;

    /// Creates a duration from milliseconds.
    #[inline]
    pub const fn from_millis(ms: f64) -> Self {
        Self(ms * 1e-3)
    }

    /// Creates a duration from microseconds.
    #[inline]
    pub const fn from_micros(us: f64) -> Self {
        Self(us * 1e-6)
    }

    /// Creates a duration from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: f64) -> Self {
        Self(ns * 1e-9)
    }

    /// Creates a duration from hours.
    #[inline]
    pub const fn from_hours(h: f64) -> Self {
        Self(h * 3600.0)
    }

    /// Creates a duration from (24-hour) days.
    #[inline]
    pub const fn from_days(d: f64) -> Self {
        Self(d * 86_400.0)
    }

    /// One non-leap year.
    #[inline]
    pub const fn one_year() -> Self {
        Self(Self::PER_YEAR)
    }

    /// Returns the value in milliseconds.
    #[inline]
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the value in microseconds.
    #[inline]
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    /// Returns the value in nanoseconds.
    #[inline]
    pub fn as_nanos(self) -> f64 {
        self.0 * 1e9
    }

    /// Returns the value in hours.
    #[inline]
    pub fn as_hours(self) -> f64 {
        self.0 / 3600.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(Seconds::from_millis(1500.0).value(), 1.5);
        assert_eq!(Seconds::from_micros(2e6).value(), 2.0);
        assert_eq!(Seconds::from_nanos(1e9).value(), 1.0);
        assert_eq!(Seconds::from_hours(2.0).value(), 7200.0);
        assert_eq!(Seconds::from_days(1.0).as_hours(), 24.0);
        assert_eq!(Seconds::new(1.0).as_millis(), 1000.0);
        assert_eq!(Seconds::new(1.0).as_micros(), 1e6);
        assert_eq!(Seconds::new(1.0).as_nanos(), 1e9);
    }

    #[test]
    fn one_year_hours() {
        assert_eq!(Seconds::one_year().as_hours(), 8760.0);
    }
}
