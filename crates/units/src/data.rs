//! Data volumes, in bits and bytes.

use serde::{Deserialize, Serialize};

/// A data volume in bits.
///
/// Stored as `f64` because analytic models routinely produce fractional
/// expected volumes; the simulator rounds at the packet boundary.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Bits(pub(crate) f64);

crate::scalar_quantity!(Bits, "b");

/// A data volume in bytes.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Bytes(pub(crate) f64);

crate::scalar_quantity!(Bytes, "B");

impl Bits {
    /// Creates a volume from gigabits.
    #[inline]
    pub const fn from_gbits(gb: f64) -> Self {
        Self(gb * 1e9)
    }

    /// Returns the value in gigabits.
    #[inline]
    pub fn as_gbits(self) -> f64 {
        self.0 / 1e9
    }

    /// Converts to bytes (8 bits per byte).
    #[inline]
    pub fn to_bytes(self) -> Bytes {
        Bytes(self.0 / 8.0)
    }
}

impl Bytes {
    /// Creates a volume from kibibytes (1024 B).
    #[inline]
    pub const fn from_kib(kib: f64) -> Self {
        Self(kib * 1024.0)
    }

    /// Creates a volume from mebibytes (1024² B).
    #[inline]
    pub const fn from_mib(mib: f64) -> Self {
        Self(mib * 1_048_576.0)
    }

    /// Creates a volume from gibibytes (1024³ B).
    #[inline]
    pub const fn from_gib(gib: f64) -> Self {
        Self(gib * 1_073_741_824.0)
    }

    /// Returns the value in mebibytes.
    #[inline]
    pub fn as_mib(self) -> f64 {
        self.0 / 1_048_576.0
    }

    /// Returns the value in gibibytes.
    #[inline]
    pub fn as_gib(self) -> f64 {
        self.0 / 1_073_741_824.0
    }

    /// Converts to bits (8 bits per byte).
    #[inline]
    pub fn to_bits(self) -> Bits {
        Bits(self.0 * 8.0)
    }
}

impl From<Bytes> for Bits {
    #[inline]
    fn from(b: Bytes) -> Bits {
        b.to_bits()
    }
}

impl From<Bits> for Bytes {
    #[inline]
    fn from(b: Bits) -> Bytes {
        b.to_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_byte_round_trip() {
        let b = Bytes::new(1500.0);
        assert_eq!(b.to_bits(), Bits::new(12_000.0));
        assert_eq!(b.to_bits().to_bytes(), b);
        assert_eq!(Bits::from(Bytes::new(1.0)), Bits::new(8.0));
    }

    #[test]
    fn binary_prefixes() {
        assert_eq!(Bytes::from_kib(1.0).value(), 1024.0);
        assert_eq!(Bytes::from_mib(1.0).value(), 1_048_576.0);
        assert_eq!(Bytes::from_gib(1.0).as_mib(), 1024.0);
        assert_eq!(Bytes::from_gib(2.0).as_gib(), 2.0);
    }

    #[test]
    fn gigabits() {
        assert_eq!(Bits::from_gbits(400.0).value(), 400e9);
        assert_eq!(Bits::new(1e9).as_gbits(), 1.0);
    }
}
