//! Link and interface bandwidth, in gigabits per second.

use serde::{Deserialize, Serialize};

use crate::{Bits, Seconds};

/// Bandwidth in gigabits per second (Gbps).
///
/// The paper sweeps per-GPU interface speeds of 100–1600 Gbps and sizes
/// switch radixes by dividing the ASIC capacity (51.2 Tbps) by the port
/// speed; both operations live here.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Gbps(pub(crate) f64);

crate::scalar_quantity!(Gbps, "Gbps");

impl Gbps {
    /// Creates a bandwidth from terabits per second.
    #[inline]
    pub const fn from_tbps(tbps: f64) -> Self {
        Self(tbps * 1e3)
    }

    /// Creates a bandwidth from bits per second.
    #[inline]
    pub const fn from_bits_per_sec(bps: f64) -> Self {
        Self(bps / 1e9)
    }

    /// Returns the value in bits per second.
    #[inline]
    pub fn as_bits_per_sec(self) -> f64 {
        self.0 * 1e9
    }

    /// Returns the value in terabits per second.
    #[inline]
    pub fn as_tbps(self) -> f64 {
        self.0 / 1e3
    }

    /// How many ports of `port_speed` an ASIC of this aggregate capacity
    /// can drive, truncated to an integer (e.g. 51.2 Tbps / 400 G = 128).
    #[inline]
    pub fn ports_at(self, port_speed: Gbps) -> usize {
        (self.0 / port_speed.0).floor() as usize
    }

    /// Time to transfer `data` at this rate.
    #[inline]
    pub fn transfer_time(self, data: Bits) -> Seconds {
        data / self
    }
}

impl core::ops::Mul<Seconds> for Gbps {
    type Output = Bits;

    /// Rate × time = data volume.
    #[inline]
    fn mul(self, rhs: Seconds) -> Bits {
        Bits::new(self.as_bits_per_sec() * rhs.value())
    }
}

impl core::ops::Div<Gbps> for Bits {
    type Output = Seconds;

    /// Data ÷ rate = transfer time.
    #[inline]
    fn div(self, rhs: Gbps) -> Seconds {
        Seconds::new(self.value() / rhs.as_bits_per_sec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tbps_round_trip() {
        let asic = Gbps::from_tbps(51.2);
        assert_eq!(asic.value(), 51_200.0);
        assert_eq!(asic.as_tbps(), 51.2);
    }

    #[test]
    fn radix_at_paper_port_speeds() {
        let asic = Gbps::from_tbps(51.2);
        assert_eq!(asic.ports_at(Gbps::new(100.0)), 512);
        assert_eq!(asic.ports_at(Gbps::new(200.0)), 256);
        assert_eq!(asic.ports_at(Gbps::new(400.0)), 128);
        assert_eq!(asic.ports_at(Gbps::new(800.0)), 64);
        assert_eq!(asic.ports_at(Gbps::new(1600.0)), 32);
    }

    #[test]
    fn transfer_time() {
        let t = Gbps::new(400.0).transfer_time(Bits::new(400e9));
        assert_eq!(t, Seconds::new(1.0));
    }
}
