//! Dimensionless ratios with percent formatting.

use serde::{Deserialize, Serialize};

use crate::UnitError;

/// A dimensionless ratio, displayed as a percentage.
///
/// Used for power proportionality, communication ratios, savings, speedups,
/// efficiencies and loads. A `Ratio` is *not* restricted to `[0, 1]` —
/// speedups may exceed 1 and may be negative (Fig 3 of the paper has both) —
/// but [`Ratio::new_fraction`] offers a checked constructor for quantities
/// that must be proper fractions.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Ratio(f64);

impl Ratio {
    /// The zero ratio.
    pub const ZERO: Self = Self(0.0);
    /// The unit ratio (100 %).
    pub const ONE: Self = Self(1.0);

    /// Creates a ratio from a raw fraction (`0.1` = 10 %). Unchecked.
    #[inline]
    pub const fn new(fraction: f64) -> Self {
        Self(fraction)
    }

    /// Creates a ratio from a percentage (`10.0` = 10 %).
    #[inline]
    pub const fn from_percent(pct: f64) -> Self {
        Self(pct / 100.0)
    }

    /// Checked constructor for proper fractions in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError::OutOfRange`] if `fraction` is NaN or outside
    /// `[0, 1]`.
    pub fn new_fraction(fraction: f64) -> crate::Result<Self> {
        if fraction.is_nan() || !(0.0..=1.0).contains(&fraction) {
            return Err(UnitError::OutOfRange {
                what: "fraction",
                value: fraction,
                lo: 0.0,
                hi: 1.0,
            });
        }
        Ok(Self(fraction))
    }

    /// Returns the raw fraction.
    #[inline]
    pub const fn fraction(self) -> f64 {
        self.0
    }

    /// Returns the value as a percentage.
    #[inline]
    pub fn percent(self) -> f64 {
        self.0 * 100.0
    }

    /// The complement `1 − self`; e.g. idle fraction from a load.
    #[inline]
    pub fn complement(self) -> Self {
        Self(1.0 - self.0)
    }

    /// Clamps into `[0, 1]`.
    #[inline]
    pub fn clamp_unit(self) -> Self {
        Self(self.0.clamp(0.0, 1.0))
    }

    /// Absolute-tolerance comparison on the fraction.
    #[inline]
    pub fn approx_eq(self, other: Self, tol: f64) -> bool {
        (self.0 - other.0).abs() <= tol
    }
}

impl core::ops::Add for Ratio {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl core::ops::Sub for Ratio {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl core::ops::Mul for Ratio {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self(self.0 * rhs.0)
    }
}

impl core::ops::Mul<f64> for Ratio {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        Self(self.0 * rhs)
    }
}

impl core::fmt::Display for Ratio {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let prec = f.precision().unwrap_or(1);
        write!(f, "{:.*}%", prec, self.0 * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_round_trip() {
        let r = Ratio::from_percent(12.5);
        assert_eq!(r.fraction(), 0.125);
        assert_eq!(r.percent(), 12.5);
    }

    #[test]
    fn checked_fraction() {
        assert!(Ratio::new_fraction(0.0).is_ok());
        assert!(Ratio::new_fraction(1.0).is_ok());
        assert!(Ratio::new_fraction(-0.1).is_err());
        assert!(Ratio::new_fraction(1.1).is_err());
        assert!(Ratio::new_fraction(f64::NAN).is_err());
    }

    #[test]
    fn complement() {
        assert_eq!(
            Ratio::from_percent(10.0).complement(),
            Ratio::from_percent(90.0)
        );
    }

    #[test]
    fn display_defaults_to_one_decimal() {
        assert_eq!(format!("{}", Ratio::new(0.0471)), "4.7%");
        assert_eq!(format!("{:.0}", Ratio::new(0.12)), "12%");
    }
}
