//! Traffic sources: deterministic and seeded-random packet generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use npp_units::Gbps;

use crate::{Result, SimError, SimTime};

/// A generated packet arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Arrival time.
    pub at: SimTime,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Ingress port the packet arrives on.
    pub port: usize,
}

/// A packet source: an iterator over arrivals in non-decreasing time
/// order.
pub trait TrafficSource {
    /// The next arrival, or `None` when the source is exhausted.
    fn next_arrival(&mut self) -> Option<Arrival>;
}

/// Constant-bit-rate source: fixed-size packets at a fixed rate on one
/// port, from `start` until `stop`.
#[derive(Debug, Clone)]
pub struct CbrSource {
    gap_ns: f64,
    next_emit: f64,
    stop: SimTime,
    bytes: u64,
    port: usize,
}

impl CbrSource {
    /// Creates a CBR source emitting `packet_bytes`-byte packets at
    /// `rate` from `start` (inclusive) to `stop` (exclusive).
    ///
    /// # Errors
    ///
    /// Rejects non-positive rates and zero-byte packets.
    pub fn new(
        rate: Gbps,
        packet_bytes: u64,
        port: usize,
        start: SimTime,
        stop: SimTime,
    ) -> Result<Self> {
        if rate.value() <= 0.0 {
            return Err(SimError::Config(format!(
                "CBR rate must be positive, got {rate}"
            )));
        }
        if packet_bytes == 0 {
            return Err(SimError::Config("CBR packet size must be nonzero".into()));
        }
        let gap_ns = packet_bytes as f64 * 8.0 / rate.value();
        Ok(Self {
            gap_ns,
            next_emit: start.as_nanos() as f64,
            stop,
            bytes: packet_bytes,
            port,
        })
    }
}

impl TrafficSource for CbrSource {
    fn next_arrival(&mut self) -> Option<Arrival> {
        let at = SimTime::from_nanos(self.next_emit.round() as u64);
        if at >= self.stop {
            return None;
        }
        self.next_emit += self.gap_ns;
        Some(Arrival {
            at,
            bytes: self.bytes,
            port: self.port,
        })
    }
}

/// Poisson source: exponential inter-arrival gaps with the given mean
/// load, seeded for reproducibility.
#[derive(Debug, Clone)]
pub struct PoissonSource {
    mean_gap_ns: f64,
    next_emit: f64,
    stop: SimTime,
    bytes: u64,
    port: usize,
    rng: StdRng,
}

impl PoissonSource {
    /// Creates a Poisson source whose *average* rate is `rate`.
    ///
    /// # Errors
    ///
    /// Rejects non-positive rates and zero-byte packets.
    pub fn new(
        rate: Gbps,
        packet_bytes: u64,
        port: usize,
        start: SimTime,
        stop: SimTime,
        seed: u64,
    ) -> Result<Self> {
        if rate.value() <= 0.0 {
            return Err(SimError::Config(format!(
                "Poisson rate must be positive, got {rate}"
            )));
        }
        if packet_bytes == 0 {
            return Err(SimError::Config(
                "Poisson packet size must be nonzero".into(),
            ));
        }
        Ok(Self {
            mean_gap_ns: packet_bytes as f64 * 8.0 / rate.value(),
            next_emit: start.as_nanos() as f64,
            stop,
            bytes: packet_bytes,
            port,
            rng: StdRng::seed_from_u64(seed),
        })
    }
}

impl TrafficSource for PoissonSource {
    fn next_arrival(&mut self) -> Option<Arrival> {
        let at = SimTime::from_nanos(self.next_emit.round() as u64);
        if at >= self.stop {
            return None;
        }
        // Exponential gap via inverse transform.
        let u: f64 = self.rng.random_range(f64::MIN_POSITIVE..1.0);
        self.next_emit += -u.ln() * self.mean_gap_ns;
        Some(Arrival {
            at,
            bytes: self.bytes,
            port: self.port,
        })
    }
}

/// On/off source modeling the ML iteration pattern: silent during the
/// computation phase, CBR bursts during the communication phase.
#[derive(Debug, Clone)]
pub struct OnOffSource {
    period_ns: u64,
    on_start_ns: u64, // offset within the period where the burst begins
    gap_ns: f64,
    cursor_ns: f64,
    stop: SimTime,
    bytes: u64,
    port: usize,
}

impl OnOffSource {
    /// Creates an on/off source: each period of `period_ns` starts with
    /// `off_ns` of silence (computation) followed by a burst at
    /// `burst_rate` for the rest of the period (communication).
    ///
    /// # Errors
    ///
    /// Rejects degenerate periods and rates.
    pub fn new(
        period_ns: u64,
        off_ns: u64,
        burst_rate: Gbps,
        packet_bytes: u64,
        port: usize,
        stop: SimTime,
    ) -> Result<Self> {
        if period_ns == 0 || off_ns >= period_ns {
            return Err(SimError::Config(format!(
                "on/off period {period_ns} ns must exceed off time {off_ns} ns"
            )));
        }
        if burst_rate.value() <= 0.0 || packet_bytes == 0 {
            return Err(SimError::Config(
                "on/off burst rate and packet size must be positive".into(),
            ));
        }
        Ok(Self {
            period_ns,
            on_start_ns: off_ns,
            gap_ns: packet_bytes as f64 * 8.0 / burst_rate.value(),
            cursor_ns: off_ns as f64,
            stop,
            bytes: packet_bytes,
            port,
        })
    }
}

impl TrafficSource for OnOffSource {
    fn next_arrival(&mut self) -> Option<Arrival> {
        loop {
            let at_ns = self.cursor_ns.round() as u64;
            let at = SimTime::from_nanos(at_ns);
            if at >= self.stop {
                return None;
            }
            let phase = at_ns % self.period_ns;
            if phase >= self.on_start_ns {
                self.cursor_ns += self.gap_ns;
                return Some(Arrival {
                    at,
                    bytes: self.bytes,
                    port: self.port,
                });
            }
            // We rolled into a period's off phase: skip ahead to that
            // period's on-start.
            let period_start = at_ns - phase;
            self.cursor_ns = (period_start + self.on_start_ns) as f64;
        }
    }
}

/// Merges multiple sources into one globally time-ordered arrival stream.
///
/// A binary heap over `(head time, source index)` makes each merged
/// arrival `O(log sources)` instead of a linear scan over every head.
/// Ties pop in ascending source index — the same order the scan-based
/// merge produced — so switching the data structure changes no stream.
pub struct MergedSource {
    sources: Vec<Box<dyn TrafficSource>>,
    heads: Vec<Option<Arrival>>,
    order: std::collections::BinaryHeap<std::cmp::Reverse<(SimTime, usize)>>,
}

impl MergedSource {
    /// Creates a merged stream over the given sources.
    pub fn new(mut sources: Vec<Box<dyn TrafficSource>>) -> Self {
        let heads: Vec<Option<Arrival>> = sources.iter_mut().map(|s| s.next_arrival()).collect();
        let order = heads
            .iter()
            .enumerate()
            .filter_map(|(i, h)| h.map(|a| std::cmp::Reverse((a.at, i))))
            .collect();
        Self {
            sources,
            heads,
            order,
        }
    }
}

impl TrafficSource for MergedSource {
    fn next_arrival(&mut self) -> Option<Arrival> {
        let std::cmp::Reverse((_, idx)) = self.order.pop()?;
        let out = self.heads[idx].take();
        self.heads[idx] = self.sources[idx].next_arrival();
        if let Some(next) = self.heads[idx] {
            self.order.push(std::cmp::Reverse((next.at, idx)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(mut s: impl TrafficSource) -> Vec<Arrival> {
        std::iter::from_fn(move || s.next_arrival()).collect()
    }

    #[test]
    fn cbr_spacing_and_count() {
        // 400 Gbps, 1500 B packets → 30 ns gap; 10 packets in 300 ns.
        let s = CbrSource::new(
            Gbps::new(400.0),
            1500,
            0,
            SimTime::ZERO,
            SimTime::from_nanos(300),
        )
        .unwrap();
        let arrivals = drain(s);
        assert_eq!(arrivals.len(), 10);
        assert_eq!(arrivals[0].at, SimTime::ZERO);
        assert_eq!(arrivals[1].at, SimTime::from_nanos(30));
        assert_eq!(arrivals[9].at, SimTime::from_nanos(270));
    }

    #[test]
    fn cbr_delivers_configured_rate() {
        let horizon = SimTime::from_micros(100);
        let s = CbrSource::new(Gbps::new(100.0), 1000, 0, SimTime::ZERO, horizon).unwrap();
        let total: u64 = drain(s).iter().map(|a| a.bytes).sum();
        let rate = total as f64 * 8.0 / horizon.as_nanos() as f64; // bits/ns = Gbps
        assert!((rate - 100.0).abs() < 1.0, "rate {rate}");
    }

    #[test]
    fn poisson_mean_rate_and_determinism() {
        let horizon = SimTime::from_millis(1);
        let s = PoissonSource::new(Gbps::new(50.0), 1000, 0, SimTime::ZERO, horizon, 42).unwrap();
        let a1 = drain(s);
        let total: u64 = a1.iter().map(|a| a.bytes).sum();
        let rate = total as f64 * 8.0 / horizon.as_nanos() as f64;
        assert!((rate - 50.0).abs() < 5.0, "rate {rate}");
        // Same seed → identical stream.
        let s2 = PoissonSource::new(Gbps::new(50.0), 1000, 0, SimTime::ZERO, horizon, 42).unwrap();
        assert_eq!(a1, drain(s2));
        // Arrivals are time-ordered.
        for w in a1.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn onoff_respects_phases() {
        // 1 ms period, 0.9 ms off: bursts only in the last 100 µs.
        let s = OnOffSource::new(
            1_000_000,
            900_000,
            Gbps::new(400.0),
            1500,
            0,
            SimTime::from_millis(3),
        )
        .unwrap();
        let arrivals = drain(s);
        assert!(!arrivals.is_empty());
        for a in &arrivals {
            let phase = a.at.as_nanos() % 1_000_000;
            assert!(phase >= 900_000, "arrival at off-phase offset {phase}");
        }
        // Roughly 10% duty cycle at 400G: ~3 bursts of 100 µs → ≈ 1e4
        // packets of 30 ns spacing.
        assert!(
            (arrivals.len() as i64 - 10_000).unsigned_abs() < 300,
            "{}",
            arrivals.len()
        );
    }

    #[test]
    fn merged_source_orders_across_ports() {
        let a = CbrSource::new(
            Gbps::new(8.0),
            100,
            0,
            SimTime::ZERO,
            SimTime::from_nanos(500),
        )
        .unwrap();
        let b = CbrSource::new(
            Gbps::new(8.0),
            100,
            1,
            SimTime::from_nanos(50),
            SimTime::from_nanos(500),
        )
        .unwrap();
        let merged = MergedSource::new(vec![Box::new(a), Box::new(b)]);
        let arrivals = drain(merged);
        for w in arrivals.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        assert!(arrivals.iter().any(|a| a.port == 0));
        assert!(arrivals.iter().any(|a| a.port == 1));
    }

    #[test]
    fn config_validation() {
        assert!(CbrSource::new(Gbps::ZERO, 100, 0, SimTime::ZERO, SimTime::MAX).is_err());
        assert!(CbrSource::new(Gbps::new(1.0), 0, 0, SimTime::ZERO, SimTime::MAX).is_err());
        assert!(PoissonSource::new(Gbps::ZERO, 100, 0, SimTime::ZERO, SimTime::MAX, 1).is_err());
        assert!(OnOffSource::new(0, 0, Gbps::new(1.0), 100, 0, SimTime::MAX).is_err());
        assert!(OnOffSource::new(100, 100, Gbps::new(1.0), 100, 0, SimTime::MAX).is_err());
    }
}
