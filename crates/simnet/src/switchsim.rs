//! A multi-pipeline switch with a port→pipeline indirection layer —
//! the executable version of Figure 5.
//!
//! The switch has `ports` ingress ports and `pipelines` forwarding
//! pipelines. A circuit-switch/indirection layer maps each port to a
//! pipeline; remapping takes a (configurable) reconfiguration delay during
//! which arriving packets are buffered and delayed, modeling the
//! "electrical circuit switches with small buffers" option of §4.4.
//!
//! Pipelines support the two dynamic §4 mechanisms:
//!
//! - **rate adaptation** (§4.3): a pipeline can run at a reduced
//!   frequency; its service rate scales with frequency and its power is
//!   `static + dynamic × freq` (load-independent — the clock burns power
//!   whether or not packets flow, which is exactly the proportionality
//!   problem);
//! - **parking** (§4.4): a pipeline can be powered off entirely (zero
//!   draw) once drained, and woken later with a wake latency.
//!
//! Chassis overhead (fans, CPU, PSU loss) stays on regardless, which is
//! why even aggressive parking cannot reach perfect proportionality.

use serde::{Deserialize, Serialize};

use npp_units::{Gbps, Joules, Watts};

use crate::stats::{LossCounter, Summary};
use crate::{PowerTracker, Result, SimError, SimTime};

/// Per-pipeline power model: `P(freq) = static + dynamic × freq`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelinePowerParams {
    /// Frequency-independent draw while powered (leakage, always-on SRAM).
    pub static_power: Watts,
    /// Draw at full frequency on top of static.
    pub dynamic_power: Watts,
}

impl PipelinePowerParams {
    /// Power at a given frequency (freq in `(0, 1]`).
    pub fn at_freq(&self, freq: f64) -> Watts {
        self.static_power + self.dynamic_power * freq
    }
}

/// Static switch parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwitchParams {
    /// Ingress ports.
    pub ports: usize,
    /// Forwarding pipelines.
    pub pipelines: usize,
    /// Service rate of one pipeline at full frequency.
    pub pipeline_rate: Gbps,
    /// Buffer per pipeline (drop-tail).
    pub buffer_bytes: u64,
    /// Per-pipeline power model.
    pub pipeline_power: PipelinePowerParams,
    /// Always-on chassis draw (fans, control CPU, PSU losses).
    pub overhead_power: Watts,
    /// Pipeline wake latency (power-gate exit).
    pub wake_ns: u64,
    /// Circuit-switch port remap latency.
    pub remap_ns: u64,
    /// What happens when a pipeline buffer fills.
    pub overflow: OverflowPolicy,
}

/// Buffer-overflow behaviour (§4.4 discusses both options).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverflowPolicy {
    /// Drop-tail: the overflowing packet is lost.
    DropTail,
    /// Ethernet pause frames: the sender is paused until the buffer has
    /// room — no loss, but head-of-line latency instead.
    PauseFrames,
}

impl SwitchParams {
    /// A 51.2 Tbps, 750 W switch consistent with the paper's Table 1 and
    /// the component model in `npp_power::gating`: 4 pipelines of
    /// 12.8 Tbps / 138 W (38 W static + 100 W dynamic) plus 198 W of
    /// chassis overhead. 64 ports of 800 G. Wake 100 µs, remap 1 µs.
    pub fn paper_51t2() -> Self {
        Self {
            ports: 64,
            pipelines: 4,
            pipeline_rate: Gbps::from_tbps(12.8),
            buffer_bytes: 16 * 1024 * 1024, // 16 MiB per pipeline
            pipeline_power: PipelinePowerParams {
                static_power: Watts::new(38.0),
                dynamic_power: Watts::new(100.0),
            },
            overhead_power: Watts::new(198.0),
            wake_ns: 100_000,
            remap_ns: 1_000,
            overflow: OverflowPolicy::DropTail,
        }
    }

    /// The same switch with pause-frame backpressure instead of drops.
    pub fn paper_51t2_with_pause() -> Self {
        Self {
            overflow: OverflowPolicy::PauseFrames,
            ..Self::paper_51t2()
        }
    }

    /// Total draw with every pipeline at full frequency.
    pub fn max_power(&self) -> Watts {
        self.overhead_power + self.pipeline_power.at_freq(1.0) * self.pipelines as f64
    }
}

/// The run state of one pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PipelineState {
    /// Running at the given frequency fraction `(0, 1]`.
    On {
        /// Clock frequency as a fraction of nominal.
        freq: f64,
    },
    /// Power-gated (zero draw); arriving packets are dropped.
    Off,
    /// Exiting the power gate; serviceable from `ready_at` at `freq`.
    Waking {
        /// When the pipeline becomes serviceable.
        ready_at: SimTime,
        /// Frequency it will run at once awake.
        freq: f64,
    },
}

/// The fate of an ingress packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Egress {
    /// Forwarded; the packet leaves the switch at `departure`.
    Forwarded {
        /// Time the last bit leaves the pipeline.
        departure: SimTime,
        /// End-to-end switch latency in ns (departure − arrival).
        latency_ns: u64,
    },
    /// Dropped (pipeline off, or buffer full).
    Dropped {
        /// Why the packet was lost.
        reason: DropReason,
    },
}

/// Why a packet was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The mapped pipeline was powered off.
    PipelineOff,
    /// The pipeline buffer was full.
    BufferFull,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Pipe {
    state: PipelineState,
    busy_until: SimTime,
    tracker: PowerTracker,
    forwarded: u64,
    bytes: u64,
}

/// The simulated switch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineSwitch {
    params: SwitchParams,
    port_map: Vec<usize>,
    port_ready_at: Vec<SimTime>,
    pipes: Vec<Pipe>,
    overhead: PowerTracker,
    #[serde(skip)]
    latency: Summary,
    loss: LossCounter,
    paused_ns: u64,
    pauses: u64,
}

impl PipelineSwitch {
    /// Creates a switch at time `start` with all pipelines on at full
    /// frequency and ports spread round-robin across pipelines (the fixed
    /// mapping §4.4 says conventional ASICs are stuck with).
    ///
    /// # Errors
    ///
    /// Rejects zero ports/pipelines.
    pub fn new(params: SwitchParams, start: SimTime) -> Result<Self> {
        if params.ports == 0 || params.pipelines == 0 {
            return Err(SimError::Config("switch needs ports and pipelines".into()));
        }
        if params.pipeline_rate.value() <= 0.0 {
            return Err(SimError::Config("pipeline rate must be positive".into()));
        }
        let full = params.pipeline_power.at_freq(1.0);
        let pipes = (0..params.pipelines)
            .map(|_| Pipe {
                state: PipelineState::On { freq: 1.0 },
                busy_until: start,
                tracker: PowerTracker::new(start, full),
                forwarded: 0,
                bytes: 0,
            })
            .collect();
        Ok(Self {
            port_map: (0..params.ports).map(|p| p % params.pipelines).collect(),
            port_ready_at: vec![start; params.ports],
            pipes,
            overhead: PowerTracker::new(start, params.overhead_power),
            latency: Summary::new(),
            loss: LossCounter::default(),
            paused_ns: 0,
            pauses: 0,
            params,
        })
    }

    /// The switch parameters.
    pub fn params(&self) -> &SwitchParams {
        &self.params
    }

    /// Current pipeline state.
    ///
    /// # Errors
    ///
    /// [`SimError::BadIndex`] for an unknown pipeline.
    pub fn pipeline_state(&self, idx: usize) -> Result<PipelineState> {
        Ok(self.pipe(idx)?.state)
    }

    /// The pipeline currently mapped to a port.
    ///
    /// # Errors
    ///
    /// [`SimError::BadIndex`] for an unknown port.
    pub fn port_pipeline(&self, port: usize) -> Result<usize> {
        self.port_map.get(port).copied().ok_or(SimError::BadIndex {
            what: "port",
            index: port,
            bound: self.params.ports,
        })
    }

    fn pipe(&self, idx: usize) -> Result<&Pipe> {
        self.pipes.get(idx).ok_or(SimError::BadIndex {
            what: "pipeline",
            index: idx,
            bound: self.params.pipelines,
        })
    }

    fn pipe_mut(&mut self, idx: usize) -> Result<&mut Pipe> {
        let bound = self.params.pipelines;
        self.pipes.get_mut(idx).ok_or(SimError::BadIndex {
            what: "pipeline",
            index: idx,
            bound,
        })
    }

    /// Remaps `port` to `pipeline` through the indirection layer; the
    /// port is unusable for `remap_ns` (packets arriving meanwhile are
    /// held in the circuit switch's small buffer and delayed).
    ///
    /// # Errors
    ///
    /// [`SimError::BadIndex`] for unknown ports/pipelines.
    pub fn remap_port(&mut self, now: SimTime, port: usize, pipeline: usize) -> Result<()> {
        if pipeline >= self.params.pipelines {
            return Err(SimError::BadIndex {
                what: "pipeline",
                index: pipeline,
                bound: self.params.pipelines,
            });
        }
        if port >= self.params.ports {
            return Err(SimError::BadIndex {
                what: "port",
                index: port,
                bound: self.params.ports,
            });
        }
        self.port_map[port] = pipeline;
        self.port_ready_at[port] = now.plus_nanos(self.params.remap_ns);
        npp_telemetry::trace_counter!("switch.remap", now.as_nanos(), port, pipeline as f64);
        npp_telemetry::metrics::counter_add("switch.remaps", 1);
        Ok(())
    }

    /// Sets a running pipeline's frequency (rate adaptation, §4.3).
    ///
    /// # Errors
    ///
    /// Rejects frequencies outside `(0, 1]`, pipelines that are off (wake
    /// them instead), and unknown indexes.
    pub fn set_frequency(&mut self, now: SimTime, idx: usize, freq: f64) -> Result<()> {
        if !(freq > 0.0 && freq <= 1.0) {
            return Err(SimError::Config(format!("frequency {freq} outside (0, 1]")));
        }
        let power = self.params.pipeline_power.at_freq(freq);
        let pipe = self.pipe_mut(idx)?;
        match pipe.state {
            PipelineState::Off => {
                return Err(SimError::Config(format!(
                    "pipeline {idx} is off; wake it before setting frequency"
                )))
            }
            PipelineState::Waking { ready_at, .. } => {
                pipe.state = PipelineState::Waking { ready_at, freq };
            }
            PipelineState::On { .. } => {
                pipe.state = PipelineState::On { freq };
            }
        }
        pipe.tracker.set_power(now, power)?;
        npp_telemetry::trace_counter!("switch.pipeline_w", now.as_nanos(), idx, power.value());
        npp_telemetry::metrics::counter_add("switch.rate_adapt_decisions", 1);
        Ok(())
    }

    /// Parks (power-gates) a pipeline. The pipeline must be drained
    /// (no in-flight packet) — turn traffic away via
    /// [`PipelineSwitch::remap_port`] first.
    ///
    /// # Errors
    ///
    /// Rejects parking a busy pipeline and unknown indexes.
    pub fn park_pipeline(&mut self, now: SimTime, idx: usize) -> Result<()> {
        let pipe = self.pipe_mut(idx)?;
        if pipe.busy_until > now {
            return Err(SimError::Config(format!(
                "pipeline {idx} still draining until {}",
                pipe.busy_until
            )));
        }
        pipe.state = PipelineState::Off;
        pipe.tracker.set_power(now, Watts::ZERO)?;
        npp_telemetry::trace_counter!("switch.pipeline_w", now.as_nanos(), idx, 0.0);
        npp_telemetry::metrics::counter_add("switch.gate_close", 1);
        Ok(())
    }

    /// Starts waking a parked pipeline; it becomes serviceable after the
    /// configured wake latency, at frequency `freq`. Draws full power for
    /// that frequency from the start of the wake (power-gate exit is not
    /// free).
    ///
    /// # Errors
    ///
    /// Rejects waking a pipeline that is not off, bad frequencies, and
    /// unknown indexes.
    pub fn wake_pipeline(&mut self, now: SimTime, idx: usize, freq: f64) -> Result<()> {
        if !(freq > 0.0 && freq <= 1.0) {
            return Err(SimError::Config(format!("frequency {freq} outside (0, 1]")));
        }
        let wake_ns = self.params.wake_ns;
        let power = self.params.pipeline_power.at_freq(freq);
        let pipe = self.pipe_mut(idx)?;
        if !matches!(pipe.state, PipelineState::Off) {
            return Err(SimError::Config(format!("pipeline {idx} is not off")));
        }
        pipe.state = PipelineState::Waking {
            ready_at: now.plus_nanos(wake_ns),
            freq,
        };
        pipe.tracker.set_power(now, power)?;
        npp_telemetry::trace_counter!("switch.pipeline_w", now.as_nanos(), idx, power.value());
        npp_telemetry::metrics::counter_add("switch.gate_open", 1);
        Ok(())
    }

    /// Offers a packet of `bytes` on `port` at time `now` and returns its
    /// fate. This is the switch's single data-path entry point.
    ///
    /// # Errors
    ///
    /// [`SimError::BadIndex`] for unknown ports; time reversals propagate
    /// from the power trackers.
    pub fn ingress(&mut self, now: SimTime, port: usize, bytes: u64) -> Result<Egress> {
        let idx = self.port_pipeline(port)?;
        // Circuit-switch reconfiguration holds the packet back.
        let t = if self.port_ready_at[port] > now {
            self.port_ready_at[port]
        } else {
            now
        };
        let rate_nominal = self.params.pipeline_rate;
        let buffer = self.params.buffer_bytes;
        let overflow_policy = self.params.overflow;
        let pipe = self.pipe_mut(idx)?;

        // Resolve wake completion lazily.
        if let PipelineState::Waking { ready_at, freq } = pipe.state {
            if t >= ready_at {
                pipe.state = PipelineState::On { freq };
            }
        }

        let (service_from, freq) = match pipe.state {
            PipelineState::Off => {
                self.loss.dropped += 1;
                return Ok(Egress::Dropped {
                    reason: DropReason::PipelineOff,
                });
            }
            PipelineState::Waking { ready_at, freq } => (ready_at, freq),
            PipelineState::On { freq } => (t, freq),
        };

        let rate = rate_nominal * freq; // Gbps = bits/ns
        let start = [t, service_from, pipe.busy_until]
            .into_iter()
            .max()
            .expect("non-empty");
        // Buffered-but-unserved work the packet queues behind, in bytes:
        // outstanding serialization time × rate. Measured from when the
        // pipeline can actually serve (`service_from`), so time spent
        // waiting for a wake does not count as buffer occupancy.
        let ref_point = if service_from > t { service_from } else { t };
        let backlog = pipe.busy_until.since(ref_point) as f64 * rate.value() / 8.0;
        let mut start = start;
        let mut pause_inc: u64 = 0;
        if backlog + bytes as f64 > buffer as f64 {
            match overflow_policy {
                OverflowPolicy::DropTail => {
                    self.loss.dropped += 1;
                    return Ok(Egress::Dropped {
                        reason: DropReason::BufferFull,
                    });
                }
                OverflowPolicy::PauseFrames => {
                    // The sender holds the frame until the buffer drains
                    // enough to admit it; it still queues FIFO behind
                    // everything already accepted, so the service start
                    // is unchanged — only the wire-side admission (and
                    // the pause bookkeeping) move.
                    let overshoot_bytes = backlog + bytes as f64 - buffer as f64;
                    pause_inc = (overshoot_bytes * 8.0 / rate.value()).ceil() as u64;
                    start = if pipe.busy_until > start {
                        pipe.busy_until
                    } else {
                        start
                    };
                }
            }
        }
        let serialization = (bytes as f64 * 8.0 / rate.value()).ceil() as u64;
        let departure = start.plus_nanos(serialization);
        pipe.busy_until = departure;
        pipe.forwarded += 1;
        pipe.bytes += bytes;
        if pause_inc > 0 {
            self.paused_ns += pause_inc;
            self.pauses += 1;
        }
        self.loss.delivered += 1;
        let latency_ns = departure.since(now);
        self.latency.record(latency_ns as f64);
        Ok(Egress::Forwarded {
            departure,
            latency_ns,
        })
    }

    /// Whether pipeline `idx` has finished serving everything offered so
    /// far, as of `now`.
    ///
    /// # Errors
    ///
    /// [`SimError::BadIndex`] for unknown indexes.
    pub fn is_drained(&self, idx: usize, now: SimTime) -> Result<bool> {
        Ok(self.pipe(idx)?.busy_until <= now)
    }

    /// Total energy consumed through `now` (pipelines + chassis).
    ///
    /// # Errors
    ///
    /// Time reversals propagate from the trackers.
    pub fn energy(&self, now: SimTime) -> Result<Joules> {
        let mut total = self.overhead.energy_until(now)?;
        for p in &self.pipes {
            total += p.tracker.energy_until(now)?;
        }
        Ok(total)
    }

    /// Loss statistics.
    pub fn loss(&self) -> LossCounter {
        self.loss
    }

    /// Total sender-side pause time imposed (pause-frame mode), ns.
    pub fn paused_ns(&self) -> u64 {
        self.paused_ns
    }

    /// Number of pause events.
    pub fn pauses(&self) -> u64 {
        self.pauses
    }

    /// Switch-latency summary (ns).
    pub fn latency(&self) -> &Summary {
        &self.latency
    }

    /// Packets forwarded by one pipeline.
    ///
    /// # Errors
    ///
    /// [`SimError::BadIndex`] for unknown indexes.
    pub fn forwarded_by(&self, idx: usize) -> Result<u64> {
        Ok(self.pipe(idx)?.forwarded)
    }

    /// Closes the books at `end`: total energy, average power, loss, and
    /// latency statistics.
    ///
    /// # Errors
    ///
    /// Time reversals propagate from the trackers.
    pub fn finish(&self, end: SimTime) -> Result<SwitchReport> {
        let energy = self.energy(end)?;
        if npp_telemetry::enabled() {
            self.publish_energy_attribution(end)?;
        }
        let duration = end.as_seconds();
        let avg = if duration.value() > 0.0 {
            energy / duration
        } else {
            Watts::ZERO
        };
        Ok(SwitchReport {
            energy,
            average_power: avg,
            max_power: self.params.max_power(),
            loss: self.loss,
            mean_latency_ns: self.latency.mean(),
            p99_latency_ns: self.latency.percentile(99.0),
            forwarded: self.pipes.iter().map(|p| p.forwarded).sum(),
        })
    }

    /// Per-device energy attribution and dwell-time accounting, emitted
    /// into the active telemetry recording when the books close.
    /// Pipelines are devices `0..pipelines`; the chassis overhead is
    /// device `pipelines` (one past the last pipeline).
    fn publish_energy_attribution(&self, end: SimTime) -> Result<()> {
        use npp_telemetry::metrics as m;
        let end_ns = end.as_nanos();
        for (idx, pipe) in self.pipes.iter().enumerate() {
            let e = pipe.tracker.energy_until(end)?;
            npp_telemetry::trace_counter!("switch.energy_j", end_ns, idx, e.value());
            for seg in pipe.tracker.dwell_segments(end)? {
                m::observe("switch.dwell_ns", seg.duration_ns());
            }
            m::counter_add(
                "switch.power_transitions",
                pipe.tracker.changes().len() as u64,
            );
        }
        let overhead = self.overhead.energy_until(end)?;
        npp_telemetry::trace_counter!(
            "switch.energy_j",
            end_ns,
            self.pipes.len(),
            overhead.value()
        );
        Ok(())
    }

    /// Replays every power tracker of this switch into a PowerScope
    /// [`Recorder`](crate::powerscope::Recorder): one device per
    /// pipeline (`{prefix}/pipe{i}`) plus the chassis overhead
    /// (`{prefix}/chassis`), all on `tier`. Power levels classify
    /// against the pipeline's full-frequency draw, so parked pipelines
    /// show as `off`, rate-adapted ones as `on_low`.
    ///
    /// Returns the registered device keys in that order. The recorder's
    /// per-device window sums reproduce each tracker's `energy_until`
    /// bit-exactly (see the powerscope module docs).
    ///
    /// # Errors
    ///
    /// Propagates recorder registration/replay errors.
    pub fn record_powerscope(
        &self,
        rec: &mut crate::powerscope::Recorder,
        tier: npp_power::Tier,
        prefix: &str,
    ) -> Result<Vec<crate::powerscope::DeviceKey>> {
        use crate::powerscope::{DeviceMeta, PowerState};
        let mut keys = Vec::with_capacity(self.pipes.len() + 1);
        let pipe_peak = self.params.pipeline_power.at_freq(1.0);
        for (idx, pipe) in self.pipes.iter().enumerate() {
            let meta = DeviceMeta {
                name: format!("{prefix}/pipe{idx}"),
                tier,
                peak: pipe_peak,
            };
            keys.push(
                rec.ingest_tracker(meta, &pipe.tracker, &|p| PowerState::classify(p, pipe_peak))?,
            );
        }
        let overhead_meta = DeviceMeta {
            name: format!("{prefix}/chassis"),
            tier,
            peak: self.params.overhead_power,
        };
        keys.push(rec.ingest_tracker(overhead_meta, &self.overhead, &|p| {
            PowerState::classify(p, self.params.overhead_power)
        })?);
        Ok(keys)
    }
}

/// End-of-run switch summary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwitchReport {
    /// Total energy consumed.
    pub energy: Joules,
    /// Time-averaged power.
    pub average_power: Watts,
    /// The switch's max (all pipelines at full frequency) power.
    pub max_power: Watts,
    /// Forward/drop counters.
    pub loss: LossCounter,
    /// Mean switch latency (ns).
    pub mean_latency_ns: f64,
    /// 99th-percentile switch latency (ns).
    pub p99_latency_ns: f64,
    /// Total packets forwarded.
    pub forwarded: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::powerscope::{Recorder, WindowConfig};

    fn switch() -> PipelineSwitch {
        PipelineSwitch::new(SwitchParams::paper_51t2(), SimTime::ZERO).unwrap()
    }

    #[test]
    fn record_powerscope_conserves_every_tracker() {
        let mut sw = switch();
        sw.set_frequency(SimTime::from_micros(10), 0, 0.5).unwrap();
        sw.park_pipeline(SimTime::from_micros(20), 1).unwrap();
        sw.wake_pipeline(SimTime::from_micros(400), 1, 1.0).unwrap();
        sw.set_frequency(SimTime::from_micros(700), 0, 1.0).unwrap();
        let end = SimTime::from_millis(1);
        let mut rec = Recorder::new(WindowConfig::from_nanos(33_000).unwrap());
        let keys = sw
            .record_powerscope(&mut rec, npp_power::Tier::Tor, "sw0")
            .unwrap();
        rec.finish(end).unwrap();
        assert_eq!(keys.len(), sw.params.pipelines + 1);
        let rows = rec.drain_closed();
        for (dev, tracker) in sw
            .pipes
            .iter()
            .map(|p| &p.tracker)
            .chain(std::iter::once(&sw.overhead))
            .enumerate()
        {
            let sum = rows
                .iter()
                .filter(|r| r.device == dev)
                .map(|r| r.energy_j)
                .fold(0.0, |a, b| a + b);
            let direct = tracker.energy_until(end).unwrap();
            assert_eq!(sum.to_bits(), direct.value().to_bits(), "device {dev}");
        }
        // Naming and tiers: pipelines then chassis.
        assert_eq!(
            rec.metas().first().map(|m| m.name.as_str()),
            Some("sw0/pipe0")
        );
        assert_eq!(
            rec.metas().last().map(|m| m.name.as_str()),
            Some("sw0/chassis")
        );
        // The parked pipeline shows off-residency in some window.
        assert!(rows
            .iter()
            .filter(|r| r.device == 1)
            .any(|r| r.residency_ns[crate::powerscope::PowerState::Off.index()] > 0));
    }

    #[test]
    fn params_match_table1_power() {
        let p = SwitchParams::paper_51t2();
        assert!(p.max_power().approx_eq(Watts::new(750.0), 1e-9));
        assert!((p.pipeline_rate.as_tbps() * p.pipelines as f64 - 51.2).abs() < 1e-9);
    }

    #[test]
    fn forwarding_latency_is_serialization() {
        let mut sw = switch();
        // 1500 B at 12.8 Tbps = 12,000 / 12,800 bits/ns < 1 ns → ceil 1.
        match sw.ingress(SimTime::from_nanos(10), 0, 1500).unwrap() {
            Egress::Forwarded {
                departure,
                latency_ns,
            } => {
                assert_eq!(latency_ns, 1);
                assert_eq!(departure, SimTime::from_nanos(11));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn round_robin_port_mapping() {
        let sw = switch();
        assert_eq!(sw.port_pipeline(0).unwrap(), 0);
        assert_eq!(sw.port_pipeline(1).unwrap(), 1);
        assert_eq!(sw.port_pipeline(4).unwrap(), 0);
        assert!(sw.port_pipeline(64).is_err());
    }

    #[test]
    fn rate_adaptation_slows_and_saves() {
        let mut sw = switch();
        sw.set_frequency(SimTime::ZERO, 0, 0.5).unwrap();
        // Service takes twice as long at half frequency.
        match sw.ingress(SimTime::from_nanos(0), 0, 16_000).unwrap() {
            // 128,000 bits / 6,400 bits/ns = 20 ns.
            Egress::Forwarded { latency_ns, .. } => assert_eq!(latency_ns, 20),
            other => panic!("unexpected {other:?}"),
        }
        // Energy at 1 s: pipeline 0 draws 38 + 50 = 88 W instead of 138.
        let e = sw.energy(SimTime::from_secs(1)).unwrap();
        let expected = 198.0 + 138.0 * 3.0 + 88.0;
        assert!((e.value() - expected).abs() < 1e-6, "energy {e}");
    }

    #[test]
    fn parked_pipeline_drops_and_draws_nothing() {
        let mut sw = switch();
        sw.park_pipeline(SimTime::ZERO, 1).unwrap();
        match sw.ingress(SimTime::from_nanos(5), 1, 1500).unwrap() {
            Egress::Dropped { reason } => assert_eq!(reason, DropReason::PipelineOff),
            other => panic!("unexpected {other:?}"),
        }
        let e = sw.energy(SimTime::from_secs(1)).unwrap();
        assert!((e.value() - (198.0 + 138.0 * 3.0)).abs() < 1e-6);
        assert_eq!(sw.loss().dropped, 1);
    }

    #[test]
    fn remap_then_park_keeps_traffic_flowing() {
        let mut sw = switch();
        let t = SimTime::from_nanos(100);
        // Steer port 1 away from pipeline 1, then park pipeline 1.
        sw.remap_port(t, 1, 0).unwrap();
        sw.park_pipeline(t, 1).unwrap();
        // The packet is delayed by the 1 µs remap but not dropped.
        match sw.ingress(SimTime::from_nanos(200), 1, 1500).unwrap() {
            Egress::Forwarded { departure, .. } => {
                assert!(departure >= t.plus_nanos(sw.params().remap_ns));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parking_a_busy_pipeline_is_rejected() {
        let mut sw = switch();
        sw.ingress(SimTime::from_nanos(0), 0, 1_000_000).unwrap();
        assert!(sw.park_pipeline(SimTime::from_nanos(1), 0).is_err());
        assert!(!sw.is_drained(0, SimTime::from_nanos(1)).unwrap());
        // After draining it parks fine.
        assert!(sw.park_pipeline(SimTime::from_secs(1), 0).is_ok());
    }

    #[test]
    fn wake_latency_delays_service() {
        let mut sw = switch();
        sw.park_pipeline(SimTime::ZERO, 0).unwrap();
        sw.wake_pipeline(SimTime::from_nanos(1000), 0, 1.0).unwrap();
        // Packet arriving mid-wake is served at wake completion.
        match sw.ingress(SimTime::from_nanos(2000), 0, 1500).unwrap() {
            Egress::Forwarded { departure, .. } => {
                assert_eq!(departure, SimTime::from_nanos(1000 + 100_000 + 1));
            }
            other => panic!("unexpected {other:?}"),
        }
        // After the wake completes, service is immediate again.
        match sw.ingress(SimTime::from_millis(1), 0, 1500).unwrap() {
            Egress::Forwarded { latency_ns, .. } => assert_eq!(latency_ns, 1),
            other => panic!("unexpected {other:?}"),
        }
        // Double wake is an error.
        assert!(sw.wake_pipeline(SimTime::from_millis(2), 0, 1.0).is_err());
    }

    #[test]
    fn buffer_overflow_drops() {
        let params = SwitchParams {
            buffer_bytes: 3_000,
            ..SwitchParams::paper_51t2()
        };
        let mut sw = PipelineSwitch::new(params, SimTime::ZERO).unwrap();
        sw.set_frequency(SimTime::ZERO, 0, 1.0).unwrap();
        // Slow the pipeline way down so a burst overflows 3 kB.
        // At full rate: backlog builds only if packets arrive faster than
        // 12.8 Tbps — emit a burst at the same instant.
        let mut drops = 0;
        for _ in 0..10 {
            if let Egress::Dropped { reason } = sw.ingress(SimTime::from_nanos(1), 0, 1500).unwrap()
            {
                assert_eq!(reason, DropReason::BufferFull);
                drops += 1;
            }
        }
        assert!(drops > 0, "expected overflow drops");
        assert_eq!(sw.loss().offered(), 10);
    }

    #[test]
    fn pause_frames_trade_loss_for_latency() {
        // The same overflowing burst under both §4.4 policies.
        let burst = |sw: &mut PipelineSwitch| {
            let mut worst_latency = 0u64;
            for i in 0..2000u64 {
                match sw.ingress(SimTime::from_nanos(i), 0, 9000).unwrap() {
                    Egress::Forwarded { latency_ns, .. } => {
                        worst_latency = worst_latency.max(latency_ns)
                    }
                    Egress::Dropped { .. } => {}
                }
            }
            worst_latency
        };
        // Tiny buffer to force overflow: 2000 packets x 9 kB = 18 MB
        // offered in 2 µs to a pipeline that serializes ~3.2 MB in that
        // window.
        let drop_params = SwitchParams {
            buffer_bytes: 256 * 1024,
            ..SwitchParams::paper_51t2()
        };
        let mut dropping = PipelineSwitch::new(drop_params, SimTime::ZERO).unwrap();
        burst(&mut dropping);
        assert!(dropping.loss().dropped > 0);
        assert_eq!(dropping.pauses(), 0);

        let pause_params = SwitchParams {
            buffer_bytes: 256 * 1024,
            overflow: OverflowPolicy::PauseFrames,
            ..SwitchParams::paper_51t2()
        };
        let mut pausing = PipelineSwitch::new(pause_params, SimTime::ZERO).unwrap();
        let worst = burst(&mut pausing);
        // No loss, but pauses happened and latency grew beyond the
        // buffer-drain time.
        assert_eq!(pausing.loss().dropped, 0);
        assert!(pausing.pauses() > 0);
        assert!(pausing.paused_ns() > 0);
        let drain_ns = 256.0 * 1024.0 * 8.0 / 12_800.0; // buffer at line rate
        assert!(
            worst as f64 > drain_ns,
            "worst latency {worst} should exceed the drain time {drain_ns}"
        );
        // Byte conservation: everything offered was forwarded.
        assert_eq!(pausing.loss().delivered, 2000);
    }

    #[test]
    fn pause_mode_changes_nothing_without_overflow() {
        let mut sw =
            PipelineSwitch::new(SwitchParams::paper_51t2_with_pause(), SimTime::ZERO).unwrap();
        for i in 0..100u64 {
            sw.ingress(SimTime::from_micros(i * 10), 0, 1500).unwrap();
        }
        assert_eq!(sw.pauses(), 0);
        assert_eq!(sw.paused_ns(), 0);
        assert_eq!(sw.loss().dropped, 0);
    }

    #[test]
    fn energy_accounting_full_switch() {
        let sw = switch();
        let r = sw.finish(SimTime::from_secs(10)).unwrap();
        // All-on draw is 750 W.
        assert!(r.average_power.approx_eq(Watts::new(750.0), 1e-6));
        assert!(r.energy.approx_eq(Joules::new(7500.0), 1e-3));
        assert_eq!(r.forwarded, 0);
    }

    #[test]
    fn config_validation() {
        let bad = SwitchParams {
            ports: 0,
            ..SwitchParams::paper_51t2()
        };
        assert!(PipelineSwitch::new(bad, SimTime::ZERO).is_err());
        let mut sw = switch();
        assert!(sw.set_frequency(SimTime::ZERO, 0, 0.0).is_err());
        assert!(sw.set_frequency(SimTime::ZERO, 0, 1.5).is_err());
        assert!(sw.set_frequency(SimTime::ZERO, 9, 0.5).is_err());
        assert!(sw.remap_port(SimTime::ZERO, 0, 9).is_err());
        assert!(sw.remap_port(SimTime::ZERO, 99, 0).is_err());
        sw.park_pipeline(SimTime::ZERO, 0).unwrap();
        assert!(sw.set_frequency(SimTime::ZERO, 0, 0.5).is_err());
        assert!(sw.wake_pipeline(SimTime::ZERO, 0, 2.0).is_err());
    }
}
