//! Store-and-forward link transmission timing.
//!
//! A [`Link`] is a FIFO serializer: each transmission occupies the wire
//! for `bytes × 8 / capacity` and queues behind any transmission still in
//! progress. Energy policies (EEE low-power idle, down-rating) are built
//! on top of this in `npp-mechanisms`, using [`Link::idle_gap_since`] to
//! find sleep opportunities.

use serde::{Deserialize, Serialize};

use npp_units::Gbps;

use crate::{Result, SimError, SimTime};

/// The outcome of a transmission request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transmission {
    /// When serialization starts (after queued predecessors).
    pub start: SimTime,
    /// When the last bit leaves the sender.
    pub tx_end: SimTime,
    /// When the last bit arrives at the receiver (tx_end + propagation).
    pub arrival: SimTime,
}

impl Transmission {
    /// Sender-side latency: from request to last bit out.
    pub fn queueing_and_serialization(&self, requested: SimTime) -> u64 {
        self.tx_end.since(requested)
    }
}

/// A point-to-point link with fixed capacity and propagation delay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Link {
    capacity: Gbps,
    propagation_ns: u64,
    busy_until: SimTime,
    last_activity: SimTime,
    bytes_sent: u64,
    transmissions: u64,
}

impl Link {
    /// Creates an idle link.
    ///
    /// # Errors
    ///
    /// Rejects non-positive capacities.
    pub fn new(capacity: Gbps, propagation_ns: u64) -> Result<Self> {
        if capacity.value() <= 0.0 {
            return Err(SimError::Config(format!(
                "link capacity must be positive, got {capacity}"
            )));
        }
        Ok(Self {
            capacity,
            propagation_ns,
            busy_until: SimTime::ZERO,
            last_activity: SimTime::ZERO,
            bytes_sent: 0,
            transmissions: 0,
        })
    }

    /// Link capacity.
    pub fn capacity(&self) -> Gbps {
        self.capacity
    }

    /// Serialization time of `bytes` at this capacity, in nanoseconds
    /// (rounded up so zero-length transmissions are the only free ones).
    pub fn serialization_ns(&self, bytes: u64) -> u64 {
        let ns = bytes as f64 * 8.0 / self.capacity.value(); // bits / (bits/ns)
        ns.ceil() as u64
    }

    /// Whether the wire is free at `t`.
    pub fn is_idle(&self, t: SimTime) -> bool {
        t >= self.busy_until
    }

    /// How long the wire has been continuously idle at `t` (0 if busy).
    pub fn idle_gap_since(&self, t: SimTime) -> u64 {
        t.since(self.busy_until)
    }

    /// When the current transmission (if any) completes.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Total payload bytes serialized.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Number of transmissions.
    pub fn transmissions(&self) -> u64 {
        self.transmissions
    }

    /// Requests transmission of `bytes` at time `now`; the transmission
    /// FIFO-queues behind any in-flight one.
    ///
    /// # Errors
    ///
    /// [`SimError::TimeReversal`] if `now` precedes an earlier request.
    pub fn transmit(&mut self, now: SimTime, bytes: u64) -> Result<Transmission> {
        if now < self.last_activity {
            return Err(SimError::TimeReversal {
                now_ns: self.last_activity.as_nanos(),
                requested_ns: now.as_nanos(),
            });
        }
        self.last_activity = now;
        let start = if self.busy_until > now {
            self.busy_until
        } else {
            now
        };
        let tx_end = start.plus_nanos(self.serialization_ns(bytes));
        self.busy_until = tx_end;
        self.bytes_sent += bytes;
        self.transmissions += 1;
        Ok(Transmission {
            start,
            tx_end,
            arrival: tx_end.plus_nanos(self.propagation_ns),
        })
    }

    /// Utilization over `[0, t]`: serialized time / elapsed time. (Exact
    /// for non-overlapping transmissions, which FIFO queuing guarantees.)
    pub fn utilization(&self, t: SimTime) -> f64 {
        if t == SimTime::ZERO {
            return 0.0;
        }
        let busy_ns = self.serialization_ns(self.bytes_sent).min(t.as_nanos());
        busy_ns as f64 / t.as_nanos() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link400() -> Link {
        Link::new(Gbps::new(400.0), 500).unwrap()
    }

    #[test]
    fn serialization_time() {
        let l = link400();
        // 1500 B at 400 Gbps = 12,000 bits / 400 bits/ns = 30 ns.
        assert_eq!(l.serialization_ns(1500), 30);
        assert_eq!(l.serialization_ns(0), 0);
    }

    #[test]
    fn fifo_queueing() {
        let mut l = link400();
        let t0 = SimTime::from_nanos(100);
        let a = l.transmit(t0, 1500).unwrap();
        assert_eq!(a.start, t0);
        assert_eq!(a.tx_end, SimTime::from_nanos(130));
        assert_eq!(a.arrival, SimTime::from_nanos(630));
        // Second packet at the same instant queues behind the first.
        let b = l.transmit(t0, 1500).unwrap();
        assert_eq!(b.start, SimTime::from_nanos(130));
        assert_eq!(b.tx_end, SimTime::from_nanos(160));
    }

    #[test]
    fn idle_gap_tracking() {
        let mut l = link400();
        let tx = l.transmit(SimTime::from_nanos(0), 1500).unwrap();
        assert!(!l.is_idle(SimTime::from_nanos(10)));
        assert!(l.is_idle(tx.tx_end));
        assert_eq!(l.idle_gap_since(SimTime::from_nanos(100)), 70);
        assert_eq!(l.idle_gap_since(SimTime::from_nanos(10)), 0);
    }

    #[test]
    fn rejects_time_reversal_and_bad_capacity() {
        let mut l = link400();
        l.transmit(SimTime::from_nanos(100), 100).unwrap();
        assert!(l.transmit(SimTime::from_nanos(50), 100).is_err());
        assert!(Link::new(Gbps::ZERO, 0).is_err());
    }

    #[test]
    fn utilization() {
        let mut l = link400();
        // 30 ns of serialization in 300 ns of elapsed time = 10%.
        l.transmit(SimTime::ZERO, 1500).unwrap();
        let u = l.utilization(SimTime::from_nanos(300));
        assert!((u - 0.1).abs() < 1e-9);
        assert_eq!(link400().utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn counters() {
        let mut l = link400();
        l.transmit(SimTime::ZERO, 1000).unwrap();
        l.transmit(SimTime::ZERO, 500).unwrap();
        assert_eq!(l.bytes_sent(), 1500);
        assert_eq!(l.transmissions(), 2);
    }
}
