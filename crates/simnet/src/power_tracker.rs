//! Piecewise-constant power recording with exact energy integration.

use serde::{Deserialize, Serialize};

use npp_units::{Joules, Ratio, Seconds, Watts};

use crate::{Result, SimError, SimTime};

/// Records the power draw of one component as a step function of
/// simulation time, and integrates it into energy.
///
/// Every §4 mechanism evaluation boils down to comparing the energy
/// integral of a device with and without the mechanism, so this type is
/// the simulator's measurement backbone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerTracker {
    start: SimTime,
    last_change: SimTime,
    current: Watts,
    accumulated: f64, // joules
    /// Recorded (time, new power) change points, for inspection/plots.
    changes: Vec<(SimTime, Watts)>,
}

impl PowerTracker {
    /// Starts tracking at `start` with an initial power draw.
    pub fn new(start: SimTime, initial: Watts) -> Self {
        Self {
            start,
            last_change: start,
            current: initial,
            accumulated: 0.0,
            changes: vec![(start, initial)],
        }
    }

    /// The power currently drawn.
    pub fn current_power(&self) -> Watts {
        self.current
    }

    /// Timestamp of the most recent recorded change.
    pub fn last_change_time(&self) -> SimTime {
        self.last_change
    }

    /// Recorded change points (time, power-after-change).
    pub fn changes(&self) -> &[(SimTime, Watts)] {
        &self.changes
    }

    /// Sets the power at time `t` (no-op entry is still recorded if the
    /// value is unchanged — callers often log state transitions).
    ///
    /// # Errors
    ///
    /// [`SimError::TimeReversal`] if `t` precedes the last change.
    pub fn set_power(&mut self, t: SimTime, power: Watts) -> Result<()> {
        if t < self.last_change {
            return Err(SimError::TimeReversal {
                now_ns: self.last_change.as_nanos(),
                requested_ns: t.as_nanos(),
            });
        }
        self.accumulated += self.current.value() * time_delta_secs(self.last_change, t);
        self.last_change = t;
        self.current = power;
        self.changes.push((t, power));
        Ok(())
    }

    /// Energy consumed from the start through time `t` (≥ last change).
    ///
    /// # Errors
    ///
    /// [`SimError::TimeReversal`] if `t` precedes the last change.
    pub fn energy_until(&self, t: SimTime) -> Result<Joules> {
        if t < self.last_change {
            return Err(SimError::TimeReversal {
                now_ns: self.last_change.as_nanos(),
                requested_ns: t.as_nanos(),
            });
        }
        Ok(Joules::new(
            self.accumulated + self.current.value() * time_delta_secs(self.last_change, t),
        ))
    }

    /// The dwell intervals of the step function through `end`: one
    /// segment per recorded change, in time order. Zero-duration segments
    /// (several changes at the same instant) are preserved — they carry
    /// zero energy but record that the state was visited.
    ///
    /// The segment energies sum exactly (same additions in the same
    /// order) to [`PowerTracker::energy_until`] at `end`.
    ///
    /// # Errors
    ///
    /// [`SimError::TimeReversal`] if `end` precedes the last change.
    pub fn dwell_segments(&self, end: SimTime) -> Result<Vec<DwellSegment>> {
        if end < self.last_change {
            return Err(SimError::TimeReversal {
                now_ns: self.last_change.as_nanos(),
                requested_ns: end.as_nanos(),
            });
        }
        let mut segments = Vec::with_capacity(self.changes.len());
        for (i, &(from, power)) in self.changes.iter().enumerate() {
            let to = self
                .changes
                .get(i + 1)
                .map(|&(t, _)| t)
                .unwrap_or(end)
                .min(end);
            segments.push(DwellSegment {
                from,
                to: to.max(from),
                power,
            });
        }
        Ok(segments)
    }

    /// Closes the timeline at `end` and summarizes it.
    ///
    /// # Errors
    ///
    /// [`SimError::TimeReversal`] if `end` precedes the last change.
    pub fn finish(&self, end: SimTime) -> Result<PowerTimeline> {
        let energy = self.energy_until(end)?;
        let duration = Seconds::from_nanos(end.since(self.start) as f64);
        Ok(PowerTimeline {
            energy,
            duration,
            changes: self.changes.len(),
        })
    }
}

/// One dwell interval of a power step function: the component drew
/// `power` from `from` until `to`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DwellSegment {
    /// Segment start.
    pub from: SimTime,
    /// Segment end (equal to `from` for zero-duration dwells).
    pub to: SimTime,
    /// Constant power drawn over the segment.
    pub power: Watts,
}

impl DwellSegment {
    /// Segment duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.to.since(self.from)
    }

    /// Energy consumed over the segment, using the same arithmetic as
    /// [`PowerTracker::energy_until`] so totals agree bit for bit.
    pub fn energy(&self) -> Joules {
        Joules::new(self.power.value() * time_delta_secs(self.from, self.to))
    }
}

/// Summary of a finished power timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerTimeline {
    /// Total energy over the timeline.
    pub energy: Joules,
    /// Timeline duration.
    pub duration: Seconds,
    /// Number of recorded power changes.
    pub changes: usize,
}

impl PowerTimeline {
    /// Time-averaged power.
    pub fn average_power(&self) -> Watts {
        if self.duration.value() <= 0.0 {
            return Watts::ZERO;
        }
        self.energy / self.duration
    }

    /// Energy saving of this timeline relative to a flat draw at
    /// `reference` power over the same duration.
    pub fn savings_vs(&self, reference: Watts) -> Ratio {
        let ref_energy = reference * self.duration;
        if ref_energy.value() <= 0.0 {
            return Ratio::ZERO;
        }
        Ratio::new(1.0 - self.energy / ref_energy)
    }
}

/// Shared with `powerscope`: the windowed recorder must use the *same*
/// nanoseconds→seconds conversion so its mirror accumulator reproduces
/// [`PowerTracker::energy_until`] bit for bit.
pub(crate) fn time_delta_secs(from: SimTime, to: SimTime) -> f64 {
    to.since(from) as f64 * 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrates_step_function() {
        let mut t = PowerTracker::new(SimTime::ZERO, Watts::new(100.0));
        // 100 W for 1 s, then 50 W for 1 s.
        t.set_power(SimTime::from_secs(1), Watts::new(50.0))
            .unwrap();
        let e = t.energy_until(SimTime::from_secs(2)).unwrap();
        assert!(e.approx_eq(Joules::new(150.0), 1e-9));
        let tl = t.finish(SimTime::from_secs(2)).unwrap();
        assert!(tl.average_power().approx_eq(Watts::new(75.0), 1e-9));
        assert_eq!(tl.changes, 2);
    }

    #[test]
    fn energy_is_monotone_in_time() {
        let mut t = PowerTracker::new(SimTime::ZERO, Watts::new(10.0));
        t.set_power(SimTime::from_secs(1), Watts::new(0.0)).unwrap();
        let e1 = t.energy_until(SimTime::from_secs(1)).unwrap();
        let e2 = t.energy_until(SimTime::from_secs(5)).unwrap();
        assert_eq!(e1, e2); // zero draw adds nothing
        assert!(e1.approx_eq(Joules::new(10.0), 1e-9));
    }

    #[test]
    fn rejects_time_reversal() {
        let mut t = PowerTracker::new(SimTime::from_secs(1), Watts::ZERO);
        assert!(t.set_power(SimTime::ZERO, Watts::ZERO).is_err());
        t.set_power(SimTime::from_secs(2), Watts::new(5.0)).unwrap();
        assert!(t.energy_until(SimTime::from_secs(1)).is_err());
    }

    #[test]
    fn savings_vs_reference() {
        let mut t = PowerTracker::new(SimTime::ZERO, Watts::new(100.0));
        // Half the time at zero power.
        t.set_power(SimTime::from_secs(1), Watts::ZERO).unwrap();
        let tl = t.finish(SimTime::from_secs(2)).unwrap();
        assert!(tl
            .savings_vs(Watts::new(100.0))
            .approx_eq(Ratio::new(0.5), 1e-12));
        assert_eq!(tl.savings_vs(Watts::ZERO), Ratio::ZERO);
    }

    #[test]
    fn zero_duration_timeline() {
        let t = PowerTracker::new(SimTime::ZERO, Watts::new(100.0));
        let tl = t.finish(SimTime::ZERO).unwrap();
        assert_eq!(tl.energy, Joules::ZERO);
        assert_eq!(tl.average_power(), Watts::ZERO);
    }

    #[test]
    fn dwell_segments_cover_the_timeline() {
        let mut t = PowerTracker::new(SimTime::ZERO, Watts::new(100.0));
        t.set_power(SimTime::from_secs(1), Watts::new(50.0))
            .unwrap();
        let segs = t.dwell_segments(SimTime::from_secs(2)).unwrap();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].duration_ns(), 1_000_000_000);
        assert_eq!(segs[1].duration_ns(), 1_000_000_000);
        let total: f64 = segs.iter().map(|s| s.energy().value()).sum();
        let direct = t.energy_until(SimTime::from_secs(2)).unwrap();
        assert_eq!(total.to_bits(), direct.value().to_bits());
    }

    #[test]
    fn zero_duration_dwell_is_preserved_and_carries_no_energy() {
        let mut t = PowerTracker::new(SimTime::ZERO, Watts::new(10.0));
        // Two transitions at the same instant: 10 W -> 99 W -> 20 W at t=1s.
        t.set_power(SimTime::from_secs(1), Watts::new(99.0))
            .unwrap();
        t.set_power(SimTime::from_secs(1), Watts::new(20.0))
            .unwrap();
        let segs = t.dwell_segments(SimTime::from_secs(2)).unwrap();
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[1].duration_ns(), 0);
        assert_eq!(segs[1].power, Watts::new(99.0));
        assert_eq!(segs[1].energy(), Joules::ZERO);
        let e = t.energy_until(SimTime::from_secs(2)).unwrap();
        assert!(e.approx_eq(Joules::new(30.0), 1e-9));
    }

    #[test]
    fn transition_at_t_zero_replaces_the_initial_dwell() {
        let mut t = PowerTracker::new(SimTime::ZERO, Watts::new(100.0));
        t.set_power(SimTime::ZERO, Watts::new(1.0)).unwrap();
        let segs = t.dwell_segments(SimTime::from_secs(1)).unwrap();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].duration_ns(), 0);
        let e = t.energy_until(SimTime::from_secs(1)).unwrap();
        assert!(e.approx_eq(Joules::new(1.0), 1e-9));
        let tl = t.finish(SimTime::from_secs(1)).unwrap();
        assert_eq!(tl.changes, 2);
    }

    #[test]
    fn dwell_segments_at_zero_duration_end() {
        let t = PowerTracker::new(SimTime::ZERO, Watts::new(7.0));
        let segs = t.dwell_segments(SimTime::ZERO).unwrap();
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].duration_ns(), 0);
        assert!(t.dwell_segments(SimTime::ZERO).is_ok());
        let mut t2 = PowerTracker::new(SimTime::ZERO, Watts::ZERO);
        t2.set_power(SimTime::from_secs(1), Watts::ZERO).unwrap();
        assert!(t2.dwell_segments(SimTime::ZERO).is_err());
    }

    #[test]
    fn sub_second_precision() {
        let mut t = PowerTracker::new(SimTime::ZERO, Watts::new(1.0));
        t.set_power(SimTime::from_nanos(500), Watts::ZERO).unwrap();
        let e = t.energy_until(SimTime::from_secs(1)).unwrap();
        assert!(e.approx_eq(Joules::new(500e-9), 1e-15));
    }
}
