//! A deterministic discrete-event scheduler.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::{Result, SimError, SimTime};

/// An event scheduled at a time, with a sequence number that makes
/// simultaneous events pop in insertion (FIFO) order — a requirement for
/// reproducible simulations.
#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The event queue driving a simulation.
///
/// The scheduler owns the clock: [`Scheduler::pop`] advances `now` to the
/// popped event's timestamp. Scheduling into the past is an error — the
/// usual source of silent causality bugs in hand-rolled simulators.
#[derive(Debug)]
pub struct Scheduler<E> {
    now: SimTime,
    queue: BinaryHeap<Reverse<Scheduled<E>>>,
    seq: u64,
    processed: u64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler at time zero.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty scheduler whose heap is pre-sized for `capacity`
    /// events, so a simulation with a known event population never
    /// reallocates the queue mid-run.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            now: SimTime::ZERO,
            queue: BinaryHeap::with_capacity(capacity),
            seq: 0,
            processed: 0,
        }
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Whether no events remain.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|Reverse(s)| s.at)
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Errors
    ///
    /// [`SimError::TimeReversal`] if `at` is before the current time.
    pub fn schedule(&mut self, at: SimTime, event: E) -> Result<()> {
        if at < self.now {
            return Err(SimError::TimeReversal {
                now_ns: self.now.as_nanos(),
                requested_ns: at.as_nanos(),
            });
        }
        self.queue.push(Reverse(Scheduled {
            at,
            seq: self.seq,
            event,
        }));
        self.seq += 1;
        Ok(())
    }

    /// Schedules `event` after a delay of `delay_ns` nanoseconds.
    ///
    /// # Errors
    ///
    /// Never fails for forward delays; returns the same errors as
    /// [`Scheduler::schedule`] for consistency.
    pub fn schedule_in(&mut self, delay_ns: u64, event: E) -> Result<()> {
        self.schedule(self.now.plus_nanos(delay_ns), event)
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(s) = self.queue.pop()?;
        self.now = s.at;
        self.processed += 1;
        Some((s.at, s.event))
    }

    /// Pops every event sharing the earliest timestamp into `batch`
    /// (FIFO order preserved), advancing the clock to that timestamp.
    /// Returns the batch's timestamp, or `None` if the queue is empty.
    ///
    /// Simulations whose handlers recompute global state per timestamp
    /// (rate reallocation, power re-planning) use this to pay that cost
    /// once per instant instead of once per event. `batch` is cleared
    /// first and reused, so a caller-owned buffer makes the drain loop
    /// allocation-free.
    pub fn pop_batch(&mut self, batch: &mut Vec<E>) -> Option<SimTime> {
        batch.clear();
        let Reverse(first) = self.queue.pop()?;
        let at = first.at;
        self.now = at;
        self.processed += 1;
        batch.push(first.event);
        while self.queue.peek().is_some_and(|Reverse(s)| s.at == at) {
            let Reverse(s) = self.queue.pop().expect("peeked non-empty");
            self.processed += 1;
            batch.push(s.event);
        }
        Some(at)
    }

    /// Drains every pending event in time (FIFO-stable) order without
    /// advancing the clock — the error-exit path of a run loop uses
    /// this to hand un-released events back to the owner.
    pub fn drain(&mut self) -> Vec<(SimTime, E)> {
        let mut out = Vec::with_capacity(self.queue.len());
        while let Some(Reverse(s)) = self.queue.pop() {
            out.push((s.at, s.event));
        }
        out
    }

    /// Pops the next event only if it is at or before `horizon`;
    /// otherwise advances the clock to `horizon` and returns `None`.
    /// This is the standard "run until" loop primitive.
    pub fn pop_until(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= horizon => self.pop(),
            _ => {
                if horizon > self.now {
                    self.now = horizon;
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_nanos(30), "c").unwrap();
        s.schedule(SimTime::from_nanos(10), "a").unwrap();
        s.schedule(SimTime::from_nanos(20), "b").unwrap();
        let order: Vec<&str> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, ["a", "b", "c"]);
        assert_eq!(s.now(), SimTime::from_nanos(30));
        assert_eq!(s.processed(), 3);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut s = Scheduler::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            s.schedule(t, i).unwrap();
        }
        let order: Vec<i32> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn rejects_time_reversal() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_nanos(10), ()).unwrap();
        s.pop();
        assert!(matches!(
            s.schedule(SimTime::from_nanos(5), ()),
            Err(SimError::TimeReversal { .. })
        ));
        // Scheduling at exactly `now` is allowed.
        assert!(s.schedule(SimTime::from_nanos(10), ()).is_ok());
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_nanos(100), 1).unwrap();
        s.pop();
        s.schedule_in(50, 2).unwrap();
        let (t, _) = s.pop().unwrap();
        assert_eq!(t, SimTime::from_nanos(150));
    }

    #[test]
    fn pop_until_respects_horizon() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_nanos(10), 1).unwrap();
        s.schedule(SimTime::from_nanos(100), 2).unwrap();
        let horizon = SimTime::from_nanos(50);
        assert_eq!(s.pop_until(horizon).map(|(_, e)| e), Some(1));
        assert_eq!(s.pop_until(horizon), None);
        // Clock parked at the horizon, later event still pending.
        assert_eq!(s.now(), horizon);
        assert_eq!(s.pending(), 1);
    }

    #[test]
    fn pop_batch_drains_one_timestamp_in_fifo_order() {
        let mut s = Scheduler::with_capacity(8);
        s.schedule(SimTime::from_nanos(10), "a").unwrap();
        s.schedule(SimTime::from_nanos(10), "b").unwrap();
        s.schedule(SimTime::from_nanos(10), "c").unwrap();
        s.schedule(SimTime::from_nanos(20), "d").unwrap();
        let mut batch = Vec::new();
        assert_eq!(s.pop_batch(&mut batch), Some(SimTime::from_nanos(10)));
        assert_eq!(batch, ["a", "b", "c"]);
        assert_eq!(s.now(), SimTime::from_nanos(10));
        assert_eq!(s.processed(), 3);
        // The buffer is reused: the next batch replaces its contents.
        assert_eq!(s.pop_batch(&mut batch), Some(SimTime::from_nanos(20)));
        assert_eq!(batch, ["d"]);
        assert_eq!(s.pop_batch(&mut batch), None);
        assert!(batch.is_empty());
    }

    #[test]
    fn drain_empties_in_time_order_without_touching_the_clock() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_nanos(30), "c").unwrap();
        s.schedule(SimTime::from_nanos(10), "a").unwrap();
        s.schedule(SimTime::from_nanos(10), "b").unwrap();
        let drained = s.drain();
        assert_eq!(
            drained,
            [
                (SimTime::from_nanos(10), "a"),
                (SimTime::from_nanos(10), "b"),
                (SimTime::from_nanos(30), "c"),
            ]
        );
        assert!(s.is_empty());
        assert_eq!(s.now(), SimTime::ZERO);
        assert_eq!(s.processed(), 0);
    }

    #[test]
    fn empty_scheduler() {
        let mut s: Scheduler<()> = Scheduler::new();
        assert!(s.is_empty());
        assert_eq!(s.pop(), None);
        assert_eq!(s.peek_time(), None);
    }
}

/// Epoch-boundary semantics of [`Scheduler::pop_batch`], which the
/// parallel engine's coordinator relies on: every event at one
/// timestamp — and nothing else — must land in one batch, because a
/// batch becomes one fluid epoch's release set on every shard.
#[cfg(test)]
mod pop_batch_epoch_tests {
    use super::*;

    #[test]
    fn ties_at_identical_timestamps_land_in_one_batch() {
        let mut s = Scheduler::new();
        // Interleave three timestamps in scrambled insertion order.
        for (t, e) in [
            (20, "c0"),
            (10, "a0"),
            (30, "e0"),
            (10, "a1"),
            (20, "c1"),
            (10, "a2"),
        ] {
            s.schedule(SimTime::from_nanos(t), e).unwrap();
        }
        let mut batch = Vec::new();
        assert_eq!(s.pop_batch(&mut batch), Some(SimTime::from_nanos(10)));
        // All ties, FIFO within the tie, none of the later epoch.
        assert_eq!(batch, ["a0", "a1", "a2"]);
        assert_eq!(s.pop_batch(&mut batch), Some(SimTime::from_nanos(20)));
        assert_eq!(batch, ["c0", "c1"]);
        assert_eq!(s.pop_batch(&mut batch), Some(SimTime::from_nanos(30)));
        assert_eq!(batch, ["e0"]);
        assert_eq!(s.pop_batch(&mut batch), None);
    }

    #[test]
    fn adjacent_nanoseconds_are_separate_epochs() {
        // One-nanosecond separation must NOT merge: epochs are exact
        // integer-ns instants, not windows.
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_nanos(1000), 1).unwrap();
        s.schedule(SimTime::from_nanos(1001), 2).unwrap();
        let mut batch = Vec::new();
        assert_eq!(s.pop_batch(&mut batch), Some(SimTime::from_nanos(1000)));
        assert_eq!(batch, [1]);
        assert_eq!(s.pop_batch(&mut batch), Some(SimTime::from_nanos(1001)));
        assert_eq!(batch, [2]);
    }

    #[test]
    fn scheduling_at_the_current_instant_joins_the_next_batch() {
        // After a batch pops at t, new events at exactly t are legal
        // (not time reversal) and form a follow-up epoch at the same
        // instant — the scheduler never loses or reorders them.
        let mut s = Scheduler::new();
        let t = SimTime::from_nanos(500);
        s.schedule(t, "first").unwrap();
        let mut batch = Vec::new();
        assert_eq!(s.pop_batch(&mut batch), Some(t));
        assert_eq!(batch, ["first"]);
        s.schedule(t, "same-instant").unwrap();
        assert_eq!(s.pop_batch(&mut batch), Some(t));
        assert_eq!(batch, ["same-instant"]);
        assert_eq!(s.now(), t);
    }

    #[test]
    fn time_zero_epoch_is_a_valid_batch() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::ZERO, 7).unwrap();
        s.schedule(SimTime::ZERO, 8).unwrap();
        s.schedule(SimTime::from_nanos(1), 9).unwrap();
        let mut batch = Vec::new();
        assert_eq!(s.pop_batch(&mut batch), Some(SimTime::ZERO));
        assert_eq!(batch, [7, 8]);
    }

    #[test]
    fn large_tie_groups_preserve_fifo_order_exactly() {
        // A full scenario round injects 10⁵+ flows at one instant; the
        // release set must come back in insertion order regardless of
        // heap internals.
        let mut s = Scheduler::with_capacity(4096);
        let t = SimTime::from_millis(2);
        for i in 0..4096u32 {
            s.schedule(t, i).unwrap();
        }
        let mut batch = Vec::new();
        assert_eq!(s.pop_batch(&mut batch), Some(t));
        assert_eq!(batch.len(), 4096);
        assert!(
            batch.windows(2).all(|w| w[0] < w[1]),
            "FIFO == insertion order"
        );
        assert_eq!(s.processed(), 4096);
        assert!(s.is_empty());
    }

    #[test]
    fn batch_boundaries_survive_interleaved_scheduling() {
        // Epoch loop pattern: pop a batch, schedule future work, pop
        // again — boundaries stay exact across the interleave.
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_nanos(10), 0).unwrap();
        let mut batch = Vec::new();
        s.pop_batch(&mut batch);
        s.schedule(SimTime::from_nanos(25), 1).unwrap();
        s.schedule(SimTime::from_nanos(25), 2).unwrap();
        s.schedule(SimTime::from_nanos(40), 3).unwrap();
        assert_eq!(s.pop_batch(&mut batch), Some(SimTime::from_nanos(25)));
        assert_eq!(batch, [1, 2]);
        assert_eq!(s.peek_time(), Some(SimTime::from_nanos(40)));
        assert_eq!(s.pending(), 1);
    }
}
