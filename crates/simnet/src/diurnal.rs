//! Deterministic multi-day diurnal fleet driver for PowerScope.
//!
//! Models a pod's worth of devices — host NICs, ToR/aggregation
//! switches, and parkable spines — riding a 24-hour load curve (the
//! §3.4 ISP-style double-hump day), and feeds every power/state change
//! into a [`Recorder`]. The driver is pure arithmetic over sim time:
//! byte-identical output on every run, and because the recorder drains
//! closed windows each control step, a simulated month holds O(devices)
//! live state rather than O(events).
//!
//! Tier policies (deliberately simple; mechanisms live in
//! `npp-mechanisms` — this driver exists to exercise *observability*):
//!
//! - **Hosts** scale linearly between idle and peak with load, and are
//!   never powered off ([`PowerState::OnLow`]/[`PowerState::OnFull`]).
//! - **ToR/Agg** rate-adapt: frequency tracks load against a target
//!   utilization, power is `static + dynamic · freq`.
//! - **Spines** park: each spine has a staggered load threshold below
//!   which it powers off; waking costs a fixed latency during which the
//!   device burns peak power in [`PowerState::Waking`].

use npp_power::Tier;
use npp_units::Watts;

use crate::powerscope::{DeviceKey, DeviceMeta, PowerState, Recorder, WindowConfig};
use crate::{Result, SimError, SimTime};

/// Normalized load for each hour of the day (linearly interpolated, and
/// wrapped weekly below). Shape follows the Abilene-style diurnal curve
/// used by the §3.4 ISP study: a deep post-midnight valley and an
/// evening peak.
const HOURLY_LOAD: [f64; 24] = [
    0.18, 0.14, 0.12, 0.11, 0.11, 0.13, 0.20, 0.32, 0.45, 0.58, 0.66, 0.70, 0.72, 0.74, 0.76, 0.78,
    0.80, 0.85, 0.95, 1.00, 0.90, 0.70, 0.45, 0.28,
];

const NS_PER_HOUR: u64 = 3_600_000_000_000;
const NS_PER_DAY: u64 = 24 * NS_PER_HOUR;

/// Normalized fleet load at an absolute sim time: the diurnal curve,
/// damped 15 % on the weekend (days 5 and 6 of each week).
pub fn diurnal_load(t: SimTime) -> f64 {
    let t_ns = t.as_nanos();
    let day = t_ns / NS_PER_DAY;
    let day_ns = t_ns % NS_PER_DAY;
    let hour = day_ns / NS_PER_HOUR;
    let frac = (day_ns % NS_PER_HOUR) as f64 / NS_PER_HOUR as f64;
    let at = |h: u64| -> f64 { HOURLY_LOAD.get((h % 24) as usize).copied().unwrap_or(0.18) };
    let base = at(hour) * (1.0 - frac) + at(hour + 1) * frac;
    if day % 7 >= 5 {
        base * 0.85
    } else {
        base
    }
}

/// Fleet composition and per-tier power envelopes.
#[derive(Debug, Clone, PartialEq)]
pub struct DiurnalFleetConfig {
    /// Host NIC count.
    pub hosts: usize,
    /// Top-of-rack switch count.
    pub tors: usize,
    /// Aggregation switch count.
    pub aggs: usize,
    /// Spine switch count (the parkable tier).
    pub spines: usize,
    /// Control period between policy decisions.
    pub step: SimTime,
    /// Host idle draw (W).
    pub host_idle_w: f64,
    /// Host peak draw (W).
    pub host_peak_w: f64,
    /// ToR static draw (W).
    pub tor_static_w: f64,
    /// ToR dynamic draw at full frequency (W).
    pub tor_dynamic_w: f64,
    /// Agg static draw (W).
    pub agg_static_w: f64,
    /// Agg dynamic draw at full frequency (W).
    pub agg_dynamic_w: f64,
    /// Spine peak draw (W).
    pub spine_peak_w: f64,
    /// Spine wake latency (time spent in [`PowerState::Waking`]).
    pub spine_wake: SimTime,
    /// Rate-adaptation target utilization for ToR/agg frequency.
    pub target_utilization: f64,
}

impl DiurnalFleetConfig {
    /// A small pod mirroring the paper's §2 device envelopes: 25 W NICs
    /// (15 W idle), 750 W switches split 430 W static / 320 W dynamic,
    /// spines parked through the nightly valley with a 5 s wake.
    pub fn paper_pod() -> Self {
        DiurnalFleetConfig {
            hosts: 16,
            tors: 4,
            aggs: 4,
            spines: 4,
            step: SimTime::from_secs(60),
            host_idle_w: 15.0,
            host_peak_w: 25.0,
            tor_static_w: 430.0,
            tor_dynamic_w: 320.0,
            agg_static_w: 430.0,
            agg_dynamic_w: 320.0,
            spine_peak_w: 750.0,
            spine_wake: SimTime::from_secs(5),
            target_utilization: 0.8,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.hosts + self.tors + self.aggs + self.spines == 0 {
            return Err(SimError::Config("diurnal fleet has no devices".into()));
        }
        if self.step.as_nanos() == 0 {
            return Err(SimError::Config("diurnal control step must be > 0".into()));
        }
        if self.target_utilization <= 0.0 || self.target_utilization > 1.0 {
            return Err(SimError::Config(format!(
                "target utilization {} outside (0, 1]",
                self.target_utilization
            )));
        }
        Ok(())
    }
}

#[derive(Debug, Clone)]
struct FleetDev {
    key: DeviceKey,
    tier: Tier,
    /// Index within the tier — staggers spine park thresholds and
    /// phase-shifts per-device load so windows show texture.
    rank: usize,
    state: PowerState,
    power_w: f64,
    /// For spines mid-wake: when the device reaches `OnFull`.
    wake_ready: Option<SimTime>,
}

/// Drives a configured fleet against the diurnal curve, one control
/// step at a time, streaming windows out of an owned [`Recorder`].
#[derive(Debug)]
pub struct DiurnalFleet {
    cfg: DiurnalFleetConfig,
    rec: Recorder,
    devs: Vec<FleetDev>,
    now: SimTime,
}

impl DiurnalFleet {
    /// Builds the fleet and registers every device at `t = 0` in its
    /// midnight (low-load) state.
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] on an empty fleet or degenerate step.
    pub fn new(cfg: DiurnalFleetConfig, window: WindowConfig) -> Result<DiurnalFleet> {
        cfg.validate()?;
        let mut rec = Recorder::new(window);
        let mut devs = Vec::new();
        let load0 = diurnal_load(SimTime::ZERO);
        let tiers: [(Tier, usize); 4] = [
            (Tier::Host, cfg.hosts),
            (Tier::Tor, cfg.tors),
            (Tier::Agg, cfg.aggs),
            (Tier::Spine, cfg.spines),
        ];
        for (tier, count) in tiers {
            for rank in 0..count {
                let peak = match tier {
                    Tier::Host => cfg.host_peak_w,
                    Tier::Tor => cfg.tor_static_w + cfg.tor_dynamic_w,
                    Tier::Agg => cfg.agg_static_w + cfg.agg_dynamic_w,
                    Tier::Spine => cfg.spine_peak_w,
                };
                let meta = DeviceMeta {
                    name: format!("{}{}", tier.name(), rank),
                    tier,
                    peak: Watts::new(peak),
                };
                let (power_w, state) = policy(&cfg, tier, rank, load0, PowerState::Off);
                let key = rec.register(meta, SimTime::ZERO, Watts::new(power_w), state)?;
                // A spine that starts above its park threshold wakes
                // from t = 0 like any other wake.
                let wake_ready = (state == PowerState::Waking)
                    .then(|| SimTime::ZERO.plus_nanos(cfg.spine_wake.as_nanos()));
                devs.push(FleetDev {
                    key,
                    tier,
                    rank,
                    state,
                    power_w,
                    wake_ready,
                });
            }
        }
        Ok(DiurnalFleet {
            cfg,
            rec,
            devs,
            now: SimTime::ZERO,
        })
    }

    /// Current sim time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Device metadata, in registration order.
    pub fn metas(&self) -> &[DeviceMeta] {
        self.rec.metas()
    }

    /// Live open-window count (bounded-memory invariant: equals the
    /// device count until [`DiurnalFleet::finish`]).
    pub fn open_windows(&self) -> usize {
        self.rec.open_windows()
    }

    /// Advances one control period: completes pending wakes, applies
    /// each tier policy at the new time, and closes passed windows.
    ///
    /// # Errors
    ///
    /// Propagates recorder errors (none occur for a well-formed config).
    pub fn step(&mut self) -> Result<()> {
        let now = self.now.plus_nanos(self.cfg.step.as_nanos());
        let load = diurnal_load(now);
        for dev in &mut self.devs {
            // A wake that completed since the last step lands at its
            // exact ready time, not the step edge.
            if let Some(ready) = dev.wake_ready {
                if ready <= now {
                    self.rec.set_power(
                        dev.key,
                        ready,
                        Watts::new(dev.power_w),
                        PowerState::OnFull,
                    )?;
                    dev.state = PowerState::OnFull;
                    dev.wake_ready = None;
                }
            }
            // Per-device phase shift: devices within a tier see the
            // curve slightly offset, so transitions stagger.
            let shifted = now.plus_nanos((dev.rank as u64) * 97 * NS_PER_HOUR / 1024);
            let dev_load = diurnal_load(shifted).max(load * 0.5);
            let (power_w, state) = policy(&self.cfg, dev.tier, dev.rank, dev_load, dev.state);
            match (dev.state, state) {
                // Park/unpark/level changes record an event.
                (from, to) if from != to || power_w != dev.power_w => {
                    if dev.state == PowerState::Waking && dev.wake_ready.is_some() {
                        // Mid-wake: hold the waking draw; just advance.
                        self.rec.advance(dev.key, now)?;
                    } else if to == PowerState::Waking {
                        self.rec.set_power(
                            dev.key,
                            now,
                            Watts::new(power_w),
                            PowerState::Waking,
                        )?;
                        dev.state = PowerState::Waking;
                        dev.power_w = power_w;
                        dev.wake_ready = Some(now.plus_nanos(self.cfg.spine_wake.as_nanos()));
                    } else {
                        self.rec.set_power(dev.key, now, Watts::new(power_w), to)?;
                        dev.state = to;
                        dev.power_w = power_w;
                    }
                }
                _ => {
                    self.rec.advance(dev.key, now)?;
                }
            }
        }
        self.now = now;
        Ok(())
    }

    /// Takes the window rows closed so far.
    pub fn drain_closed(&mut self) -> Vec<crate::powerscope::WindowRow> {
        self.rec.drain_closed()
    }

    /// Closes every device's final window at the current time and
    /// returns the recorder for inspection.
    ///
    /// # Errors
    ///
    /// Propagates [`Recorder::finish`] errors.
    pub fn finish(mut self) -> Result<Recorder> {
        self.rec.finish(self.now)?;
        Ok(self.rec)
    }
}

/// The per-tier policy: maps (tier, rank, load, previous state) to a
/// power draw and power state.
fn policy(
    cfg: &DiurnalFleetConfig,
    tier: Tier,
    rank: usize,
    load: f64,
    prev: PowerState,
) -> (f64, PowerState) {
    let load = load.clamp(0.0, 1.0);
    match tier {
        Tier::Host => {
            let p = cfg.host_idle_w + (cfg.host_peak_w - cfg.host_idle_w) * load;
            let s = if load >= 0.95 {
                PowerState::OnFull
            } else {
                PowerState::OnLow
            };
            (p, s)
        }
        Tier::Tor | Tier::Agg => {
            let (st, dy) = if tier == Tier::Tor {
                (cfg.tor_static_w, cfg.tor_dynamic_w)
            } else {
                (cfg.agg_static_w, cfg.agg_dynamic_w)
            };
            let freq = (load / cfg.target_utilization).clamp(0.25, 1.0);
            let s = if freq >= 1.0 {
                PowerState::OnFull
            } else {
                PowerState::OnLow
            };
            (st + dy * freq, s)
        }
        Tier::Spine => {
            // Staggered thresholds: spine k parks below its own floor,
            // so capacity follows the valley device by device.
            let threshold = 0.25 + 0.5 * (rank as f64 + 1.0) / 8.0;
            if load < threshold {
                (0.0, PowerState::Off)
            } else {
                match prev {
                    PowerState::Off => (cfg.spine_peak_w, PowerState::Waking),
                    PowerState::Waking => (cfg.spine_peak_w, PowerState::Waking),
                    _ => (cfg.spine_peak_w, PowerState::OnFull),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_curve_is_periodic_and_bounded() {
        for h in 0..48u64 {
            let l = diurnal_load(SimTime::from_nanos(h * NS_PER_HOUR));
            assert!((0.0..=1.0).contains(&l), "hour {h}: {l}");
        }
        // Deep valley at 4am, peak at 7pm.
        let valley = diurnal_load(SimTime::from_nanos(4 * NS_PER_HOUR));
        let peak = diurnal_load(SimTime::from_nanos(19 * NS_PER_HOUR));
        assert!(valley < 0.2 && peak > 0.9);
        // Weekend damping on day 5.
        let weekday = diurnal_load(SimTime::from_nanos(19 * NS_PER_HOUR));
        let weekend = diurnal_load(SimTime::from_nanos(5 * NS_PER_DAY + 19 * NS_PER_HOUR));
        assert!(weekend < weekday);
    }

    #[test]
    fn one_day_exercises_every_state_with_bounded_live_state() {
        let cfg = DiurnalFleetConfig {
            hosts: 4,
            tors: 2,
            aggs: 2,
            spines: 3,
            step: SimTime::from_secs(300),
            ..DiurnalFleetConfig::paper_pod()
        };
        let devices = cfg.hosts + cfg.tors + cfg.aggs + cfg.spines;
        let window = WindowConfig::from_nanos(NS_PER_HOUR).unwrap();
        let mut fleet = DiurnalFleet::new(cfg, window).unwrap();
        let mut seen = [false; crate::powerscope::STATE_COUNT];
        let mut rows = 0usize;
        let mut max_pending = 0usize;
        while fleet.now() < SimTime::from_nanos(NS_PER_DAY) {
            fleet.step().unwrap();
            assert_eq!(fleet.open_windows(), devices);
            let drained = fleet.drain_closed();
            max_pending = max_pending.max(drained.len());
            for r in &drained {
                for s in PowerState::all() {
                    if r.residency_ns[s.index()] > 0 {
                        seen[s.index()] = true;
                    }
                }
            }
            rows += drained.len();
        }
        let rec = fleet.finish().unwrap();
        assert!(
            rows > 20 * devices,
            "expected ~24 windows x {devices} devices, got {rows}"
        );
        // Drained each step: pending never exceeds one boundary's worth.
        assert!(max_pending <= devices);
        assert!(seen.iter().all(|s| *s), "states seen: {seen:?}");
        let _ = rec;
    }

    #[test]
    fn fleet_run_is_deterministic() {
        let run = || {
            let cfg = DiurnalFleetConfig {
                hosts: 2,
                tors: 1,
                aggs: 1,
                spines: 2,
                step: SimTime::from_secs(600),
                ..DiurnalFleetConfig::paper_pod()
            };
            let mut fleet =
                DiurnalFleet::new(cfg, WindowConfig::from_nanos(NS_PER_HOUR).unwrap()).unwrap();
            let mut rows = Vec::new();
            while fleet.now() < SimTime::from_nanos(NS_PER_DAY / 2) {
                fleet.step().unwrap();
                rows.extend(fleet.drain_closed());
            }
            let mut rec = fleet.finish().unwrap();
            rows.extend(rec.drain_closed());
            rows
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn rejects_degenerate_configs() {
        let window = WindowConfig::from_nanos(NS_PER_HOUR).unwrap();
        let empty = DiurnalFleetConfig {
            hosts: 0,
            tors: 0,
            aggs: 0,
            spines: 0,
            ..DiurnalFleetConfig::paper_pod()
        };
        assert!(DiurnalFleet::new(empty, window).is_err());
        let zero_step = DiurnalFleetConfig {
            step: SimTime::ZERO,
            ..DiurnalFleetConfig::paper_pod()
        };
        assert!(DiurnalFleet::new(zero_step, window).is_err());
    }
}
