//! Deterministic flow-set generators for the fluid-simulator hot path.
//!
//! The same scenario feeds three consumers — the `simnet_hotpath`
//! benchmark, the `netpp bench-json` perf emitter, and the differential
//! test suite — so speedup numbers, the committed `BENCH_simnet.json`
//! trajectory, and the equivalence tests all talk about identical work.
//! Everything here is a pure function of its arguments: no RNG, no
//! wall clock.

use npp_topology::builder::leaf_spine;
use npp_topology::graph::{NodeId, Topology};
use npp_units::Gbps;

use crate::{Result, SimTime};

/// One flow of a generated scenario, in injection order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowSpec {
    /// Injection time.
    pub at: SimTime,
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Flow size in bytes.
    pub bytes: f64,
    /// ECMP path selector.
    pub path_choice: usize,
}

/// A generated scenario: a topology plus the flows to inject.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Human-readable scenario tag (recorded in `BENCH_simnet.json`).
    pub name: String,
    /// The fabric.
    pub topo: Topology,
    /// Flows in injection order.
    pub flows: Vec<FlowSpec>,
}

impl Scenario {
    /// Injects every flow into `sim` via the given closure (both the
    /// indexed and the naive engine share the `inject` signature).
    ///
    /// # Errors
    ///
    /// Propagates the first injection error.
    pub fn inject_into<E>(
        &self,
        mut inject: impl FnMut(SimTime, NodeId, NodeId, f64, usize) -> std::result::Result<(), E>,
    ) -> std::result::Result<(), E> {
        for f in &self.flows {
            inject(f.at, f.src, f.dst, f.bytes, f.path_choice)?;
        }
        Ok(())
    }
}

/// The hot-path scenario: `n_flows` bulk flows on an 8-leaf × 4-spine
/// 100 G fabric (64 hosts), injected with a fixed stagger so tens of
/// flows are live at any instant and every event reshuffles a shared
/// bottleneck cascade. Sources, destinations, sizes, and ECMP choices
/// follow fixed affine sequences, so the scenario is identical across
/// processes and machines.
///
/// # Errors
///
/// Propagates topology-construction errors (none for the fixed shape).
pub fn hotpath_scenario(n_flows: usize) -> Result<Scenario> {
    const LEAVES: usize = 8;
    const SPINES: usize = 4;
    const HOSTS_PER_LEAF: usize = 8;
    let topo = leaf_spine(LEAVES, SPINES, HOSTS_PER_LEAF, Gbps::new(100.0))
        .map_err(|e| crate::SimError::Config(format!("scenario topology: {e}")))?;
    let hosts = topo.hosts();
    let n = hosts.len();
    // 20 µs stagger with 1–4 MB flows keeps roughly 25–40 flows live:
    // enough sharing to make every completion a waterfill cascade,
    // small enough that the naive reference engine finishes a 1k-flow
    // run in seconds rather than minutes.
    const STAGGER_NS: u64 = 20_000;
    let mut flows = Vec::with_capacity(n_flows);
    for f in 0..n_flows {
        let src = f % n;
        let mut dst = (f * 17 + 5) % n;
        if dst == src {
            dst = (dst + 1) % n;
        }
        flows.push(FlowSpec {
            at: SimTime::from_nanos(f as u64 * STAGGER_NS),
            src: hosts[src],
            dst: hosts[dst],
            bytes: (1 + f % 4) as f64 * 1e6,
            path_choice: f,
        });
    }
    Ok(Scenario {
        name: format!("hotpath/leafspine-{LEAVES}x{SPINES}x{HOSTS_PER_LEAF}/{n_flows}-flows"),
        topo,
        flows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netsim::NetSim;

    #[test]
    fn scenario_is_deterministic_and_runnable() {
        let a = hotpath_scenario(64).unwrap();
        let b = hotpath_scenario(64).unwrap();
        assert_eq!(a.flows, b.flows);
        assert_eq!(a.name, b.name);

        let mut sim = NetSim::new(a.topo.clone());
        a.inject_into(|at, src, dst, bytes, pc| sim.inject(at, src, dst, bytes, pc).map(|_| ()))
            .unwrap();
        sim.run().unwrap();
        assert!(sim.makespan().is_some());
        assert_eq!(sim.flow_count(), 64);
        assert!(sim.peak_live_flows() >= 2);
    }
}
