//! Deterministic flow-set generators for the fluid-simulator hot path.
//!
//! The same scenario feeds three consumers — the `simnet_hotpath`
//! benchmark, the `netpp bench-json` perf emitter, and the differential
//! test suite — so speedup numbers, the committed `BENCH_simnet.json`
//! trajectory, and the equivalence tests all talk about identical work.
//! Everything here is a pure function of its arguments: no RNG, no
//! wall clock.

use npp_topology::builder::{fat_tree_pods, fat_tree_pods_spine, leaf_spine};
use npp_topology::graph::{NodeId, Topology};
use npp_units::Gbps;

use crate::{Result, SimTime};

/// One flow of a generated scenario, in injection order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowSpec {
    /// Injection time.
    pub at: SimTime,
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Flow size in bytes.
    pub bytes: f64,
    /// ECMP path selector.
    pub path_choice: usize,
}

/// A generated scenario: a topology plus the flows to inject.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Human-readable scenario tag (recorded in `BENCH_simnet.json`).
    pub name: String,
    /// The fabric.
    pub topo: Topology,
    /// Flows in injection order.
    pub flows: Vec<FlowSpec>,
}

impl Scenario {
    /// Injects every flow into `sim` via the given closure (both the
    /// indexed and the naive engine share the `inject` signature).
    ///
    /// # Errors
    ///
    /// Propagates the first injection error.
    pub fn inject_into<E>(
        &self,
        mut inject: impl FnMut(SimTime, NodeId, NodeId, f64, usize) -> std::result::Result<(), E>,
    ) -> std::result::Result<(), E> {
        for f in &self.flows {
            inject(f.at, f.src, f.dst, f.bytes, f.path_choice)?;
        }
        Ok(())
    }
}

/// The hot-path scenario: `n_flows` bulk flows on an 8-leaf × 4-spine
/// 100 G fabric (64 hosts), injected with a fixed stagger so tens of
/// flows are live at any instant and every event reshuffles a shared
/// bottleneck cascade. Sources, destinations, sizes, and ECMP choices
/// follow fixed affine sequences, so the scenario is identical across
/// processes and machines.
///
/// # Errors
///
/// Propagates topology-construction errors (none for the fixed shape).
pub fn hotpath_scenario(n_flows: usize) -> Result<Scenario> {
    const LEAVES: usize = 8;
    const SPINES: usize = 4;
    const HOSTS_PER_LEAF: usize = 8;
    let topo = leaf_spine(LEAVES, SPINES, HOSTS_PER_LEAF, Gbps::new(100.0))
        .map_err(|e| crate::SimError::Config(format!("scenario topology: {e}")))?;
    let hosts = topo.hosts();
    let n = hosts.len();
    // 20 µs stagger with 1–4 MB flows keeps roughly 25–40 flows live:
    // enough sharing to make every completion a waterfill cascade,
    // small enough that the naive reference engine finishes a 1k-flow
    // run in seconds rather than minutes.
    const STAGGER_NS: u64 = 20_000;
    let mut flows = Vec::with_capacity(n_flows);
    for f in 0..n_flows {
        let src = f % n;
        let mut dst = (f * 17 + 5) % n;
        if dst == src {
            dst = (dst + 1) % n;
        }
        flows.push(FlowSpec {
            at: SimTime::from_nanos(f as u64 * STAGGER_NS),
            src: hosts[src],
            dst: hosts[dst],
            bytes: (1 + f % 4) as f64 * 1e6,
            path_choice: f,
        });
    }
    Ok(Scenario {
        name: format!("hotpath/leafspine-{LEAVES}x{SPINES}x{HOSTS_PER_LEAF}/{n_flows}-flows"),
        topo,
        flows,
    })
}

/// The datacenter-scale scenario for the component-sharded parallel
/// engine: disconnected fat-tree pods ([`fat_tree_pods`]) under a
/// round-based bulk workload, sized by the requested flow count:
///
/// - `n_flows < 4096`: 4 pods of k=4 (64 hosts) — small enough for the
///   naive differential oracle;
/// - `n_flows < 65536`: 8 pods of k=8 (1,024 hosts);
/// - otherwise: **15 pods of k=16 — 15,360 hosts, the paper's
///   15,360-GPU fabric** — where one full round keeps 122,880 flows
///   concurrently live.
///
/// See [`pod_fattree_scenario_with`] for the workload structure.
///
/// # Errors
///
/// Propagates topology-construction errors (none for the fixed shapes).
pub fn pod_fattree_scenario(n_flows: usize) -> Result<Scenario> {
    let (pods, k, flights) = if n_flows < 4096 {
        (4, 4, 4)
    } else if n_flows < 65536 {
        (8, 8, 8)
    } else {
        (15, 16, 8)
    };
    pod_fattree_scenario_with(pods, k, flights, n_flows)
}

/// Explicit-shape variant of [`pod_fattree_scenario`]: `pods`
/// disconnected k-ary fat-tree planes at 400 G, loaded in rounds where
/// every host launches `flights` simultaneous intra-plane flows (flight
/// `j` goes `13·(j+1)` hosts ahead, modulo the plane) and rounds repeat
/// every 2 ms with a 1–4 MB cycling flow size.
///
/// Two properties are load-bearing:
///
/// - **all of a round's flows share one injection timestamp**, so peak
///   concurrency equals a full round (`hosts × flights`) and the
///   release lands in a single fluid epoch;
/// - **every plane receives an identical workload** (sources,
///   destinations, sizes, and path choices depend only on the
///   within-plane host index), and planes are built in identical order,
///   so plane dynamics are bit-identical and completions tie *exactly*
///   across planes. The serial engine then pays one waterfill over
///   every plane at once per epoch, while the sharded engine pays one
///   per-plane waterfill per worker — which is precisely the advantage
///   the scaling benchmark measures.
///
/// Everything is a pure function of the arguments: no RNG, no clock.
///
/// # Errors
///
/// Propagates topology-construction errors (zero pods, odd `k`).
pub fn pod_fattree_scenario_with(
    pods: usize,
    k: usize,
    flights: usize,
    n_flows: usize,
) -> Result<Scenario> {
    const STRIDE: usize = 13;
    const BASE_BYTES: f64 = 1e6;
    const ROUND_GAP_NS: u64 = 2_000_000;
    let topo = fat_tree_pods(pods, k, Gbps::new(400.0))
        .map_err(|e| crate::SimError::Config(format!("scenario topology: {e}")))?;
    if flights == 0 {
        return Err(crate::SimError::Config(
            "pod scenario needs at least one flight per host".into(),
        ));
    }
    let hosts = topo.hosts();
    let n = hosts.len();
    let plane_hosts = k * k * k / 4;
    let wave = n * flights;
    let mut flows = Vec::with_capacity(n_flows);
    for f in 0..n_flows {
        let round = f / wave;
        let slot = f % wave;
        let h = slot % n;
        let flight = slot / n;
        let plane = h / plane_hosts;
        let h_in = h % plane_hosts;
        let mut dst_in = (h_in + STRIDE * (flight + 1)) % plane_hosts;
        if dst_in == h_in {
            // Only possible when the stride wraps to zero (tiny planes);
            // the adjustment depends on h_in alone, preserving the
            // cross-plane isomorphism.
            dst_in = (dst_in + 1) % plane_hosts;
        }
        flows.push(FlowSpec {
            at: SimTime::from_nanos(round as u64 * ROUND_GAP_NS),
            src: hosts[h],
            dst: hosts[plane * plane_hosts + dst_in],
            bytes: BASE_BYTES * (1 + round % 4) as f64,
            path_choice: flight + h_in,
        });
    }
    Ok(Scenario {
        name: format!("podfabric/fat-tree-pods-{pods}x{k}-{n}hosts/{n_flows}-flows"),
        topo,
        flows,
    })
}

/// The single-giant-component scenario: the same fat-tree planes as
/// [`pod_fattree_scenario`], but joined through a shared datacenter
/// spine ([`fat_tree_pods_spine`]) and seasoned with cross-plane flows,
/// so every flow lands in **one** link-sharing component. Component
/// sharding gets zero parallelism here; whatever speedup the scaling
/// matrix reports at this row is entirely the within-component
/// splitter's. Sized by flow count like the pod scenario:
///
/// - `n_flows < 4096`: 4 planes of k=4 over 2 spines (64 hosts);
/// - otherwise: 15 planes of k=16 over 4 spines (15,360 hosts — the
///   pod scenario's ≥65k-flow fabric, spine-joined), whose round
///   capacity (`hosts × flights = 122,895`) swallows 65,536 flows in
///   a single wave: peak concurrency is the whole workload and the
///   serial engine pays one-component waterfills at full width.
///
/// # Errors
///
/// Propagates topology-construction errors (none for the fixed shapes).
pub fn spine_fattree_scenario(n_flows: usize) -> Result<Scenario> {
    let (pods, k, spines, flights) = if n_flows < 4096 {
        (4, 4, 2, 4)
    } else {
        (15, 16, 4, 8)
    };
    spine_fattree_scenario_with(pods, k, spines, flights, n_flows)
}

/// Explicit-shape variant of [`spine_fattree_scenario`]. The workload
/// mirrors [`pod_fattree_scenario_with`] — rounds of `flights`
/// simultaneous intra-plane flows per host, every 2 ms, 1–4 MB cycling
/// sizes — with one addition: each round also launches one cross-plane
/// flow per plane (plane `p` → plane `p+1`), routed over the shared
/// datacenter spine. Those few cross flows stitch every plane's links
/// into a single component, so the serial waterfill must scan the whole
/// fabric at every fixing round; once they are fixed, the residual
/// graph falls apart into per-plane (and finer) regions — exactly the
/// structure the within-component splitter exploits. The varied
/// per-flight strides keep intra-plane sharing rich so completions
/// stagger and every epoch pays a full recompute.
///
/// Everything is a pure function of the arguments: no RNG, no clock.
///
/// # Errors
///
/// Propagates topology-construction errors (zero pods/spines, odd `k`).
pub fn spine_fattree_scenario_with(
    pods: usize,
    k: usize,
    spines: usize,
    flights: usize,
    n_flows: usize,
) -> Result<Scenario> {
    const STRIDE: usize = 13;
    const BASE_BYTES: f64 = 1e6;
    const ROUND_GAP_NS: u64 = 2_000_000;
    let topo = fat_tree_pods_spine(pods, k, spines, Gbps::new(400.0))
        .map_err(|e| crate::SimError::Config(format!("scenario topology: {e}")))?;
    if flights == 0 {
        return Err(crate::SimError::Config(
            "spine scenario needs at least one flight per host".into(),
        ));
    }
    let hosts = topo.hosts();
    let n = hosts.len();
    let plane_hosts = k * k * k / 4;
    // One round = one spine-crossing flow per plane gluing the planes
    // together, then every host's intra-plane flights. The glue leads
    // the round so even a truncated final round stays one component.
    let wave = n * flights + pods;
    let mut flows = Vec::with_capacity(n_flows);
    for f in 0..n_flows {
        let round = f / wave;
        let slot = f % wave;
        let at = SimTime::from_nanos(round as u64 * ROUND_GAP_NS);
        let bytes = BASE_BYTES * (1 + round % 4) as f64;
        if slot >= pods {
            let slot = slot - pods;
            let h = slot % n;
            let flight = slot / n;
            let plane = h / plane_hosts;
            let h_in = h % plane_hosts;
            let mut dst_in = (h_in + STRIDE * (flight + 1)) % plane_hosts;
            if dst_in == h_in {
                dst_in = (dst_in + 1) % plane_hosts;
            }
            flows.push(FlowSpec {
                at,
                src: hosts[h],
                dst: hosts[plane * plane_hosts + dst_in],
                bytes,
                path_choice: flight + h_in,
            });
        } else {
            // Cross-plane glue: plane p → plane p+1, the endpoint host
            // walking the plane round by round so spine load spreads
            // over edges and pods while staying a pure function of f.
            let p = slot;
            let src_in = (round * 7 + p * 3) % plane_hosts;
            let dst_in = (round * 7 + p * 3 + 31) % plane_hosts;
            flows.push(FlowSpec {
                at,
                src: hosts[p * plane_hosts + src_in],
                dst: hosts[((p + 1) % pods) * plane_hosts + dst_in],
                bytes,
                path_choice: round + p,
            });
        }
    }
    Ok(Scenario {
        name: format!(
            "spinefabric/fat-tree-pods-spine-{pods}x{k}s{spines}-{n}hosts/{n_flows}-flows"
        ),
        topo,
        flows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netsim::NetSim;

    #[test]
    fn scenario_is_deterministic_and_runnable() {
        let a = hotpath_scenario(64).unwrap();
        let b = hotpath_scenario(64).unwrap();
        assert_eq!(a.flows, b.flows);
        assert_eq!(a.name, b.name);

        let mut sim = NetSim::new(a.topo.clone());
        a.inject_into(|at, src, dst, bytes, pc| sim.inject(at, src, dst, bytes, pc).map(|_| ()))
            .unwrap();
        sim.run().unwrap();
        assert!(sim.makespan().is_some());
        assert_eq!(sim.flow_count(), 64);
        assert!(sim.peak_live_flows() >= 2);
    }

    #[test]
    fn pod_scenario_is_deterministic_and_plane_symmetric() {
        let a = pod_fattree_scenario_with(2, 4, 2, 128).unwrap();
        let b = pod_fattree_scenario_with(2, 4, 2, 128).unwrap();
        assert_eq!(a.flows, b.flows);
        assert_eq!(a.name, b.name);
        // Every plane gets an identical workload: flow i of plane 0 and
        // its counterpart in plane 1 differ only by the host offset.
        let plane_hosts = 16;
        let hosts = a.topo.hosts();
        let wave = hosts.len(); // one flight spans all hosts
        for i in 0..plane_hosts.min(a.flows.len()) {
            let f0 = &a.flows[i];
            let f1 = &a.flows[i + plane_hosts];
            assert_eq!(f0.bytes, f1.bytes);
            assert_eq!(f0.at, f1.at);
            assert_eq!(f0.path_choice, f1.path_choice);
            let _ = wave;
        }
    }

    #[test]
    fn pod_scenario_runs_and_shards_bit_identically() {
        let s = pod_fattree_scenario_with(2, 4, 2, 96).unwrap();
        let run = |threads: usize| {
            let mut sim = NetSim::new(s.topo.clone());
            s.inject_into(|at, src, dst, bytes, pc| {
                sim.inject(at, src, dst, bytes, pc).map(|_| ())
            })
            .unwrap();
            sim.run_threads(threads).unwrap();
            sim
        };
        let serial = run(1);
        assert!(serial.makespan().is_some());
        assert!(serial.peak_live_flows() >= 64, "a full round is concurrent");
        for threads in [2, 8] {
            let par = run(threads);
            assert_eq!(
                par.state_digest(),
                serial.state_digest(),
                "threads={threads}"
            );
            // Two isolated planes ⇒ at least two components to shard.
            assert!(par.engine_metrics().components >= 2);
        }
    }

    #[test]
    fn spine_scenario_is_one_component_and_thread_identical() {
        let s = spine_fattree_scenario_with(2, 4, 1, 2, 80).unwrap();
        let run = |threads: usize| {
            let mut sim = NetSim::new(s.topo.clone());
            s.inject_into(|at, src, dst, bytes, pc| {
                sim.inject(at, src, dst, bytes, pc).map(|_| ())
            })
            .unwrap();
            if threads == 0 {
                sim.run().unwrap();
            } else {
                sim.set_parallel_fanout_min(1);
                sim.run_threads(threads).unwrap();
            }
            sim
        };
        let serial = run(0);
        assert!(serial.makespan().is_some());
        // The spine glue makes the whole fabric one component.
        assert_eq!(serial.engine_metrics().components, 1);
        for threads in [2, 8] {
            let par = run(threads);
            assert_eq!(
                par.state_digest(),
                serial.state_digest(),
                "threads={threads}"
            );
            assert_eq!(par.engine_metrics().components, 1);
        }
    }

    #[test]
    fn spine_scenario_tiers_by_flow_count() {
        let small = spine_fattree_scenario(64).unwrap();
        assert!(small.name.contains("fat-tree-pods-spine-4x4s2"));
        assert_eq!(small.topo.hosts().len(), 64);
        let big = spine_fattree_scenario(65536).unwrap();
        assert!(big.name.contains("fat-tree-pods-spine-15x16s4"));
        assert_eq!(big.topo.hosts().len(), 15360);
        // Determinism across calls.
        assert_eq!(small.flows, spine_fattree_scenario(64).unwrap().flows);
    }

    #[test]
    fn pod_scenario_tiers_by_flow_count() {
        let small = pod_fattree_scenario(64).unwrap();
        assert!(small.name.contains("fat-tree-pods-4x4"));
        assert_eq!(small.topo.hosts().len(), 64);
        let mid = pod_fattree_scenario(5000).unwrap();
        assert!(mid.name.contains("fat-tree-pods-8x8"));
        assert_eq!(mid.topo.hosts().len(), 1024);
    }
}
