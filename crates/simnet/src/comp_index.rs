//! Persistent connected-component index over directed links.
//!
//! The parallel runtime shards work by *link-sharing components*: two
//! flows belong to the same component when their paths are connected
//! through shared directed links. PR 6 rebuilt a union-find from the
//! full flow→link CSR on every `run_threads` call; this module replaces
//! that with a persistent index that is updated **incrementally**:
//!
//! - **Arrival** — a new flow unions its path links in O(path · α).
//! - **Departure** — a finished flow *cannot* be removed from a
//!   union-find cheaply, so departures are only *counted* (lazily, in
//!   epoch batches via [`CompIndex::observe_finished`]). The index
//!   therefore only ever **coarsens** over time: it may report two
//!   flows as connected after the flow that bridged them has finished.
//!
//! Coarsening is *safe* for sharding — a coarser partition never puts
//! two genuinely-connected flows in different shards, it only merges
//! shards that could have been split — so correctness never depends on
//! departures being applied. It is a *performance* concern: a stale
//! giant component serializes work that is actually parallel. The
//! escape hatch is the rebuild threshold: once at least
//! [`CompIndex::rebuild_floor`] departures have accumulated **and**
//! they amount to half the flows indexed since the last rebuild,
//! [`CompIndex::should_rebuild`] trips and the owner rebuilds from the
//! live paths at the next epoch boundary ([`CompIndex::rebuild`]).
//!
//! Both maintenance regimes are observable: `index_incremental_ops`
//! counts arrival unions, `index_rebuilds` counts from-scratch
//! rebuilds; both surface in `EngineMetrics` and the bench-json
//! scaling cells.
//!
//! Directed links come in `(link·2, link·2 + 1)` pairs sharing one
//! physical cable; the pairs are pre-unioned (here and after every
//! rebuild) so a component always owns both directions of its links,
//! matching the sharding granularity of the PR 6 runtime.

/// Persistent union-find over directed-link ids with arrival-time
/// unions, batched departure counting, and threshold rebuilds.
#[derive(Debug, Clone)]
pub struct CompIndex {
    /// Union-find parent array over directed links (path halving;
    /// roots are the smallest dirlink id reachable by the merge rule).
    parent: Vec<u32>,
    /// Flows whose paths have been absorbed (arrival watermark).
    flows_absorbed: usize,
    /// Finished-flow count at the last [`CompIndex::observe_finished`].
    finished_seen: usize,
    /// Departures accumulated since the last rebuild.
    departed_since_rebuild: usize,
    /// Flows contributing unions since the last rebuild (live flows at
    /// the rebuild plus arrivals since); the rebuild ratio denominator.
    basis: usize,
    /// Minimum accumulated departures before a rebuild can trip.
    rebuild_floor: usize,
    /// From-scratch rebuilds performed (`index_rebuilds`).
    rebuilds: u64,
    /// Arrival-time union operations (`index_incremental_ops`).
    incremental_ops: u64,
}

/// Default [`CompIndex::rebuild_floor`]: below this many departures a
/// rebuild cannot pay for itself.
const DEFAULT_REBUILD_FLOOR: usize = 1024;

impl CompIndex {
    /// Creates an index over `n_dirlinks` directed links with every
    /// direction pair pre-unioned and no flows absorbed.
    pub fn new(n_dirlinks: usize) -> Self {
        let mut idx = Self {
            parent: Vec::new(),
            flows_absorbed: 0,
            finished_seen: 0,
            departed_since_rebuild: 0,
            basis: 0,
            rebuild_floor: DEFAULT_REBUILD_FLOOR,
            rebuilds: 0,
            incremental_ops: 0,
        };
        idx.reset_links(n_dirlinks);
        idx
    }

    /// Resets the parent array to singletons and re-unions direction
    /// pairs. Shared by construction and rebuilds.
    fn reset_links(&mut self, n_dirlinks: usize) {
        self.parent.clear();
        self.parent.extend(0..n_dirlinks as u32);
        let mut l = 0;
        while l + 1 < n_dirlinks {
            self.union(l as u32, (l + 1) as u32);
            l += 2;
        }
    }

    /// Component root of directed link `dl` (path halving).
    pub fn root(&mut self, mut dl: u32) -> u32 {
        loop {
            let p = self.parent[dl as usize];
            if p == dl {
                return dl;
            }
            let gp = self.parent[p as usize];
            self.parent[dl as usize] = gp;
            dl = gp;
        }
    }

    /// Unions the components of `a` and `b`; the smaller root wins so
    /// component identity is stable under insertion order.
    fn union(&mut self, a: u32, b: u32) {
        let ra = self.root(a);
        let rb = self.root(b);
        if ra == rb {
            return;
        }
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent[hi as usize] = lo;
    }

    /// Number of flows whose paths have been absorbed so far.
    pub fn flows_absorbed(&self) -> usize {
        self.flows_absorbed
    }

    /// Absorbs flows `[flows_absorbed, total_flows)` by unioning each
    /// flow's path links — the incremental arrival update. `path_of`
    /// maps a flow index to its directed-link path (empty paths are
    /// fine; they contribute nothing).
    pub fn absorb_arrivals<'a>(
        &mut self,
        total_flows: usize,
        mut path_of: impl FnMut(usize) -> &'a [u32],
    ) {
        while self.flows_absorbed < total_flows {
            let path = path_of(self.flows_absorbed);
            if let Some((&first, rest)) = path.split_first() {
                for &dl in rest {
                    self.union(first, dl);
                    self.incremental_ops += 1;
                }
            }
            self.flows_absorbed += 1;
            self.basis += 1;
        }
    }

    /// Records the current total finished-flow count; the delta since
    /// the previous call accumulates as departures. Called once per
    /// epoch batch (and at run start), never per flow.
    pub fn observe_finished(&mut self, total_finished: usize) {
        let newly = total_finished.saturating_sub(self.finished_seen);
        self.finished_seen = total_finished;
        self.departed_since_rebuild += newly;
    }

    /// Whether accumulated departures justify a from-scratch rebuild:
    /// at least [`CompIndex::set_rebuild_floor`] departures *and* at
    /// least half of the flows indexed since the last rebuild.
    pub fn should_rebuild(&self) -> bool {
        self.departed_since_rebuild >= self.rebuild_floor
            && self.departed_since_rebuild * 2 >= self.basis
    }

    /// Rebuilds the index from the live flows' paths only, discarding
    /// every union contributed by departed flows. The caller passes the
    /// paths of unfinished flows; `live` is their count (the new
    /// rebuild-ratio basis).
    pub fn rebuild<'a>(&mut self, live_paths: impl IntoIterator<Item = &'a [u32]>) {
        let n = self.parent.len();
        self.reset_links(n);
        let mut live = 0usize;
        for path in live_paths {
            if let Some((&first, rest)) = path.split_first() {
                for &dl in rest {
                    self.union(first, dl);
                }
            }
            live += 1;
        }
        self.basis = live;
        self.departed_since_rebuild = 0;
        self.rebuilds += 1;
    }

    /// Overrides the departure floor below which rebuilds never trip
    /// (tests force eager rebuilds with a floor of 1).
    pub fn set_rebuild_floor(&mut self, floor: usize) {
        self.rebuild_floor = floor.max(1);
    }

    /// From-scratch rebuilds performed.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Arrival-time incremental union operations.
    pub fn incremental_ops(&self) -> u64 {
        self.incremental_ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paths_index(paths: &[Vec<u32>], n_dl: usize) -> CompIndex {
        let mut idx = CompIndex::new(n_dl);
        idx.absorb_arrivals(paths.len(), |i| &paths[i]);
        idx
    }

    #[test]
    fn direction_pairs_are_pre_unioned() {
        let mut idx = CompIndex::new(6);
        for l in 0..3u32 {
            assert_eq!(idx.root(l * 2), idx.root(l * 2 + 1));
        }
        assert_ne!(idx.root(0), idx.root(2));
    }

    #[test]
    fn arrivals_union_incrementally_and_watermark_advances() {
        let paths = vec![vec![0u32, 2], vec![4u32, 6]];
        let mut idx = paths_index(&paths, 8);
        assert_eq!(idx.flows_absorbed(), 2);
        assert_eq!(idx.root(0), idx.root(3));
        assert_ne!(idx.root(0), idx.root(4));
        assert_eq!(idx.incremental_ops(), 2);
        // Absorbing again with the same total is a no-op.
        idx.absorb_arrivals(2, |_| unreachable!("watermark already there"));
        // A later arrival bridges the two components.
        let all = [vec![0u32, 2], vec![4u32, 6], vec![2u32, 4]];
        idx.absorb_arrivals(3, |i| &all[i]);
        assert_eq!(idx.root(0), idx.root(6));
        assert_eq!(idx.incremental_ops(), 3);
    }

    #[test]
    fn departures_only_count_until_the_threshold_trips() {
        let paths = vec![vec![0u32, 2], vec![2u32, 4], vec![6u32]];
        let mut idx = paths_index(&paths, 8);
        idx.set_rebuild_floor(1);
        assert!(!idx.should_rebuild());
        // One of three flows gone: below the half ratio.
        idx.observe_finished(1);
        assert!(!idx.should_rebuild());
        // Two of three gone: floor met and ratio met.
        idx.observe_finished(2);
        assert!(idx.should_rebuild());
        // The index is still coarse (flow 1's bridge is stale) …
        assert_eq!(idx.root(0), idx.root(4));
        // … until the rebuild drops departed unions.
        let live: Vec<Vec<u32>> = vec![vec![6u32]];
        idx.rebuild(live.iter().map(Vec::as_slice));
        assert_ne!(idx.root(0), idx.root(4));
        assert_eq!(idx.rebuilds(), 1);
        assert!(!idx.should_rebuild());
    }

    #[test]
    fn default_floor_suppresses_small_rebuilds() {
        let paths = vec![vec![0u32, 2]; 10];
        let mut idx = paths_index(&paths, 4);
        idx.observe_finished(10);
        // Every flow departed, but 10 < the default floor.
        assert!(!idx.should_rebuild());
    }

    #[test]
    fn rebuild_resets_the_ratio_basis() {
        let paths: Vec<Vec<u32>> = (0..8).map(|i| vec![i * 2]).collect();
        let mut idx = paths_index(&paths, 16);
        idx.set_rebuild_floor(2);
        idx.observe_finished(4);
        assert!(idx.should_rebuild());
        let live: Vec<Vec<u32>> = (4..8).map(|i| vec![i * 2]).collect();
        idx.rebuild(live.iter().map(Vec::as_slice));
        // Basis is now 4 live flows; two more departures re-trip.
        idx.observe_finished(5);
        assert!(!idx.should_rebuild());
        idx.observe_finished(6);
        assert!(idx.should_rebuild());
    }
}
