//! PowerScope: streaming, windowed power/energy observability.
//!
//! [`Recorder`] folds the piecewise-constant power timeline of many
//! devices into fixed-width time windows *as simulation advances*:
//! per-device, per-[`Tier`], per-[`PowerState`] residency, transition
//! counts, and energy attribution, in O(devices × live windows) memory.
//! Closed windows are drained incrementally ([`Recorder::drain_closed`])
//! so a simulated month costs live state, not event history — ROADMAP
//! item 5's "windowed PowerTracker dwell aggregation".
//!
//! ## Bit-exact energy conservation
//!
//! The headline invariant: for any device, summing the emitted
//! per-window energies **in window order with plain `f64` addition**
//! reproduces [`PowerTracker::energy_until`] at every window boundary —
//! `to_bits`-identical, not approximately. Two mechanisms make that
//! true:
//!
//! 1. The recorder mirrors the tracker's accumulator: it performs the
//!    identical `acc += power * Δt` float operations in the identical
//!    order, so at any boundary `b` the *exact prefix energy*
//!    `P(b) = acc + current · Δt(last_change, b)` is the same expression
//!    (and therefore the same bits) the tracker would produce.
//! 2. Each window's energy is not the naive `P(b_k) − P(b_{k−1})`
//!    (subtraction re-rounds; sums would drift). Instead
//!    [`fit_increment`] searches the few-ULP neighbourhood of that
//!    difference for the unique `w` with
//!    `(S + w).to_bits() == P(b_k).to_bits()` where `S` is the running
//!    emitted sum. Rounding is monotone and non-skipping for increments
//!    no larger than the target, so the fit exists whenever power is
//!    non-negative (enforced at the API boundary) and the telescoped sum
//!    lands exactly on every prefix.
//!
//! Residency accounting needs no such care: dwell durations are integer
//! nanoseconds and sum exactly.

use npp_power::Tier;
use npp_units::Watts;

use crate::power_tracker::time_delta_secs;
use crate::{PowerTracker, Result, SimError, SimTime};

/// Number of power states tracked per device.
pub const STATE_COUNT: usize = 4;

/// Coarse power state of a device, index-addressable for residency
/// arrays (`state.index() < STATE_COUNT`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PowerState {
    /// Powered down (parked, gated, or sleeping).
    Off,
    /// Transitioning up: drawing power but not forwarding.
    Waking,
    /// Active below full performance (rate-adapted, down-clocked).
    OnLow,
    /// Active at full performance.
    OnFull,
}

impl PowerState {
    /// All states in residency-array order.
    pub const fn all() -> [PowerState; STATE_COUNT] {
        [
            PowerState::Off,
            PowerState::Waking,
            PowerState::OnLow,
            PowerState::OnFull,
        ]
    }

    /// Index into per-state residency arrays.
    pub const fn index(self) -> usize {
        match self {
            PowerState::Off => 0,
            PowerState::Waking => 1,
            PowerState::OnLow => 2,
            PowerState::OnFull => 3,
        }
    }

    /// Stable lowercase name used in `npp.power/v1` documents.
    pub const fn name(self) -> &'static str {
        match self {
            PowerState::Off => "off",
            PowerState::Waking => "waking",
            PowerState::OnLow => "on_low",
            PowerState::OnFull => "on_full",
        }
    }

    /// Classify a power draw against a device's peak: zero is [`Off`],
    /// within 0.1 % of peak is [`OnFull`], anything between is
    /// [`OnLow`]. Used when replaying a bare [`PowerTracker`], whose
    /// timeline does not distinguish `Waking` from powered-on draw.
    ///
    /// [`Off`]: PowerState::Off
    /// [`OnFull`]: PowerState::OnFull
    /// [`OnLow`]: PowerState::OnLow
    pub fn classify(power: Watts, peak: Watts) -> PowerState {
        if power.value() <= 0.0 {
            PowerState::Off
        } else if power.value() >= peak.value() * 0.999 {
            PowerState::OnFull
        } else {
            PowerState::OnLow
        }
    }
}

/// Windowing configuration: fixed bucket width in sim nanoseconds.
/// Window `k` covers `[k·width, (k+1)·width)` in absolute sim time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowConfig {
    width_ns: u64,
}

impl WindowConfig {
    /// A window width; must be positive.
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] when `width_ns` is zero.
    pub fn from_nanos(width_ns: u64) -> Result<Self> {
        if width_ns == 0 {
            return Err(SimError::Config(
                "powerscope window width must be > 0".into(),
            ));
        }
        Ok(WindowConfig { width_ns })
    }

    /// Window width in nanoseconds.
    pub const fn width_ns(&self) -> u64 {
        self.width_ns
    }
}

/// Identity and nameplate data for one recorded device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceMeta {
    /// Human-readable, report-stable name (e.g. `"tor3/pipeline1"`).
    pub name: String,
    /// Fabric tier, for roll-ups.
    pub tier: Tier,
    /// Nameplate peak draw, the denominator of proportionality ratios.
    pub peak: Watts,
}

/// Handle to a registered device (index into the recorder's tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceKey(usize);

impl DeviceKey {
    /// Index of this device in registration order (matches the order of
    /// [`Recorder::metas`] and the `device` field of [`WindowRow`]).
    pub const fn index(self) -> usize {
        self.0
    }
}

/// One closed window of one device.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowRow {
    /// Device index (registration order).
    pub device: usize,
    /// Absolute window index (`start of window = window · width`).
    pub window: u64,
    /// First covered nanosecond (> window start when the device
    /// registered mid-window).
    pub start_ns: u64,
    /// One past the last covered nanosecond.
    pub end_ns: u64,
    /// Energy attributed to this window. Summing these in window order
    /// with plain `f64` addition reproduces `energy_until` bit-exactly.
    pub energy_j: f64,
    /// Power-change events observed in the window.
    pub events: u32,
    /// State *transitions* (events whose [`PowerState`] differed from
    /// the previous one).
    pub transitions: u32,
    /// Residency in integer nanoseconds, indexed by
    /// [`PowerState::index`]; sums to `end_ns − start_ns`.
    pub residency_ns: [u64; STATE_COUNT],
}

impl WindowRow {
    /// Covered duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Average power over the covered duration (0 for empty windows).
    pub fn avg_w(&self) -> f64 {
        let d = self.duration_ns();
        if d == 0 {
            0.0
        } else {
            self.energy_j / (d as f64 * 1e-9)
        }
    }

    /// The state holding the plurality of the residency (ties resolve
    /// to the lower state index, i.e. toward `Off`).
    pub fn dominant_state(&self) -> PowerState {
        let mut best = PowerState::Off;
        let mut best_ns = 0u64;
        for s in PowerState::all() {
            let ns = self.residency_ns.get(s.index()).copied().unwrap_or(0);
            if ns > best_ns {
                best = s;
                best_ns = ns;
            }
        }
        best
    }
}

/// Per-device live state: one open window plus the mirror accumulator.
#[derive(Debug, Clone)]
struct DevState {
    /// Mirror of `PowerTracker::accumulated` — same adds, same order.
    acc: f64,
    /// Timestamp of the last power-change event (ns).
    last_change_ns: u64,
    /// Power since `last_change_ns` (validated finite, ≥ 0).
    current_w: f64,
    /// Exact prefix energy already emitted through closed windows.
    emitted: f64,
    /// Current power state.
    state: PowerState,
    /// Open window index.
    win_idx: u64,
    /// First nanosecond the open window covers.
    win_start_ns: u64,
    /// Residency accounted through here (≥ `last_change_ns`).
    cursor_ns: u64,
    /// Per-state dwell in the open window.
    resid: [u64; STATE_COUNT],
    /// Power-change events in the open window.
    events: u32,
    /// State transitions in the open window.
    transitions: u32,
}

fn window_end(win_idx: u64, width: u64) -> u64 {
    win_idx
        .checked_add(1)
        .and_then(|k| k.checked_mul(width))
        .unwrap_or(u64::MAX)
}

/// Next representable `f64` above `x` (bit-twiddled: `f64::next_up` is
/// not available at the workspace MSRV). NaN and +inf return `x`.
fn next_up(x: f64) -> f64 {
    let bits = x.to_bits();
    if x.is_nan() || bits == f64::INFINITY.to_bits() {
        return x;
    }
    let abs = bits & 0x7fff_ffff_ffff_ffff;
    let next = if abs == 0 {
        1 // smallest positive subnormal
    } else if bits == abs {
        bits + 1
    } else {
        bits - 1
    };
    f64::from_bits(next)
}

/// Next representable `f64` below `x`.
fn next_down(x: f64) -> f64 {
    -next_up(-x)
}

/// Finds `w` such that `(prev + w).to_bits() == target.to_bits()`.
///
/// Starts from the rounded difference and nudges by single ULPs. For
/// the recorder's inputs (non-negative monotone prefixes, so
/// `0 ≤ target − prev ≤ target`) the increment's ULP never exceeds the
/// target's, which makes `w ↦ fl(prev + w)` hit every representable
/// value in range — the search cannot skip over `target`. The iteration
/// bound is pure defence; the fix-up loop terminates in ≤ 2 steps in
/// practice.
fn fit_increment(prev: f64, target: f64) -> f64 {
    let mut w = target - prev;
    for _ in 0..4096 {
        let got = prev + w;
        if got.to_bits() == target.to_bits() {
            return w;
        }
        w = if got < target {
            next_up(w)
        } else {
            next_down(w)
        };
    }
    target - prev
}

/// Streaming windowed residency/energy recorder over many devices.
///
/// Feed it the same power-change events a [`PowerTracker`] sees (or
/// replay a finished tracker with [`Recorder::ingest_tracker`]); drain
/// closed windows incrementally with [`Recorder::drain_closed`]. Live
/// memory is O(devices): exactly one open window per device, regardless
/// of horizon or event count.
#[derive(Debug, Clone)]
pub struct Recorder {
    cfg: WindowConfig,
    metas: Vec<DeviceMeta>,
    devs: Vec<DevState>,
    closed: Vec<WindowRow>,
    finished: bool,
}

impl Recorder {
    /// A recorder with no devices yet.
    pub fn new(cfg: WindowConfig) -> Self {
        Recorder {
            cfg,
            metas: Vec::new(),
            devs: Vec::new(),
            closed: Vec::new(),
            finished: false,
        }
    }

    /// The window configuration.
    pub fn config(&self) -> WindowConfig {
        self.cfg
    }

    /// Registered device metadata, in registration order.
    pub fn metas(&self) -> &[DeviceMeta] {
        &self.metas
    }

    /// Number of registered devices.
    pub fn device_count(&self) -> usize {
        self.metas.len()
    }

    /// Number of live (open) windows — one per device until
    /// [`Recorder::finish`]; the bound on resident state.
    pub fn open_windows(&self) -> usize {
        if self.finished {
            0
        } else {
            self.devs.len()
        }
    }

    /// Closed-but-undrained window rows currently buffered.
    pub fn pending_rows(&self) -> usize {
        self.closed.len()
    }

    /// Registers a device that starts drawing `power` in `state` at
    /// `start`.
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] when `power` is negative or non-finite, or
    /// the recorder is already finished.
    pub fn register(
        &mut self,
        meta: DeviceMeta,
        start: SimTime,
        power: Watts,
        state: PowerState,
    ) -> Result<DeviceKey> {
        self.check_live()?;
        check_power(power)?;
        let start_ns = start.as_nanos();
        let key = DeviceKey(self.metas.len());
        self.metas.push(meta);
        self.devs.push(DevState {
            acc: 0.0,
            last_change_ns: start_ns,
            current_w: power.value(),
            emitted: 0.0,
            state,
            win_idx: start_ns / self.cfg.width_ns,
            win_start_ns: start_ns,
            cursor_ns: start_ns,
            resid: [0; STATE_COUNT],
            events: 0,
            transitions: 0,
        });
        Ok(key)
    }

    /// Records a power/state change at `t`, closing any windows the
    /// device has moved past. Mirrors [`PowerTracker::set_power`]
    /// arithmetic exactly.
    ///
    /// # Errors
    ///
    /// [`SimError::TimeReversal`] if `t` precedes the device's cursor;
    /// [`SimError::BadIndex`] for a foreign key; [`SimError::Config`]
    /// for invalid power or a finished recorder.
    pub fn set_power(
        &mut self,
        dev: DeviceKey,
        t: SimTime,
        power: Watts,
        state: PowerState,
    ) -> Result<()> {
        self.check_live()?;
        check_power(power)?;
        let width = self.cfg.width_ns;
        let Recorder { devs, closed, .. } = self;
        let bound = devs.len();
        let d = devs.get_mut(dev.0).ok_or(SimError::BadIndex {
            what: "powerscope device",
            index: dev.0,
            bound,
        })?;
        let t_ns = t.as_nanos();
        if t_ns < d.cursor_ns {
            return Err(SimError::TimeReversal {
                now_ns: d.cursor_ns,
                requested_ns: t_ns,
            });
        }
        close_windows_through(width, dev.0, d, t_ns, closed);
        accrue_residency(d, t_ns);
        // The mirror: identical operation, identical order, to
        // `PowerTracker::set_power`.
        d.acc += d.current_w * time_delta_secs(SimTime::from_nanos(d.last_change_ns), t);
        d.last_change_ns = t_ns;
        d.events = d.events.saturating_add(1);
        if state != d.state {
            d.transitions = d.transitions.saturating_add(1);
            d.state = state;
        }
        d.current_w = power.value();
        Ok(())
    }

    /// Advances a device's window cursor to `t` without recording an
    /// event: closes passed windows and accrues residency, leaving the
    /// energy mirror untouched. Streaming drivers call this on idle
    /// devices so window rows surface promptly.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Recorder::set_power`] (minus power checks).
    pub fn advance(&mut self, dev: DeviceKey, t: SimTime) -> Result<()> {
        self.check_live()?;
        let width = self.cfg.width_ns;
        let Recorder { devs, closed, .. } = self;
        let bound = devs.len();
        let d = devs.get_mut(dev.0).ok_or(SimError::BadIndex {
            what: "powerscope device",
            index: dev.0,
            bound,
        })?;
        let t_ns = t.as_nanos();
        if t_ns < d.cursor_ns {
            return Err(SimError::TimeReversal {
                now_ns: d.cursor_ns,
                requested_ns: t_ns,
            });
        }
        close_windows_through(width, dev.0, d, t_ns, closed);
        accrue_residency(d, t_ns);
        Ok(())
    }

    /// Replays a [`PowerTracker`]'s recorded change points into a new
    /// device, classifying each power level into a [`PowerState`] via
    /// `classify`. The mirror accumulator repeats the tracker's float
    /// operations verbatim, so subsequent window sums reproduce the
    /// tracker's `energy_until` bit-for-bit.
    ///
    /// # Errors
    ///
    /// Propagates registration/event errors (an empty tracker cannot
    /// occur: construction always records the initial level).
    pub fn ingest_tracker(
        &mut self,
        meta: DeviceMeta,
        tracker: &PowerTracker,
        classify: &dyn Fn(Watts) -> PowerState,
    ) -> Result<DeviceKey> {
        let mut changes = tracker.changes().iter().copied();
        let (start, initial) = changes
            .next()
            .ok_or_else(|| SimError::Config("power tracker with no recorded changes".into()))?;
        let key = self.register(meta, start, initial, classify(initial))?;
        for (t, power) in changes {
            self.set_power(key, t, power, classify(power))?;
        }
        Ok(key)
    }

    /// Closes every device's final (possibly partial) window at `end`.
    /// After this the recorder accepts no further events; the sum of all
    /// emitted energies per device equals that device's
    /// `energy_until(end)` bit-exactly.
    ///
    /// # Errors
    ///
    /// [`SimError::TimeReversal`] if `end` precedes any device's
    /// cursor; [`SimError::Config`] if already finished.
    pub fn finish(&mut self, end: SimTime) -> Result<()> {
        self.check_live()?;
        let end_ns = end.as_nanos();
        for d in &self.devs {
            if end_ns < d.cursor_ns {
                return Err(SimError::TimeReversal {
                    now_ns: d.cursor_ns,
                    requested_ns: end_ns,
                });
            }
        }
        let width = self.cfg.width_ns;
        let Recorder { devs, closed, .. } = &mut *self;
        for (idx, d) in devs.iter_mut().enumerate() {
            close_windows_through(width, idx, d, end_ns, closed);
            accrue_residency(d, end_ns);
            if end_ns > d.win_start_ns {
                let p = exact_prefix(d, end_ns);
                let w = fit_increment(d.emitted, p);
                closed.push(WindowRow {
                    device: idx,
                    window: d.win_idx,
                    start_ns: d.win_start_ns,
                    end_ns,
                    energy_j: w,
                    events: d.events,
                    transitions: d.transitions,
                    residency_ns: d.resid,
                });
                d.emitted = p;
                d.win_start_ns = end_ns;
            }
        }
        self.finished = true;
        Ok(())
    }

    /// Takes all closed window rows accumulated since the last drain,
    /// in close order (deterministic for a deterministic driver).
    pub fn drain_closed(&mut self) -> Vec<WindowRow> {
        std::mem::take(&mut self.closed)
    }

    /// Exact emitted energy prefix for a device: after
    /// [`Recorder::finish`] this equals `energy_until(end)` bit-exactly.
    pub fn emitted_energy(&self, dev: DeviceKey) -> Option<f64> {
        self.devs.get(dev.0).map(|d| d.emitted)
    }

    fn check_live(&self) -> Result<()> {
        if self.finished {
            return Err(SimError::Config(
                "powerscope recorder already finished".into(),
            ));
        }
        Ok(())
    }
}

fn check_power(power: Watts) -> Result<()> {
    let v = power.value();
    if !v.is_finite() || v < 0.0 {
        return Err(SimError::Config(format!(
            "powerscope requires finite non-negative power, got {v} W"
        )));
    }
    Ok(())
}

/// The exact prefix energy at `t_ns` — the same expression (same bits)
/// as `PowerTracker::energy_until`, computed against the mirror state
/// *without* mutating the accumulator.
fn exact_prefix(d: &DevState, t_ns: u64) -> f64 {
    d.acc
        + d.current_w
            * time_delta_secs(
                SimTime::from_nanos(d.last_change_ns),
                SimTime::from_nanos(t_ns),
            )
}

fn accrue_residency(d: &mut DevState, t_ns: u64) {
    if let Some(slot) = d.resid.get_mut(d.state.index()) {
        *slot += t_ns - d.cursor_ns;
    }
    d.cursor_ns = t_ns;
}

/// Emits a row for every whole window boundary at or before `t_ns`.
fn close_windows_through(
    width: u64,
    device: usize,
    d: &mut DevState,
    t_ns: u64,
    closed: &mut Vec<WindowRow>,
) {
    loop {
        let end = window_end(d.win_idx, width);
        if t_ns < end {
            return;
        }
        accrue_residency(d, end);
        let p = exact_prefix(d, end);
        let w = fit_increment(d.emitted, p);
        closed.push(WindowRow {
            device,
            window: d.win_idx,
            start_ns: d.win_start_ns,
            end_ns: end,
            energy_j: w,
            events: d.events,
            transitions: d.transitions,
            residency_ns: d.resid,
        });
        d.emitted = p;
        d.win_idx += 1;
        d.win_start_ns = end;
        d.resid = [0; STATE_COUNT];
        d.events = 0;
        d.transitions = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npp_units::Joules;

    fn meta(name: &str) -> DeviceMeta {
        DeviceMeta {
            name: name.to_string(),
            tier: Tier::Tor,
            peak: Watts::new(750.0),
        }
    }

    fn w(v: f64) -> Watts {
        Watts::new(v)
    }

    #[test]
    fn ulp_helpers_step_by_one_bit() {
        assert_eq!(next_up(0.0), f64::from_bits(1));
        assert_eq!(next_down(next_up(1.0)), 1.0);
        assert!(next_up(1.0) > 1.0);
        assert!(next_down(0.0) < 0.0);
        let x = 1.5e300;
        assert_eq!(next_up(x).to_bits(), x.to_bits() + 1);
    }

    #[test]
    fn fit_increment_lands_exactly() {
        for (prev, target) in [
            (0.0, 0.1),
            (0.1, 0.30000000000000004),
            (1e16, 1e16 + 2.0),
            (3.0, 3.0),
            (0.0, 0.0),
            (123.456, 123.456 + 1e-9),
        ] {
            let w = fit_increment(prev, target);
            assert_eq!((prev + w).to_bits(), target.to_bits(), "{prev} -> {target}");
        }
    }

    #[test]
    fn windowed_sum_matches_energy_until_bit_for_bit() {
        let width = WindowConfig::from_nanos(1_000).unwrap();
        let mut rec = Recorder::new(width);
        let mut tr = PowerTracker::new(SimTime::ZERO, w(100.0));
        let key = rec
            .register(meta("dev"), SimTime::ZERO, w(100.0), PowerState::OnFull)
            .unwrap();
        // Events straddle window boundaries at awkward offsets.
        let schedule = [(137u64, 33.5), (999, 0.0), (1_000, 75.25), (4_501, 100.0)];
        for (t_ns, p) in schedule {
            let t = SimTime::from_nanos(t_ns);
            tr.set_power(t, w(p)).unwrap();
            rec.set_power(key, t, w(p), PowerState::classify(w(p), w(100.0)))
                .unwrap();
        }
        let end = SimTime::from_nanos(7_777);
        rec.finish(end).unwrap();
        let rows = rec.drain_closed();
        assert_eq!(rows.len(), 8); // 7 full windows + partial
        let sum = rows.iter().map(|r| r.energy_j).fold(0.0, |a, b| a + b);
        let direct = tr.energy_until(end).unwrap();
        assert_eq!(sum.to_bits(), direct.value().to_bits());
        assert_eq!(rec.emitted_energy(key), Some(sum));
        // Residency is exact and covers each window.
        for r in &rows {
            let covered: u64 = r.residency_ns.iter().sum();
            assert_eq!(covered, r.duration_ns());
        }
        // First window saw two events, one transition (OnFull -> OnLow
        // at 137, OnLow -> Off at 999 => 2 transitions actually).
        assert_eq!(rows[0].events, 2);
        assert_eq!(rows[0].transitions, 2);
    }

    #[test]
    fn ingest_tracker_replay_is_bit_exact() {
        let mut tr = PowerTracker::new(SimTime::from_nanos(250), w(675.0));
        for (t_ns, p) in [(300u64, 750.0), (1_234, 0.0), (1_234, 42.0), (5_000, 675.0)] {
            tr.set_power(SimTime::from_nanos(t_ns), w(p)).unwrap();
        }
        let end = SimTime::from_nanos(9_999);
        let mut rec = Recorder::new(WindowConfig::from_nanos(777).unwrap());
        let peak = w(750.0);
        let key = rec
            .ingest_tracker(meta("sw"), &tr, &|p| PowerState::classify(p, peak))
            .unwrap();
        rec.finish(end).unwrap();
        let rows = rec.drain_closed();
        let sum = rows.iter().map(|r| r.energy_j).fold(0.0, |a, b| a + b);
        assert_eq!(
            sum.to_bits(),
            tr.energy_until(end).unwrap().value().to_bits()
        );
        // Also agrees with the dwell-segment sum (the tracker's own
        // exact decomposition).
        let dwell: f64 = tr
            .dwell_segments(end)
            .unwrap()
            .iter()
            .map(|s| s.energy().value())
            .fold(0.0, |a, b| a + b);
        assert_eq!(sum.to_bits(), dwell.to_bits());
        assert_eq!(rec.emitted_energy(key), Some(sum));
        // Mid-window registration: first row starts at 250, not 0.
        assert_eq!(rows.first().map(|r| r.start_ns), Some(250));
    }

    #[test]
    fn prefix_at_every_boundary_matches_running_sum() {
        let events: Vec<(u64, f64)> = (1..40u64)
            .map(|i| (i * 37, (i % 5) as f64 * 3.25))
            .collect();
        let mut rec = Recorder::new(WindowConfig::from_nanos(100).unwrap());
        let key = rec
            .register(meta("d"), SimTime::ZERO, w(7.5), PowerState::OnLow)
            .unwrap();
        for &(t_ns, p) in &events {
            rec.set_power(key, SimTime::from_nanos(t_ns), w(p), PowerState::OnLow)
                .unwrap();
        }
        rec.finish(SimTime::from_nanos(40 * 37)).unwrap();
        let rows = rec.drain_closed();
        assert!(rows.len() > 10);
        // Replay the same schedule into a fresh tracker, querying
        // `energy_until` at each boundary as the replay passes it.
        let mut tr = PowerTracker::new(SimTime::ZERO, w(7.5));
        let mut next = 0usize;
        let mut running = 0.0f64;
        for r in &rows {
            while let Some(&(t_ns, p)) = events.get(next) {
                if t_ns > r.end_ns {
                    break;
                }
                tr.set_power(SimTime::from_nanos(t_ns), w(p)).unwrap();
                next += 1;
            }
            running += r.energy_j;
            let at_boundary = tr.energy_until(SimTime::from_nanos(r.end_ns)).unwrap();
            assert_eq!(
                running.to_bits(),
                at_boundary.value().to_bits(),
                "window {} boundary {}",
                r.window,
                r.end_ns
            );
        }
    }

    #[test]
    fn advance_streams_rows_without_perturbing_energy() {
        let cfg = WindowConfig::from_nanos(500).unwrap();
        let schedule = [(100u64, 10.0), (2_600, 20.0)];
        let end = SimTime::from_nanos(5_000);

        // Reference: events only (windows close lazily).
        let mut lazy = Recorder::new(cfg);
        let k1 = lazy
            .register(meta("d"), SimTime::ZERO, w(5.0), PowerState::OnLow)
            .unwrap();
        for (t, p) in schedule {
            lazy.set_power(k1, SimTime::from_nanos(t), w(p), PowerState::OnLow)
                .unwrap();
        }
        lazy.finish(end).unwrap();
        let lazy_rows = lazy.drain_closed();

        // Streaming: advance() every 250 ns, draining as we go.
        let mut eager = Recorder::new(cfg);
        let k2 = eager
            .register(meta("d"), SimTime::ZERO, w(5.0), PowerState::OnLow)
            .unwrap();
        let mut streamed = Vec::new();
        let mut next_event = 0usize;
        for step in 1..=20u64 {
            let now = step * 250;
            while let Some(&(t, p)) = schedule.get(next_event) {
                if t > now {
                    break;
                }
                eager
                    .set_power(k2, SimTime::from_nanos(t), w(p), PowerState::OnLow)
                    .unwrap();
                next_event += 1;
            }
            eager.advance(k2, SimTime::from_nanos(now)).unwrap();
            streamed.extend(eager.drain_closed());
            assert!(eager.pending_rows() == 0);
            assert_eq!(eager.open_windows(), 1);
        }
        eager.finish(end).unwrap();
        streamed.extend(eager.drain_closed());

        assert_eq!(lazy_rows, streamed);
    }

    #[test]
    fn rejects_bad_inputs() {
        let cfg = WindowConfig::from_nanos(100).unwrap();
        assert!(WindowConfig::from_nanos(0).is_err());
        let mut rec = Recorder::new(cfg);
        assert!(rec
            .register(meta("d"), SimTime::ZERO, w(-1.0), PowerState::Off)
            .is_err());
        assert!(rec
            .register(meta("d"), SimTime::ZERO, w(f64::NAN), PowerState::Off)
            .is_err());
        let key = rec
            .register(
                meta("d"),
                SimTime::from_nanos(50),
                w(1.0),
                PowerState::OnLow,
            )
            .unwrap();
        assert!(matches!(
            rec.set_power(key, SimTime::from_nanos(49), w(1.0), PowerState::OnLow),
            Err(SimError::TimeReversal { .. })
        ));
        let foreign = DeviceKey(7);
        assert!(matches!(
            rec.set_power(foreign, SimTime::from_nanos(60), w(1.0), PowerState::OnLow),
            Err(SimError::BadIndex { .. })
        ));
        rec.finish(SimTime::from_nanos(60)).unwrap();
        assert!(rec.finish(SimTime::from_nanos(70)).is_err());
        assert!(rec
            .set_power(key, SimTime::from_nanos(70), w(1.0), PowerState::OnLow)
            .is_err());
        assert_eq!(rec.open_windows(), 0);
    }

    #[test]
    fn finish_on_boundary_emits_no_empty_window() {
        let mut rec = Recorder::new(WindowConfig::from_nanos(100).unwrap());
        let mut tr = PowerTracker::new(SimTime::ZERO, w(3.0));
        let key = rec
            .register(meta("d"), SimTime::ZERO, w(3.0), PowerState::OnLow)
            .unwrap();
        tr.set_power(SimTime::from_nanos(150), w(6.0)).unwrap();
        rec.set_power(key, SimTime::from_nanos(150), w(6.0), PowerState::OnFull)
            .unwrap();
        rec.finish(SimTime::from_nanos(300)).unwrap();
        let rows = rec.drain_closed();
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.duration_ns() == 100));
        let sum = rows.iter().map(|r| r.energy_j).fold(0.0, |a, b| a + b);
        let direct = tr.energy_until(SimTime::from_nanos(300)).unwrap();
        assert_eq!(sum.to_bits(), direct.value().to_bits());
        assert!(direct.approx_eq(Joules::new(1.35e-6), 1e-18));
    }

    #[test]
    fn zero_length_run_emits_nothing() {
        let mut rec = Recorder::new(WindowConfig::from_nanos(100).unwrap());
        let key = rec
            .register(
                meta("d"),
                SimTime::from_nanos(40),
                w(9.0),
                PowerState::OnFull,
            )
            .unwrap();
        rec.finish(SimTime::from_nanos(40)).unwrap();
        assert!(rec.drain_closed().is_empty());
        assert_eq!(rec.emitted_energy(key), Some(0.0));
    }

    #[test]
    fn dominant_state_and_classify() {
        let row = WindowRow {
            device: 0,
            window: 0,
            start_ns: 0,
            end_ns: 100,
            energy_j: 0.0,
            events: 0,
            transitions: 0,
            residency_ns: [10, 0, 60, 30],
        };
        assert_eq!(row.dominant_state(), PowerState::OnLow);
        let peak = w(100.0);
        assert_eq!(PowerState::classify(w(0.0), peak), PowerState::Off);
        assert_eq!(PowerState::classify(w(99.95), peak), PowerState::OnFull);
        assert_eq!(PowerState::classify(w(50.0), peak), PowerState::OnLow);
    }
}
