//! Flow-level network simulation with max-min fair sharing.
//!
//! A [`NetSim`] runs bulk flows over an explicit `npp-topology` graph:
//! each flow follows one path, links are full-duplex (capacity per
//! direction), and at every event (flow injection or completion) the
//! rates are recomputed by progressive filling — the classic max-min
//! fair-share fluid model. Between events all rates are constant, so
//! completions are computed exactly rather than time-stepped.
//!
//! This gives the §4 fabric-level experiments a middle ground between
//! the per-packet pipeline simulator (too slow for thousands of links)
//! and the purely analytic phase model (blind to path sharing): it
//! resolves *which links are busy when*, which is what link-level energy
//! mechanisms act on. The unit tests validate it against the analytic
//! collective cost models in `npp-workload`.
//!
//! # The indexed fast path
//!
//! The simulator is built for fabric-scale sweeps, so the event loop is
//! indexed and allocation-free in steady state:
//!
//! - links and flows carry dense `u32` ids; a directed link is
//!   `link_id * 2 + direction`, so per-directed-link state lives in
//!   plain arrays instead of `HashMap<DirLink, f64>`;
//! - flow→link paths are stored in one CSR arena
//!   ([`EngineCore::path_links`] + offsets) filled at injection time
//!   (ECMP resolution is memoised per `(src, dst)` pair, so million-flow
//!   workloads that reuse routes pay one BFS per pair, not per flow),
//!   and a link→flow CSR is (re)built by counting sort before the event
//!   loop starts, so the waterfill never scans `path.contains`;
//! - the run loop owns a scratch arena (capacities, crossing counts,
//!   dirty marks, work queues) that is sized once and reused by every
//!   event, so the steady-state loop performs zero heap allocations;
//! - an event only recomputes the rates of the flows it can actually
//!   affect: the dirty set is closed over the flow-sharing graph
//!   (flows sharing a directed link share a bottleneck cascade), and
//!   untouched sharing components keep their — still exact — rates.
//!
//! # The parallel runtime
//!
//! [`NetSim::run_threads`] parallelizes the engine per fluid epoch (see
//! `netsim_par`): a coordinator runs the same event loop as
//! [`NetSim::run`] over the one shared `EngineCore`, but each epoch's
//! rate recompute
//! is decomposed — first by link-sharing component (tracked by the
//! persistent [`crate::comp_index::CompIndex`], with epoch work
//! stealing rebalancing skewed component histograms), then *within* a
//! component by splitting the residual waterfill into independent
//! bottleneck subproblems — and fanned out to scoped worker threads
//! that return rate vectors only. Rates, completion times, and
//! per-link statistics are `to_bits`-identical to the serial engine
//! for any thread count.
//!
//! Correctness is anchored by a naive progressive-filling oracle
//! (`O(flows² · links)`, the pre-optimization algorithm) that runs after
//! every recompute in test/debug builds — in the serial loop *and*
//! inside every parallel shard — and asserts the rate vectors are
//! **bit-identical**. [`crate::netsim_naive::NaiveNetSim`] preserves
//! the full pre-optimization engine for benchmarks and differential
//! tests.

use std::collections::BTreeMap;

use npp_topology::graph::{LinkId, NodeId, Topology};
use serde::Serialize;

use crate::comp_index::CompIndex;
use crate::{Result, SimError, SimTime};

/// Identifier of a flow within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub usize);

#[derive(Debug, Clone)]
pub(crate) struct Flow {
    pub(crate) bytes_remaining: f64,
    pub(crate) injected: SimTime,
    pub(crate) finished: Option<SimTime>,
    pub(crate) rate_gbps: f64,
    /// Scheduled but not yet released into the fluid system.
    pub(crate) pending: bool,
    /// Released and not yet finished.
    pub(crate) active: bool,
}

/// Statistics for one completed or running flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowStatus {
    /// When the flow was injected.
    pub injected: SimTime,
    /// Completion time, if finished.
    pub finished: Option<SimTime>,
    /// Bytes still to transfer.
    pub bytes_remaining: f64,
    /// Current rate (Gbps).
    pub rate: f64,
}

/// Reusable working memory for the event loop: sized once per run,
/// then reused by every recompute so the steady state allocates nothing.
#[derive(Debug, Clone, Default)]
pub(crate) struct Scratch {
    /// Remaining capacity per directed link (valid only for `touched`).
    cap: Vec<f64>,
    /// Unassigned-flow crossing count per directed link (zero outside a
    /// recompute).
    crossing: Vec<u32>,
    /// Directed links touched by the current recompute set.
    touched: Vec<u32>,
    /// Membership flag: flow is in the current recompute set.
    in_set: Vec<bool>,
    /// Flow already fixed at its bottleneck share this recompute.
    assigned: Vec<bool>,
    /// Directed link already expanded by the dirty-closure walk.
    link_seen: Vec<bool>,
    /// Directed links marked by the closure walk (for mark clearing).
    links_marked: Vec<u32>,
    /// Flow already visited by the dirty-closure walk.
    flow_seen: Vec<bool>,
    /// Flows visited by the closure walk (for mark clearing).
    flows_marked: Vec<u32>,
    /// Closure worklist.
    queue: Vec<u32>,
    /// Active flows whose rates the current event may change.
    set: Vec<u32>,
    /// Flows changed by the last event (released or completed): the
    /// seeds of the next dirty closure.
    pub(crate) seeds: Vec<u32>,
}

/// Per-worker work counters from one parallel run
/// ([`NetSim::run_threads`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct WorkerMetrics {
    /// Link-sharing components owned by this worker.
    pub components: usize,
    /// Flows owned by this worker.
    pub flows: usize,
    /// Dirty-closure + waterfill recomputations performed.
    pub recomputes: u64,
    /// Total bottleneck-fixing iterations across all recomputes.
    pub fixing_iterations: u64,
    /// Largest dirty set (flows re-rated by one event).
    pub dirty_set_max: usize,
    /// Scratch-arena high-water mark: most directed links touched by one
    /// waterfill.
    pub touched_links_max: usize,
}

/// Parallel-run statistics recorded by `netsim_par` on the owning
/// [`NetSim`]; folded into [`EngineMetrics`].
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct ParMetrics {
    pub(crate) threads: usize,
    pub(crate) merge_wait_ns: u64,
    pub(crate) steal_events: u64,
    pub(crate) stolen_components: u64,
    pub(crate) subproblems: u64,
    pub(crate) workers: Vec<WorkerMetrics>,
}

/// Work-stealing policy of the parallel runtime (see `netsim_par`):
/// whether idle workers may claim whole components from loaded workers
/// at epoch boundaries. Ownership moves are always a pure function of
/// the epoch's dirty-flow distribution — never of wall-clock timing —
/// so every mode yields bit-identical simulation results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StealMode {
    /// Steal when the deterministic skew trigger fires (default): an
    /// idle worker exists while the most-loaded worker holds at least
    /// two dirty components and enough dirty flows to matter.
    #[default]
    Auto,
    /// Steal whenever an idle worker and a donor with a spare dirty
    /// component exist, regardless of load (tests force migration).
    Always,
    /// Never move ownership after the initial greedy assignment.
    Never,
}

/// Engine-internal counters exposed for benchmarks and `netpp profile`:
/// how much work the indexed fast path actually did.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct EngineMetrics {
    /// Fluid events (rate epochs) processed.
    pub events: u64,
    /// Largest number of simultaneously live flows.
    pub peak_live_flows: usize,
    /// Dirty-closure + waterfill recomputations performed (summed over
    /// workers for parallel runs).
    pub recomputes: u64,
    /// Total bottleneck-fixing iterations across all recomputes.
    pub fixing_iterations: u64,
    /// Largest dirty set (flows re-rated by one event).
    pub dirty_set_max: usize,
    /// Scratch-arena high-water mark: most directed links touched by one
    /// waterfill.
    pub touched_links_max: usize,
    /// Worker threads used by the last run (1 = serial engine).
    pub threads: usize,
    /// Link-sharing components over unfinished flows, from the
    /// persistent component index at the last run preparation or mid-run
    /// rebuild — populated by serial *and* parallel runs, so scaling
    /// rows are comparable against the 1-thread baseline.
    pub components: usize,
    /// Power-of-two histogram of flows per component: bucket `i` counts
    /// components with `2^i ≤ flows < 2^(i+1)` (serial and parallel).
    pub component_flows_hist: Vec<u64>,
    /// From-scratch rebuilds of the persistent component index (the
    /// departure-threshold escape hatch).
    pub index_rebuilds: u64,
    /// Incremental arrival-time union operations absorbed by the
    /// persistent component index.
    pub index_incremental_ops: u64,
    /// Epochs in which the deterministic skew trigger migrated at least
    /// one component between workers (parallel runs only).
    pub steal_events: u64,
    /// Components migrated by epoch work stealing (parallel runs only).
    pub stolen_components: u64,
    /// Independent waterfill subproblems executed by the
    /// within-component splitter (parallel runs only; the serial fixing
    /// loop never splits).
    pub subproblems: u64,
    /// Wall nanoseconds the parallel coordinator spent blocked waiting
    /// for worker replies (volatile profiling data, never simulation
    /// state).
    pub merge_wait_ns: u64,
    /// Per-worker counters for the last parallel run (empty for serial).
    pub workers: Vec<WorkerMetrics>,
}

/// Row `i` of a CSR layout: `data[offsets[i]..offsets[i + 1]]`.
///
/// Well-formed CSR offsets are monotone and end at `data.len()`, so
/// the checked accesses here *state* the invariant instead of guarding
/// against it: a malformed build fails with the named invariant rather
/// than a bare out-of-bounds index. Taking the two slices separately
/// keeps the borrows field-disjoint, so callers can hold `&mut` scratch
/// while walking a row.
#[inline]
pub(crate) fn csr_row<'a, T>(offsets: &[usize], data: &'a [T], i: usize) -> &'a [T] {
    let lo = *offsets.get(i).expect("CSR offsets cover every row");
    let hi = *offsets.get(i + 1).expect("CSR offsets cover every row");
    data.get(lo..hi)
        .expect("CSR offsets are monotone and end at data.len()")
}

/// The per-run engine state shared by the serial event loop and the
/// parallel shards: dense per-flow and per-directed-link arrays, the
/// CSR adjacencies, the scratch arena, and the indexed waterfill.
///
/// A shard (see `netsim_par`) is simply an `EngineCore` holding a
/// subset of the flows (local dense ids, ascending in global id) while
/// keeping **global** directed-link ids — link-disjointness of
/// components means per-link arrays never conflict, and global link ids
/// keep the bottleneck tie-break bit-identical to the serial engine.
#[derive(Debug, Clone)]
pub(crate) struct EngineCore {
    /// Capacity (Gbps) per directed link; both directions of a link
    /// share the link's capacity value.
    pub(crate) link_caps: Vec<f64>,
    pub(crate) flows: Vec<Flow>,
    /// CSR flow→directed-link adjacency: `path_links[path_offsets[i]..
    /// path_offsets[i + 1]]` is flow `i`'s path, filled at injection.
    pub(crate) path_offsets: Vec<usize>,
    pub(crate) path_links: Vec<u32>,
    /// CSR directed-link→flow adjacency, rebuilt (counting sort) when
    /// flows were injected since the last build. Rows list flows in
    /// ascending id order, which the waterfill relies on.
    lf_offsets: Vec<usize>,
    lf_flows: Vec<u32>,
    lf_flows_built: usize,
    /// Released, unfinished flows, ascending by id.
    pub(crate) active: Vec<u32>,
    /// Per-directed-link busy time accumulated, in seconds.
    pub(crate) busy_secs: Vec<f64>,
    /// Per-link bytes carried (both directions).
    pub(crate) carried: Vec<f64>,
    pub(crate) recomputes: u64,
    pub(crate) fixing_iterations: u64,
    pub(crate) dirty_set_max: usize,
    pub(crate) touched_links_max: usize,
    pub(crate) scratch: Scratch,
}

/// Directed-link id of `link` traversed forward (`a → b`) or backward.
fn dirlink(link: LinkId, forward: bool) -> u32 {
    (link.0 * 2 + usize::from(forward)) as u32
}

impl EngineCore {
    /// An empty core over `link_caps` (one capacity per directed link).
    pub(crate) fn new(link_caps: Vec<f64>) -> Self {
        let n_dl = link_caps.len();
        Self {
            link_caps,
            flows: Vec::new(),
            path_offsets: vec![0],
            path_links: Vec::new(),
            lf_offsets: Vec::new(),
            lf_flows: Vec::new(),
            lf_flows_built: 0,
            active: Vec::new(),
            busy_secs: vec![0.0; n_dl],
            carried: vec![0.0; n_dl / 2],
            recomputes: 0,
            fixing_iterations: 0,
            dirty_set_max: 0,
            touched_links_max: 0,
            scratch: Scratch::default(),
        }
    }

    /// Flow `i`'s path as a slice of directed-link ids.
    pub(crate) fn path(&self, i: usize) -> &[u32] {
        csr_row(&self.path_offsets, &self.path_links, i)
    }

    /// Rebuilds the link→flow CSR if flows were injected since the last
    /// build. Counting sort over the flow→link CSR keeps each row in
    /// ascending flow-id order; the buffers are reused across rebuilds.
    pub(crate) fn ensure_link_flow_csr(&mut self) {
        if self.lf_flows_built == self.flows.len() {
            return;
        }
        let n = self.link_caps.len();
        self.lf_offsets.clear();
        self.lf_offsets.resize(n + 1, 0);
        for &dl in &self.path_links {
            self.lf_offsets[dl as usize + 1] += 1;
        }
        for d in 0..n {
            self.lf_offsets[d + 1] += self.lf_offsets[d];
        }
        self.lf_flows.clear();
        self.lf_flows.resize(self.path_links.len(), 0);
        // Per-link write cursors; `scratch.crossing` is idle between
        // recomputes and has exactly the right shape.
        let cursor = &mut self.scratch.crossing;
        cursor.clear();
        cursor.resize(n, 0);
        for i in 0..self.flows.len() {
            for &dl in csr_row(&self.path_offsets, &self.path_links, i) {
                let d = dl as usize;
                self.lf_flows[self.lf_offsets[d] + cursor[d] as usize] = i as u32;
                cursor[d] += 1;
            }
        }
        for c in cursor.iter_mut() {
            *c = 0;
        }
        self.lf_flows_built = self.flows.len();
    }

    /// Sizes the scratch arena for the current flow/link population so
    /// the event loop never grows a buffer mid-run.
    pub(crate) fn ensure_scratch_sized(&mut self) {
        let n_dl = self.link_caps.len();
        let n_fl = self.flows.len();
        let s = &mut self.scratch;
        s.cap.resize(n_dl, 0.0);
        s.crossing.resize(n_dl, 0);
        s.link_seen.resize(n_dl, false);
        s.in_set.resize(n_fl, false);
        s.assigned.resize(n_fl, false);
        s.flow_seen.resize(n_fl, false);
        s.touched.reserve(self.path_links.len());
        s.links_marked.reserve(n_dl);
        s.queue.reserve(n_fl);
        s.set.reserve(n_fl);
        s.seeds.reserve(n_fl);
        s.flows_marked.reserve(n_fl);
        self.active.reserve(n_fl);
    }

    /// Expands the seed flows (released or completed by the last event)
    /// into the set of *active* flows whose rates the event can affect:
    /// the transitive closure over shared directed links. Sharing
    /// components not reached keep their previous — still exact —
    /// max-min rates, because progressive filling decomposes over
    /// link-disjoint components.
    pub(crate) fn dirty_closure(&mut self) {
        let s = &mut self.scratch;
        s.set.clear();
        s.queue.clear();
        for i in 0..s.seeds.len() {
            let f = s.seeds[i];
            if !s.flow_seen[f as usize] {
                s.flow_seen[f as usize] = true;
                s.flows_marked.push(f);
                s.queue.push(f);
            }
        }
        while let Some(f) = s.queue.pop() {
            let fi = f as usize;
            if self.flows[fi].active {
                s.set.push(f);
            }
            for &dl in csr_row(&self.path_offsets, &self.path_links, fi) {
                let d = dl as usize;
                if s.link_seen[d] {
                    continue;
                }
                s.link_seen[d] = true;
                s.links_marked.push(dl);
                for &g in csr_row(&self.lf_offsets, &self.lf_flows, d) {
                    let gi = g as usize;
                    if self.flows[gi].active && !s.flow_seen[gi] {
                        s.flow_seen[gi] = true;
                        s.flows_marked.push(g);
                        s.queue.push(g);
                    }
                }
            }
        }
        for &dl in &s.links_marked {
            s.link_seen[dl as usize] = false;
        }
        s.links_marked.clear();
        for &f in &s.flows_marked {
            s.flow_seen[f as usize] = false;
        }
        s.flows_marked.clear();
        s.seeds.clear();
        let set_len = s.set.len();
        self.dirty_set_max = self.dirty_set_max.max(set_len);
    }

    /// Flows crossing directed link `dl`, ascending by flow id (from
    /// the link→flow CSR; `ensure_link_flow_csr` must have run).
    pub(crate) fn lf_row(&self, dl: u32) -> &[u32] {
        csr_row(&self.lf_offsets, &self.lf_flows, dl as usize)
    }

    /// Per-component variant of [`EngineCore::dirty_closure`] used by
    /// the parallel runtime: expands `seeds` into the active flows of
    /// the component identified by `root` (under `index`), writing the
    /// set into `out`.
    ///
    /// A *live* seed's path lies entirely inside one component, but a
    /// *finished* seed (a retiree freeing capacity) can span several
    /// components when the index was rebuilt after it departed — so
    /// seed links are filtered by component root, while flows reached
    /// through those links need no filter (an active flow's path was
    /// unioned whole, so all its links share the item's root).
    pub(crate) fn component_closure(
        &mut self,
        seeds: &[u32],
        root: u32,
        index: &mut CompIndex,
        out: &mut Vec<u32>,
    ) {
        out.clear();
        let s = &mut self.scratch;
        s.queue.clear();
        for &f in seeds {
            let fi = f as usize;
            if s.flow_seen[fi] {
                continue;
            }
            s.flow_seen[fi] = true;
            s.flows_marked.push(f);
            if self.flows[fi].active {
                out.push(f);
            }
            for &dl in csr_row(&self.path_offsets, &self.path_links, fi) {
                let d = dl as usize;
                if s.link_seen[d] || index.root(dl) != root {
                    continue;
                }
                s.link_seen[d] = true;
                s.links_marked.push(dl);
                for &g in csr_row(&self.lf_offsets, &self.lf_flows, d) {
                    let gi = g as usize;
                    if self.flows[gi].active && !s.flow_seen[gi] {
                        s.flow_seen[gi] = true;
                        s.flows_marked.push(g);
                        s.queue.push(g);
                    }
                }
            }
        }
        while let Some(f) = s.queue.pop() {
            let fi = f as usize;
            out.push(f);
            for &dl in csr_row(&self.path_offsets, &self.path_links, fi) {
                let d = dl as usize;
                if s.link_seen[d] {
                    continue;
                }
                s.link_seen[d] = true;
                s.links_marked.push(dl);
                for &g in csr_row(&self.lf_offsets, &self.lf_flows, d) {
                    let gi = g as usize;
                    if self.flows[gi].active && !s.flow_seen[gi] {
                        s.flow_seen[gi] = true;
                        s.flows_marked.push(g);
                        s.queue.push(g);
                    }
                }
            }
        }
        for &dl in &s.links_marked {
            s.link_seen[dl as usize] = false;
        }
        s.links_marked.clear();
        for &f in &s.flows_marked {
            s.flow_seen[f as usize] = false;
        }
        s.flows_marked.clear();
        self.dirty_set_max = self.dirty_set_max.max(out.len());
    }

    /// Progressive-filling max-min fair allocation over `scratch.set`.
    ///
    /// Indexed waterfill: per-directed-link remaining capacity and
    /// crossing counts live in dense arrays, the bottleneck's flows come
    /// from the link→flow CSR (ascending flow id, matching the naive
    /// algorithm's fixing order bit for bit), and ties on the fair share
    /// break toward the smallest directed-link id — the same choice a
    /// deterministic scan of the naive capacity map makes.
    pub(crate) fn recompute_rates(&mut self) {
        let s = &mut self.scratch;
        debug_assert!(s.touched.is_empty());
        let mut unassigned = 0usize;
        for &f in &s.set {
            let fi = f as usize;
            self.flows[fi].rate_gbps = 0.0;
            s.in_set[fi] = true;
            s.assigned[fi] = false;
            let path = csr_row(&self.path_offsets, &self.path_links, fi);
            if !path.is_empty() {
                unassigned += 1;
            }
            for &dl in path {
                let d = dl as usize;
                if s.crossing[d] == 0 {
                    s.cap[d] = self.link_caps[d];
                    s.touched.push(dl);
                }
                s.crossing[d] += 1;
            }
        }
        let mut fixing_iterations = 0u64;
        while unassigned > 0 {
            fixing_iterations += 1;
            // Bottleneck link: smallest fair share, ties to smallest id.
            let mut best_share = f64::INFINITY;
            let mut best_dl = u32::MAX;
            let mut found = false;
            for &dl in &s.touched {
                let d = dl as usize;
                if s.crossing[d] == 0 {
                    continue;
                }
                let share = s.cap[d] / s.crossing[d] as f64;
                if !found || share < best_share || (share == best_share && dl < best_dl) {
                    found = true;
                    best_share = share;
                    best_dl = dl;
                }
            }
            if !found {
                break;
            }
            // Fix every unassigned flow crossing the bottleneck at the
            // fair share; subtract from the links on their paths.
            let row = csr_row(&self.lf_offsets, &self.lf_flows, best_dl as usize);
            for &f in row {
                let fi = f as usize;
                if !s.in_set[fi] || s.assigned[fi] {
                    continue;
                }
                s.assigned[fi] = true;
                unassigned -= 1;
                self.flows[fi].rate_gbps = best_share;
                for &dl in csr_row(&self.path_offsets, &self.path_links, fi) {
                    let d = dl as usize;
                    s.crossing[d] -= 1;
                    s.cap[d] = (s.cap[d] - best_share).max(0.0);
                }
            }
            debug_assert_eq!(s.crossing[best_dl as usize], 0);
        }
        for &dl in &s.touched {
            s.crossing[dl as usize] = 0;
        }
        let touched_len = s.touched.len();
        s.touched.clear();
        for &f in &s.set {
            s.in_set[f as usize] = false;
        }
        self.recomputes += 1;
        self.fixing_iterations += fixing_iterations;
        self.touched_links_max = self.touched_links_max.max(touched_len);
    }

    /// Full-recompute oracle: reruns the naive `O(flows² · links)`
    /// progressive filling over *all* active flows and asserts every
    /// rate — including those the dirty closure chose not to touch — is
    /// bit-identical to what the indexed engine holds. For a parallel
    /// shard this covers exactly the shard's components, which form a
    /// standalone fluid system by link-disjointness.
    #[cfg(any(test, debug_assertions))]
    pub(crate) fn assert_rates_match_naive_oracle(&self) {
        let active: Vec<usize> = self
            .flows
            .iter()
            .enumerate()
            .filter(|(_, f)| f.active)
            .map(|(i, _)| i)
            .collect();
        let mut rates = vec![0.0f64; self.flows.len()];
        let mut unassigned = active.clone();
        let mut cap: BTreeMap<u32, f64> = BTreeMap::new();
        for &i in &active {
            for &dl in self.path(i) {
                cap.entry(dl).or_insert(self.link_caps[dl as usize]);
            }
        }
        loop {
            let mut best: Option<(f64, u32)> = None;
            for (&dl, &c) in &cap {
                let crossing = unassigned
                    .iter()
                    .filter(|&&i| self.path(i).contains(&dl))
                    .count();
                if crossing == 0 {
                    continue;
                }
                let share = c / crossing as f64;
                if best.map(|(s, _)| share < s).unwrap_or(true) {
                    best = Some((share, dl));
                }
            }
            let Some((share, bottleneck)) = best else {
                break;
            };
            let fixed: Vec<usize> = unassigned
                .iter()
                .copied()
                .filter(|&i| self.path(i).contains(&bottleneck))
                .collect();
            for &i in &fixed {
                rates[i] = share;
                for &dl in self.path(i) {
                    if let Some(c) = cap.get_mut(&dl) {
                        *c = (*c - share).max(0.0);
                    }
                }
            }
            cap.remove(&bottleneck);
            unassigned.retain(|i| !fixed.contains(i));
        }
        for &i in &active {
            debug_assert_eq!(
                self.flows[i].rate_gbps.to_bits(),
                rates[i].to_bits(),
                "flow {i}: indexed rate {} diverged from naive oracle {}",
                self.flows[i].rate_gbps,
                rates[i],
            );
        }
    }

    /// Earliest completion time among active flows, given the current
    /// clock. `None` when no active flow has a positive rate.
    pub(crate) fn earliest_completion(&self, now: SimTime) -> Option<SimTime> {
        let mut earliest: Option<SimTime> = None;
        for &i in &self.active {
            let f = &self.flows[i as usize];
            if f.rate_gbps > 0.0 {
                let secs = f.bytes_remaining * 8.0 / (f.rate_gbps * 1e9);
                let t = now.plus_nanos((secs * 1e9).ceil() as u64);
                if earliest.map(|e| t < e).unwrap_or(true) {
                    earliest = Some(t);
                }
            }
        }
        earliest
    }

    /// Integrates flow progress over `[now, next]` in ascending flow-id
    /// order (float accumulation into the link stats must not depend on
    /// injection order), then retires completed flows from the active
    /// list; retirees seed the next dirty closure (their links free
    /// capacity).
    pub(crate) fn integrate(&mut self, now: SimTime, next: SimTime) {
        let dt = next.since(now) as f64 * 1e-9;
        for &i in &self.active {
            let fi = i as usize;
            let rate = self.flows[fi].rate_gbps;
            if rate > 0.0 {
                let moved = rate * 1e9 * dt / 8.0;
                let f = &mut self.flows[fi];
                f.bytes_remaining = (f.bytes_remaining - moved).max(0.0);
                let done = f.bytes_remaining <= 1e-6;
                if done {
                    f.finished = Some(next);
                    f.active = false;
                }
                for &dl in csr_row(&self.path_offsets, &self.path_links, fi) {
                    let d = dl as usize;
                    self.busy_secs[d] += dt;
                    self.carried[d / 2] += moved;
                }
            }
        }
        let (flows, scratch) = (&self.flows, &mut self.scratch);
        self.active.retain(|&i| {
            if flows[i as usize].active {
                true
            } else {
                scratch.seeds.push(i);
                false
            }
        });
    }

    /// Releases a pending flow into the fluid system; it seeds the next
    /// dirty closure. The caller re-sorts `active` once per epoch.
    pub(crate) fn release(&mut self, i: u32) {
        let f = &mut self.flows[i as usize];
        f.pending = false;
        f.active = true;
        self.active.push(i);
        self.scratch.seeds.push(i);
    }
}

/// The flow-level simulator.
#[derive(Debug, Clone)]
pub struct NetSim {
    topo: Topology,
    pub(crate) core: EngineCore,
    /// Pending injections, sorted by time (reverse for pop) once
    /// [`NetSim::prepare_run`] has run; injection only appends and
    /// clears the flag, so a million injections cost one sort.
    pub(crate) pending: Vec<(SimTime, FlowId)>,
    pub(crate) pending_sorted: bool,
    pub(crate) now: SimTime,
    pub(crate) events: u64,
    pub(crate) peak_active: usize,
    /// Memoised ECMP resolution: `(src, dst) → the up-to-16 shortest
    /// paths, already resolved to directed-link ids` in `ecmp_paths`
    /// order. Pure cache: entries are a function of the (immutable)
    /// topology only.
    route_cache: BTreeMap<(usize, usize), Vec<Vec<u32>>>,
    /// Statistics of the last parallel run, if any.
    pub(crate) par: Option<ParMetrics>,
    /// Persistent link-sharing component index: unions absorbed on
    /// arrival, departures counted in epoch batches, from-scratch
    /// rebuilds only past the departure threshold.
    pub(crate) index: CompIndex,
    /// Component count over unfinished flows at the last
    /// [`NetSim::prepare_run`] or mid-run index rebuild.
    pub(crate) components: usize,
    /// Flows-per-component power-of-two histogram matching `components`.
    pub(crate) comp_hist: Vec<u64>,
    /// Work-stealing policy for parallel runs.
    pub(crate) steal_mode: StealMode,
    /// Minimum dirty flows in an epoch before the parallel runtime fans
    /// the recompute out to the thread pool; lighter epochs run inline
    /// on the coordinator (still through the subproblem splitter).
    pub(crate) fanout_min: usize,
    /// Samples one in N recompute passes into the `prof.netsim.recompute_ns`
    /// histogram when telemetry recording is active (profiling data only —
    /// wall time never feeds back into simulation state).
    recompute_timer: npp_telemetry::timer::SampleTimer,
}

/// Default [`NetSim::set_parallel_fanout_min`]: below ~4k dirty flows
/// an epoch's waterfill is cheaper than eight thread spawns.
const DEFAULT_FANOUT_MIN: usize = 4096;

impl NetSim {
    /// Creates a simulator over (a clone of) the topology.
    pub fn new(topo: Topology) -> Self {
        let n_links = topo.links().len();
        let mut link_caps = vec![0.0; n_links * 2];
        for l in topo.links() {
            let c = l.capacity.value();
            link_caps[l.id.0 * 2] = c;
            link_caps[l.id.0 * 2 + 1] = c;
        }
        let n_dirlinks = link_caps.len();
        Self {
            topo,
            core: EngineCore::new(link_caps),
            pending: Vec::new(),
            pending_sorted: true,
            now: SimTime::ZERO,
            events: 0,
            peak_active: 0,
            route_cache: BTreeMap::new(),
            par: None,
            index: CompIndex::new(n_dirlinks),
            components: 0,
            comp_hist: Vec::new(),
            steal_mode: StealMode::Auto,
            fanout_min: DEFAULT_FANOUT_MIN,
            recompute_timer: npp_telemetry::timer::SampleTimer::every(64),
        }
    }

    /// Sets the work-stealing policy for subsequent parallel runs
    /// (results are bit-identical in every mode; this is a performance
    /// and test knob).
    pub fn set_steal_mode(&mut self, mode: StealMode) {
        self.steal_mode = mode;
    }

    /// Overrides the minimum per-epoch dirty-flow count at which
    /// parallel runs fan work out to the thread pool. Tests lower it to
    /// force fan-out on tiny scenarios; results are bit-identical for
    /// any value.
    pub fn set_parallel_fanout_min(&mut self, min: usize) {
        self.fanout_min = min.max(1);
    }

    /// The simulation clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of fluid events (rate epochs) processed by [`NetSim::run`].
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// Largest number of simultaneously live flows seen so far.
    pub fn peak_live_flows(&self) -> usize {
        self.peak_active
    }

    /// Snapshot of the engine's internal work counters.
    pub fn engine_metrics(&self) -> EngineMetrics {
        let par = self.par.clone().unwrap_or_default();
        EngineMetrics {
            events: self.events,
            peak_live_flows: self.peak_active,
            recomputes: self.core.recomputes,
            fixing_iterations: self.core.fixing_iterations,
            dirty_set_max: self.core.dirty_set_max,
            touched_links_max: self.core.touched_links_max,
            threads: if self.par.is_some() { par.threads } else { 1 },
            components: self.components,
            component_flows_hist: self.comp_hist.clone(),
            index_rebuilds: self.index.rebuilds(),
            index_incremental_ops: self.index.incremental_ops(),
            steal_events: par.steal_events,
            stolen_components: par.stolen_components,
            subproblems: par.subproblems,
            merge_wait_ns: par.merge_wait_ns,
            workers: par.workers,
        }
    }

    /// Number of flows ever injected.
    pub fn flow_count(&self) -> usize {
        self.core.flows.len()
    }

    /// Flows scheduled but not yet released into the fluid system.
    pub fn pending_flow_count(&self) -> usize {
        self.core.flows.iter().filter(|f| f.pending).count()
    }

    /// Flows currently live (released and unfinished).
    pub fn live_flow_count(&self) -> usize {
        self.core.active.len()
    }

    /// Schedules a flow of `bytes` from `src` to `dst` at time `at`,
    /// routed on the `path_choice`-th ECMP shortest path (modulo the
    /// path count — callers can hash flows across paths).
    ///
    /// # Errors
    ///
    /// Rejects flows between unreachable nodes, empty flows, and
    /// injections in the past.
    pub fn inject(
        &mut self,
        at: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: f64,
        path_choice: usize,
    ) -> Result<FlowId> {
        if at < self.now {
            return Err(SimError::TimeReversal {
                now_ns: self.now.as_nanos(),
                requested_ns: at.as_nanos(),
            });
        }
        if bytes <= 0.0 || !bytes.is_finite() {
            return Err(SimError::Config(format!(
                "flow size {bytes} must be positive"
            )));
        }
        let key = (src.0, dst.0);
        if !self.route_cache.contains_key(&key) {
            let paths = self.topo.ecmp_paths(src, dst, 16);
            if paths.is_empty() {
                return Err(SimError::Config(format!(
                    "no path from node {} to node {}",
                    src.0, dst.0
                )));
            }
            let mut resolved = Vec::with_capacity(paths.len());
            for nodes in &paths {
                let mut dls = Vec::with_capacity(nodes.len().saturating_sub(1));
                for hop in nodes.windows(2) {
                    let (a, b) = (hop[0], hop[1]);
                    let (_, link) = self
                        .topo
                        .neighbors(a)
                        .iter()
                        .copied()
                        .find(|&(peer, _)| peer == b)
                        .expect("consecutive ECMP nodes are adjacent");
                    let l = self.topo.link(link).expect("link exists");
                    dls.push(dirlink(link, l.a == a));
                }
                resolved.push(dls);
            }
            self.route_cache.insert(key, resolved);
        }
        let routes = &self.route_cache[&key];
        let dls = &routes[path_choice % routes.len()];
        self.core.path_links.extend_from_slice(dls);
        self.core.path_offsets.push(self.core.path_links.len());
        let id = FlowId(self.core.flows.len());
        self.core.flows.push(Flow {
            bytes_remaining: bytes,
            injected: at,
            finished: None,
            rate_gbps: 0.0,
            pending: true,
            active: false,
        });
        self.pending.push((at, id));
        self.pending_sorted = false;
        Ok(id)
    }

    /// One-time run preparation: sorts the pending queue (deferred from
    /// injection — a stable sort, so simultaneous injections keep
    /// insertion order exactly as the per-inject sorts did), sizes the
    /// CSR + scratch arenas, and brings the persistent component index
    /// up to date.
    pub(crate) fn prepare_run(&mut self) {
        if !self.pending_sorted {
            self.pending.sort_by_key(|x| std::cmp::Reverse(x.0)); // reverse for pop()
            self.pending_sorted = true;
        }
        self.core.ensure_link_flow_csr();
        self.core.ensure_scratch_sized();
        self.refresh_component_index();
    }

    /// Brings the persistent component index up to date — absorbs
    /// arrivals since the watermark, batches departure counts, rebuilds
    /// from live paths past the threshold — then recomputes the
    /// component count and flows-per-component histogram over
    /// *unfinished* flows. Runs for serial and parallel runs alike (so
    /// 1-thread bench rows carry comparable component stats) and again
    /// at mid-run rebuilds; returns the per-component live-flow counts
    /// keyed by component root for the parallel runtime's ownership
    /// assignment.
    pub(crate) fn refresh_component_index(&mut self) -> BTreeMap<u32, u64> {
        let core = &self.core;
        self.index
            .absorb_arrivals(core.flows.len(), |i| core.path(i));
        let finished = core.flows.iter().filter(|f| f.finished.is_some()).count();
        self.index.observe_finished(finished);
        if self.index.should_rebuild() {
            self.index.rebuild(
                core.flows
                    .iter()
                    .enumerate()
                    .filter(|(_, f)| f.finished.is_none())
                    .map(|(i, _)| core.path(i)),
            );
        }
        let mut comp_flows: BTreeMap<u32, u64> = BTreeMap::new();
        for (i, f) in core.flows.iter().enumerate() {
            if f.finished.is_some() {
                continue;
            }
            if let Some(&first) = core.path(i).first() {
                *comp_flows.entry(self.index.root(first)).or_insert(0) += 1;
            }
        }
        self.components = comp_flows.len();
        self.comp_hist.clear();
        for &n in comp_flows.values() {
            let bucket = (63 - n.leading_zeros()) as usize;
            if self.comp_hist.len() <= bucket {
                self.comp_hist.resize(bucket + 1, 0);
            }
            self.comp_hist[bucket] += 1;
        }
        comp_flows
    }

    /// Advances the simulation until all flows complete.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors (none occur after injection in the
    /// current model); returns Ok when the fluid system drains.
    pub fn run(&mut self) -> Result<()> {
        self.prepare_run();
        npp_telemetry::trace_span!(begin "netsim.run", self.now.as_nanos());
        loop {
            if self.core.active.is_empty() && self.pending.is_empty() {
                npp_telemetry::trace_span!(end "netsim.run", self.now.as_nanos());
                self.publish_metrics();
                return Ok(());
            }
            if !self.core.scratch.seeds.is_empty() {
                let sample = self.recompute_timer.maybe_start();
                self.core.dirty_closure();
                self.core.recompute_rates();
                if let Some(stamp) = sample {
                    npp_telemetry::timer::record_sample("prof.netsim.recompute_ns", stamp);
                }
                #[cfg(any(test, debug_assertions))]
                self.core.assert_rates_match_naive_oracle();
            }

            // Earliest of: next injection, earliest completion.
            let next_injection = self.pending.last().map(|&(t, _)| t);
            let earliest_completion = self.core.earliest_completion(self.now);
            let next = match (next_injection, earliest_completion) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => {
                    // Active flows but all at zero rate: deadlock — only
                    // possible with zero-capacity links.
                    return Err(SimError::Config("active flows starved at zero rate".into()));
                }
            };

            // Integrate progress over [now, next], ascending flow id;
            // completions retire into the next closure's seeds.
            self.core.integrate(self.now, next);
            self.now = next;
            // Release injections due now.
            let mut released = false;
            while self
                .pending
                .last()
                .map(|&(t, _)| t <= self.now)
                .unwrap_or(false)
            {
                let (_, FlowId(i)) = self.pending.pop().expect("checked non-empty");
                self.core.release(i as u32);
                released = true;
            }
            if released {
                // Keep the active list ascending: integration order (and
                // thus float accumulation into the link stats) must not
                // depend on injection order.
                self.core.active.sort_unstable();
                self.peak_active = self.peak_active.max(self.core.active.len());
            }
            self.events += 1;
            npp_telemetry::trace_counter!(
                "netsim.live_flows",
                self.now.as_nanos(),
                0,
                self.core.active.len()
            );
        }
    }

    /// Advances the simulation until all flows complete, sharding the
    /// work across up to `threads` worker threads by link-sharing
    /// component (see the `netsim_par` module docs).
    ///
    /// The result — every rate, completion time, per-link statistic, the
    /// event count, and the peak-live-flow count — is `to_bits`-identical
    /// to [`NetSim::run`] for **any** thread count; `threads <= 1` simply
    /// runs the serial engine.
    ///
    /// # Errors
    ///
    /// Same as [`NetSim::run`].
    pub fn run_threads(&mut self, threads: usize) -> Result<()> {
        if threads <= 1 {
            return self.run();
        }
        crate::netsim_par::run_parallel(self, threads)
    }

    /// Publish the engine counters into the telemetry metrics registry
    /// (no-op unless a recording is active).
    pub(crate) fn publish_metrics(&self) {
        if !npp_telemetry::enabled() {
            return;
        }
        use npp_telemetry::metrics as m;
        m::counter_add("netsim.events", self.events);
        m::counter_add("netsim.recomputes", self.core.recomputes);
        m::counter_add("netsim.fixing_iterations", self.core.fixing_iterations);
        m::gauge_max("netsim.peak_live_flows", self.peak_active as f64);
        m::gauge_max("netsim.dirty_set_max", self.core.dirty_set_max as f64);
        m::gauge_max(
            "netsim.touched_links_max",
            self.core.touched_links_max as f64,
        );
        m::counter_add("netsim.index_rebuilds", self.index.rebuilds());
        m::counter_add("netsim.index_incremental_ops", self.index.incremental_ops());
        if let Some(par) = &self.par {
            m::counter_add("netsim.steal_events", par.steal_events);
            m::counter_add("netsim.stolen_components", par.stolen_components);
            m::counter_add("netsim.subproblems", par.subproblems);
        }
    }

    /// Status of a flow.
    pub fn status(&self, id: FlowId) -> Option<FlowStatus> {
        self.core.flows.get(id.0).map(|f| FlowStatus {
            injected: f.injected,
            finished: f.finished,
            bytes_remaining: f.bytes_remaining,
            rate: f.rate_gbps,
        })
    }

    /// Completion time of the last-finishing flow (makespan), if all
    /// finished.
    pub fn makespan(&self) -> Option<SimTime> {
        self.core
            .flows
            .iter()
            .map(|f| f.finished)
            .collect::<Option<Vec<_>>>()?
            .into_iter()
            .max()
    }

    /// Seconds during which a link carried traffic in *either* direction
    /// (union is approximated by the max of the two directions, exact
    /// when both directions are driven by the same collective).
    pub fn link_busy_secs(&self, link: LinkId) -> f64 {
        let fwd = self.core.busy_secs[link.0 * 2 + 1];
        let rev = self.core.busy_secs[link.0 * 2];
        fwd.max(rev)
    }

    /// Bytes carried by a link, summed over both directions.
    pub fn link_bytes(&self, link: LinkId) -> f64 {
        self.core.carried[link.0]
    }

    /// Links that never carried traffic.
    pub fn idle_links(&self) -> Vec<LinkId> {
        self.topo
            .links()
            .iter()
            .map(|l| l.id)
            .filter(|&l| self.link_bytes(l) == 0.0)
            .collect()
    }

    /// FNV-1a digest over the complete observable simulation state:
    /// per-flow injection/finish times, rate and residual-byte bits,
    /// per-directed-link busy seconds, per-link carried bytes, the
    /// clock, the event count, and the peak-live-flow count.
    ///
    /// Two runs are bit-identical iff their digests match — this is the
    /// identity gate `netpp bench-json` and CI use to compare
    /// `--threads N` against the serial engine without serialising the
    /// full state.
    pub fn state_digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        mix(self.core.flows.len() as u64);
        for f in &self.core.flows {
            mix(f.injected.as_nanos());
            mix(f.finished.map(|t| t.as_nanos() + 1).unwrap_or(0));
            mix(f.rate_gbps.to_bits());
            mix(f.bytes_remaining.to_bits());
        }
        for &b in &self.core.busy_secs {
            mix(b.to_bits());
        }
        for &c in &self.core.carried {
            mix(c.to_bits());
        }
        mix(self.now.as_nanos());
        mix(self.events);
        mix(self.peak_active as u64);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npp_topology::builder::{leaf_spine, three_tier_fat_tree};
    use npp_units::Gbps;

    #[test]
    fn single_flow_line_rate() {
        // 2 hosts on one leaf at 100 G: 125 MB moves in 10 ms.
        let topo = leaf_spine(1, 1, 2, Gbps::new(100.0)).unwrap();
        let hosts = topo.hosts();
        let mut sim = NetSim::new(topo);
        let f = sim
            .inject(SimTime::ZERO, hosts[0], hosts[1], 125e6, 0)
            .unwrap();
        sim.run().unwrap();
        let done = sim.status(f).unwrap().finished.unwrap();
        assert_eq!(done, SimTime::from_millis(10));
    }

    #[test]
    fn two_flows_share_a_bottleneck_fairly() {
        // Two hosts on leaf0 both sending to hosts on leaf1 through a
        // single spine uplink: each gets half of the 100 G uplink.
        let topo = leaf_spine(2, 1, 2, Gbps::new(100.0)).unwrap();
        let hosts = topo.hosts();
        let mut sim = NetSim::new(topo);
        let a = sim
            .inject(SimTime::ZERO, hosts[0], hosts[2], 62.5e6, 0)
            .unwrap();
        let b = sim
            .inject(SimTime::ZERO, hosts[1], hosts[3], 62.5e6, 0)
            .unwrap();
        sim.run().unwrap();
        // 62.5 MB at 50 G = 10 ms each.
        for f in [a, b] {
            let done = sim.status(f).unwrap().finished.unwrap();
            assert_eq!(done, SimTime::from_millis(10), "flow {f:?}");
        }
    }

    #[test]
    fn full_duplex_directions_do_not_interfere() {
        let topo = leaf_spine(1, 1, 2, Gbps::new(100.0)).unwrap();
        let hosts = topo.hosts();
        let mut sim = NetSim::new(topo);
        let a = sim
            .inject(SimTime::ZERO, hosts[0], hosts[1], 125e6, 0)
            .unwrap();
        let b = sim
            .inject(SimTime::ZERO, hosts[1], hosts[0], 125e6, 0)
            .unwrap();
        sim.run().unwrap();
        // Opposite directions: both finish at line rate.
        for f in [a, b] {
            assert_eq!(
                sim.status(f).unwrap().finished.unwrap(),
                SimTime::from_millis(10)
            );
        }
    }

    #[test]
    fn late_arrival_steals_half_then_first_finishes() {
        // Flow A starts alone at 100 G; B joins at t=5ms on the same
        // directed path; both run at 50 G afterwards.
        let topo = leaf_spine(1, 1, 2, Gbps::new(100.0)).unwrap();
        let hosts = topo.hosts();
        let mut sim = NetSim::new(topo);
        // A: 125 MB. Alone for 5 ms (62.5 MB done), then 50 G for the
        // remaining 62.5 MB → 10 ms more. Finishes at 15 ms.
        let a = sim
            .inject(SimTime::ZERO, hosts[0], hosts[1], 125e6, 0)
            .unwrap();
        let b = sim
            .inject(SimTime::from_millis(5), hosts[0], hosts[1], 125e6, 0)
            .unwrap();
        sim.run().unwrap();
        assert_eq!(
            sim.status(a).unwrap().finished.unwrap(),
            SimTime::from_millis(15)
        );
        // B: 62.5 MB at 50 G (10 ms) + 62.5 MB at 100 G (5 ms) = ends 20 ms.
        assert_eq!(
            sim.status(b).unwrap().finished.unwrap(),
            SimTime::from_millis(20)
        );
    }

    #[test]
    fn ring_allreduce_matches_analytic_model() {
        // 16-rank ring on a k=4 fat tree (packed onto the 16 hosts):
        // every flow i→i+1 carries 2(n−1)/n·S bytes; the fluid makespan
        // must match the analytic bandwidth-optimal all-reduce time.
        use npp_workload::collectives::{allreduce_time, AllReduceAlgo};
        let speed = Gbps::new(100.0);
        let topo = three_tier_fat_tree(4, speed).unwrap();
        let hosts = topo.hosts();
        let n = 16;
        let shard = npp_units::Bytes::from_mib(64.0);
        let per_rank =
            npp_workload::collectives::allreduce_bytes_per_rank(AllReduceAlgo::Ring, n, shard)
                .unwrap();
        let mut sim = NetSim::new(topo);
        for i in 0..n {
            sim.inject(
                SimTime::ZERO,
                hosts[i],
                hosts[(i + 1) % n],
                per_rank.value(),
                i,
            )
            .unwrap();
        }
        sim.run().unwrap();
        let expected = allreduce_time(AllReduceAlgo::Ring, n, shard, speed).unwrap();
        let got = sim.makespan().unwrap().as_seconds();
        assert!(
            (got.value() - expected.value()).abs() / expected.value() < 0.01,
            "sim {got} vs analytic {expected}"
        );
    }

    #[test]
    fn idle_links_are_reported() {
        let topo = three_tier_fat_tree(4, Gbps::new(100.0)).unwrap();
        let total_links = topo.links().len();
        let hosts = topo.hosts();
        let mut sim = NetSim::new(topo);
        sim.inject(SimTime::ZERO, hosts[0], hosts[1], 1e6, 0)
            .unwrap();
        sim.run().unwrap();
        let idle = sim.idle_links();
        assert!(
            idle.len() > total_links / 2,
            "idle {} of {}",
            idle.len(),
            total_links
        );
    }

    #[test]
    fn busy_time_accounting() {
        let topo = leaf_spine(1, 1, 2, Gbps::new(100.0)).unwrap();
        let hosts = topo.hosts();
        let host_link = topo.neighbors(hosts[0])[0].1;
        let mut sim = NetSim::new(topo);
        sim.inject(SimTime::ZERO, hosts[0], hosts[1], 125e6, 0)
            .unwrap();
        sim.run().unwrap();
        assert!((sim.link_busy_secs(host_link) - 0.01).abs() < 1e-6);
        assert!((sim.link_bytes(host_link) - 125e6).abs() < 1.0);
    }

    #[test]
    fn injection_validation() {
        let topo = leaf_spine(1, 1, 2, Gbps::new(100.0)).unwrap();
        let hosts = topo.hosts();
        let mut sim = NetSim::new(topo.clone());
        assert!(sim
            .inject(SimTime::ZERO, hosts[0], hosts[1], 0.0, 0)
            .is_err());
        assert!(sim
            .inject(SimTime::ZERO, hosts[0], hosts[1], f64::NAN, 0)
            .is_err());
        let mut disconnected = Topology::new();
        let a = disconnected.add_host("a");
        let b = disconnected.add_host("b");
        let mut sim2 = NetSim::new(disconnected);
        assert!(sim2.inject(SimTime::ZERO, a, b, 100.0, 0).is_err());
    }

    #[test]
    fn event_and_peak_counters_track_the_run() {
        let topo = leaf_spine(2, 1, 2, Gbps::new(100.0)).unwrap();
        let hosts = topo.hosts();
        let mut sim = NetSim::new(topo);
        sim.inject(SimTime::ZERO, hosts[0], hosts[2], 62.5e6, 0)
            .unwrap();
        sim.inject(SimTime::from_millis(1), hosts[1], hosts[3], 62.5e6, 0)
            .unwrap();
        sim.run().unwrap();
        // At least: release at 0, release at 1 ms, two completions.
        assert!(sim.events_processed() >= 3);
        assert_eq!(sim.peak_live_flows(), 2);
        assert_eq!(sim.flow_count(), 2);
    }

    #[test]
    fn disjoint_components_keep_exact_rates_across_events() {
        // Two leaf-local pairs on separate leaves never share a link;
        // events in one component must not disturb the other. The
        // debug-assert oracle checks the untouched component's rates
        // stay bit-identical to a full recompute.
        let topo = leaf_spine(2, 1, 4, Gbps::new(100.0)).unwrap();
        let hosts = topo.hosts();
        let mut sim = NetSim::new(topo);
        // Component 1 (leaf 0): long flow.
        let long = sim
            .inject(SimTime::ZERO, hosts[0], hosts[1], 250e6, 0)
            .unwrap();
        // Component 2 (leaf 1): a burst of short flows creating events
        // while the long flow runs.
        for i in 0..8 {
            sim.inject(
                SimTime::from_millis(i),
                hosts[4 + (i as usize % 2)],
                hosts[6 + (i as usize % 2)],
                1e6,
                0,
            )
            .unwrap();
        }
        sim.run().unwrap();
        // The long flow ran at line rate throughout: 250 MB at 100 G.
        assert_eq!(
            sim.status(long).unwrap().finished.unwrap(),
            SimTime::from_millis(20)
        );
    }

    /// Injects the same mixed workload (several components, staggered
    /// arrivals, completion ties) into a fresh sim.
    fn mixed_workload_sim() -> NetSim {
        let topo = leaf_spine(3, 2, 4, Gbps::new(100.0)).unwrap();
        let hosts = topo.hosts();
        let n = hosts.len();
        let mut sim = NetSim::new(topo);
        for i in 0..24usize {
            let src = hosts[i % n];
            let dst = hosts[(i * 5 + 3) % n];
            if src == dst {
                continue;
            }
            let at = SimTime::from_millis((i % 4) as u64);
            let bytes = 1e6 * (1.0 + (i % 3) as f64);
            sim.inject(at, src, dst, bytes, i).unwrap();
        }
        sim
    }

    #[test]
    fn parallel_run_is_bit_identical_to_serial() {
        let serial = {
            let mut sim = mixed_workload_sim();
            sim.run().unwrap();
            sim
        };
        for threads in [2, 3, 8] {
            let mut sim = mixed_workload_sim();
            sim.run_threads(threads).unwrap();
            assert_eq!(
                sim.state_digest(),
                serial.state_digest(),
                "threads={threads} digest diverged from serial"
            );
            assert_eq!(sim.events_processed(), serial.events_processed());
            assert_eq!(sim.peak_live_flows(), serial.peak_live_flows());
            assert_eq!(sim.makespan(), serial.makespan());
            let m = sim.engine_metrics();
            assert_eq!(m.threads, threads);
            assert!(m.components >= 1);
            assert_eq!(m.workers.len(), threads);
        }
    }

    #[test]
    fn run_threads_one_is_the_serial_engine() {
        let mut a = mixed_workload_sim();
        let mut b = mixed_workload_sim();
        a.run().unwrap();
        b.run_threads(1).unwrap();
        assert_eq!(a.state_digest(), b.state_digest());
        assert_eq!(b.engine_metrics().threads, 1);
        assert!(b.engine_metrics().workers.is_empty());
    }

    #[test]
    fn parallel_run_with_single_component() {
        // All flows share one bottleneck: one component, so every rate
        // recompute lands on one worker (or splits within the
        // component) — and must still match the serial engine.
        let topo = leaf_spine(2, 1, 2, Gbps::new(100.0)).unwrap();
        let hosts = topo.hosts();
        let build = |topo: Topology| {
            let mut sim = NetSim::new(topo);
            sim.inject(SimTime::ZERO, hosts[0], hosts[2], 62.5e6, 0)
                .unwrap();
            sim.inject(SimTime::from_millis(1), hosts[1], hosts[3], 62.5e6, 0)
                .unwrap();
            sim
        };
        let mut serial = build(leaf_spine(2, 1, 2, Gbps::new(100.0)).unwrap());
        serial.run().unwrap();
        let mut par = build(topo);
        par.run_threads(8).unwrap();
        assert_eq!(par.state_digest(), serial.state_digest());
        let m = par.engine_metrics();
        assert_eq!(m.components, 1);
        assert_eq!(m.threads, 8);
    }

    #[test]
    fn state_digest_distinguishes_different_runs() {
        let mut a = mixed_workload_sim();
        a.run().unwrap();
        let topo = leaf_spine(1, 1, 2, Gbps::new(100.0)).unwrap();
        let hosts = topo.hosts();
        let mut b = NetSim::new(topo);
        b.inject(SimTime::ZERO, hosts[0], hosts[1], 125e6, 0)
            .unwrap();
        b.run().unwrap();
        assert_ne!(a.state_digest(), b.state_digest());
    }
}
