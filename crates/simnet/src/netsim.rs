//! Flow-level network simulation with max-min fair sharing.
//!
//! A [`NetSim`] runs bulk flows over an explicit `npp-topology` graph:
//! each flow follows one path, links are full-duplex (capacity per
//! direction), and at every event (flow injection or completion) the
//! rates are recomputed by progressive filling — the classic max-min
//! fair-share fluid model. Between events all rates are constant, so
//! completions are computed exactly rather than time-stepped.
//!
//! This gives the §4 fabric-level experiments a middle ground between
//! the per-packet pipeline simulator (too slow for thousands of links)
//! and the purely analytic phase model (blind to path sharing): it
//! resolves *which links are busy when*, which is what link-level energy
//! mechanisms act on. The unit tests validate it against the analytic
//! collective cost models in `npp-workload`.

use std::collections::HashMap;

use npp_topology::graph::{LinkId, NodeId, Topology};

use crate::{Result, SimError, SimTime};

/// Identifier of a flow within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub usize);

/// A directed traversal of an undirected link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct DirLink {
    link: LinkId,
    /// true when traversed from `link.a` to `link.b`.
    forward: bool,
}

#[derive(Debug, Clone)]
struct Flow {
    bytes_remaining: f64,
    path: Vec<DirLink>,
    injected: SimTime,
    finished: Option<SimTime>,
    rate_gbps: f64,
}

/// Statistics for one completed or running flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowStatus {
    /// When the flow was injected.
    pub injected: SimTime,
    /// Completion time, if finished.
    pub finished: Option<SimTime>,
    /// Bytes still to transfer.
    pub bytes_remaining: f64,
    /// Current rate (Gbps).
    pub rate: f64,
}

/// The flow-level simulator.
#[derive(Debug, Clone)]
pub struct NetSim {
    topo: Topology,
    flows: Vec<Flow>,
    /// Pending injections, sorted by time (reverse for pop).
    pending: Vec<(SimTime, FlowId)>,
    now: SimTime,
    /// Per-directed-link busy time accumulated, in seconds.
    busy_secs: HashMap<DirLink, f64>,
    /// Per-link bytes carried (both directions).
    carried: HashMap<LinkId, f64>,
}

impl NetSim {
    /// Creates a simulator over (a clone of) the topology.
    pub fn new(topo: Topology) -> Self {
        Self {
            topo,
            flows: Vec::new(),
            pending: Vec::new(),
            now: SimTime::ZERO,
            busy_secs: HashMap::new(),
            carried: HashMap::new(),
        }
    }

    /// The simulation clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules a flow of `bytes` from `src` to `dst` at time `at`,
    /// routed on the `path_choice`-th ECMP shortest path (modulo the
    /// path count — callers can hash flows across paths).
    ///
    /// # Errors
    ///
    /// Rejects flows between unreachable nodes, empty flows, and
    /// injections in the past.
    pub fn inject(
        &mut self,
        at: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: f64,
        path_choice: usize,
    ) -> Result<FlowId> {
        if at < self.now {
            return Err(SimError::TimeReversal {
                now_ns: self.now.as_nanos(),
                requested_ns: at.as_nanos(),
            });
        }
        if bytes <= 0.0 || !bytes.is_finite() {
            return Err(SimError::Config(format!(
                "flow size {bytes} must be positive"
            )));
        }
        let paths = self.topo.ecmp_paths(src, dst, 16);
        if paths.is_empty() {
            return Err(SimError::Config(format!(
                "no path from node {} to node {}",
                src.0, dst.0
            )));
        }
        let nodes = &paths[path_choice % paths.len()];
        let mut path = Vec::with_capacity(nodes.len().saturating_sub(1));
        for hop in nodes.windows(2) {
            let (a, b) = (hop[0], hop[1]);
            let (_, link) = self
                .topo
                .neighbors(a)
                .iter()
                .copied()
                .find(|&(peer, _)| peer == b)
                .expect("consecutive ECMP nodes are adjacent");
            let l = self.topo.link(link).expect("link exists");
            path.push(DirLink {
                link,
                forward: l.a == a,
            });
        }
        let id = FlowId(self.flows.len());
        self.flows.push(Flow {
            bytes_remaining: bytes,
            path,
            injected: at,
            finished: None,
            rate_gbps: 0.0,
        });
        self.pending.push((at, id));
        self.pending.sort_by_key(|x| std::cmp::Reverse(x.0)); // reverse for pop()
        Ok(id)
    }

    /// Ids of flows that have started but not finished at `now`.
    fn active_flows(&self) -> Vec<usize> {
        self.flows
            .iter()
            .enumerate()
            .filter(|(i, f)| {
                f.finished.is_none()
                    && f.injected <= self.now
                    && !self.pending.iter().any(|&(_, FlowId(p))| p == *i)
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Progressive-filling max-min fair allocation over the active flows.
    fn recompute_rates(&mut self, active: &[usize]) {
        for &i in active {
            self.flows[i].rate_gbps = 0.0;
        }
        let mut unassigned: Vec<usize> = active.to_vec();
        // Remaining capacity per directed link.
        let mut cap: HashMap<DirLink, f64> = HashMap::new();
        for &i in active {
            for &dl in &self.flows[i].path {
                cap.entry(dl)
                    .or_insert_with(|| self.topo.link(dl.link).expect("link").capacity.value());
            }
        }
        while !unassigned.is_empty() {
            // Bottleneck link: smallest fair share.
            let mut best: Option<(f64, DirLink)> = None;
            for (&dl, &c) in &cap {
                let crossing = unassigned
                    .iter()
                    .filter(|&&i| self.flows[i].path.contains(&dl))
                    .count();
                if crossing == 0 {
                    continue;
                }
                let share = c / crossing as f64;
                if best.map(|(s, _)| share < s).unwrap_or(true) {
                    best = Some((share, dl));
                }
            }
            let Some((share, bottleneck)) = best else {
                break;
            };
            // Fix every unassigned flow crossing the bottleneck at the
            // fair share; subtract from other links on their paths.
            let fixed: Vec<usize> = unassigned
                .iter()
                .copied()
                .filter(|&i| self.flows[i].path.contains(&bottleneck))
                .collect();
            for &i in &fixed {
                self.flows[i].rate_gbps = share;
                for &dl in &self.flows[i].path.clone() {
                    if let Some(c) = cap.get_mut(&dl) {
                        *c = (*c - share).max(0.0);
                    }
                }
            }
            cap.remove(&bottleneck);
            unassigned.retain(|i| !fixed.contains(i));
        }
    }

    /// Advances the simulation until all flows complete.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors (none occur after injection in the
    /// current model); returns Ok when the fluid system drains.
    pub fn run(&mut self) -> Result<()> {
        loop {
            let active = self.active_flows();
            if active.is_empty() && self.pending.is_empty() {
                return Ok(());
            }
            self.recompute_rates(&active);

            // Earliest of: next injection, earliest completion.
            let next_injection = self.pending.last().map(|&(t, _)| t);
            let mut earliest_completion: Option<SimTime> = None;
            for &i in &active {
                let f = &self.flows[i];
                if f.rate_gbps > 0.0 {
                    let secs = f.bytes_remaining * 8.0 / (f.rate_gbps * 1e9);
                    let t = self.now.plus_nanos((secs * 1e9).ceil() as u64);
                    if earliest_completion.map(|e| t < e).unwrap_or(true) {
                        earliest_completion = Some(t);
                    }
                }
            }
            let next = match (next_injection, earliest_completion) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => {
                    // Active flows but all at zero rate: deadlock — only
                    // possible with zero-capacity links.
                    return Err(SimError::Config("active flows starved at zero rate".into()));
                }
            };

            // Integrate progress over [now, next].
            let dt = next.since(self.now) as f64 * 1e-9;
            for &i in &active {
                let f = &mut self.flows[i];
                if f.rate_gbps > 0.0 {
                    let moved = f.rate_gbps * 1e9 * dt / 8.0;
                    f.bytes_remaining = (f.bytes_remaining - moved).max(0.0);
                    for &dl in &f.path {
                        *self.busy_secs.entry(dl).or_insert(0.0) += dt;
                        *self.carried.entry(dl.link).or_insert(0.0) += moved;
                    }
                    if f.bytes_remaining <= 1e-6 {
                        f.finished = Some(next);
                    }
                }
            }
            self.now = next;
            // Release injections due now.
            while self
                .pending
                .last()
                .map(|&(t, _)| t <= self.now)
                .unwrap_or(false)
            {
                self.pending.pop();
            }
        }
    }

    /// Status of a flow.
    pub fn status(&self, id: FlowId) -> Option<FlowStatus> {
        self.flows.get(id.0).map(|f| FlowStatus {
            injected: f.injected,
            finished: f.finished,
            bytes_remaining: f.bytes_remaining,
            rate: f.rate_gbps,
        })
    }

    /// Completion time of the last-finishing flow (makespan), if all
    /// finished.
    pub fn makespan(&self) -> Option<SimTime> {
        self.flows
            .iter()
            .map(|f| f.finished)
            .collect::<Option<Vec<_>>>()?
            .into_iter()
            .max()
    }

    /// Seconds during which a link carried traffic in *either* direction
    /// (union is approximated by the max of the two directions, exact
    /// when both directions are driven by the same collective).
    pub fn link_busy_secs(&self, link: LinkId) -> f64 {
        let fwd = self
            .busy_secs
            .get(&DirLink {
                link,
                forward: true,
            })
            .copied()
            .unwrap_or(0.0);
        let rev = self
            .busy_secs
            .get(&DirLink {
                link,
                forward: false,
            })
            .copied()
            .unwrap_or(0.0);
        fwd.max(rev)
    }

    /// Bytes carried by a link, summed over both directions.
    pub fn link_bytes(&self, link: LinkId) -> f64 {
        self.carried.get(&link).copied().unwrap_or(0.0)
    }

    /// Links that never carried traffic.
    pub fn idle_links(&self) -> Vec<LinkId> {
        self.topo
            .links()
            .iter()
            .map(|l| l.id)
            .filter(|&l| self.link_bytes(l) == 0.0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npp_topology::builder::{leaf_spine, three_tier_fat_tree};
    use npp_units::Gbps;

    #[test]
    fn single_flow_line_rate() {
        // 2 hosts on one leaf at 100 G: 125 MB moves in 10 ms.
        let topo = leaf_spine(1, 1, 2, Gbps::new(100.0)).unwrap();
        let hosts = topo.hosts();
        let mut sim = NetSim::new(topo);
        let f = sim
            .inject(SimTime::ZERO, hosts[0], hosts[1], 125e6, 0)
            .unwrap();
        sim.run().unwrap();
        let done = sim.status(f).unwrap().finished.unwrap();
        assert_eq!(done, SimTime::from_millis(10));
    }

    #[test]
    fn two_flows_share_a_bottleneck_fairly() {
        // Two hosts on leaf0 both sending to hosts on leaf1 through a
        // single spine uplink: each gets half of the 100 G uplink.
        let topo = leaf_spine(2, 1, 2, Gbps::new(100.0)).unwrap();
        let hosts = topo.hosts();
        let mut sim = NetSim::new(topo);
        let a = sim
            .inject(SimTime::ZERO, hosts[0], hosts[2], 62.5e6, 0)
            .unwrap();
        let b = sim
            .inject(SimTime::ZERO, hosts[1], hosts[3], 62.5e6, 0)
            .unwrap();
        sim.run().unwrap();
        // 62.5 MB at 50 G = 10 ms each.
        for f in [a, b] {
            let done = sim.status(f).unwrap().finished.unwrap();
            assert_eq!(done, SimTime::from_millis(10), "flow {f:?}");
        }
    }

    #[test]
    fn full_duplex_directions_do_not_interfere() {
        let topo = leaf_spine(1, 1, 2, Gbps::new(100.0)).unwrap();
        let hosts = topo.hosts();
        let mut sim = NetSim::new(topo);
        let a = sim
            .inject(SimTime::ZERO, hosts[0], hosts[1], 125e6, 0)
            .unwrap();
        let b = sim
            .inject(SimTime::ZERO, hosts[1], hosts[0], 125e6, 0)
            .unwrap();
        sim.run().unwrap();
        // Opposite directions: both finish at line rate.
        for f in [a, b] {
            assert_eq!(
                sim.status(f).unwrap().finished.unwrap(),
                SimTime::from_millis(10)
            );
        }
    }

    #[test]
    fn late_arrival_steals_half_then_first_finishes() {
        // Flow A starts alone at 100 G; B joins at t=5ms on the same
        // directed path; both run at 50 G afterwards.
        let topo = leaf_spine(1, 1, 2, Gbps::new(100.0)).unwrap();
        let hosts = topo.hosts();
        let mut sim = NetSim::new(topo);
        // A: 125 MB. Alone for 5 ms (62.5 MB done), then 50 G for the
        // remaining 62.5 MB → 10 ms more. Finishes at 15 ms.
        let a = sim
            .inject(SimTime::ZERO, hosts[0], hosts[1], 125e6, 0)
            .unwrap();
        let b = sim
            .inject(SimTime::from_millis(5), hosts[0], hosts[1], 125e6, 0)
            .unwrap();
        sim.run().unwrap();
        assert_eq!(
            sim.status(a).unwrap().finished.unwrap(),
            SimTime::from_millis(15)
        );
        // B: 62.5 MB at 50 G (10 ms) + 62.5 MB at 100 G (5 ms) = ends 20 ms.
        assert_eq!(
            sim.status(b).unwrap().finished.unwrap(),
            SimTime::from_millis(20)
        );
    }

    #[test]
    fn ring_allreduce_matches_analytic_model() {
        // 16-rank ring on a k=4 fat tree (packed onto the 16 hosts):
        // every flow i→i+1 carries 2(n−1)/n·S bytes; the fluid makespan
        // must match the analytic bandwidth-optimal all-reduce time.
        use npp_workload::collectives::{allreduce_time, AllReduceAlgo};
        let speed = Gbps::new(100.0);
        let topo = three_tier_fat_tree(4, speed).unwrap();
        let hosts = topo.hosts();
        let n = 16;
        let shard = npp_units::Bytes::from_mib(64.0);
        let per_rank =
            npp_workload::collectives::allreduce_bytes_per_rank(AllReduceAlgo::Ring, n, shard)
                .unwrap();
        let mut sim = NetSim::new(topo);
        for i in 0..n {
            sim.inject(
                SimTime::ZERO,
                hosts[i],
                hosts[(i + 1) % n],
                per_rank.value(),
                i,
            )
            .unwrap();
        }
        sim.run().unwrap();
        let expected = allreduce_time(AllReduceAlgo::Ring, n, shard, speed).unwrap();
        let got = sim.makespan().unwrap().as_seconds();
        assert!(
            (got.value() - expected.value()).abs() / expected.value() < 0.01,
            "sim {got} vs analytic {expected}"
        );
    }

    #[test]
    fn idle_links_are_reported() {
        let topo = three_tier_fat_tree(4, Gbps::new(100.0)).unwrap();
        let total_links = topo.links().len();
        let hosts = topo.hosts();
        let mut sim = NetSim::new(topo);
        sim.inject(SimTime::ZERO, hosts[0], hosts[1], 1e6, 0)
            .unwrap();
        sim.run().unwrap();
        let idle = sim.idle_links();
        assert!(
            idle.len() > total_links / 2,
            "idle {} of {}",
            idle.len(),
            total_links
        );
    }

    #[test]
    fn busy_time_accounting() {
        let topo = leaf_spine(1, 1, 2, Gbps::new(100.0)).unwrap();
        let hosts = topo.hosts();
        let host_link = topo.neighbors(hosts[0])[0].1;
        let mut sim = NetSim::new(topo);
        sim.inject(SimTime::ZERO, hosts[0], hosts[1], 125e6, 0)
            .unwrap();
        sim.run().unwrap();
        assert!((sim.link_busy_secs(host_link) - 0.01).abs() < 1e-6);
        assert!((sim.link_bytes(host_link) - 125e6).abs() < 1.0);
    }

    #[test]
    fn injection_validation() {
        let topo = leaf_spine(1, 1, 2, Gbps::new(100.0)).unwrap();
        let hosts = topo.hosts();
        let mut sim = NetSim::new(topo.clone());
        assert!(sim
            .inject(SimTime::ZERO, hosts[0], hosts[1], 0.0, 0)
            .is_err());
        assert!(sim
            .inject(SimTime::ZERO, hosts[0], hosts[1], f64::NAN, 0)
            .is_err());
        let mut disconnected = Topology::new();
        let a = disconnected.add_host("a");
        let b = disconnected.add_host("b");
        let mut sim2 = NetSim::new(disconnected);
        assert!(sim2.inject(SimTime::ZERO, a, b, 100.0, 0).is_err());
    }
}
