//! Flow-level network simulation with max-min fair sharing.
//!
//! A [`NetSim`] runs bulk flows over an explicit `npp-topology` graph:
//! each flow follows one path, links are full-duplex (capacity per
//! direction), and at every event (flow injection or completion) the
//! rates are recomputed by progressive filling — the classic max-min
//! fair-share fluid model. Between events all rates are constant, so
//! completions are computed exactly rather than time-stepped.
//!
//! This gives the §4 fabric-level experiments a middle ground between
//! the per-packet pipeline simulator (too slow for thousands of links)
//! and the purely analytic phase model (blind to path sharing): it
//! resolves *which links are busy when*, which is what link-level energy
//! mechanisms act on. The unit tests validate it against the analytic
//! collective cost models in `npp-workload`.
//!
//! # The indexed fast path
//!
//! The simulator is built for fabric-scale sweeps, so the event loop is
//! indexed and allocation-free in steady state:
//!
//! - links and flows carry dense `u32` ids; a directed link is
//!   `link_id * 2 + direction`, so per-directed-link state lives in
//!   plain arrays instead of `HashMap<DirLink, f64>`;
//! - flow→link paths are stored in one CSR arena
//!   ([`NetSim::path_links`] + offsets) filled at injection time, and a
//!   link→flow CSR is (re)built by counting sort before the event loop
//!   starts, so the waterfill never scans `path.contains`;
//! - [`NetSim::run`] owns a scratch arena (capacities, crossing counts,
//!   dirty marks, work queues) that is sized once and reused by every
//!   event, so the steady-state loop performs zero heap allocations;
//! - an event only recomputes the rates of the flows it can actually
//!   affect: the dirty set is closed over the flow-sharing graph
//!   (flows sharing a directed link share a bottleneck cascade), and
//!   untouched sharing components keep their — still exact — rates.
//!
//! Correctness is anchored by a naive progressive-filling oracle
//! (`O(flows² · links)`, the pre-optimization algorithm) that runs after
//! every recompute in test/debug builds and asserts the rate vectors
//! are **bit-identical**. [`crate::netsim_naive::NaiveNetSim`] preserves
//! the full pre-optimization engine for benchmarks and differential
//! tests.

use npp_topology::graph::{LinkId, NodeId, Topology};
use serde::Serialize;

use crate::{Result, SimError, SimTime};

/// Identifier of a flow within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub usize);

#[derive(Debug, Clone)]
struct Flow {
    bytes_remaining: f64,
    injected: SimTime,
    finished: Option<SimTime>,
    rate_gbps: f64,
    /// Scheduled but not yet released into the fluid system.
    pending: bool,
    /// Released and not yet finished.
    active: bool,
}

/// Statistics for one completed or running flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowStatus {
    /// When the flow was injected.
    pub injected: SimTime,
    /// Completion time, if finished.
    pub finished: Option<SimTime>,
    /// Bytes still to transfer.
    pub bytes_remaining: f64,
    /// Current rate (Gbps).
    pub rate: f64,
}

/// Reusable working memory for the event loop: sized once per run,
/// then reused by every recompute so the steady state allocates nothing.
#[derive(Debug, Clone, Default)]
struct Scratch {
    /// Remaining capacity per directed link (valid only for `touched`).
    cap: Vec<f64>,
    /// Unassigned-flow crossing count per directed link (zero outside a
    /// recompute).
    crossing: Vec<u32>,
    /// Directed links touched by the current recompute set.
    touched: Vec<u32>,
    /// Membership flag: flow is in the current recompute set.
    in_set: Vec<bool>,
    /// Flow already fixed at its bottleneck share this recompute.
    assigned: Vec<bool>,
    /// Directed link already expanded by the dirty-closure walk.
    link_seen: Vec<bool>,
    /// Directed links marked by the closure walk (for mark clearing).
    links_marked: Vec<u32>,
    /// Flow already visited by the dirty-closure walk.
    flow_seen: Vec<bool>,
    /// Flows visited by the closure walk (for mark clearing).
    flows_marked: Vec<u32>,
    /// Closure worklist.
    queue: Vec<u32>,
    /// Active flows whose rates the current event may change.
    set: Vec<u32>,
    /// Flows changed by the last event (released or completed): the
    /// seeds of the next dirty closure.
    seeds: Vec<u32>,
}

/// Engine-internal counters exposed for benchmarks and `netpp profile`:
/// how much work the indexed fast path actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct EngineMetrics {
    /// Fluid events (rate epochs) processed.
    pub events: u64,
    /// Largest number of simultaneously live flows.
    pub peak_live_flows: usize,
    /// Dirty-closure + waterfill recomputations performed.
    pub recomputes: u64,
    /// Total bottleneck-fixing iterations across all recomputes.
    pub fixing_iterations: u64,
    /// Largest dirty set (flows re-rated by one event).
    pub dirty_set_max: usize,
    /// Scratch-arena high-water mark: most directed links touched by one
    /// waterfill.
    pub touched_links_max: usize,
}

/// The flow-level simulator.
#[derive(Debug, Clone)]
pub struct NetSim {
    topo: Topology,
    /// Capacity (Gbps) per directed link; both directions of a link
    /// share the link's capacity value.
    link_caps: Vec<f64>,
    flows: Vec<Flow>,
    /// CSR flow→directed-link adjacency: `path_links[path_offsets[i]..
    /// path_offsets[i + 1]]` is flow `i`'s path, filled at injection.
    path_offsets: Vec<usize>,
    path_links: Vec<u32>,
    /// CSR directed-link→flow adjacency, rebuilt (counting sort) when
    /// flows were injected since the last build. Rows list flows in
    /// ascending id order, which the waterfill relies on.
    lf_offsets: Vec<usize>,
    lf_flows: Vec<u32>,
    lf_flows_built: usize,
    /// Pending injections, sorted by time (reverse for pop).
    pending: Vec<(SimTime, FlowId)>,
    /// Released, unfinished flows, ascending by id.
    active: Vec<u32>,
    now: SimTime,
    /// Per-directed-link busy time accumulated, in seconds.
    busy_secs: Vec<f64>,
    /// Per-link bytes carried (both directions).
    carried: Vec<f64>,
    events: u64,
    peak_active: usize,
    recomputes: u64,
    fixing_iterations: u64,
    dirty_set_max: usize,
    touched_links_max: usize,
    /// Samples one in N recompute passes into the `prof.netsim.recompute_ns`
    /// histogram when telemetry recording is active (profiling data only —
    /// wall time never feeds back into simulation state).
    recompute_timer: npp_telemetry::timer::SampleTimer,
    scratch: Scratch,
}

/// Directed-link id of `link` traversed forward (`a → b`) or backward.
fn dirlink(link: LinkId, forward: bool) -> u32 {
    (link.0 * 2 + usize::from(forward)) as u32
}

impl NetSim {
    /// Creates a simulator over (a clone of) the topology.
    pub fn new(topo: Topology) -> Self {
        let n_links = topo.links().len();
        let mut link_caps = vec![0.0; n_links * 2];
        for l in topo.links() {
            let c = l.capacity.value();
            link_caps[l.id.0 * 2] = c;
            link_caps[l.id.0 * 2 + 1] = c;
        }
        Self {
            topo,
            link_caps,
            flows: Vec::new(),
            path_offsets: vec![0],
            path_links: Vec::new(),
            lf_offsets: Vec::new(),
            lf_flows: Vec::new(),
            lf_flows_built: 0,
            pending: Vec::new(),
            active: Vec::new(),
            now: SimTime::ZERO,
            busy_secs: vec![0.0; n_links * 2],
            carried: vec![0.0; n_links],
            events: 0,
            peak_active: 0,
            recomputes: 0,
            fixing_iterations: 0,
            dirty_set_max: 0,
            touched_links_max: 0,
            recompute_timer: npp_telemetry::timer::SampleTimer::every(64),
            scratch: Scratch::default(),
        }
    }

    /// The simulation clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of fluid events (rate epochs) processed by [`NetSim::run`].
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// Largest number of simultaneously live flows seen so far.
    pub fn peak_live_flows(&self) -> usize {
        self.peak_active
    }

    /// Snapshot of the engine's internal work counters.
    pub fn engine_metrics(&self) -> EngineMetrics {
        EngineMetrics {
            events: self.events,
            peak_live_flows: self.peak_active,
            recomputes: self.recomputes,
            fixing_iterations: self.fixing_iterations,
            dirty_set_max: self.dirty_set_max,
            touched_links_max: self.touched_links_max,
        }
    }

    /// Number of flows ever injected.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Flows scheduled but not yet released into the fluid system.
    pub fn pending_flow_count(&self) -> usize {
        self.flows.iter().filter(|f| f.pending).count()
    }

    /// Flows currently live (released and unfinished).
    pub fn live_flow_count(&self) -> usize {
        self.active.len()
    }

    /// Schedules a flow of `bytes` from `src` to `dst` at time `at`,
    /// routed on the `path_choice`-th ECMP shortest path (modulo the
    /// path count — callers can hash flows across paths).
    ///
    /// # Errors
    ///
    /// Rejects flows between unreachable nodes, empty flows, and
    /// injections in the past.
    pub fn inject(
        &mut self,
        at: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: f64,
        path_choice: usize,
    ) -> Result<FlowId> {
        if at < self.now {
            return Err(SimError::TimeReversal {
                now_ns: self.now.as_nanos(),
                requested_ns: at.as_nanos(),
            });
        }
        if bytes <= 0.0 || !bytes.is_finite() {
            return Err(SimError::Config(format!(
                "flow size {bytes} must be positive"
            )));
        }
        let paths = self.topo.ecmp_paths(src, dst, 16);
        if paths.is_empty() {
            return Err(SimError::Config(format!(
                "no path from node {} to node {}",
                src.0, dst.0
            )));
        }
        let nodes = &paths[path_choice % paths.len()];
        for hop in nodes.windows(2) {
            let (a, b) = (hop[0], hop[1]);
            let (_, link) = self
                .topo
                .neighbors(a)
                .iter()
                .copied()
                .find(|&(peer, _)| peer == b)
                .expect("consecutive ECMP nodes are adjacent");
            let l = self.topo.link(link).expect("link exists");
            self.path_links.push(dirlink(link, l.a == a));
        }
        self.path_offsets.push(self.path_links.len());
        let id = FlowId(self.flows.len());
        self.flows.push(Flow {
            bytes_remaining: bytes,
            injected: at,
            finished: None,
            rate_gbps: 0.0,
            pending: true,
            active: false,
        });
        self.pending.push((at, id));
        self.pending.sort_by_key(|x| std::cmp::Reverse(x.0)); // reverse for pop()
        Ok(id)
    }

    /// Flow `i`'s path as a slice of directed-link ids.
    #[cfg(any(test, debug_assertions))]
    fn path(&self, i: usize) -> &[u32] {
        &self.path_links[self.path_offsets[i]..self.path_offsets[i + 1]]
    }

    /// Rebuilds the link→flow CSR if flows were injected since the last
    /// build. Counting sort over the flow→link CSR keeps each row in
    /// ascending flow-id order; the buffers are reused across rebuilds.
    fn ensure_link_flow_csr(&mut self) {
        if self.lf_flows_built == self.flows.len() {
            return;
        }
        let n = self.link_caps.len();
        self.lf_offsets.clear();
        self.lf_offsets.resize(n + 1, 0);
        for &dl in &self.path_links {
            self.lf_offsets[dl as usize + 1] += 1;
        }
        for d in 0..n {
            self.lf_offsets[d + 1] += self.lf_offsets[d];
        }
        self.lf_flows.clear();
        self.lf_flows.resize(self.path_links.len(), 0);
        // Per-link write cursors; `scratch.crossing` is idle between
        // recomputes and has exactly the right shape.
        let cursor = &mut self.scratch.crossing;
        cursor.clear();
        cursor.resize(n, 0);
        for i in 0..self.flows.len() {
            for &dl in &self.path_links[self.path_offsets[i]..self.path_offsets[i + 1]] {
                let d = dl as usize;
                self.lf_flows[self.lf_offsets[d] + cursor[d] as usize] = i as u32;
                cursor[d] += 1;
            }
        }
        for c in cursor.iter_mut() {
            *c = 0;
        }
        self.lf_flows_built = self.flows.len();
    }

    /// Sizes the scratch arena for the current flow/link population so
    /// the event loop never grows a buffer mid-run.
    fn ensure_scratch_sized(&mut self) {
        let n_dl = self.link_caps.len();
        let n_fl = self.flows.len();
        let s = &mut self.scratch;
        s.cap.resize(n_dl, 0.0);
        s.crossing.resize(n_dl, 0);
        s.link_seen.resize(n_dl, false);
        s.in_set.resize(n_fl, false);
        s.assigned.resize(n_fl, false);
        s.flow_seen.resize(n_fl, false);
        s.touched.reserve(self.path_links.len());
        s.links_marked.reserve(n_dl);
        s.queue.reserve(n_fl);
        s.set.reserve(n_fl);
        s.seeds.reserve(n_fl);
        s.flows_marked.reserve(n_fl);
        self.active.reserve(n_fl);
    }

    /// Expands the seed flows (released or completed by the last event)
    /// into the set of *active* flows whose rates the event can affect:
    /// the transitive closure over shared directed links. Sharing
    /// components not reached keep their previous — still exact —
    /// max-min rates, because progressive filling decomposes over
    /// link-disjoint components.
    fn dirty_closure(&mut self) {
        let s = &mut self.scratch;
        s.set.clear();
        s.queue.clear();
        for i in 0..s.seeds.len() {
            let f = s.seeds[i];
            if !s.flow_seen[f as usize] {
                s.flow_seen[f as usize] = true;
                s.flows_marked.push(f);
                s.queue.push(f);
            }
        }
        while let Some(f) = s.queue.pop() {
            let fi = f as usize;
            if self.flows[fi].active {
                s.set.push(f);
            }
            for &dl in &self.path_links[self.path_offsets[fi]..self.path_offsets[fi + 1]] {
                let d = dl as usize;
                if s.link_seen[d] {
                    continue;
                }
                s.link_seen[d] = true;
                s.links_marked.push(dl);
                for &g in &self.lf_flows[self.lf_offsets[d]..self.lf_offsets[d + 1]] {
                    let gi = g as usize;
                    if self.flows[gi].active && !s.flow_seen[gi] {
                        s.flow_seen[gi] = true;
                        s.flows_marked.push(g);
                        s.queue.push(g);
                    }
                }
            }
        }
        for &dl in &s.links_marked {
            s.link_seen[dl as usize] = false;
        }
        s.links_marked.clear();
        for &f in &s.flows_marked {
            s.flow_seen[f as usize] = false;
        }
        s.flows_marked.clear();
        s.seeds.clear();
        let set_len = s.set.len();
        self.dirty_set_max = self.dirty_set_max.max(set_len);
    }

    /// Progressive-filling max-min fair allocation over `scratch.set`.
    ///
    /// Indexed waterfill: per-directed-link remaining capacity and
    /// crossing counts live in dense arrays, the bottleneck's flows come
    /// from the link→flow CSR (ascending flow id, matching the naive
    /// algorithm's fixing order bit for bit), and ties on the fair share
    /// break toward the smallest directed-link id — the same choice a
    /// deterministic scan of the naive capacity map makes.
    fn recompute_rates(&mut self) {
        let s = &mut self.scratch;
        debug_assert!(s.touched.is_empty());
        let mut unassigned = 0usize;
        for &f in &s.set {
            let fi = f as usize;
            self.flows[fi].rate_gbps = 0.0;
            s.in_set[fi] = true;
            s.assigned[fi] = false;
            let path = &self.path_links[self.path_offsets[fi]..self.path_offsets[fi + 1]];
            if !path.is_empty() {
                unassigned += 1;
            }
            for &dl in path {
                let d = dl as usize;
                if s.crossing[d] == 0 {
                    s.cap[d] = self.link_caps[d];
                    s.touched.push(dl);
                }
                s.crossing[d] += 1;
            }
        }
        let mut fixing_iterations = 0u64;
        while unassigned > 0 {
            fixing_iterations += 1;
            // Bottleneck link: smallest fair share, ties to smallest id.
            let mut best_share = f64::INFINITY;
            let mut best_dl = u32::MAX;
            let mut found = false;
            for &dl in &s.touched {
                let d = dl as usize;
                if s.crossing[d] == 0 {
                    continue;
                }
                let share = s.cap[d] / s.crossing[d] as f64;
                if !found || share < best_share || (share == best_share && dl < best_dl) {
                    found = true;
                    best_share = share;
                    best_dl = dl;
                }
            }
            if !found {
                break;
            }
            // Fix every unassigned flow crossing the bottleneck at the
            // fair share; subtract from the links on their paths.
            let row = &self.lf_flows
                [self.lf_offsets[best_dl as usize]..self.lf_offsets[best_dl as usize + 1]];
            for &f in row {
                let fi = f as usize;
                if !s.in_set[fi] || s.assigned[fi] {
                    continue;
                }
                s.assigned[fi] = true;
                unassigned -= 1;
                self.flows[fi].rate_gbps = best_share;
                for &dl in &self.path_links[self.path_offsets[fi]..self.path_offsets[fi + 1]] {
                    let d = dl as usize;
                    s.crossing[d] -= 1;
                    s.cap[d] = (s.cap[d] - best_share).max(0.0);
                }
            }
            debug_assert_eq!(s.crossing[best_dl as usize], 0);
        }
        for &dl in &s.touched {
            s.crossing[dl as usize] = 0;
        }
        let touched_len = s.touched.len();
        s.touched.clear();
        for &f in &s.set {
            s.in_set[f as usize] = false;
        }
        self.recomputes += 1;
        self.fixing_iterations += fixing_iterations;
        self.touched_links_max = self.touched_links_max.max(touched_len);
    }

    /// Full-recompute oracle: reruns the naive `O(flows² · links)`
    /// progressive filling over *all* active flows and asserts every
    /// rate — including those the dirty closure chose not to touch — is
    /// bit-identical to what the indexed engine holds.
    #[cfg(any(test, debug_assertions))]
    fn assert_rates_match_naive_oracle(&self) {
        use std::collections::BTreeMap;
        let active: Vec<usize> = self
            .flows
            .iter()
            .enumerate()
            .filter(|(_, f)| f.active)
            .map(|(i, _)| i)
            .collect();
        let mut rates = vec![0.0f64; self.flows.len()];
        let mut unassigned = active.clone();
        let mut cap: BTreeMap<u32, f64> = BTreeMap::new();
        for &i in &active {
            for &dl in self.path(i) {
                cap.entry(dl).or_insert(self.link_caps[dl as usize]);
            }
        }
        loop {
            let mut best: Option<(f64, u32)> = None;
            for (&dl, &c) in &cap {
                let crossing = unassigned
                    .iter()
                    .filter(|&&i| self.path(i).contains(&dl))
                    .count();
                if crossing == 0 {
                    continue;
                }
                let share = c / crossing as f64;
                if best.map(|(s, _)| share < s).unwrap_or(true) {
                    best = Some((share, dl));
                }
            }
            let Some((share, bottleneck)) = best else {
                break;
            };
            let fixed: Vec<usize> = unassigned
                .iter()
                .copied()
                .filter(|&i| self.path(i).contains(&bottleneck))
                .collect();
            for &i in &fixed {
                rates[i] = share;
                for &dl in self.path(i) {
                    if let Some(c) = cap.get_mut(&dl) {
                        *c = (*c - share).max(0.0);
                    }
                }
            }
            cap.remove(&bottleneck);
            unassigned.retain(|i| !fixed.contains(i));
        }
        for &i in &active {
            debug_assert_eq!(
                self.flows[i].rate_gbps.to_bits(),
                rates[i].to_bits(),
                "flow {i}: indexed rate {} diverged from naive oracle {}",
                self.flows[i].rate_gbps,
                rates[i],
            );
        }
    }

    /// Advances the simulation until all flows complete.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors (none occur after injection in the
    /// current model); returns Ok when the fluid system drains.
    pub fn run(&mut self) -> Result<()> {
        self.ensure_link_flow_csr();
        self.ensure_scratch_sized();
        npp_telemetry::trace_span!(begin "netsim.run", self.now.as_nanos());
        loop {
            if self.active.is_empty() && self.pending.is_empty() {
                npp_telemetry::trace_span!(end "netsim.run", self.now.as_nanos());
                self.publish_metrics();
                return Ok(());
            }
            if !self.scratch.seeds.is_empty() {
                let sample = self.recompute_timer.maybe_start();
                self.dirty_closure();
                self.recompute_rates();
                if let Some(stamp) = sample {
                    npp_telemetry::timer::record_sample("prof.netsim.recompute_ns", stamp);
                }
                #[cfg(any(test, debug_assertions))]
                self.assert_rates_match_naive_oracle();
            }

            // Earliest of: next injection, earliest completion.
            let next_injection = self.pending.last().map(|&(t, _)| t);
            let mut earliest_completion: Option<SimTime> = None;
            for &i in &self.active {
                let f = &self.flows[i as usize];
                if f.rate_gbps > 0.0 {
                    let secs = f.bytes_remaining * 8.0 / (f.rate_gbps * 1e9);
                    let t = self.now.plus_nanos((secs * 1e9).ceil() as u64);
                    if earliest_completion.map(|e| t < e).unwrap_or(true) {
                        earliest_completion = Some(t);
                    }
                }
            }
            let next = match (next_injection, earliest_completion) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => {
                    // Active flows but all at zero rate: deadlock — only
                    // possible with zero-capacity links.
                    return Err(SimError::Config("active flows starved at zero rate".into()));
                }
            };

            // Integrate progress over [now, next], ascending flow id.
            let dt = next.since(self.now) as f64 * 1e-9;
            for &i in &self.active {
                let fi = i as usize;
                let rate = self.flows[fi].rate_gbps;
                if rate > 0.0 {
                    let moved = rate * 1e9 * dt / 8.0;
                    let f = &mut self.flows[fi];
                    f.bytes_remaining = (f.bytes_remaining - moved).max(0.0);
                    let done = f.bytes_remaining <= 1e-6;
                    if done {
                        f.finished = Some(next);
                        f.active = false;
                    }
                    for &dl in &self.path_links[self.path_offsets[fi]..self.path_offsets[fi + 1]] {
                        let d = dl as usize;
                        self.busy_secs[d] += dt;
                        self.carried[d / 2] += moved;
                    }
                }
            }
            self.now = next;
            // Drop completed flows from the active list; they seed the
            // next dirty closure (their links free capacity).
            let (flows, scratch) = (&self.flows, &mut self.scratch);
            self.active.retain(|&i| {
                if flows[i as usize].active {
                    true
                } else {
                    scratch.seeds.push(i);
                    false
                }
            });
            // Release injections due now.
            let mut released = false;
            while self
                .pending
                .last()
                .map(|&(t, _)| t <= self.now)
                .unwrap_or(false)
            {
                let (_, FlowId(i)) = self.pending.pop().expect("checked non-empty");
                let f = &mut self.flows[i];
                f.pending = false;
                f.active = true;
                self.active.push(i as u32);
                self.scratch.seeds.push(i as u32);
                released = true;
            }
            if released {
                // Keep the active list ascending: integration order (and
                // thus float accumulation into the link stats) must not
                // depend on injection order.
                self.active.sort_unstable();
                self.peak_active = self.peak_active.max(self.active.len());
            }
            self.events += 1;
            npp_telemetry::trace_counter!(
                "netsim.live_flows",
                self.now.as_nanos(),
                0,
                self.active.len()
            );
        }
    }

    /// Publish the engine counters into the telemetry metrics registry
    /// (no-op unless a recording is active).
    fn publish_metrics(&self) {
        if !npp_telemetry::enabled() {
            return;
        }
        use npp_telemetry::metrics as m;
        m::counter_add("netsim.events", self.events);
        m::counter_add("netsim.recomputes", self.recomputes);
        m::counter_add("netsim.fixing_iterations", self.fixing_iterations);
        m::gauge_max("netsim.peak_live_flows", self.peak_active as f64);
        m::gauge_max("netsim.dirty_set_max", self.dirty_set_max as f64);
        m::gauge_max("netsim.touched_links_max", self.touched_links_max as f64);
    }

    /// Status of a flow.
    pub fn status(&self, id: FlowId) -> Option<FlowStatus> {
        self.flows.get(id.0).map(|f| FlowStatus {
            injected: f.injected,
            finished: f.finished,
            bytes_remaining: f.bytes_remaining,
            rate: f.rate_gbps,
        })
    }

    /// Completion time of the last-finishing flow (makespan), if all
    /// finished.
    pub fn makespan(&self) -> Option<SimTime> {
        self.flows
            .iter()
            .map(|f| f.finished)
            .collect::<Option<Vec<_>>>()?
            .into_iter()
            .max()
    }

    /// Seconds during which a link carried traffic in *either* direction
    /// (union is approximated by the max of the two directions, exact
    /// when both directions are driven by the same collective).
    pub fn link_busy_secs(&self, link: LinkId) -> f64 {
        let fwd = self.busy_secs[link.0 * 2 + 1];
        let rev = self.busy_secs[link.0 * 2];
        fwd.max(rev)
    }

    /// Bytes carried by a link, summed over both directions.
    pub fn link_bytes(&self, link: LinkId) -> f64 {
        self.carried[link.0]
    }

    /// Links that never carried traffic.
    pub fn idle_links(&self) -> Vec<LinkId> {
        self.topo
            .links()
            .iter()
            .map(|l| l.id)
            .filter(|&l| self.link_bytes(l) == 0.0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npp_topology::builder::{leaf_spine, three_tier_fat_tree};
    use npp_units::Gbps;

    #[test]
    fn single_flow_line_rate() {
        // 2 hosts on one leaf at 100 G: 125 MB moves in 10 ms.
        let topo = leaf_spine(1, 1, 2, Gbps::new(100.0)).unwrap();
        let hosts = topo.hosts();
        let mut sim = NetSim::new(topo);
        let f = sim
            .inject(SimTime::ZERO, hosts[0], hosts[1], 125e6, 0)
            .unwrap();
        sim.run().unwrap();
        let done = sim.status(f).unwrap().finished.unwrap();
        assert_eq!(done, SimTime::from_millis(10));
    }

    #[test]
    fn two_flows_share_a_bottleneck_fairly() {
        // Two hosts on leaf0 both sending to hosts on leaf1 through a
        // single spine uplink: each gets half of the 100 G uplink.
        let topo = leaf_spine(2, 1, 2, Gbps::new(100.0)).unwrap();
        let hosts = topo.hosts();
        let mut sim = NetSim::new(topo);
        let a = sim
            .inject(SimTime::ZERO, hosts[0], hosts[2], 62.5e6, 0)
            .unwrap();
        let b = sim
            .inject(SimTime::ZERO, hosts[1], hosts[3], 62.5e6, 0)
            .unwrap();
        sim.run().unwrap();
        // 62.5 MB at 50 G = 10 ms each.
        for f in [a, b] {
            let done = sim.status(f).unwrap().finished.unwrap();
            assert_eq!(done, SimTime::from_millis(10), "flow {f:?}");
        }
    }

    #[test]
    fn full_duplex_directions_do_not_interfere() {
        let topo = leaf_spine(1, 1, 2, Gbps::new(100.0)).unwrap();
        let hosts = topo.hosts();
        let mut sim = NetSim::new(topo);
        let a = sim
            .inject(SimTime::ZERO, hosts[0], hosts[1], 125e6, 0)
            .unwrap();
        let b = sim
            .inject(SimTime::ZERO, hosts[1], hosts[0], 125e6, 0)
            .unwrap();
        sim.run().unwrap();
        // Opposite directions: both finish at line rate.
        for f in [a, b] {
            assert_eq!(
                sim.status(f).unwrap().finished.unwrap(),
                SimTime::from_millis(10)
            );
        }
    }

    #[test]
    fn late_arrival_steals_half_then_first_finishes() {
        // Flow A starts alone at 100 G; B joins at t=5ms on the same
        // directed path; both run at 50 G afterwards.
        let topo = leaf_spine(1, 1, 2, Gbps::new(100.0)).unwrap();
        let hosts = topo.hosts();
        let mut sim = NetSim::new(topo);
        // A: 125 MB. Alone for 5 ms (62.5 MB done), then 50 G for the
        // remaining 62.5 MB → 10 ms more. Finishes at 15 ms.
        let a = sim
            .inject(SimTime::ZERO, hosts[0], hosts[1], 125e6, 0)
            .unwrap();
        let b = sim
            .inject(SimTime::from_millis(5), hosts[0], hosts[1], 125e6, 0)
            .unwrap();
        sim.run().unwrap();
        assert_eq!(
            sim.status(a).unwrap().finished.unwrap(),
            SimTime::from_millis(15)
        );
        // B: 62.5 MB at 50 G (10 ms) + 62.5 MB at 100 G (5 ms) = ends 20 ms.
        assert_eq!(
            sim.status(b).unwrap().finished.unwrap(),
            SimTime::from_millis(20)
        );
    }

    #[test]
    fn ring_allreduce_matches_analytic_model() {
        // 16-rank ring on a k=4 fat tree (packed onto the 16 hosts):
        // every flow i→i+1 carries 2(n−1)/n·S bytes; the fluid makespan
        // must match the analytic bandwidth-optimal all-reduce time.
        use npp_workload::collectives::{allreduce_time, AllReduceAlgo};
        let speed = Gbps::new(100.0);
        let topo = three_tier_fat_tree(4, speed).unwrap();
        let hosts = topo.hosts();
        let n = 16;
        let shard = npp_units::Bytes::from_mib(64.0);
        let per_rank =
            npp_workload::collectives::allreduce_bytes_per_rank(AllReduceAlgo::Ring, n, shard)
                .unwrap();
        let mut sim = NetSim::new(topo);
        for i in 0..n {
            sim.inject(
                SimTime::ZERO,
                hosts[i],
                hosts[(i + 1) % n],
                per_rank.value(),
                i,
            )
            .unwrap();
        }
        sim.run().unwrap();
        let expected = allreduce_time(AllReduceAlgo::Ring, n, shard, speed).unwrap();
        let got = sim.makespan().unwrap().as_seconds();
        assert!(
            (got.value() - expected.value()).abs() / expected.value() < 0.01,
            "sim {got} vs analytic {expected}"
        );
    }

    #[test]
    fn idle_links_are_reported() {
        let topo = three_tier_fat_tree(4, Gbps::new(100.0)).unwrap();
        let total_links = topo.links().len();
        let hosts = topo.hosts();
        let mut sim = NetSim::new(topo);
        sim.inject(SimTime::ZERO, hosts[0], hosts[1], 1e6, 0)
            .unwrap();
        sim.run().unwrap();
        let idle = sim.idle_links();
        assert!(
            idle.len() > total_links / 2,
            "idle {} of {}",
            idle.len(),
            total_links
        );
    }

    #[test]
    fn busy_time_accounting() {
        let topo = leaf_spine(1, 1, 2, Gbps::new(100.0)).unwrap();
        let hosts = topo.hosts();
        let host_link = topo.neighbors(hosts[0])[0].1;
        let mut sim = NetSim::new(topo);
        sim.inject(SimTime::ZERO, hosts[0], hosts[1], 125e6, 0)
            .unwrap();
        sim.run().unwrap();
        assert!((sim.link_busy_secs(host_link) - 0.01).abs() < 1e-6);
        assert!((sim.link_bytes(host_link) - 125e6).abs() < 1.0);
    }

    #[test]
    fn injection_validation() {
        let topo = leaf_spine(1, 1, 2, Gbps::new(100.0)).unwrap();
        let hosts = topo.hosts();
        let mut sim = NetSim::new(topo.clone());
        assert!(sim
            .inject(SimTime::ZERO, hosts[0], hosts[1], 0.0, 0)
            .is_err());
        assert!(sim
            .inject(SimTime::ZERO, hosts[0], hosts[1], f64::NAN, 0)
            .is_err());
        let mut disconnected = Topology::new();
        let a = disconnected.add_host("a");
        let b = disconnected.add_host("b");
        let mut sim2 = NetSim::new(disconnected);
        assert!(sim2.inject(SimTime::ZERO, a, b, 100.0, 0).is_err());
    }

    #[test]
    fn event_and_peak_counters_track_the_run() {
        let topo = leaf_spine(2, 1, 2, Gbps::new(100.0)).unwrap();
        let hosts = topo.hosts();
        let mut sim = NetSim::new(topo);
        sim.inject(SimTime::ZERO, hosts[0], hosts[2], 62.5e6, 0)
            .unwrap();
        sim.inject(SimTime::from_millis(1), hosts[1], hosts[3], 62.5e6, 0)
            .unwrap();
        sim.run().unwrap();
        // At least: release at 0, release at 1 ms, two completions.
        assert!(sim.events_processed() >= 3);
        assert_eq!(sim.peak_live_flows(), 2);
        assert_eq!(sim.flow_count(), 2);
    }

    #[test]
    fn disjoint_components_keep_exact_rates_across_events() {
        // Two leaf-local pairs on separate leaves never share a link;
        // events in one component must not disturb the other. The
        // debug-assert oracle checks the untouched component's rates
        // stay bit-identical to a full recompute.
        let topo = leaf_spine(2, 1, 4, Gbps::new(100.0)).unwrap();
        let hosts = topo.hosts();
        let mut sim = NetSim::new(topo);
        // Component 1 (leaf 0): long flow.
        let long = sim
            .inject(SimTime::ZERO, hosts[0], hosts[1], 250e6, 0)
            .unwrap();
        // Component 2 (leaf 1): a burst of short flows creating events
        // while the long flow runs.
        for i in 0..8 {
            sim.inject(
                SimTime::from_millis(i),
                hosts[4 + (i as usize % 2)],
                hosts[6 + (i as usize % 2)],
                1e6,
                0,
            )
            .unwrap();
        }
        sim.run().unwrap();
        // The long flow ran at line rate throughout: 250 MB at 100 G.
        assert_eq!(
            sim.status(long).unwrap().finished.unwrap(),
            SimTime::from_millis(20)
        );
    }
}
