//! # npp-simnet
//!
//! A small discrete-event network simulator with first-class power
//! tracking, built to evaluate the §4 mechanisms of *"It Is Time to
//! Address Network Power Proportionality"* (HotNets '25).
//!
//! Following the event-driven, allocation-light philosophy of the
//! networking guides this project adheres to, the simulator is a set of
//! composable pieces rather than a framework:
//!
//! - [`SimTime`] — integer-nanosecond simulation time;
//! - [`Scheduler`] — a deterministic event queue (FIFO-stable for
//!   simultaneous events);
//! - [`PowerTracker`] — piecewise-constant power recording with exact
//!   energy integration;
//! - [`link`] — store-and-forward link transmission with optional
//!   low-power-idle (sleep/wake) states, the substrate for the EEE
//!   baseline;
//! - [`switchsim`] — a multi-pipeline switch with a configurable
//!   port→pipeline indirection layer (Figure 5) and drop-tail buffers,
//!   the substrate for §4.3 rate adaptation and §4.4 pipeline parking;
//! - [`netsim`] — a flow-level (fluid, max-min fair) simulator over
//!   explicit topology graphs, for fabric-scale experiments — indexed
//!   and allocation-free on its event loop (see the module docs);
//! - [`netsim_naive`] — the pre-optimization reference engine, kept as
//!   the benchmark baseline and differential-test oracle;
//! - [`comp_index`] — persistent link-sharing component index
//!   (incremental arrivals, batched departures, threshold rebuilds)
//!   feeding the parallel runtime's sharding decisions;
//! - [`scenarios`] — deterministic flow-set generators shared by the
//!   hot-path benchmark and `netpp bench-json`;
//! - [`sources`] — deterministic and random (seeded) traffic generators;
//! - [`stats`] — latency/throughput summaries.
//!
//! Mechanism policies (when to sleep, park, or down-clock) live in
//! `npp-mechanisms`; this crate only provides the mechanics.
//!
//! ```
//! use npp_simnet::{PowerTracker, SimTime};
//! use npp_units::Watts;
//!
//! // Exact energy integration over power-state changes:
//! let mut t = PowerTracker::new(SimTime::ZERO, Watts::new(750.0));
//! t.set_power(SimTime::from_millis(900), Watts::new(675.0)).unwrap();
//! let tl = t.finish(SimTime::from_secs(1)).unwrap();
//! assert!((tl.average_power().value() - 742.5).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod comp_index;
pub mod diurnal;
pub mod event;
pub mod link;
pub mod netsim;
pub mod netsim_naive;
mod netsim_par;
pub mod power_tracker;
pub mod powerscope;
pub mod scenarios;
pub mod sources;
pub mod stats;
pub mod switchsim;
mod time;

pub use comp_index::CompIndex;
pub use event::Scheduler;
pub use netsim::{EngineMetrics, StealMode, WorkerMetrics};
pub use power_tracker::{DwellSegment, PowerTimeline, PowerTracker};
pub use time::SimTime;

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Time went backwards.
    TimeReversal {
        /// Current simulation time (ns).
        now_ns: u64,
        /// The earlier timestamp that was supplied (ns).
        requested_ns: u64,
    },
    /// A port/pipeline index was out of range.
    BadIndex {
        /// What kind of index.
        what: &'static str,
        /// The offending index.
        index: usize,
        /// The valid bound (exclusive).
        bound: usize,
    },
    /// Invalid configuration.
    Config(String),
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimError::TimeReversal {
                now_ns,
                requested_ns,
            } => {
                write!(
                    f,
                    "time reversal: now {now_ns} ns, requested {requested_ns} ns"
                )
            }
            SimError::BadIndex { what, index, bound } => {
                write!(f, "{what} index {index} out of range (< {bound})")
            }
            SimError::Config(msg) => write!(f, "invalid simulation config: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, SimError>;
