//! Component-sharded parallel runtime for the indexed max-min engine.
//!
//! Progressive filling decomposes over link-sharing components: two
//! flows can only influence each other's rates through a chain of
//! shared directed links, so the flow population partitions into
//! link-disjoint components that evolve independently *between* events.
//! This module exploits that to run [`crate::netsim::NetSim`] across a
//! fixed pool of worker threads while producing results that are
//! `to_bits`-identical to the serial engine:
//!
//! - **Component index.** A union-find over dense directed-link ids
//!   (path halving, min-id roots) is built from the flow→link CSR. The
//!   two directions of every link are pre-unioned so `carried[link]` —
//!   which both directions accumulate into — always lives in exactly
//!   one shard.
//! - **Deterministic ownership.** A component is identified by the
//!   smallest dense dirlink id it contains (its union-find root, the
//!   same tie-break discipline the waterfill uses). Components are
//!   assigned to workers by greedy balance over flow counts, largest
//!   first, ties toward the smaller root and the lower worker index —
//!   a pure function of the workload, never of thread timing.
//! - **Shards keep global link ids.** Each worker owns one
//!   [`EngineCore`] holding its components' flows under local dense ids
//!   (ascending in global id, so per-epoch integration order matches
//!   the serial engine's ascending-flow order) while per-link arrays
//!   stay globally indexed. Link-disjointness means no two shards ever
//!   touch the same entry, and global ids keep the bottleneck
//!   tie-break (`smallest dirlink id`) bit-identical to serial.
//! - **Global epoch lockstep.** A coordinator drives every epoch in two
//!   phases: *Propose* (each worker recomputes its dirty components and
//!   reports its earliest completion) and *Advance* (every worker
//!   integrates to the same `next` timestamp and absorbs its releases).
//!   `next` is the exact integer-nanosecond minimum over shard
//!   proposals and the injection queue — the same value the serial loop
//!   computes — so every shard integrates the same `dt` sequence and
//!   float accumulation into `busy_secs`/`carried` is bit-identical.
//!   Pending injections drain through [`Scheduler::pop_batch`], whose
//!   FIFO same-timestamp batching reproduces the serial release set.
//!
//! Within one epoch the serial waterfill's bottleneck-pick subsequence
//! restricted to a component equals that component's standalone pick
//! sequence (a pick in one component never changes another component's
//! capacities or crossing counts), so per-shard waterfills fix the same
//! flows at the same shares in the same order. The merge back into the
//! owning `NetSim` is by assignment (flows, per-link stats) and
//! order-independent reduction (counter sums/maxes) — no floating-point
//! re-accumulation anywhere.
//!
//! The memory model is share-nothing: shards are moved into the worker
//! scope, communicate only through `mpsc` channels carrying plain
//! values, and are merged single-threaded after the pool drains
//! (`#![forbid(unsafe_code)]` holds for the whole crate).

use std::collections::BTreeMap;
use std::sync::mpsc;

use crate::event::Scheduler;
use crate::netsim::{EngineCore, NetSim, ParMetrics, WorkerMetrics};
use crate::{Result, SimError, SimTime};

/// Union-find over dense directed-link ids with path halving. Roots are
/// always the smallest id in their class (union by id, not by rank), so
/// a component's root doubles as its deterministic identity.
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    /// Joins the classes of `a` and `b`; the smaller root wins.
    fn union(&mut self, a: u32, b: u32) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        if ra < rb {
            self.parent[rb as usize] = ra;
        } else {
            self.parent[ra as usize] = rb;
        }
    }
}

/// One worker's slice of the simulation: a self-contained engine core
/// over the worker's components plus the local↔global flow-id mapping.
struct Shard {
    core: EngineCore,
    /// Global flow id per local flow id, ascending.
    global_ids: Vec<u32>,
    now: SimTime,
}

/// Coordinator → worker commands, one pair per epoch.
enum Cmd {
    /// Recompute dirty components, report the earliest completion.
    Propose,
    /// Integrate to `to`, then release the listed local flow ids.
    Advance { to: SimTime, releases: Vec<u32> },
}

/// Worker → coordinator replies.
struct Reply {
    /// Earliest completion in this shard (Propose replies).
    next: Option<SimTime>,
    /// Live flows in this shard after the command ran.
    active: usize,
}

fn worker_loop(shard: &mut Shard, rx: &mpsc::Receiver<Cmd>, tx: &mpsc::Sender<Reply>) {
    shard.core.ensure_link_flow_csr();
    shard.core.ensure_scratch_sized();
    while let Ok(cmd) = rx.recv() {
        let reply = match cmd {
            Cmd::Propose => {
                if !shard.core.scratch.seeds.is_empty() {
                    shard.core.dirty_closure();
                    shard.core.recompute_rates();
                    #[cfg(any(test, debug_assertions))]
                    shard.core.assert_rates_match_naive_oracle();
                }
                Reply {
                    next: shard.core.earliest_completion(shard.now),
                    active: shard.core.active.len(),
                }
            }
            Cmd::Advance { to, releases } => {
                shard.core.integrate(shard.now, to);
                shard.now = to;
                let released = !releases.is_empty();
                for l in releases {
                    shard.core.release(l);
                }
                if released {
                    // Same discipline as the serial loop: integration
                    // order within a shard is ascending (local = global
                    // order) flow id.
                    shard.core.active.sort_unstable();
                }
                Reply {
                    next: None,
                    active: shard.core.active.len(),
                }
            }
        };
        if tx.send(reply).is_err() {
            return; // coordinator went away (error path)
        }
    }
}

/// What the epoch loop hands back to the merge step.
struct Outcome {
    epochs: u64,
    now: SimTime,
    peak: usize,
    merge_wait_ns: u64,
    result: Result<()>,
}

/// Runs `sim` to completion across up to `threads` workers. Falls back
/// to the serial engine when there is nothing to shard (no flows, or a
/// degenerate empty-path flow whose starvation semantics the serial
/// loop already defines).
pub(crate) fn run_parallel(sim: &mut NetSim, threads: usize) -> Result<()> {
    debug_assert!(threads >= 2);
    if sim.core.flows.is_empty() {
        return sim.run();
    }
    for i in 0..sim.core.flows.len() {
        if sim.core.path(i).is_empty() {
            return sim.run();
        }
    }
    if !sim.pending_sorted {
        sim.pending.sort_by_key(|x| std::cmp::Reverse(x.0)); // reverse for pop()
        sim.pending_sorted = true;
    }

    // ---- Component index -------------------------------------------------
    let n_dl = sim.core.link_caps.len();
    let n_flows = sim.core.flows.len();
    let mut uf = UnionFind::new(n_dl);
    for l in 0..n_dl / 2 {
        // Both directions of a link share `carried[l]`; keep them in
        // one shard unconditionally.
        uf.union((l * 2) as u32, (l * 2 + 1) as u32);
    }
    for i in 0..n_flows {
        let path = sim.core.path(i);
        let first = path[0];
        for &dl in &path[1..] {
            uf.union(first, dl);
        }
    }
    // Components that actually contain flows, keyed by root (ascending).
    let mut comp_flows: BTreeMap<u32, u64> = BTreeMap::new();
    let mut flow_root = vec![0u32; n_flows];
    for (i, slot) in flow_root.iter_mut().enumerate() {
        let root = uf.find(sim.core.path(i)[0]);
        *slot = root;
        *comp_flows.entry(root).or_insert(0) += 1;
    }
    let components = comp_flows.len();

    // ---- Deterministic assignment ---------------------------------------
    let workers = threads.min(components).max(1);
    // Largest components first (ties toward the smaller root), greedy
    // onto the least-loaded worker (ties toward the lower index).
    let mut order: Vec<(u32, u64)> = comp_flows.iter().map(|(&r, &n)| (r, n)).collect();
    order.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut load = vec![0u64; workers];
    let mut comps_per_worker = vec![0usize; workers];
    let mut worker_of_root: BTreeMap<u32, usize> = BTreeMap::new();
    for (root, flows) in order {
        let mut w = 0;
        for cand in 1..workers {
            if load[cand] < load[w] {
                w = cand;
            }
        }
        load[w] += flows;
        comps_per_worker[w] += 1;
        worker_of_root.insert(root, w);
    }
    let mut component_flows_hist = Vec::new();
    for &n in comp_flows.values() {
        let bucket = 63 - n.leading_zeros() as usize; // n >= 1
        if component_flows_hist.len() <= bucket {
            component_flows_hist.resize(bucket + 1, 0);
        }
        component_flows_hist[bucket] += 1;
    }

    // ---- Shard construction ----------------------------------------------
    const NO_ROUTE: (u32, u32) = (u32::MAX, u32::MAX);
    let mut flow_route = vec![NO_ROUTE; n_flows]; // global → (worker, local)
    let mut shards: Vec<Shard> = (0..workers)
        .map(|_| Shard {
            core: EngineCore::new(sim.core.link_caps.clone()),
            global_ids: Vec::new(),
            now: sim.now,
        })
        .collect();
    for shard in &mut shards {
        // Seed the per-link accumulators from the current global state:
        // shards append to exactly the running sums the serial loop
        // would, so merge-back is plain assignment even on re-runs.
        shard.core.busy_secs.copy_from_slice(&sim.core.busy_secs);
        shard.core.carried.copy_from_slice(&sim.core.carried);
    }
    for g in 0..n_flows {
        let w = worker_of_root[&flow_root[g]];
        let shard = &mut shards[w];
        let local = shard.core.flows.len() as u32;
        flow_route[g] = (w as u32, local);
        shard.global_ids.push(g as u32);
        shard.core.flows.push(sim.core.flows[g].clone());
        shard.core.path_links.extend_from_slice(sim.core.path(g));
        shard.core.path_offsets.push(shard.core.path_links.len());
    }
    // Carry over mid-run state: live flows and pending closure seeds.
    for &g in &sim.core.active {
        let (w, l) = flow_route[g as usize];
        shards[w as usize].core.active.push(l);
    }
    for &g in &sim.core.scratch.seeds {
        let (w, l) = flow_route[g as usize];
        shards[w as usize].core.scratch.seeds.push(l);
    }
    sim.core.scratch.seeds.clear();

    // Injection queue: ascending drain of the (descending-sorted)
    // pending list preserves insertion order at equal timestamps, so
    // `pop_batch` hands back the serial engine's release sets.
    let mut sched: Scheduler<u32> = Scheduler::with_capacity(sim.pending.len());
    while let Some((t, f)) = sim.pending.pop() {
        sched.schedule(t, f.0 as u32)?;
    }

    // ---- Epoch loop -------------------------------------------------------
    npp_telemetry::trace_span!(begin "netsim.run", sim.now.as_nanos());
    let outcome = drive_epochs(
        &mut shards,
        &mut sched,
        &flow_route,
        sim.now,
        sim.peak_active,
    );

    // ---- Merge back -------------------------------------------------------
    // Assignment only: every flow and every touched link is owned by
    // exactly one shard, and the counters reduce by order-independent
    // sum/max. No float is ever re-accumulated here.
    let mut worker_metrics: Vec<WorkerMetrics> = shards
        .iter()
        .map(|s| WorkerMetrics {
            components: 0,
            flows: s.global_ids.len(),
            recomputes: s.core.recomputes,
            fixing_iterations: s.core.fixing_iterations,
            dirty_set_max: s.core.dirty_set_max,
            touched_links_max: s.core.touched_links_max,
        })
        .collect();
    for (w, n) in comps_per_worker.iter().enumerate() {
        worker_metrics[w].components = *n;
    }
    for shard in &shards {
        for (l, &g) in shard.global_ids.iter().enumerate() {
            sim.core.flows[g as usize] = shard.core.flows[l].clone();
        }
        sim.core.recomputes += shard.core.recomputes;
        sim.core.fixing_iterations += shard.core.fixing_iterations;
        sim.core.dirty_set_max = sim.core.dirty_set_max.max(shard.core.dirty_set_max);
        sim.core.touched_links_max = sim.core.touched_links_max.max(shard.core.touched_links_max);
    }
    for d in 0..n_dl {
        if let Some(&w) = worker_of_root.get(&uf.find(d as u32)) {
            sim.core.busy_secs[d] = shards[w].core.busy_secs[d];
            if d % 2 == 0 {
                sim.core.carried[d / 2] = shards[w].core.carried[d / 2];
            }
        }
    }
    sim.core.active.clear();
    for shard in &shards {
        for &l in &shard.core.active {
            sim.core.active.push(shard.global_ids[l as usize]);
        }
    }
    sim.core.active.sort_unstable();
    for shard in &shards {
        for &l in &shard.core.scratch.seeds {
            sim.core.scratch.seeds.push(shard.global_ids[l as usize]);
        }
    }
    sim.now = outcome.now;
    sim.events += outcome.epochs;
    sim.peak_active = outcome.peak;
    sim.par = Some(ParMetrics {
        threads: workers,
        components,
        component_flows_hist,
        merge_wait_ns: outcome.merge_wait_ns,
        workers: worker_metrics,
    });

    if outcome.result.is_ok() {
        npp_telemetry::trace_span!(end "netsim.run", sim.now.as_nanos());
        sim.publish_metrics();
    } else {
        // Mirror the serial engine's error state: undelivered
        // injections stay pending.
        let mut remaining: Vec<(SimTime, crate::netsim::FlowId)> = Vec::new();
        while let Some((t, g)) = sched.pop() {
            remaining.push((t, crate::netsim::FlowId(g as usize)));
        }
        remaining.reverse(); // descending time, ready for pop()
        sim.pending = remaining;
        sim.pending_sorted = true;
    }
    outcome.result
}

/// Spawns the worker pool and drives the two-phase epoch protocol to
/// completion (or error). Returns the aggregate clock/counter outcome;
/// shard state is left merged-ready in `shards`.
fn drive_epochs(
    shards: &mut [Shard],
    sched: &mut Scheduler<u32>,
    route: &[(u32, u32)],
    start: SimTime,
    start_peak: usize,
) -> Outcome {
    let workers = shards.len();
    let mut outcome = Outcome {
        epochs: 0,
        now: start,
        peak: start_peak,
        merge_wait_ns: 0,
        result: Ok(()),
    };
    let mut total_active: usize = shards.iter().map(|s| s.core.active.len()).sum();

    std::thread::scope(|scope| {
        let (reply_tx, reply_rx) = mpsc::channel::<Reply>();
        let mut cmd_txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for shard in shards.iter_mut() {
            let (cmd_tx, cmd_rx) = mpsc::channel::<Cmd>();
            let tx = reply_tx.clone();
            cmd_txs.push(cmd_tx);
            handles.push(scope.spawn(move || worker_loop(shard, &cmd_rx, &tx)));
        }
        drop(reply_tx);

        let disconnected = || SimError::Config("parallel simulation worker disconnected".into());
        let mut batch: Vec<u32> = Vec::new();
        let mut per_worker: Vec<Vec<u32>> = vec![Vec::new(); workers];
        let loop_result: Result<()> = (|| {
            loop {
                if total_active == 0 && sched.is_empty() {
                    return Ok(());
                }
                // Phase 1: recompute + propose completion times.
                for tx in &cmd_txs {
                    tx.send(Cmd::Propose).map_err(|_| disconnected())?;
                }
                let mut earliest: Option<SimTime> = None;
                // npp-lint: allow(wall-clock) reason="merge-wait accounting is volatile profiling metadata in EngineMetrics, never simulation state"
                let wait_start = npp_telemetry::wall_clock();
                for _ in 0..workers {
                    let reply = reply_rx.recv().map_err(|_| disconnected())?;
                    if let Some(t) = reply.next {
                        if earliest.map(|e| t < e).unwrap_or(true) {
                            earliest = Some(t);
                        }
                    }
                }
                outcome.merge_wait_ns += wait_start.elapsed().as_nanos() as u64;
                let next = match (sched.peek_time(), earliest) {
                    (Some(a), Some(b)) => a.min(b),
                    (Some(a), None) => a,
                    (None, Some(b)) => b,
                    (None, None) => {
                        // Active flows but all at zero rate: deadlock —
                        // only possible with zero-capacity links.
                        return Err(SimError::Config("active flows starved at zero rate".into()));
                    }
                };
                // Phase 2: everyone integrates to the same instant; the
                // epoch's releases are the FIFO batch at `next`.
                let mut released = false;
                if sched.peek_time() == Some(next) {
                    sched.pop_batch(&mut batch);
                    for &g in &batch {
                        let (w, l) = route[g as usize];
                        per_worker[w as usize].push(l);
                        released = true;
                    }
                }
                for (w, tx) in cmd_txs.iter().enumerate() {
                    tx.send(Cmd::Advance {
                        to: next,
                        releases: std::mem::take(&mut per_worker[w]),
                    })
                    .map_err(|_| disconnected())?;
                }
                // npp-lint: allow(wall-clock) reason="merge-wait accounting is volatile profiling metadata in EngineMetrics, never simulation state"
                let wait_start = npp_telemetry::wall_clock();
                total_active = 0;
                for _ in 0..workers {
                    let reply = reply_rx.recv().map_err(|_| disconnected())?;
                    total_active += reply.active;
                }
                outcome.merge_wait_ns += wait_start.elapsed().as_nanos() as u64;
                outcome.now = next;
                if released {
                    outcome.peak = outcome.peak.max(total_active);
                }
                outcome.epochs += 1;
                npp_telemetry::trace_counter!(
                    "netsim.live_flows",
                    outcome.now.as_nanos(),
                    0,
                    total_active
                );
            }
        })();
        outcome.result = loop_result;

        drop(cmd_txs); // workers drain and exit
        let mut panic_payload = None;
        for handle in handles {
            if let Err(payload) = handle.join() {
                panic_payload = Some(payload);
            }
        }
        if let Some(payload) = panic_payload {
            // A worker hit the oracle debug-assert (or another bug):
            // surface it exactly like the serial engine would.
            std::panic::resume_unwind(payload);
        }
    });
    outcome
}
