//! Parallel runtime for [`NetSim`]: within-component parallel
//! waterfill, epoch work stealing, and the incremental component index.
//!
//! # Architecture
//!
//! Unlike the PR 6 runtime — which partitioned the *flows* into
//! per-worker shard engines and merged link state back — this runtime
//! keeps **one** [`EngineCore`] on the coordinator and parallelises the
//! only step whose cost grows with the dirty set: the max-min rate
//! computation. The coordinator runs a loop structurally identical to
//! [`NetSim::run`]; per dirty epoch it
//!
//! 1. brings the persistent [`CompIndex`](crate::comp_index::CompIndex)
//!    up to date (arrivals absorbed incrementally, departures counted
//!    in batches, a from-scratch rebuild only past the threshold),
//! 2. groups the epoch's seed flows by component root and expands each
//!    group into its dirty-flow set (`component_closure`),
//! 3. rebalances component ownership by *epoch work stealing* when the
//!    greedy assignment left a worker idle (see below),
//! 4. fans the per-component waterfills out to a scoped worker pool —
//!    workers get `&EngineCore` plus their own [`WfScratch`] and return
//!    plain `(flow, rate)` vectors; they never touch shared mutable
//!    state — and
//! 5. applies the rates centrally, then integrates, retires, and
//!    releases exactly as the serial loop does.
//!
//! Because integration, retirement, release, busy-time accounting, and
//! every telemetry emission happen on the coordinator in the serial
//! code path's order, all float accumulation — and therefore
//! [`NetSim::state_digest`] — is `to_bits`-identical to [`NetSim::run`]
//! for any thread count, any [`StealMode`], and any fan-out threshold.
//!
//! # Within-component parallel waterfill
//!
//! A single giant component (the paper's §3 fabric: every flow crosses
//! the shared spine) defeats component sharding. The splitter recovers
//! parallelism *inside* the component: as progressive filling fixes
//! flows, links drop to zero crossing and the residual bipartite graph
//! (unfixed flows ↔ links with positive crossing) disconnects. Each
//! region of that residual graph is an independent bottleneck
//! subproblem — the serial engine's global pick sequence *restricted*
//! to a region is exactly the region's standalone pick sequence,
//! because picks in other regions touch disjoint links, and the global
//! bottleneck, whenever it lies in this region, is also the region's
//! local bottleneck. Solving regions independently therefore
//! reproduces every fixed share bit for bit; only the
//! (value-irrelevant) interleaving order changes. [`try_split`] probes
//! for disconnection on a geometric round schedule, [`drive`] executes
//! regions with the exact serial pick rule (smallest fair share, ties
//! to the smallest directed-link id, fixes in ascending flow id from
//! the link→flow CSR), and subproblems are dealt to workers
//! largest-first in a fixed order — determinism needs no reduction
//! step because region outputs are disjoint flow sets.
//!
//! # Epoch work stealing
//!
//! The greedy largest-first ownership assignment can strand workers: a
//! skewed histogram (one giant + many tiny components) leaves the tiny
//! components' owner idle whenever only the giant is dirty, and vice
//! versa. At each epoch boundary, if a worker has no dirty work while
//! another owns two or more dirty components (and, in
//! [`StealMode::Auto`], enough dirty flows to matter), the idle worker
//! *claims whole components*: smallest root first, from the most-loaded
//! worker. The claim order is a pure function of the epoch's dirty-flow
//! distribution — never of wall-clock timing — so ownership (and with
//! it the entire simulation) replays identically across machines.
//!
//! Wall time appears in exactly one place: the coordinator's
//! merge-wait stopwatch ([`npp_telemetry::timer::Stopwatch`]), whose
//! readings land in volatile profiling fields only.

use std::collections::{BTreeMap, VecDeque};

use crate::event::Scheduler;
use crate::netsim::{EngineCore, FlowId, NetSim, ParMetrics, StealMode, WorkerMetrics};
use crate::{Result, SimError};

/// Minimum unfixed flows in a region before a split probe can pay for
/// its BFS walk.
const SPLIT_MIN_FLOWS: usize = 64;

/// First fixing round at which a non-fresh region re-probes for a
/// split; later probes back off geometrically (the probe at round `r`
/// schedules the next at `2r`). Fresh regions probe at round 0: the
/// dirty set of a multi-bottleneck epoch is often disconnected before
/// any flow is fixed.
const SPLIT_CHECK_START: u64 = 4;

/// [`StealMode::Auto`] donor floor: stealing from a worker with fewer
/// dirty flows than this costs more in migration bookkeeping than it
/// saves.
const STEAL_MIN_FLOWS: u64 = 1024;

/// Per-worker waterfill scratch: dense per-directed-link and per-flow
/// arrays sized once per run. Workers own their scratch exclusively, so
/// the fan-out shares only the immutable [`EngineCore`].
#[derive(Debug, Clone)]
struct WfScratch {
    /// Remaining capacity per directed link (valid while crossing > 0).
    cap: Vec<f64>,
    /// Unfixed-member crossing count per directed link (zero outside a
    /// region).
    crossing: Vec<u32>,
    /// Flow is an unfixed member of the current region.
    member: Vec<bool>,
    /// BFS mark (links), cleared by every [`try_split`].
    link_seen: Vec<bool>,
    /// BFS mark (flows), cleared by every [`try_split`].
    flow_seen: Vec<bool>,
}

impl WfScratch {
    fn new(n_dirlinks: usize, n_flows: usize) -> Self {
        Self {
            cap: vec![0.0; n_dirlinks],
            crossing: vec![0; n_dirlinks],
            member: vec![false; n_flows],
            link_seen: vec![false; n_dirlinks],
            flow_seen: vec![false; n_flows],
        }
    }
}

/// One independent bottleneck subproblem detached from a region
/// mid-waterfill: the residual links with their exact remaining
/// capacities and crossing counts, plus the unfixed member flows.
/// Loading it into any worker's scratch resumes the waterfill with
/// bit-identical state.
#[derive(Debug)]
struct SubProblem {
    links: Vec<u32>,
    caps: Vec<f64>,
    crossings: Vec<u32>,
    flows: Vec<u32>,
    /// Smallest member directed link (the BFS start), the deterministic
    /// tie-break key for dealing subproblems to workers.
    min_link: u32,
}

/// Work counters accumulated by the executor; merged into
/// [`WorkerMetrics`] and the core's counters by the coordinator.
#[derive(Debug, Default, Clone, Copy)]
struct ExecStats {
    recomputes: u64,
    fixing_iterations: u64,
    subproblems: u64,
    dirty_set_max: usize,
    touched_links_max: usize,
}

impl ExecStats {
    fn absorb(&mut self, other: &ExecStats) {
        self.recomputes += other.recomputes;
        self.fixing_iterations += other.fixing_iterations;
        self.subproblems += other.subproblems;
        self.dirty_set_max = self.dirty_set_max.max(other.dirty_set_max);
        self.touched_links_max = self.touched_links_max.max(other.touched_links_max);
    }
}

fn merge_worker(wm: &mut WorkerMetrics, s: &ExecStats) {
    wm.recomputes += s.recomputes;
    wm.fixing_iterations += s.fixing_iterations;
    wm.dirty_set_max = wm.dirty_set_max.max(s.dirty_set_max);
    wm.touched_links_max = wm.touched_links_max.max(s.touched_links_max);
}

/// A unit of work dealt to one worker for one epoch.
enum Job<'a> {
    /// A whole component's dirty set (fresh region: caps start at full
    /// link capacity).
    Set(&'a [u32]),
    /// A mid-waterfill residual subproblem split off the epoch's single
    /// giant region.
    Sub(SubProblem),
}

/// What one worker returns from one epoch: disjoint `(flow, rate)`
/// fixes plus its work counters.
type RateBatch = (Vec<(u32, f64)>, ExecStats);

/// Loads a fresh dirty set into the scratch (exactly the serial
/// engine's load phase) and returns the touched links in first-touch
/// order.
fn load_set(core: &EngineCore, set: &[u32], ws: &mut WfScratch) -> Vec<u32> {
    let mut links = Vec::new();
    for &f in set {
        ws.member[f as usize] = true;
        for &dl in core.path(f as usize) {
            let d = dl as usize;
            if ws.crossing[d] == 0 {
                ws.cap[d] = core.link_caps[d];
                links.push(dl);
            }
            ws.crossing[d] += 1;
        }
    }
    links
}

/// Restores a detached subproblem into the scratch; returns its links
/// and member count.
fn load_sub(sub: SubProblem, ws: &mut WfScratch) -> (Vec<u32>, usize) {
    for (k, &dl) in sub.links.iter().enumerate() {
        let d = dl as usize;
        ws.cap[d] = sub.caps[k];
        ws.crossing[d] = sub.crossings[k];
    }
    for &f in &sub.flows {
        ws.member[f as usize] = true;
    }
    (sub.links, sub.flows.len())
}

/// Probes the region's residual graph (unfixed members ↔ links with
/// positive crossing) for disconnection. Returns the partition as
/// detached subproblems — clearing the region from the scratch — or
/// `None` if the residual graph is still one region (scratch
/// untouched). Parts come back ascending by their minimum live link:
/// live links are scanned in ascending id order and every part is
/// first entered through its smallest link.
fn try_split(core: &EngineCore, links: &[u32], ws: &mut WfScratch) -> Option<Vec<SubProblem>> {
    let mut live: Vec<u32> = links
        .iter()
        .copied()
        .filter(|&dl| ws.crossing[dl as usize] > 0)
        .collect();
    if live.len() <= 1 {
        return None;
    }
    live.sort_unstable();
    let mut parts: Vec<(Vec<u32>, Vec<u32>)> = Vec::new();
    for &start in &live {
        if ws.link_seen[start as usize] {
            continue;
        }
        ws.link_seen[start as usize] = true;
        let mut p_links = vec![start];
        let mut p_flows: Vec<u32> = Vec::new();
        let mut cursor = 0;
        while cursor < p_links.len() {
            let dl = p_links[cursor];
            cursor += 1;
            for &f in core.lf_row(dl) {
                let fi = f as usize;
                if !ws.member[fi] || ws.flow_seen[fi] {
                    continue;
                }
                ws.flow_seen[fi] = true;
                p_flows.push(f);
                // An unfixed member contributes +1 crossing to every
                // link on its path, so all its path links are live.
                for &dl2 in core.path(fi) {
                    let d2 = dl2 as usize;
                    if ws.crossing[d2] > 0 && !ws.link_seen[d2] {
                        ws.link_seen[d2] = true;
                        p_links.push(dl2);
                    }
                }
            }
        }
        if parts.is_empty() && p_links.len() == live.len() {
            // Still one connected region: undo the marks and bail.
            for &dl in &p_links {
                ws.link_seen[dl as usize] = false;
            }
            for &f in &p_flows {
                ws.flow_seen[f as usize] = false;
            }
            return None;
        }
        parts.push((p_links, p_flows));
    }
    let mut subs = Vec::with_capacity(parts.len());
    for (p_links, p_flows) in parts {
        let min_link = p_links[0];
        let caps = p_links.iter().map(|&dl| ws.cap[dl as usize]).collect();
        let crossings = p_links.iter().map(|&dl| ws.crossing[dl as usize]).collect();
        for &dl in &p_links {
            ws.crossing[dl as usize] = 0;
            ws.link_seen[dl as usize] = false;
        }
        for &f in &p_flows {
            ws.member[f as usize] = false;
            ws.flow_seen[f as usize] = false;
        }
        subs.push(SubProblem {
            links: p_links,
            caps,
            crossings,
            flows: p_flows,
            min_link,
        });
    }
    Some(subs)
}

/// Runs progressive filling over one region (and every subproblem it
/// splits into), pushing `(flow, fixed_share)` pairs to `out`. The pick
/// rule is the serial engine's exactly: smallest fair share, ties to
/// the smallest directed-link id, fixes in ascending flow id, capacity
/// subtracted along the full path with the same `max(0.0)` clamp — so
/// each region reproduces the serial pick sequence restricted to it.
///
/// With `fan_out` set (the coordinator splitting the epoch's single
/// giant region for the pool), the first successful split returns the
/// parts through `fan_out` instead of executing them.
fn drive(
    core: &EngineCore,
    first: (Vec<u32>, usize, bool),
    ws: &mut WfScratch,
    out: &mut Vec<(u32, f64)>,
    stats: &mut ExecStats,
    mut fan_out: Option<&mut Vec<SubProblem>>,
) {
    let mut pending: VecDeque<SubProblem> = VecDeque::new();
    let mut cur = Some(first);
    'regions: loop {
        let (links, mut remaining, fresh) = match cur.take() {
            Some(r) => r,
            None => match pending.pop_front() {
                Some(sub) => {
                    let (links, n) = load_sub(sub, ws);
                    (links, n, false)
                }
                None => return,
            },
        };
        if !fresh {
            stats.subproblems += 1;
        }
        stats.touched_links_max = stats.touched_links_max.max(links.len());
        let mut round: u64 = 0;
        let mut next_check: u64 = if fresh { 0 } else { SPLIT_CHECK_START };
        while remaining > 0 {
            if round >= next_check {
                next_check = if round == 0 {
                    SPLIT_CHECK_START
                } else {
                    round.saturating_mul(2)
                };
                if remaining >= SPLIT_MIN_FLOWS {
                    if let Some(parts) = try_split(core, &links, ws) {
                        stats.fixing_iterations += round;
                        if let Some(fan) = fan_out.take() {
                            debug_assert!(
                                pending.is_empty(),
                                "fan-out splits only the first region"
                            );
                            fan.extend(parts);
                            return;
                        }
                        pending.extend(parts);
                        continue 'regions;
                    }
                }
            }
            // Bottleneck link: smallest fair share, ties to smallest id.
            let mut best_share = f64::INFINITY;
            let mut best_dl = u32::MAX;
            let mut found = false;
            for &dl in &links {
                let d = dl as usize;
                let x = ws.crossing[d];
                if x == 0 {
                    continue;
                }
                let share = ws.cap[d] / x as f64;
                if !found || share < best_share || (share == best_share && dl < best_dl) {
                    found = true;
                    best_share = share;
                    best_dl = dl;
                }
            }
            if !found {
                // Unreachable: every unfixed member keeps its path links
                // live. Defensive drain so a logic bug degrades to zero
                // rates instead of a hang.
                debug_assert!(false, "region stalled with {remaining} unfixed flows");
                for &dl in &links {
                    for &f in core.lf_row(dl) {
                        let fi = f as usize;
                        if ws.member[fi] {
                            ws.member[fi] = false;
                            out.push((f, 0.0));
                        }
                    }
                    ws.crossing[dl as usize] = 0;
                }
                break;
            }
            for &f in core.lf_row(best_dl) {
                let fi = f as usize;
                if !ws.member[fi] {
                    continue;
                }
                ws.member[fi] = false;
                remaining -= 1;
                out.push((f, best_share));
                for &dl in core.path(fi) {
                    let d = dl as usize;
                    ws.crossing[d] -= 1;
                    ws.cap[d] = (ws.cap[d] - best_share).max(0.0);
                }
            }
            debug_assert_eq!(ws.crossing[best_dl as usize], 0);
            round += 1;
        }
        stats.fixing_iterations += round;
    }
}

/// Executes one worker's job list for one epoch; the thread body of the
/// scoped fan-out.
fn run_jobs(core: &EngineCore, jobs: Vec<Job<'_>>, ws: &mut WfScratch) -> RateBatch {
    let mut out = Vec::new();
    let mut stats = ExecStats::default();
    for job in jobs {
        match job {
            Job::Set(set) => {
                stats.recomputes += 1;
                stats.dirty_set_max = stats.dirty_set_max.max(set.len());
                let links = load_set(core, set, ws);
                drive(
                    core,
                    (links, set.len(), true),
                    ws,
                    &mut out,
                    &mut stats,
                    None,
                );
            }
            Job::Sub(sub) => {
                let (links, n) = load_sub(sub, ws);
                drive(core, (links, n, false), ws, &mut out, &mut stats, None);
            }
        }
    }
    (out, stats)
}

/// Greedy largest-first component→worker assignment: components in
/// descending live-flow count (ties to the smaller root) each go to the
/// least-loaded worker (ties to the lower index). A pure function of
/// the component map, so every run — and every machine — assigns
/// identically.
fn assign_ownership(
    comp_flows: &BTreeMap<u32, u64>,
    workers: usize,
    ownership: &mut BTreeMap<u32, usize>,
    owned_flows: &mut [u64],
    owned_comps: &mut [usize],
) {
    ownership.clear();
    owned_flows.fill(0);
    owned_comps.fill(0);
    let mut order: Vec<(u64, u32)> = comp_flows.iter().map(|(&r, &n)| (n, r)).collect();
    // npp-lint: allow(unstable-sort) reason="comparator covers both tuple fields and roots are unique, so the order is total over distinct elements"
    order.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    for (n, root) in order {
        let w = (0..workers)
            .min_by_key(|&w| (owned_flows[w], w))
            .expect("workers >= 1");
        ownership.insert(root, w);
        owned_flows[w] += n;
        owned_comps[w] += 1;
    }
}

/// Spawns a scoped worker per non-empty job list, joins in worker-id
/// order, and returns per-worker rate batches plus the coordinator's
/// blocked wall time.
fn fan_out_jobs(
    core: &EngineCore,
    job_lists: Vec<Vec<Job<'_>>>,
    pool: &mut [WfScratch],
) -> (Vec<RateBatch>, u64) {
    let wait = npp_telemetry::timer::Stopwatch::start();
    let mut results: Vec<Option<RateBatch>> = (0..pool.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for ((w, jobs), ws) in job_lists.into_iter().enumerate().zip(pool.iter_mut()) {
            if jobs.is_empty() {
                continue;
            }
            handles.push((w, scope.spawn(move || run_jobs(core, jobs, ws))));
        }
        for (w, h) in handles {
            match h.join() {
                Ok(r) => results[w] = Some(r),
                // A worker hit the oracle debug-assert (or another
                // bug): surface it exactly like the serial engine.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    let batches = results.into_iter().map(Option::unwrap_or_default).collect();
    (batches, wait.elapsed_ns())
}

/// The parallel event loop behind [`NetSim::run_threads`]. See the
/// module docs for the architecture; the step order, error behaviour,
/// and every quantity visible in [`NetSim::state_digest`] mirror
/// [`NetSim::run`] exactly.
pub(crate) fn run_parallel(sim: &mut NetSim, threads: usize) -> Result<()> {
    if sim.core.flows.is_empty() {
        return sim.run();
    }
    // `inject` validates reachability, so zero-hop paths never occur
    // today — but a path-less flow would bypass the component map, so
    // fall back to the serial engine rather than special-case it.
    if (0..sim.core.flows.len()).any(|i| sim.core.path(i).is_empty()) {
        return sim.run();
    }
    sim.prepare_run();
    let comp_flows = sim.refresh_component_index();
    let workers = threads;

    let mut ownership: BTreeMap<u32, usize> = BTreeMap::new();
    let mut owned_flows = vec![0u64; workers];
    let mut owned_comps = vec![0usize; workers];
    assign_ownership(
        &comp_flows,
        workers,
        &mut ownership,
        &mut owned_flows,
        &mut owned_comps,
    );
    // Live-flow weights per component root, kept for steal-time
    // ownership accounting between rebuilds.
    let mut comp_live: BTreeMap<u32, u64> = comp_flows;

    // Injections move into a Scheduler: pop_batch yields one epoch's
    // release set per call, matching the serial loop's pops from its
    // reverse-sorted vector.
    let mut sched: Scheduler<u32> = Scheduler::with_capacity(sim.pending.len());
    while let Some((t, FlowId(i))) = sim.pending.pop() {
        sched.schedule(t, i as u32)?;
    }

    let n_dl = sim.core.link_caps.len();
    let n_fl = sim.core.flows.len();
    let mut pool: Vec<WfScratch> = (0..workers).map(|_| WfScratch::new(n_dl, n_fl)).collect();
    let mut worker_stats = vec![WorkerMetrics::default(); workers];
    let mut merge_wait_ns = 0u64;
    let mut steal_events = 0u64;
    let mut stolen_components = 0u64;
    let mut subproblems_total = 0u64;
    let mut finished_total = sim
        .core
        .flows
        .iter()
        .filter(|f| f.finished.is_some())
        .count();
    let mut batch: Vec<u32> = Vec::new();
    let mut seed_pairs: Vec<(u32, u32)> = Vec::new();
    let mut items: Vec<(u32, Vec<u32>)> = Vec::new();
    let mut free_sets: Vec<Vec<u32>> = Vec::new();
    let mut root_seed_buf: Vec<u32> = Vec::new();
    let mut epoch_out: Vec<(u32, f64)> = Vec::new();

    npp_telemetry::trace_span!(begin "netsim.run", sim.now.as_nanos());
    let result = loop {
        if sim.core.active.is_empty() && sched.is_empty() {
            break Ok(());
        }
        // Lazy index maintenance at the epoch boundary: departures are
        // batched; a rebuild also re-derives ownership.
        sim.index.observe_finished(finished_total);
        if sim.index.should_rebuild() {
            let cf = sim.refresh_component_index();
            assign_ownership(
                &cf,
                workers,
                &mut ownership,
                &mut owned_flows,
                &mut owned_comps,
            );
            comp_live = cf;
        }
        if !sim.core.scratch.seeds.is_empty() {
            // Decompose the epoch's seeds into per-component dirty
            // items. A live seed belongs to one component; a finished
            // retiree's path can span several after a rebuild, so it
            // emits one pair per distinct path-link root.
            let seeds = std::mem::take(&mut sim.core.scratch.seeds);
            seed_pairs.clear();
            {
                let core = &sim.core;
                let index = &mut sim.index;
                for &f in &seeds {
                    let fi = f as usize;
                    if core.flows[fi].active {
                        if let Some(&first) = core.path(fi).first() {
                            seed_pairs.push((index.root(first), f));
                        }
                    } else {
                        let mut prev = u32::MAX;
                        for &dl in core.path(fi) {
                            let r = index.root(dl);
                            if r != prev {
                                seed_pairs.push((r, f));
                                prev = r;
                            }
                        }
                    }
                }
            }
            let mut seeds = seeds;
            seeds.clear();
            sim.core.scratch.seeds = seeds;
            seed_pairs.sort_unstable();
            seed_pairs.dedup();
            debug_assert!(items.is_empty());
            let mut k = 0;
            while k < seed_pairs.len() {
                let root = seed_pairs[k].0;
                root_seed_buf.clear();
                while k < seed_pairs.len() && seed_pairs[k].0 == root {
                    root_seed_buf.push(seed_pairs[k].1);
                    k += 1;
                }
                let mut set = free_sets.pop().unwrap_or_default();
                sim.core
                    .component_closure(&root_seed_buf, root, &mut sim.index, &mut set);
                if set.is_empty() {
                    free_sets.push(set);
                } else {
                    items.push((root, set));
                }
            }

            // Epoch work stealing: idle workers claim whole components,
            // smallest root first, from the most-loaded worker.
            if items.len() > 1 && sim.steal_mode != StealMode::Never {
                let mut load = vec![0u64; workers];
                let mut dirty_comps = vec![0usize; workers];
                for (root, set) in &items {
                    let w = ownership.get(root).copied().unwrap_or(0);
                    load[w] += set.len() as u64;
                    dirty_comps[w] += 1;
                }
                let mut moved = false;
                while let Some(thief) = (0..workers).find(|&w| load[w] == 0) {
                    let mut donor_opt: Option<usize> = None;
                    for w in 0..workers {
                        if dirty_comps[w] >= 2
                            && donor_opt.map(|d| load[w] > load[d]).unwrap_or(true)
                        {
                            donor_opt = Some(w);
                        }
                    }
                    let Some(donor) = donor_opt else { break };
                    if sim.steal_mode == StealMode::Auto && load[donor] < STEAL_MIN_FLOWS {
                        break;
                    }
                    let Some((root, n)) = items
                        .iter()
                        .filter(|(r, _)| ownership.get(r).copied().unwrap_or(0) == donor)
                        .map(|(r, s)| (*r, s.len() as u64))
                        .min_by_key(|&(r, _)| r)
                    else {
                        break;
                    };
                    ownership.insert(root, thief);
                    let live = comp_live.get(&root).copied().unwrap_or(n);
                    owned_comps[donor] -= 1;
                    owned_comps[thief] += 1;
                    owned_flows[donor] = owned_flows[donor].saturating_sub(live);
                    owned_flows[thief] += live;
                    load[donor] -= n;
                    load[thief] += n;
                    dirty_comps[donor] -= 1;
                    dirty_comps[thief] += 1;
                    stolen_components += 1;
                    moved = true;
                }
                if moved {
                    steal_events += 1;
                }
            }

            // Execute the epoch's recomputes.
            let total: usize = items.iter().map(|(_, s)| s.len()).sum();
            if total > 0 {
                epoch_out.clear();
                let mut epoch_stats = ExecStats::default();
                if total < sim.fanout_min {
                    // Light epoch: run inline on the coordinator (still
                    // using the owners' scratches), ascending root order.
                    let core = &sim.core;
                    for (root, set) in &items {
                        let owner = ownership.get(root).copied().unwrap_or(0);
                        let mut stats = ExecStats {
                            recomputes: 1,
                            dirty_set_max: set.len(),
                            ..ExecStats::default()
                        };
                        let ws = &mut pool[owner];
                        let links = load_set(core, set, ws);
                        drive(
                            core,
                            (links, set.len(), true),
                            ws,
                            &mut epoch_out,
                            &mut stats,
                            None,
                        );
                        merge_worker(&mut worker_stats[owner], &stats);
                        epoch_stats.absorb(&stats);
                    }
                } else if items.len() == 1 {
                    // One giant dirty component: run the prefix on the
                    // owner until the residual graph disconnects, then
                    // deal the split subproblems across the pool,
                    // largest first.
                    let (root, set) = &items[0];
                    let owner = ownership.get(root).copied().unwrap_or(0);
                    let mut parts: Vec<SubProblem> = Vec::new();
                    let mut stats = ExecStats {
                        recomputes: 1,
                        dirty_set_max: set.len(),
                        ..ExecStats::default()
                    };
                    {
                        let core = &sim.core;
                        let ws = &mut pool[owner];
                        let links = load_set(core, set, ws);
                        drive(
                            core,
                            (links, set.len(), true),
                            ws,
                            &mut epoch_out,
                            &mut stats,
                            Some(&mut parts),
                        );
                    }
                    merge_worker(&mut worker_stats[owner], &stats);
                    epoch_stats.absorb(&stats);
                    if !parts.is_empty() {
                        // npp-lint: allow(unstable-sort) reason="parts have disjoint link sets, so the min_link tiebreak is a unique key and the order is total"
                        parts.sort_unstable_by(|a, b| {
                            b.flows
                                .len()
                                .cmp(&a.flows.len())
                                .then(a.min_link.cmp(&b.min_link))
                        });
                        let mut job_lists: Vec<Vec<Job>> =
                            (0..workers).map(|_| Vec::new()).collect();
                        let mut dealt = vec![0u64; workers];
                        for part in parts {
                            let w = (0..workers)
                                .min_by_key(|&w| (dealt[w], w))
                                .expect("workers >= 1");
                            dealt[w] += part.flows.len() as u64;
                            job_lists[w].push(Job::Sub(part));
                        }
                        let (batches, wait_ns) = fan_out_jobs(&sim.core, job_lists, &mut pool);
                        merge_wait_ns += wait_ns;
                        for (w, (out, stats)) in batches.iter().enumerate() {
                            epoch_out.extend_from_slice(out);
                            merge_worker(&mut worker_stats[w], stats);
                            epoch_stats.absorb(stats);
                        }
                    }
                } else {
                    // Several dirty components: each runs whole on its
                    // owner.
                    let mut job_lists: Vec<Vec<Job>> = (0..workers).map(|_| Vec::new()).collect();
                    for (root, set) in &items {
                        let owner = ownership.get(root).copied().unwrap_or(0);
                        job_lists[owner].push(Job::Set(set));
                    }
                    let (batches, wait_ns) = fan_out_jobs(&sim.core, job_lists, &mut pool);
                    merge_wait_ns += wait_ns;
                    for (w, (out, stats)) in batches.iter().enumerate() {
                        epoch_out.extend_from_slice(out);
                        merge_worker(&mut worker_stats[w], stats);
                        epoch_stats.absorb(stats);
                    }
                }
                // Apply the disjoint fixes centrally; application order
                // is immaterial because each flow is fixed exactly once.
                for &(f, r) in &epoch_out {
                    sim.core.flows[f as usize].rate_gbps = r;
                }
                sim.core.recomputes += epoch_stats.recomputes;
                sim.core.fixing_iterations += epoch_stats.fixing_iterations;
                sim.core.dirty_set_max = sim.core.dirty_set_max.max(epoch_stats.dirty_set_max);
                sim.core.touched_links_max = sim
                    .core
                    .touched_links_max
                    .max(epoch_stats.touched_links_max);
                subproblems_total += epoch_stats.subproblems;
                #[cfg(any(test, debug_assertions))]
                sim.core.assert_rates_match_naive_oracle();
            }
            for (_, mut set) in items.drain(..) {
                set.clear();
                free_sets.push(set);
            }
        }

        // The serial tail: advance to the earliest of next injection /
        // earliest completion, integrate, retire, release.
        let next_injection = sched.peek_time();
        let earliest_completion = sim.core.earliest_completion(sim.now);
        let next = match (next_injection, earliest_completion) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => {
                // Active flows but all at zero rate: deadlock — only
                // possible with zero-capacity links.
                break Err(SimError::Config("active flows starved at zero rate".into()));
            }
        };
        sim.core.integrate(sim.now, next);
        // Retirees pushed by integrate are exactly this epoch's newly
        // finished flows (release seeds are appended after).
        finished_total += sim.core.scratch.seeds.len();
        sim.now = next;
        let mut released = false;
        while sched.peek_time().is_some_and(|t| t <= sim.now) {
            sched.pop_batch(&mut batch);
            for &i in &batch {
                sim.core.release(i);
            }
            released = true;
        }
        if released {
            sim.core.active.sort_unstable();
            sim.peak_active = sim.peak_active.max(sim.core.active.len());
        }
        sim.events += 1;
        npp_telemetry::trace_counter!(
            "netsim.live_flows",
            sim.now.as_nanos(),
            0,
            sim.core.active.len()
        );
    };

    match result {
        Ok(()) => {
            npp_telemetry::trace_span!(end "netsim.run", sim.now.as_nanos());
            for w in 0..workers {
                worker_stats[w].components = owned_comps[w];
                worker_stats[w].flows = owned_flows[w] as usize;
            }
            sim.par = Some(ParMetrics {
                threads: workers,
                merge_wait_ns,
                steal_events,
                stolen_components,
                subproblems: subproblems_total,
                workers: worker_stats,
            });
            sim.publish_metrics();
            Ok(())
        }
        Err(e) => {
            // Hand un-released injections back so the sim is inspectable
            // after the error, exactly as the serial loop leaves it.
            for (t, i) in sched.drain() {
                sim.pending.push((t, FlowId(i as usize)));
            }
            sim.pending.reverse();
            sim.pending_sorted = true;
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimTime;
    use npp_topology::builder::leaf_spine;
    use npp_units::Gbps;

    #[test]
    fn assign_ownership_is_largest_first_deterministic() {
        let comp_flows: BTreeMap<u32, u64> = [(10, 5), (20, 5), (30, 3), (40, 1)].into();
        let mut ownership = BTreeMap::new();
        let mut owned_flows = vec![0u64; 2];
        let mut owned_comps = vec![0usize; 2];
        assign_ownership(
            &comp_flows,
            2,
            &mut ownership,
            &mut owned_flows,
            &mut owned_comps,
        );
        // Descending size, root tie-break: 5@10 → w0, 5@20 → w1,
        // 3@30 → w0 (both at 5, lower index), 1@40 → w1.
        assert_eq!(ownership[&10], 0);
        assert_eq!(ownership[&20], 1);
        assert_eq!(ownership[&30], 0);
        assert_eq!(ownership[&40], 1);
        assert_eq!(owned_flows, vec![8, 6]);
        assert_eq!(owned_comps, vec![2, 2]);
    }

    /// Three components with a skewed histogram: one busy 4-flow
    /// component plus two singleton components that turn dirty together
    /// at 1 ms — both singletons owned by the same worker under the
    /// greedy assignment, so the other worker idles unless it steals.
    fn skewed_sim() -> NetSim {
        let topo = leaf_spine(3, 1, 4, Gbps::new(100.0)).unwrap();
        let hosts = topo.hosts();
        let mut sim = NetSim::new(topo);
        // Component A: 4 flows between one host pair on leaf 0.
        for k in 0..4u64 {
            sim.inject(
                SimTime::ZERO,
                hosts[0],
                hosts[1],
                2e6 * (k + 1) as f64,
                k as usize,
            )
            .unwrap();
        }
        // Components B and C: one flow each on leaves 1 and 2.
        sim.inject(SimTime::from_millis(1), hosts[4], hosts[5], 1e6, 0)
            .unwrap();
        sim.inject(SimTime::from_millis(1), hosts[8], hosts[9], 1e6, 0)
            .unwrap();
        sim
    }

    #[test]
    fn steal_modes_are_bit_identical_and_always_mode_migrates() {
        let mut serial = skewed_sim();
        serial.run().unwrap();
        for mode in [StealMode::Auto, StealMode::Always, StealMode::Never] {
            let mut sim = skewed_sim();
            sim.set_steal_mode(mode);
            sim.set_parallel_fanout_min(1);
            sim.run_threads(2).unwrap();
            assert_eq!(
                sim.state_digest(),
                serial.state_digest(),
                "digest diverged in {mode:?}"
            );
            let m = sim.engine_metrics();
            match mode {
                StealMode::Always => assert!(
                    m.stolen_components >= 1,
                    "the idle worker must claim a component in Always mode"
                ),
                StealMode::Never => assert_eq!(m.stolen_components, 0),
                StealMode::Auto => assert_eq!(
                    m.stolen_components, 0,
                    "six dirty flows are far below the Auto donor floor"
                ),
            }
        }
    }

    #[test]
    fn forced_fanout_single_component_matches_serial() {
        // Eight flows sharing one spine uplink: a single component run
        // through the giant-component path with fan-out forced on.
        let build = || {
            let topo = leaf_spine(2, 1, 4, Gbps::new(100.0)).unwrap();
            let hosts = topo.hosts();
            let mut sim = NetSim::new(topo);
            for k in 0..8u64 {
                sim.inject(
                    SimTime::from_millis(k / 4),
                    hosts[(k % 4) as usize],
                    hosts[4 + (k % 4) as usize],
                    1e6 * (k + 1) as f64,
                    0,
                )
                .unwrap();
            }
            sim
        };
        let mut serial = build();
        serial.run().unwrap();
        let mut par = build();
        par.set_parallel_fanout_min(1);
        par.run_threads(4).unwrap();
        assert_eq!(par.state_digest(), serial.state_digest());
        let m = par.engine_metrics();
        assert_eq!(m.components, 1);
        assert_eq!(m.threads, 4);
    }

    #[test]
    fn zero_capacity_starvation_matches_the_serial_error() {
        // A zero-capacity link starves flows at zero rate; the parallel
        // loop must surface the same error as the serial engine and
        // leave the sim in the same inspectable state (starvation can
        // only trip once every injection has been released, so the
        // restored pending queue is empty in both engines).
        let build = || {
            let topo = leaf_spine(1, 1, 2, Gbps::new(0.0)).unwrap();
            let hosts = topo.hosts();
            let mut sim = NetSim::new(topo);
            sim.inject(SimTime::ZERO, hosts[0], hosts[1], 1e6, 0)
                .unwrap();
            sim.inject(SimTime::from_millis(5), hosts[1], hosts[0], 1e6, 0)
                .unwrap();
            sim
        };
        let mut serial = build();
        let serial_err = serial.run().unwrap_err();
        let mut par = build();
        let par_err = par.run_threads(2).unwrap_err();
        assert_eq!(par_err, serial_err);
        assert!(matches!(par_err, SimError::Config(_)));
        assert_eq!(par.pending_flow_count(), serial.pending_flow_count());
        assert_eq!(par.now, serial.now);
    }
}
