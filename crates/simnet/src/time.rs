//! Integer-nanosecond simulation time.

use serde::{Deserialize, Serialize};

use npp_units::Seconds;

/// A point in simulation time, in integer nanoseconds since simulation
/// start.
///
/// Integer time makes event ordering exact and reproducible; `f64` time
/// would make the simulator's behaviour depend on accumulated rounding.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: Self = Self(0);
    /// The far future (used as an "infinite" horizon sentinel).
    pub const MAX: Self = Self(u64::MAX);

    /// Creates a time from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Self(ns)
    }

    /// Creates a time from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Self(us * 1_000)
    }

    /// Creates a time from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms * 1_000_000)
    }

    /// Creates a time from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Self(s * 1_000_000_000)
    }

    /// Converts a (non-negative) [`Seconds`] duration, rounding to the
    /// nearest nanosecond and saturating at the representable range.
    #[inline]
    pub fn from_seconds(s: Seconds) -> Self {
        let ns = (s.value() * 1e9).round();
        if ns <= 0.0 {
            Self::ZERO
        } else if ns >= u64::MAX as f64 {
            Self::MAX
        } else {
            Self(ns as u64)
        }
    }

    /// Nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Converts to a [`Seconds`] duration.
    #[inline]
    pub fn as_seconds(self) -> Seconds {
        Seconds::from_nanos(self.0 as f64)
    }

    /// Saturating addition of a duration in nanoseconds.
    #[inline]
    pub const fn plus_nanos(self, ns: u64) -> Self {
        Self(self.0.saturating_add(ns))
    }

    /// Saturating time difference (`self − earlier`), zero if `earlier`
    /// is later.
    #[inline]
    pub const fn since(self, earlier: Self) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl core::ops::Add for SimTime {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self(self.0.saturating_add(rhs.0))
    }
}

impl core::fmt::Display for SimTime {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.6}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(SimTime::from_micros(2).as_nanos(), 2_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_secs(1).as_nanos(), 1_000_000_000);
    }

    #[test]
    fn seconds_round_trip() {
        let t = SimTime::from_seconds(Seconds::new(1.5));
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert!((t.as_seconds().value() - 1.5).abs() < 1e-12);
        // Negative durations clamp to zero; huge ones saturate.
        assert_eq!(SimTime::from_seconds(Seconds::new(-1.0)), SimTime::ZERO);
        assert_eq!(SimTime::from_seconds(Seconds::new(1e30)), SimTime::MAX);
    }

    #[test]
    fn arithmetic_saturates() {
        assert_eq!(SimTime::MAX.plus_nanos(10), SimTime::MAX);
        assert_eq!(SimTime::from_nanos(5).since(SimTime::from_nanos(10)), 0);
        assert_eq!(SimTime::from_nanos(10).since(SimTime::from_nanos(4)), 6);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimTime::ZERO < SimTime::MAX);
    }

    #[test]
    fn display_scales() {
        assert_eq!(format!("{}", SimTime::from_nanos(42)), "42ns");
        assert_eq!(format!("{}", SimTime::from_micros(42)), "42.000us");
        assert_eq!(format!("{}", SimTime::from_millis(42)), "42.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(42)), "42.000000s");
    }
}
