//! The pre-optimization flow-level simulator, preserved verbatim as a
//! reference engine.
//!
//! [`NaiveNetSim`] is the `HashMap`-per-event, `path.contains`-scanning
//! progressive-filling implementation that [`crate::netsim::NetSim`]
//! replaced. It is kept for two jobs:
//!
//! - the `simnet_hotpath` benchmark measures the indexed engine's
//!   speedup against it on identical scenarios (the PR-over-PR perf
//!   trajectory in `BENCH_simnet.json` is anchored to this baseline);
//! - the differential test suite (`tests/simnet_equivalence.rs`) runs
//!   both engines on random topologies and flow sets and asserts
//!   bit-identical completion times and link statistics.
//!
//! The only change from the historical code is a deterministic
//! bottleneck tie-break (smallest directed-link id), so equal-share
//! ties resolve identically to the indexed engine instead of following
//! `HashMap` iteration order. Complexity is untouched:
//! `O(flows² · links)` per event with fresh allocations throughout.

use std::collections::HashMap;

use npp_topology::graph::{LinkId, NodeId, Topology};

use crate::netsim::FlowId;
use crate::{Result, SimError, SimTime};

/// A directed traversal of an undirected link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct DirLink {
    link: LinkId,
    /// true when traversed from `link.a` to `link.b`.
    forward: bool,
}

#[derive(Debug, Clone)]
struct Flow {
    bytes_remaining: f64,
    path: Vec<DirLink>,
    injected: SimTime,
    finished: Option<SimTime>,
    rate_gbps: f64,
}

/// The pre-optimization flow-level simulator (reference engine).
#[derive(Debug, Clone)]
pub struct NaiveNetSim {
    topo: Topology,
    flows: Vec<Flow>,
    /// Pending injections, sorted by time (reverse for pop).
    pending: Vec<(SimTime, FlowId)>,
    now: SimTime,
    /// Per-directed-link busy time accumulated, in seconds.
    busy_secs: HashMap<DirLink, f64>,
    /// Per-link bytes carried (both directions).
    carried: HashMap<LinkId, f64>,
    events: u64,
}

impl NaiveNetSim {
    /// Creates a simulator over (a clone of) the topology.
    pub fn new(topo: Topology) -> Self {
        Self {
            topo,
            flows: Vec::new(),
            pending: Vec::new(),
            now: SimTime::ZERO,
            busy_secs: HashMap::new(),
            carried: HashMap::new(),
            events: 0,
        }
    }

    /// The simulation clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of fluid events (rate epochs) processed by
    /// [`NaiveNetSim::run`].
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// Schedules a flow of `bytes` from `src` to `dst` at time `at`,
    /// routed on the `path_choice`-th ECMP shortest path.
    ///
    /// # Errors
    ///
    /// Rejects flows between unreachable nodes, empty flows, and
    /// injections in the past.
    pub fn inject(
        &mut self,
        at: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: f64,
        path_choice: usize,
    ) -> Result<FlowId> {
        if at < self.now {
            return Err(SimError::TimeReversal {
                now_ns: self.now.as_nanos(),
                requested_ns: at.as_nanos(),
            });
        }
        if bytes <= 0.0 || !bytes.is_finite() {
            return Err(SimError::Config(format!(
                "flow size {bytes} must be positive"
            )));
        }
        let paths = self.topo.ecmp_paths(src, dst, 16);
        if paths.is_empty() {
            return Err(SimError::Config(format!(
                "no path from node {} to node {}",
                src.0, dst.0
            )));
        }
        let nodes = &paths[path_choice % paths.len()];
        let mut path = Vec::with_capacity(nodes.len().saturating_sub(1));
        for hop in nodes.windows(2) {
            let (a, b) = (hop[0], hop[1]);
            let (_, link) = self
                .topo
                .neighbors(a)
                .iter()
                .copied()
                .find(|&(peer, _)| peer == b)
                .expect("consecutive ECMP nodes are adjacent");
            let l = self.topo.link(link).expect("link exists");
            path.push(DirLink {
                link,
                forward: l.a == a,
            });
        }
        let id = FlowId(self.flows.len());
        self.flows.push(Flow {
            bytes_remaining: bytes,
            path,
            injected: at,
            finished: None,
            rate_gbps: 0.0,
        });
        self.pending.push((at, id));
        self.pending.sort_by_key(|x| std::cmp::Reverse(x.0)); // reverse for pop()
        Ok(id)
    }

    /// Ids of flows that have started but not finished at `now`.
    fn active_flows(&self) -> Vec<usize> {
        self.flows
            .iter()
            .enumerate()
            .filter(|(i, f)| {
                f.finished.is_none()
                    && f.injected <= self.now
                    && !self.pending.iter().any(|&(_, FlowId(p))| p == *i)
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Progressive-filling max-min fair allocation over the active flows.
    fn recompute_rates(&mut self, active: &[usize]) {
        for &i in active {
            self.flows[i].rate_gbps = 0.0;
        }
        let mut unassigned: Vec<usize> = active.to_vec();
        // Remaining capacity per directed link.
        let mut cap: HashMap<DirLink, f64> = HashMap::new();
        for &i in active {
            for &dl in &self.flows[i].path {
                cap.entry(dl)
                    .or_insert_with(|| self.topo.link(dl.link).expect("link").capacity.value());
            }
        }
        while !unassigned.is_empty() {
            // Bottleneck link: smallest fair share, ties toward the
            // smallest directed-link id (matches the indexed engine).
            let mut best: Option<(f64, DirLink)> = None;
            // npp-lint: allow(map-iter) reason="bottleneck selection totally orders candidates by (share, dl), so hash-map iteration order cannot change the winner"
            for (&dl, &c) in &cap {
                let crossing = unassigned
                    .iter()
                    .filter(|&&i| self.flows[i].path.contains(&dl))
                    .count();
                if crossing == 0 {
                    continue;
                }
                let share = c / crossing as f64;
                if best
                    .map(|(s, d)| share < s || (share == s && dl < d))
                    .unwrap_or(true)
                {
                    best = Some((share, dl));
                }
            }
            let Some((share, bottleneck)) = best else {
                break;
            };
            // Fix every unassigned flow crossing the bottleneck at the
            // fair share; subtract from other links on their paths.
            let fixed: Vec<usize> = unassigned
                .iter()
                .copied()
                .filter(|&i| self.flows[i].path.contains(&bottleneck))
                .collect();
            for &i in &fixed {
                self.flows[i].rate_gbps = share;
                for &dl in &self.flows[i].path.clone() {
                    if let Some(c) = cap.get_mut(&dl) {
                        *c = (*c - share).max(0.0);
                    }
                }
            }
            cap.remove(&bottleneck);
            unassigned.retain(|i| !fixed.contains(i));
        }
    }

    /// Advances the simulation until all flows complete.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors; returns Ok when the fluid system
    /// drains.
    pub fn run(&mut self) -> Result<()> {
        loop {
            let active = self.active_flows();
            if active.is_empty() && self.pending.is_empty() {
                return Ok(());
            }
            self.recompute_rates(&active);

            // Earliest of: next injection, earliest completion.
            let next_injection = self.pending.last().map(|&(t, _)| t);
            let mut earliest_completion: Option<SimTime> = None;
            for &i in &active {
                let f = &self.flows[i];
                if f.rate_gbps > 0.0 {
                    let secs = f.bytes_remaining * 8.0 / (f.rate_gbps * 1e9);
                    let t = self.now.plus_nanos((secs * 1e9).ceil() as u64);
                    if earliest_completion.map(|e| t < e).unwrap_or(true) {
                        earliest_completion = Some(t);
                    }
                }
            }
            let next = match (next_injection, earliest_completion) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => {
                    return Err(SimError::Config("active flows starved at zero rate".into()));
                }
            };

            // Integrate progress over [now, next].
            let dt = next.since(self.now) as f64 * 1e-9;
            for &i in &active {
                let f = &mut self.flows[i];
                if f.rate_gbps > 0.0 {
                    let moved = f.rate_gbps * 1e9 * dt / 8.0;
                    f.bytes_remaining = (f.bytes_remaining - moved).max(0.0);
                    for &dl in &f.path {
                        *self.busy_secs.entry(dl).or_insert(0.0) += dt;
                        *self.carried.entry(dl.link).or_insert(0.0) += moved;
                    }
                    if f.bytes_remaining <= 1e-6 {
                        f.finished = Some(next);
                    }
                }
            }
            self.now = next;
            // Release injections due now.
            while self
                .pending
                .last()
                .map(|&(t, _)| t <= self.now)
                .unwrap_or(false)
            {
                self.pending.pop();
            }
            self.events += 1;
        }
    }

    /// Completion time of a flow, if finished.
    pub fn finished_at(&self, id: FlowId) -> Option<SimTime> {
        self.flows.get(id.0).and_then(|f| f.finished)
    }

    /// Current rate of a flow (Gbps).
    pub fn rate(&self, id: FlowId) -> Option<f64> {
        self.flows.get(id.0).map(|f| f.rate_gbps)
    }

    /// Completion time of the last-finishing flow (makespan), if all
    /// finished.
    pub fn makespan(&self) -> Option<SimTime> {
        self.flows
            .iter()
            .map(|f| f.finished)
            .collect::<Option<Vec<_>>>()?
            .into_iter()
            .max()
    }

    /// Seconds during which a link carried traffic in *either* direction.
    pub fn link_busy_secs(&self, link: LinkId) -> f64 {
        let fwd = self
            .busy_secs
            .get(&DirLink {
                link,
                forward: true,
            })
            .copied()
            .unwrap_or(0.0);
        let rev = self
            .busy_secs
            .get(&DirLink {
                link,
                forward: false,
            })
            .copied()
            .unwrap_or(0.0);
        fwd.max(rev)
    }

    /// Bytes carried by a link, summed over both directions.
    pub fn link_bytes(&self, link: LinkId) -> f64 {
        self.carried.get(&link).copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npp_topology::builder::leaf_spine;
    use npp_units::Gbps;

    #[test]
    fn reference_engine_still_computes_fair_shares() {
        let topo = leaf_spine(2, 1, 2, Gbps::new(100.0)).unwrap();
        let hosts = topo.hosts();
        let mut sim = NaiveNetSim::new(topo);
        let a = sim
            .inject(SimTime::ZERO, hosts[0], hosts[2], 62.5e6, 0)
            .unwrap();
        let b = sim
            .inject(SimTime::ZERO, hosts[1], hosts[3], 62.5e6, 0)
            .unwrap();
        sim.run().unwrap();
        for f in [a, b] {
            assert_eq!(sim.finished_at(f).unwrap(), SimTime::from_millis(10));
        }
        assert!(sim.events_processed() >= 2);
    }

    #[test]
    fn reference_engine_validates_injections() {
        let topo = leaf_spine(1, 1, 2, Gbps::new(100.0)).unwrap();
        let hosts = topo.hosts();
        let mut sim = NaiveNetSim::new(topo);
        assert!(sim
            .inject(SimTime::ZERO, hosts[0], hosts[1], -1.0, 0)
            .is_err());
    }
}
