//! Simulation statistics: summaries and counters.

use serde::{Deserialize, Serialize};

/// An online summary of scalar samples (latencies in ns, queue depths, …)
/// with exact percentiles (samples are retained; simulations in this
/// workspace are bounded, so memory is not a concern — and exactness
/// beats sketch error in tests).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    samples: Vec<f64>,
    sum: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self {
            samples: Vec::new(),
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records a sample.
    pub fn record(&mut self, v: f64) {
        self.samples.push(v);
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.sum / self.samples.len() as f64
        }
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.max
        }
    }

    /// The `p`-th percentile (nearest-rank; `p` in `[0, 100]`; 0 when
    /// empty).
    pub fn percentile(&self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
        sorted
            .get(rank.min(sorted.len() - 1))
            .copied()
            .unwrap_or(0.0)
    }

    /// Population standard deviation (0 when fewer than 2 samples).
    pub fn stddev(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var: f64 =
            self.samples.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / self.samples.len() as f64;
        var.sqrt()
    }
}

/// A pair of complementary counters, e.g. forwarded/dropped packets.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LossCounter {
    /// Successfully handled items.
    pub delivered: u64,
    /// Dropped items.
    pub dropped: u64,
}

impl LossCounter {
    /// Total offered items.
    pub fn offered(&self) -> u64 {
        self.delivered + self.dropped
    }

    /// Loss rate in `[0, 1]` (0 when nothing was offered).
    pub fn loss_rate(&self) -> f64 {
        let total = self.offered();
        if total == 0 {
            0.0
        } else {
            self.dropped as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let mut s = Summary::new();
        for v in [3.0, 1.0, 2.0] {
            s.record(v);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 3.0);
    }

    #[test]
    fn percentiles() {
        let mut s = Summary::new();
        for v in 1..=100 {
            s.record(v as f64);
        }
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(100.0), 100.0);
        assert_eq!(s.percentile(50.0), 51.0); // nearest rank on 0..99
        assert!((s.percentile(99.0) - 99.0).abs() <= 1.0);
    }

    #[test]
    fn empty_summary_is_zeroes() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.percentile(50.0), 0.0);
        assert_eq!(s.stddev(), 0.0);
    }

    #[test]
    fn stddev() {
        let mut s = Summary::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(v);
        }
        assert!((s.stddev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn loss_counter() {
        let c = LossCounter {
            delivered: 90,
            dropped: 10,
        };
        assert_eq!(c.offered(), 100);
        assert!((c.loss_rate() - 0.1).abs() < 1e-12);
        assert_eq!(LossCounter::default().loss_rate(), 0.0);
    }
}
