//! Shared helpers for the `netpp` benchmark harness.
//!
//! Each Criterion bench regenerates one of the paper's tables or figures:
//! it prints the artifact once (so `cargo bench` output doubles as a
//! reproduction log, compared in EXPERIMENTS.md) and then measures how
//! long the regeneration takes.

/// Prints a banner followed by a rendered artifact, once per bench run.
pub fn print_artifact(name: &str, body: &str) {
    eprintln!("\n===== {name} =====");
    eprintln!("{body}");
}

/// Formats a savings table (Table 3 layout) for the reproduction log.
pub fn render_savings_table(table: &npp_core::savings::SavingsTable) -> String {
    let mut headers = vec!["Bandwidth".to_string()];
    headers.extend(table.proportionalities.iter().map(|p| format!("{p}")));
    let mut t = npp_report::Table::new(headers);
    for (bw, row) in table.bandwidths.iter().zip(&table.cells) {
        let mut cells = vec![format!("{}G", bw.value())];
        cells.extend(row.iter().map(|c| format!("{}", c.savings)));
        t.push_row(cells);
    }
    t.render()
}

/// Formats speedup curves (Figures 3–4 layout) for the reproduction log.
pub fn render_speedup_curves(curves: &[npp_core::speedup::SpeedupCurve]) -> String {
    let mut headers = vec!["Bandwidth".to_string()];
    if let Some(first) = curves.first() {
        headers.extend(
            first
                .points
                .iter()
                .map(|p| format!("{}", p.proportionality)),
        );
    }
    let mut t = npp_report::Table::new(headers);
    for c in curves {
        let mut cells = vec![format!("{}G", c.bandwidth.value())];
        cells.extend(c.points.iter().map(|p| format!("{}", p.speedup)));
        t.push_row(cells);
    }
    t.render()
}
