//! Benches for the §4 mechanism simulations (and Figure 5's pipeline
//! parking in particular).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use npp_bench::print_artifact;
use npp_mechanisms::comparison::{compare_mechanisms, ml_workload};
use npp_mechanisms::eee::{simulate_eee, EeeParams};
use npp_mechanisms::knobs::{apply_profile, DeploymentProfile};
use npp_mechanisms::ocs_sched::{plan, Job, Placement, RoutingMode};
use npp_mechanisms::pipeline_park::{simulate_parking, ParkConfig, PredictiveSchedule};
use npp_mechanisms::rate_adapt::{simulate_rate_adaptation, RateAdaptConfig};
use npp_simnet::sources::OnOffSource;
use npp_simnet::switchsim::SwitchParams;
use npp_simnet::SimTime;
use npp_topology::builder::three_tier_fat_tree;
use npp_units::{Gbps, Watts};
use npp_workload::parallelism::TrafficMatrix;

const HORIZON: SimTime = SimTime::from_millis(5);

fn mech_eee(c: &mut Criterion) {
    let mk = || OnOffSource::new(1_000_000, 900_000, Gbps::new(10.0), 1500, 0, HORIZON).unwrap();
    let r = simulate_eee(&EeeParams::ten_gbase_t(), &mut mk(), HORIZON).unwrap();
    print_artifact(
        "EEE baseline (802.3az, 10GBASE-T)",
        &format!(
            "savings {} | LPI {} | mean added latency {:.0} ns",
            r.savings, r.lpi_fraction, r.mean_added_latency_ns
        ),
    );
    let mut g = c.benchmark_group("mech_eee");
    g.sample_size(20);
    g.bench_function("simulate_5ms_ml_traffic", |b| {
        b.iter(|| black_box(simulate_eee(&EeeParams::ten_gbase_t(), &mut mk(), HORIZON).unwrap()))
    });
    g.finish();
}

fn mech_rate_adaptation(c: &mut Criterion) {
    let params = SwitchParams::paper_51t2();
    let cfg = RateAdaptConfig::default_per_pipeline();
    let r = simulate_rate_adaptation(params, &cfg, &mut ml_workload(HORIZON), HORIZON).unwrap();
    print_artifact(
        "par. 4.3 rate adaptation (per-pipeline)",
        &format!(
            "savings {} | loss {:.2}% | p99 {:.1} us",
            r.savings,
            r.loss_rate * 100.0,
            r.p99_latency_ns / 1000.0
        ),
    );
    let mut g = c.benchmark_group("mech_rate_adaptation");
    g.sample_size(10);
    g.bench_function("simulate_5ms", |b| {
        b.iter(|| {
            black_box(
                simulate_rate_adaptation(params, &cfg, &mut ml_workload(HORIZON), HORIZON).unwrap(),
            )
        })
    });
    g.finish();
}

fn mech_pipeline_parking(c: &mut Criterion) {
    let params = SwitchParams::paper_51t2();
    let cfg = ParkConfig::predictive(PredictiveSchedule {
        period_ns: 1_000_000,
        burst_start_ns: 900_000,
        burst_len_ns: 100_000,
        prewake_ns: 200_000,
    });
    let r = simulate_parking(params, &cfg, &mut ml_workload(HORIZON), HORIZON).unwrap();
    print_artifact(
        "par. 4.4 / Figure 5 pipeline parking (predictive)",
        &format!(
            "savings {} | loss {:.2}% | parks {} wakes {}",
            r.savings,
            r.loss_rate * 100.0,
            r.parks,
            r.wakes
        ),
    );
    let mut g = c.benchmark_group("mech_pipeline_parking");
    g.sample_size(10);
    g.bench_function("simulate_5ms_predictive", |b| {
        b.iter(|| {
            black_box(simulate_parking(params, &cfg, &mut ml_workload(HORIZON), HORIZON).unwrap())
        })
    });
    g.finish();
}

fn mech_ocs(c: &mut Criterion) {
    let topo = three_tier_fat_tree(8, Gbps::new(400.0)).unwrap();
    let ring: Vec<usize> = (0..32).collect();
    let job = Job::from_matrix(
        "dp-ring-32",
        &TrafficMatrix::ring(32, &ring, Gbps::new(100.0)).unwrap(),
    );
    let p = plan(
        &topo,
        &[(job.clone(), Placement::Packed)],
        Watts::new(750.0),
        RoutingMode::Concentrated,
        true,
    )
    .unwrap();
    print_artifact(
        "par. 4.2 OCS scheduling (32-rank ring on k=8 fat tree)",
        &format!(
            "active switches {} / {} | savings {}",
            p.active_switches.len(),
            topo.switches().len(),
            p.savings
        ),
    );
    c.bench_function("mech_ocs/plan_k8_fabric", |b| {
        b.iter(|| {
            black_box(
                plan(
                    &topo,
                    &[(job.clone(), Placement::Packed)],
                    Watts::new(750.0),
                    RoutingMode::Concentrated,
                    true,
                )
                .unwrap(),
            )
        })
    });
}

fn mech_knobs(c: &mut Criterion) {
    let r = apply_profile(&DeploymentProfile::l2_leaf_fixed()).unwrap();
    print_artifact(
        "par. 4.1 power knobs (L2 leaf, half ports)",
        &format!(
            "exposed {} | physical {} | proportionality {}",
            r.exposed_savings, r.physical_savings, r.physical_proportionality
        ),
    );
    c.bench_function("mech_knobs/apply_profile", |b| {
        b.iter(|| black_box(apply_profile(&DeploymentProfile::l2_leaf_fixed()).unwrap()))
    });
}

fn mech_comparison(c: &mut Criterion) {
    let table = compare_mechanisms(HORIZON).unwrap();
    let mut body = String::new();
    for row in &table {
        body.push_str(&format!("{:<34} savings {}\n", row.name, row.savings));
    }
    print_artifact("par. 4 cross-mechanism comparison", &body);
    let mut g = c.benchmark_group("mech_comparison");
    g.sample_size(10);
    g.bench_function("all_mechanisms_5ms", |b| {
        b.iter(|| black_box(compare_mechanisms(HORIZON).unwrap()))
    });
    g.finish();
}

criterion_group!(
    benches,
    mech_eee,
    mech_rate_adaptation,
    mech_pipeline_parking,
    mech_ocs,
    mech_knobs,
    mech_comparison
);
criterion_main!(benches);
