//! Ablations of the modeling choices DESIGN.md documents: each bench
//! prints how the headline result (Table 3's 400 G / 85 % cell, paper
//! value 8.8 %) shifts under an alternative modeling rule, then measures
//! the sweep cost.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use npp_bench::print_artifact;
use npp_core::cluster::ClusterConfig;
use npp_core::savings::savings_table;
use npp_power::{LinearPower, PowerModel, Proportionality, TwoStatePower};
use npp_topology::InterpMode;
use npp_units::{Gbps, Ratio, Watts};
use npp_workload::ScalingScenario;

/// The headline cell under a modified configuration.
fn headline_savings(configure: impl Fn(&mut ClusterConfig)) -> f64 {
    let mut cfg = ClusterConfig::paper_baseline();
    configure(&mut cfg);
    let t = savings_table(
        &cfg,
        &[Gbps::new(400.0)],
        &[Proportionality::COMPUTE],
        Proportionality::NETWORK_BASELINE,
        ScalingScenario::FixedWorkload,
    )
    .expect("sweep builds");
    t.cell(0, 0).expect("cell exists").savings.percent()
}

fn ablation_interp(c: &mut Criterion) {
    let frac = headline_savings(|c| c.interp = InterpMode::FractionalStages);
    let prop = headline_savings(|c| c.interp = InterpMode::CeilProportional);
    let full = headline_savings(|c| c.interp = InterpMode::CeilFull);
    print_artifact(
        "Ablation: fat-tree interpolation rule (400G @ 85% cell; paper: 8.8%)",
        &format!(
            "fractional stages (paper): {frac:.2}%\n\
             ceil + proportional:       {prop:.2}%\n\
             ceil + full tree:          {full:.2}%"
        ),
    );
    c.bench_function("ablation_interp/three_rules", |b| {
        b.iter(|| {
            black_box(headline_savings(|c| {
                c.interp = InterpMode::FractionalStages
            }));
            black_box(headline_savings(|c| {
                c.interp = InterpMode::CeilProportional
            }));
            black_box(headline_savings(|c| c.interp = InterpMode::CeilFull));
        })
    });
}

fn ablation_xcvr(c: &mut Criterion) {
    let two = headline_savings(|c| c.transceivers_per_link = 2.0);
    let one = headline_savings(|c| c.transceivers_per_link = 1.0);
    print_artifact(
        "Ablation: transceivers per inter-switch link (400G @ 85% cell)",
        &format!(
            "2 per link (paper, validated): {two:.2}%\n\
             1 per link:                    {one:.2}%"
        ),
    );
    c.bench_function("ablation_xcvr/two_counts", |b| {
        b.iter(|| {
            black_box(headline_savings(|c| c.transceivers_per_link = 2.0));
            black_box(headline_savings(|c| c.transceivers_per_link = 1.0));
        })
    });
}

fn ablation_powermodel(c: &mut Criterion) {
    // The paper's two-state model vs an idealized linear model, for a
    // switch serving the ML duty cycle (10% at full load, 90% idle).
    let max = Watts::new(750.0);
    let duty = 0.10;
    let mut body = String::new();
    for pct in [10.0, 50.0, 85.0] {
        let p = Proportionality::from_percent(pct).unwrap();
        let two_state = {
            let m = TwoStatePower::new(max, p);
            m.power_at(Ratio::ONE) * duty + m.idle_power() * (1.0 - duty)
        };
        // Linear model at the *average load*: what a perfectly
        // rate-adaptive device would draw.
        let linear = LinearPower::new(max, p).power_at(Ratio::new(duty));
        body.push_str(&format!(
            "prop {pct:>3}%: two-state avg {:.1} W | linear-at-mean-load {:.1} W\n",
            two_state.value(),
            linear.value()
        ));
    }
    body.push_str(
        "(identical by construction: with binary phases, time-averaging the\n\
                   two-state model equals evaluating the linear model at the mean load —\n\
                   the paper's binary-phase assumption costs nothing for energy totals)",
    );
    print_artifact("Ablation: two-state vs linear power model", &body);

    c.bench_function("ablation_powermodel/evaluate", |b| {
        let p = Proportionality::COMPUTE;
        let two = TwoStatePower::new(max, p);
        let lin = LinearPower::new(max, p);
        b.iter(|| {
            for load in [0.0, 0.1, 0.5, 1.0] {
                black_box(two.power_at(Ratio::new(black_box(load))));
                black_box(lin.power_at(Ratio::new(black_box(load))));
            }
        })
    });
}

criterion_group!(benches, ablation_interp, ablation_xcvr, ablation_powermodel);
criterion_main!(benches);
