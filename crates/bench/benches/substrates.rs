//! Micro-benchmarks of the substrate layers: topology math, graph
//! construction and routing, the event scheduler, and the simulated
//! switch data path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use npp_simnet::switchsim::{PipelineSwitch, SwitchParams};
use npp_simnet::{Scheduler, SimTime};
use npp_topology::bisection::bisection_bandwidth;
use npp_topology::builder::three_tier_fat_tree;
use npp_topology::FatTreeModel;
use npp_units::Gbps;

fn topology_math(c: &mut Criterion) {
    let m = FatTreeModel::new(128).unwrap();
    c.bench_function("substrate/fattree_sizing", |b| {
        b.iter(|| {
            for hosts in [1_000.0, 15_360.0, 100_000.0, 500_000.0] {
                black_box(m.size_for_hosts(black_box(hosts)).unwrap());
            }
        })
    });
}

fn graph_building(c: &mut Criterion) {
    c.bench_function("substrate/build_k8_fat_tree", |b| {
        b.iter(|| black_box(three_tier_fat_tree(8, Gbps::new(400.0)).unwrap()))
    });

    let topo = three_tier_fat_tree(8, Gbps::new(400.0)).unwrap();
    let hosts = topo.hosts();
    c.bench_function("substrate/ecmp_cross_pod", |b| {
        b.iter(|| black_box(topo.ecmp_paths(hosts[0], hosts[127], 64)))
    });

    let mut g = c.benchmark_group("substrate/maxflow");
    g.sample_size(20);
    g.bench_function("bisection_k8", |b| {
        b.iter(|| black_box(bisection_bandwidth(&topo)))
    });
    g.finish();
}

fn event_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate/scheduler");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("schedule_pop_10k", |b| {
        b.iter(|| {
            let mut s: Scheduler<u64> = Scheduler::new();
            for i in 0..10_000u64 {
                // Pseudo-random but deterministic insertion order.
                let t = (i.wrapping_mul(2_654_435_761)) % 1_000_000;
                s.schedule(SimTime::from_nanos(t), i).unwrap();
            }
            while let Some(e) = s.pop() {
                black_box(e);
            }
        })
    });
    g.finish();
}

fn switch_datapath(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate/switch_ingress");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("forward_10k_packets", |b| {
        b.iter(|| {
            let mut sw = PipelineSwitch::new(SwitchParams::paper_51t2(), SimTime::ZERO).unwrap();
            for i in 0..10_000u64 {
                black_box(
                    sw.ingress(SimTime::from_nanos(i * 100), (i % 64) as usize, 1500)
                        .unwrap(),
                );
            }
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    topology_math,
    graph_building,
    event_scheduler,
    switch_datapath
);
criterion_main!(benches);
