//! Benches regenerating the paper's figures.
//!
//! - `fig1_workload`: the Figure 1 scaling rules;
//! - `fig2_phase_breakdown`: the Figure 2a/2b phase decomposition;
//! - `fig3_fixed_workload`: the Figure 3 fixed-budget speedup sweep;
//! - `fig4_fixed_ratio`: the Figure 4 fixed-ratio speedup sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use npp_bench::{print_artifact, render_speedup_curves};
use npp_core::cluster::{ClusterConfig, ClusterModel};
use npp_core::phases::phase_breakdown;
use npp_core::speedup::{figure3, figure4, paper_bandwidths, proportionality_sweep};
use npp_units::Gbps;
use npp_workload::{IterationModel, ScalingScenario};

fn fig1_workload(c: &mut Criterion) {
    let m = IterationModel::paper_baseline();
    let base = m
        .iteration(15_360.0, Gbps::new(400.0), ScalingScenario::FixedWorkload)
        .unwrap();
    let gpus2x = m
        .iteration(30_720.0, Gbps::new(400.0), ScalingScenario::FixedWorkload)
        .unwrap();
    let bw_half = m
        .iteration(15_360.0, Gbps::new(200.0), ScalingScenario::FixedWorkload)
        .unwrap();
    print_artifact(
        "Figure 1: workload scaling",
        &format!(
            "baseline: {:.2}+{:.2}s  2xGPUs: {:.2}+{:.2}s  0.5xBW: {:.2}+{:.2}s",
            base.compute.value(),
            base.comm.value(),
            gpus2x.compute.value(),
            gpus2x.comm.value(),
            bw_half.compute.value(),
            bw_half.comm.value(),
        ),
    );
    c.bench_function("fig1_workload/iteration_scaling", |b| {
        b.iter(|| {
            for gpus in [7_680.0, 15_360.0, 30_720.0] {
                for bw in [100.0, 400.0, 1600.0] {
                    black_box(
                        m.iteration(
                            black_box(gpus),
                            Gbps::new(black_box(bw)),
                            ScalingScenario::FixedWorkload,
                        )
                        .unwrap(),
                    );
                }
            }
        })
    });
}

fn fig2_phase_breakdown(c: &mut Criterion) {
    let model = ClusterModel::new(ClusterConfig::paper_baseline()).unwrap();
    let b = phase_breakdown(&model, ScalingScenario::FixedWorkload).unwrap();
    print_artifact(
        "Figure 2: phase breakdown (paper: network 12% of average, 11% efficiency)",
        &format!(
            "computation {:.3} MW | communication {:.3} MW | average {:.3} MW\n\
             network share of average: {} | network efficiency: {}",
            b.computation.total().as_mw(),
            b.communication.total().as_mw(),
            b.average.total().as_mw(),
            b.average.network_share(),
            b.network_efficiency,
        ),
    );
    c.bench_function("fig2_phase_breakdown/build_and_decompose", |b| {
        b.iter(|| {
            let model = ClusterModel::new(black_box(ClusterConfig::paper_baseline())).unwrap();
            black_box(phase_breakdown(&model, ScalingScenario::FixedWorkload).unwrap())
        })
    });
}

fn fig3_fixed_workload(c: &mut Criterion) {
    let curves = figure3(&paper_bandwidths(), &proportionality_sweep(4)).unwrap();
    print_artifact(
        "Figure 3: fixed-workload speedups (paper: 1600G ~ -30% at low prop.)",
        &render_speedup_curves(&curves),
    );
    let mut g = c.benchmark_group("fig3_fixed_workload");
    g.sample_size(10);
    g.bench_function("sweep_5bw_x_5prop", |b| {
        b.iter(|| black_box(figure3(&paper_bandwidths(), &proportionality_sweep(4)).unwrap()))
    });
    g.finish();
}

fn fig4_fixed_ratio(c: &mut Criterion) {
    let curves = figure4(&paper_bandwidths(), &proportionality_sweep(4)).unwrap();
    print_artifact(
        "Figure 4: fixed-ratio speedups (paper: 800G@50% ~ 10%)",
        &render_speedup_curves(&curves),
    );
    let mut g = c.benchmark_group("fig4_fixed_ratio");
    g.sample_size(10);
    g.bench_function("sweep_5bw_x_5prop", |b| {
        b.iter(|| black_box(figure4(&paper_bandwidths(), &proportionality_sweep(4)).unwrap()))
    });
    g.finish();
}

criterion_group!(
    benches,
    fig1_workload,
    fig2_phase_breakdown,
    fig3_fixed_workload,
    fig4_fixed_ratio
);
criterion_main!(benches);
