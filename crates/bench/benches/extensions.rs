//! Benches for the extension analyses beyond the paper's core artifacts:
//! §3.4 overlap sensitivity, the fabric-scale underutilization study,
//! the ISP diurnal study, the §4.5 redesign sweeps, and the
//! first-principles LLM communication-ratio derivation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use npp_bench::print_artifact;
use npp_core::cluster::ClusterConfig;
use npp_core::overlap::overlap_savings_sweep;
use npp_mechanisms::fabric::{run_fabric_study, FabricStudyConfig};
use npp_mechanisms::isp_study::{run_isp_study, IspStudyConfig};
use npp_mechanisms::redesign::{granularity_sweep, CpoSwitch};
use npp_power::Proportionality;
use npp_units::Ratio;
use npp_workload::models::TrainingSetup;

fn overlap_sensitivity(c: &mut Criterion) {
    let overlaps: Vec<Ratio> = (0..=4).map(|i| Ratio::new(i as f64 / 4.0)).collect();
    let sweep = overlap_savings_sweep(
        &ClusterConfig::paper_baseline(),
        Proportionality::COMPUTE,
        &overlaps,
    )
    .unwrap();
    let body: String = sweep
        .iter()
        .map(|p| format!("overlap {} -> savings {}\n", p.overlap, p.savings))
        .collect();
    print_artifact(
        "par. 3.4 overlap sensitivity (savings at 85% target)",
        &body,
    );
    c.bench_function("extension/overlap_sweep", |b| {
        b.iter(|| {
            black_box(
                overlap_savings_sweep(
                    &ClusterConfig::paper_baseline(),
                    Proportionality::COMPUTE,
                    &overlaps,
                )
                .unwrap(),
            )
        })
    });
}

fn fabric_study(c: &mut Criterion) {
    let r = run_fabric_study(&FabricStudyConfig::default()).unwrap();
    print_artifact(
        "par. 3.4 fabric-scale underutilization",
        &format!(
            "switches touched {}/{} | park savings {} | composite savings {}",
            r.switches_touched, r.switches_total, r.savings_parked, r.savings_composite
        ),
    );
    let mut g = c.benchmark_group("extension/fabric_study");
    g.sample_size(20);
    g.bench_function("k8_ring64", |b| {
        b.iter(|| black_box(run_fabric_study(&FabricStudyConfig::default()).unwrap()))
    });
    g.finish();
}

fn isp_study(c: &mut Criterion) {
    let r = run_isp_study(&IspStudyConfig::default()).unwrap();
    print_artifact(
        "par. 3.4 ISP diurnal study (Abilene, 24h)",
        &format!(
            "linear savings {} | +down-rating {} | underutilized at peak {}",
            r.savings_linear, r.savings_linear_downrated, r.underutilized_at_peak
        ),
    );
    let mut g = c.benchmark_group("extension/isp_study");
    g.sample_size(20);
    g.bench_function("abilene_24h", |b| {
        b.iter(|| black_box(run_isp_study(&IspStudyConfig::default()).unwrap()))
    });
    g.finish();
}

fn redesign_sweeps(c: &mut Criterion) {
    let sweep = granularity_sweep(0.10).unwrap();
    let best = sweep
        .iter()
        .max_by(|a, b| {
            a.savings_vs_baseline
                .partial_cmp(&b.savings_vs_baseline)
                .unwrap()
        })
        .unwrap();
    print_artifact(
        "par. 4.5 redesign",
        &format!(
            "best granularity: {} units ({} savings) | CPO full-load savings {}",
            best.units,
            best.savings_vs_baseline,
            CpoSwitch::paper_cpo().full_load_savings()
        ),
    );
    c.bench_function("extension/granularity_sweep", |b| {
        b.iter(|| black_box(granularity_sweep(black_box(0.10)).unwrap()))
    });
}

fn llm_derivation(c: &mut Criterion) {
    let setup = TrainingSetup::paper_pod_70b();
    print_artifact(
        "first-principles communication ratio",
        &format!("70B pod: {}", setup.comm_ratio().unwrap()),
    );
    c.bench_function("extension/llm_comm_ratio", |b| {
        b.iter(|| black_box(TrainingSetup::paper_pod_70b().comm_ratio().unwrap()))
    });
}

criterion_group!(
    benches,
    overlap_sensitivity,
    fabric_study,
    isp_study,
    redesign_sweeps,
    llm_derivation
);
criterion_main!(benches);
