//! Head-to-head benchmark of the fluid-simulator engines on the shared
//! hot-path scenario: the indexed, allocation-free [`NetSim`] versus the
//! preserved pre-optimization [`NaiveNetSim`].
//!
//! Both engines consume the *same* deterministic scenario (see
//! `npp_simnet::scenarios::hotpath_scenario`), and the differential
//! suite in `tests/simnet_equivalence.rs` proves they compute identical
//! fluid systems — so the throughput ratio printed here is a pure
//! engine-speed comparison, not a workload difference. The committed
//! `BENCH_simnet.json` trajectory is produced from this same scenario by
//! `netpp bench-json`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use npp_simnet::netsim::NetSim;
use npp_simnet::netsim_naive::NaiveNetSim;
use npp_simnet::scenarios::{hotpath_scenario, Scenario};

const HOTPATH_FLOWS: usize = 1000;

fn run_indexed(scenario: &Scenario) -> u64 {
    let mut sim = NetSim::new(scenario.topo.clone());
    scenario
        .inject_into(|at, s, d, b, p| sim.inject(at, s, d, b, p).map(|_| ()))
        .expect("injection");
    sim.run().expect("run");
    sim.events_processed()
}

fn run_naive(scenario: &Scenario) -> u64 {
    let mut sim = NaiveNetSim::new(scenario.topo.clone());
    scenario
        .inject_into(|at, s, d, b, p| sim.inject(at, s, d, b, p).map(|_| ()))
        .expect("injection");
    sim.run().expect("run");
    sim.events_processed()
}

fn hotpath_1k_flows(c: &mut Criterion) {
    let scenario = hotpath_scenario(HOTPATH_FLOWS).expect("scenario");
    // Both engines walk one release + one completion per flow.
    let events = 2 * HOTPATH_FLOWS as u64;

    let mut g = c.benchmark_group("simnet_hotpath/1k_flows");
    g.throughput(Throughput::Elements(events));
    g.bench_function("indexed", |b| b.iter(|| black_box(run_indexed(&scenario))));
    g.finish();

    // The naive engine is orders of magnitude slower on this scenario;
    // a couple of timed runs is plenty to anchor the speedup ratio.
    let mut g = c.benchmark_group("simnet_hotpath/1k_flows");
    g.throughput(Throughput::Elements(events));
    g.sample_size(2);
    g.bench_function("naive_baseline", |b| {
        b.iter(|| black_box(run_naive(&scenario)))
    });
    g.finish();
}

fn hotpath_scaling(c: &mut Criterion) {
    // Indexed engine only: how throughput holds as the flow count (and
    // with it the live-flow population) grows.
    let mut g = c.benchmark_group("simnet_hotpath/indexed_scaling");
    for n in [250usize, 1000, 4000] {
        let scenario = hotpath_scenario(n).expect("scenario");
        g.throughput(Throughput::Elements(2 * n as u64));
        g.bench_function(&format!("{n}_flows"), |b| {
            b.iter(|| black_box(run_indexed(&scenario)))
        });
    }
    g.finish();
}

criterion_group!(benches, hotpath_1k_flows, hotpath_scaling);
criterion_main!(benches);
