//! Benches regenerating the paper's tables.
//!
//! - `table_device_db`: Tables 1–2 (device database + extrapolation);
//! - `table3_savings`: the full 5×5 savings sweep of Table 3.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use npp_bench::{print_artifact, render_savings_table};
use npp_core::savings::paper_table3;
use npp_power::devices::{DeviceDb, SpeedPowerTable};
use npp_units::Gbps;

fn table_device_db(c: &mut Criterion) {
    let db = DeviceDb::paper_baseline();
    let mut body = String::from("NIC (W): ");
    for e in db.nic_table().entries() {
        body.push_str(&format!("{}G={} ", e.speed.value(), e.power.value()));
    }
    body.push_str("\nTransceiver (W): ");
    for e in db.transceiver_table().entries() {
        body.push_str(&format!("{}G={} ", e.speed.value(), e.power.value()));
    }
    print_artifact("Tables 1-2: device power database", &body);

    c.bench_function("table_device_db/lookup_all_speeds", |b| {
        let nic = SpeedPowerTable::nic_connectx7();
        b.iter(|| {
            for bw in [100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0] {
                black_box(nic.power_extrapolated(Gbps::new(black_box(bw))).unwrap());
            }
        })
    });
}

fn table3_savings(c: &mut Criterion) {
    let table = paper_table3().expect("table 3 builds");
    print_artifact(
        "Table 3: savings vs 10% proportionality (paper: 400G row = 0.0/1.2/4.7/8.8/10.6%)",
        &render_savings_table(&table),
    );

    c.bench_function("table3_savings/full_5x5_sweep", |b| {
        b.iter(|| black_box(paper_table3().unwrap()))
    });
}

criterion_group!(benches, table_device_db, table3_savings);
criterion_main!(benches);
