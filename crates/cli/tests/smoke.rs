//! Smoke tests: every `netpp` subcommand must run to completion, both
//! through the library functions and through the actual binary.

use std::process::Command;

/// Every library-level command succeeds in text mode.
#[test]
fn all_paper_commands_succeed() {
    npp_cli::paper::device_tables(false).unwrap();
    npp_cli::paper::fig1().unwrap();
    npp_cli::paper::fig2(false).unwrap();
    npp_cli::paper::table3(false).unwrap();
    npp_cli::paper::cost(false).unwrap();
    npp_cli::paper::overlap(false).unwrap();
    npp_cli::paper::llm(false).unwrap();
    npp_cli::paper::sensitivity(false).unwrap();
    npp_cli::paper::scale(false).unwrap();
    // Figures with a coarse sweep to keep the test quick.
    npp_cli::paper::fig3(false, 2).unwrap();
    npp_cli::paper::fig4(false, 2).unwrap();
}

#[test]
fn all_mechanism_commands_succeed() {
    npp_cli::mech::eee(false).unwrap();
    npp_cli::mech::knobs(false).unwrap();
    npp_cli::mech::ocs(false).unwrap();
    npp_cli::mech::rate(false).unwrap();
    npp_cli::mech::park(false).unwrap();
    npp_cli::mech::redesign(false).unwrap();
    npp_cli::mech::governor(false).unwrap();
    npp_cli::mech::timeline(false).unwrap();
    npp_cli::mech::frontier(false).unwrap();
    npp_cli::mech::compare(false).unwrap();
    npp_cli::mech::fabric(false).unwrap();
    npp_cli::mech::isp(false).unwrap();
}

#[test]
fn json_mode_emits_valid_json() {
    // The JSON paths write to stdout; here we only verify they succeed —
    // the binary-level test below checks the output is parseable.
    npp_cli::paper::table3(true).unwrap();
    npp_cli::mech::knobs(true).unwrap();
    npp_cli::mech::redesign(true).unwrap();
}

/// Binary-level checks via the compiled `netpp` executable.
fn netpp(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_netpp"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn binary_help_lists_all_commands() {
    let out = netpp(&["help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for cmd in [
        "table3",
        "fig2",
        "fig3",
        "fig4",
        "cost",
        "overlap",
        "llm",
        "sensitivity",
        "scale",
        "fabric",
        "isp",
        "mech",
        "bench-json",
        "sweep",
        "serve",
        "serve-bench",
        "profile",
        "--trace",
        "--quiet",
        "--metrics",
        "--dry-run",
        "--max-inflight",
    ] {
        assert!(text.contains(cmd), "help is missing {cmd}");
    }
}

#[test]
fn binary_table3_matches_paper_row() {
    let out = netpp(&["table3"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    // The 400G row of Table 3, as printed.
    assert!(text.contains("400G"), "{text}");
    assert!(text.contains("4.7%"), "{text}");
    assert!(text.contains("8.8%"), "{text}");
    assert!(text.contains("10.6%"), "{text}");
}

#[test]
fn binary_json_output_parses() {
    let out = netpp(&["table3", "--json"]);
    assert!(out.status.success());
    let v: serde_json::Value =
        serde_json::from_slice(&out.stdout).expect("table3 --json is valid JSON");
    assert!(v["cells"].is_array());
    assert_eq!(v["cells"].as_array().unwrap().len(), 5);
}

#[test]
fn binary_rejects_unknown_commands() {
    let out = netpp(&["definitely-not-a-command"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"));
    let out = netpp(&["mech", "bogus"]);
    assert!(!out.status.success());
}

/// `netpp sweep`: the `--json` document is byte-identical across
/// `--jobs` values, and a warm cache answers every scenario.
#[test]
fn binary_sweep_is_deterministic_and_cached() {
    let scratch = std::env::temp_dir().join(format!("netpp-sweep-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).unwrap();

    let spec = npp_sweep::SweepSpec {
        name: "smoke".into(),
        base: npp_sweep::ScenarioSpec::paper_baseline(),
        axes: vec![
            npp_sweep::Axis::BandwidthGbps(vec![100.0, 400.0]),
            npp_sweep::Axis::NetworkProportionality(vec![0.1, 0.9]),
        ],
    };
    let spec_path = scratch.join("spec.json");
    std::fs::write(&spec_path, serde_json::to_string_pretty(&spec).unwrap()).unwrap();
    let spec_arg = spec_path.to_str().unwrap();
    let cache_arg = scratch.join("cache");
    let cache_arg = cache_arg.to_str().unwrap();

    let serial = netpp(&["sweep", spec_arg, "--json", "--jobs", "1"]);
    assert!(
        serial.status.success(),
        "{}",
        String::from_utf8_lossy(&serial.stderr)
    );
    let parallel = netpp(&["sweep", spec_arg, "--json", "--jobs", "4"]);
    assert!(parallel.status.success());
    assert_eq!(
        serial.stdout, parallel.stdout,
        "--jobs changed the JSON document"
    );

    let cold = netpp(&["sweep", spec_arg, "--json", "--cache", cache_arg]);
    assert!(cold.status.success());
    let warm = netpp(&["sweep", spec_arg, "--json", "--cache", cache_arg]);
    assert!(warm.status.success());
    assert_eq!(
        cold.stdout, serial.stdout,
        "caching changed the JSON document"
    );
    assert_eq!(
        warm.stdout, serial.stdout,
        "a cache hit changed the JSON document"
    );
    let summary = String::from_utf8_lossy(&warm.stderr);
    assert!(summary.contains("4 cache hits / 0 misses"), "{summary}");

    let v: serde_json::Value = serde_json::from_slice(&serial.stdout).unwrap();
    assert_eq!(v["total"].as_u64(), Some(4));
    assert!(v["scenarios"].is_array());

    // Text mode renders the aggregation tables.
    let text = netpp(&["sweep", spec_arg]);
    assert!(text.status.success());
    let rendered = String::from_utf8_lossy(&text.stdout);
    assert!(rendered.contains("Best scenario per axis value"));
    assert!(rendered.contains("Pareto frontier"));

    std::fs::remove_dir_all(&scratch).unwrap();
}

/// A tiny simulation sweep spec (2 scenarios, 1 ms horizon) for the
/// telemetry smoke tests.
fn sim_spec() -> npp_sweep::SweepSpec {
    let mut base = npp_sweep::ScenarioSpec::paper_baseline();
    base.experiment = npp_sweep::ExperimentKind::Simulation(npp_sweep::SimulationSpec {
        horizon_ms: 1,
        ..npp_sweep::SimulationSpec::comparison_defaults(
            npp_mechanisms::mechanism::Mechanism::AllOn,
        )
    });
    npp_sweep::SweepSpec {
        name: "telemetry-smoke".into(),
        base,
        axes: vec![npp_sweep::Axis::Mechanism(vec![
            npp_mechanisms::mechanism::Mechanism::RateAdaptPerPipeline,
            npp_mechanisms::mechanism::Mechanism::ParkReactive,
        ])],
    }
}

/// `netpp sweep --trace` writes a jobs-invariant canonical trace and
/// `--quiet` silences all progress output.
#[test]
fn binary_sweep_trace_is_jobs_invariant_and_quiet_silences_stderr() {
    let scratch = std::env::temp_dir().join(format!("netpp-trace-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).unwrap();
    let spec_path = scratch.join("spec.json");
    std::fs::write(&spec_path, serde_json::to_string(&sim_spec()).unwrap()).unwrap();
    let spec_arg = spec_path.to_str().unwrap();
    let t1 = scratch.join("t1.jsonl");
    let t4 = scratch.join("t4.jsonl");

    let serial = netpp(&[
        "sweep",
        spec_arg,
        "--json",
        "--jobs",
        "1",
        "--quiet",
        "--trace",
        t1.to_str().unwrap(),
    ]);
    assert!(
        serial.status.success(),
        "{}",
        String::from_utf8_lossy(&serial.stderr)
    );
    assert!(
        serial.stderr.is_empty(),
        "--quiet must silence stderr, got {:?}",
        String::from_utf8_lossy(&serial.stderr)
    );
    let parallel = netpp(&[
        "sweep",
        spec_arg,
        "--json",
        "--jobs",
        "4",
        "--quiet",
        "--trace",
        t4.to_str().unwrap(),
    ]);
    assert!(parallel.status.success());
    assert_eq!(
        serial.stdout, parallel.stdout,
        "--jobs changed the JSON document"
    );

    let trace1 = std::fs::read_to_string(&t1).unwrap();
    let trace4 = std::fs::read_to_string(&t4).unwrap();
    assert_eq!(trace1, trace4, "--jobs changed the canonical trace");
    assert!(
        trace1.starts_with("{\"schema\":\"npp.trace/v1\","),
        "trace leads with the schema header"
    );
    for line in trace1.lines() {
        let _: serde_json::Value = serde_json::from_str(line).expect("every trace line is JSON");
    }

    // `--metrics` puts the registry snapshot on stderr (without --quiet).
    let with_metrics = netpp(&["sweep", spec_arg, "--json", "--metrics"]);
    assert!(with_metrics.status.success());
    let err = String::from_utf8_lossy(&with_metrics.stderr);
    assert!(err.contains("sweep.scenarios = 2"), "{err}");

    std::fs::remove_dir_all(&scratch).unwrap();
}

/// `netpp profile` writes both trace artifacts and prints the report.
#[test]
fn binary_profile_emits_report_and_artifacts() {
    let scratch = std::env::temp_dir().join(format!("netpp-profile-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).unwrap();
    let spec_path = scratch.join("spec.json");
    std::fs::write(&spec_path, serde_json::to_string(&sim_spec()).unwrap()).unwrap();
    let out_dir = scratch.join("prof");

    let out = netpp(&[
        "profile",
        spec_path.to_str().unwrap(),
        "--out",
        out_dir.to_str().unwrap(),
        "--jobs",
        "2",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report = String::from_utf8_lossy(&out.stdout);
    assert!(report.contains("Top trace records:"), "{report}");
    assert!(report.contains("Energy attribution"), "{report}");
    assert!(report.contains("switch.energy_j"), "{report}");

    let jsonl = std::fs::read_to_string(out_dir.join("trace.jsonl")).unwrap();
    assert!(jsonl.starts_with("{\"schema\":\"npp.trace/v1\","));
    let chrome = std::fs::read_to_string(out_dir.join("trace.chrome.json")).unwrap();
    let v: serde_json::Value =
        serde_json::from_str(&chrome).expect("chrome trace is one valid JSON document");
    assert!(v["traceEvents"].is_array());

    // `--json` mode emits a machine-readable report instead.
    let json_out = netpp(&[
        "profile",
        spec_path.to_str().unwrap(),
        "--out",
        out_dir.to_str().unwrap(),
        "--json",
    ]);
    assert!(json_out.status.success());
    let v: serde_json::Value = serde_json::from_slice(&json_out.stdout).unwrap();
    assert_eq!(v["schema"].as_str(), Some("npp.profile/v1"));
    assert_eq!(v["scenarios"].as_u64(), Some(2));
    assert!(v["energy"].as_array().unwrap().len() >= 5);

    // Bad invocations fail cleanly.
    assert!(!netpp(&["profile"]).status.success());
    assert!(!netpp(&["profile", "missing.json"]).status.success());

    std::fs::remove_dir_all(&scratch).unwrap();
}

/// `netpp sweep --dry-run` sizes the grid without simulating.
#[test]
fn binary_sweep_dry_run_sizes_grid_without_running() {
    let scratch = std::env::temp_dir().join(format!("netpp-dryrun-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).unwrap();
    let spec = npp_sweep::SweepSpec {
        name: "dry".into(),
        base: npp_sweep::ScenarioSpec::paper_baseline(),
        axes: vec![
            npp_sweep::Axis::BandwidthGbps(vec![100.0, 400.0]),
            npp_sweep::Axis::NetworkProportionality(vec![0.1, 0.5, 0.9]),
        ],
    };
    let spec_path = scratch.join("spec.json");
    std::fs::write(&spec_path, serde_json::to_string(&spec).unwrap()).unwrap();

    let out = netpp(&["sweep", spec_path.to_str().unwrap(), "--dry-run"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("6 scenario(s)"), "{text}");
    assert!(text.contains("bandwidth_gbps"), "{text}");
    assert!(text.contains("nothing was simulated"), "{text}");

    let out = netpp(&["sweep", spec_path.to_str().unwrap(), "--dry-run", "--json"]);
    assert!(out.status.success());
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    assert_eq!(v["dry_run"].as_bool(), Some(true));
    assert_eq!(v["scenarios"].as_u64(), Some(6));
    assert_eq!(v["axes"].as_array().unwrap().len(), 2);

    // A dry run against a bad spec still fails cleanly.
    let bad = scratch.join("bad.json");
    std::fs::write(&bad, "{\"name\": 1}").unwrap();
    assert!(!netpp(&["sweep", bad.to_str().unwrap(), "--dry-run"])
        .status
        .success());
    std::fs::remove_dir_all(&scratch).unwrap();
}

/// `netpp serve`: the daemon boots, serves a sweep byte-identical to
/// `netpp sweep --json`, and drains within the deadline on
/// `POST /admin/shutdown`.
#[test]
fn binary_serve_round_trips_a_sweep_and_drains() {
    use std::io::BufRead;

    let scratch = std::env::temp_dir().join(format!("netpp-serve-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).unwrap();
    let spec = npp_sweep::SweepSpec {
        name: "serve-smoke".into(),
        base: npp_sweep::ScenarioSpec::paper_baseline(),
        axes: vec![npp_sweep::Axis::BandwidthGbps(vec![100.0, 400.0])],
    };
    let spec_path = scratch.join("spec.json");
    let spec_body = serde_json::to_string(&spec).unwrap();
    std::fs::write(&spec_path, &spec_body).unwrap();

    let reference = netpp(&[
        "sweep",
        spec_path.to_str().unwrap(),
        "--json",
        "--jobs",
        "1",
    ]);
    assert!(reference.status.success());

    let mut child = Command::new(env!("CARGO_BIN_EXE_netpp"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--cache",
            scratch.join("cache").to_str().unwrap(),
            "--jobs",
            "2",
        ])
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("serve binary starts");

    // The first progress line announces the bound address.
    let stderr = child.stderr.take().expect("piped stderr");
    let mut lines = std::io::BufReader::new(stderr).lines();
    let banner = lines
        .next()
        .expect("serve prints a listening banner")
        .expect("banner is readable");
    let addr: std::net::SocketAddr = banner
        .rsplit("listening on ")
        .next()
        .expect("banner names the address")
        .trim()
        .parse()
        .expect("banner address parses");

    let mut client = npp_serve::Client::new(addr);
    let reply = client.post("/sweep", spec_body.as_bytes()).unwrap();
    assert_eq!(reply.status, 200);
    assert_eq!(
        reply.body, reference.stdout,
        "served sweep diverged from `netpp sweep --json`"
    );

    let shutdown = client.post("/admin/shutdown", b"").unwrap();
    assert_eq!(shutdown.status, 200);
    // Drain must finish within the deadline.
    let mut exited = false;
    for _ in 0..100 {
        if child.try_wait().unwrap().is_some() {
            exited = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    assert!(exited, "serve did not drain within 10s");
    std::fs::remove_dir_all(&scratch).unwrap();
}

/// `netpp serve-bench --quick` emits the BENCH_serve.json document with
/// its correctness bits set.
#[test]
fn binary_serve_bench_quick_asserts_byte_identity() {
    let out = netpp(&["serve-bench", "--quick"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let v: serde_json::Value =
        serde_json::from_slice(&out.stdout).expect("serve-bench emits valid JSON");
    assert_eq!(v["schema"].as_str(), Some("npp.bench.serve/v1"));
    assert_eq!(v["quick"].as_bool(), Some(true));
    assert_eq!(v["cold"]["byte_identical"].as_bool(), Some(true));
    assert_eq!(v["warm"]["byte_identical"].as_bool(), Some(true));
    assert_eq!(v["warm"]["all_cache_hits"].as_bool(), Some(true));
    assert!(v["warm"]["qps"].as_f64().unwrap() > 0.0);
    assert!(v["warm"]["p99_ns"].as_u64().unwrap() > 0);

    // Bad flags fail cleanly.
    assert!(!netpp(&["serve-bench", "--jobs", "none"]).status.success());
    assert!(!netpp(&["serve", "--frobnicate"]).status.success());
}

#[test]
fn binary_sweep_rejects_bad_specs() {
    let scratch =
        std::env::temp_dir().join(format!("netpp-sweep-smoke-bad-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).unwrap();
    let bad = scratch.join("bad.json");
    std::fs::write(&bad, "{\"name\": \"x\", \"oops\": true}").unwrap();

    let out = netpp(&["sweep", bad.to_str().unwrap()]);
    assert!(!out.status.success());
    let out = netpp(&["sweep", scratch.join("missing.json").to_str().unwrap()]);
    assert!(!out.status.success());
    let out = netpp(&["sweep"]);
    assert!(!out.status.success());

    std::fs::remove_dir_all(&scratch).unwrap();
}

/// `netpp bench-json --quick` is the CI perf smoke: it must succeed and
/// every number in the document must be finite.
#[test]
fn binary_bench_json_quick_emits_finite_numbers() {
    let out = netpp(&["bench-json", "--quick", "--flows", "64"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let v: serde_json::Value =
        serde_json::from_slice(&out.stdout).expect("bench-json emits valid JSON");
    assert_eq!(v["schema"].as_str(), Some("npp.bench.simnet/v3"));
    assert_eq!(v["quick"].as_bool(), Some(true));
    let engines = v["engines"].as_array().unwrap();
    assert_eq!(engines.len(), 1, "quick mode is indexed-engine only");
    for key in ["events_per_sec", "ns_per_event", "best_secs"] {
        let x = engines[0][key].as_f64().unwrap();
        // serde_json rejects NaN/inf at parse time, but keep the check
        // explicit: this test is the contract the CI step relies on.
        assert!(x.is_finite() && x > 0.0, "{key} = {x}");
    }
    assert!(engines[0]["peak_live_flows"].as_u64().unwrap() >= 1);

    // --out writes the same document to a file.
    let scratch = std::env::temp_dir().join(format!("netpp-bench-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).unwrap();
    let path = scratch.join("BENCH_simnet.json");
    let out = netpp(&[
        "bench-json",
        "--quick",
        "--flows",
        "64",
        "--out",
        path.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let written: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(written["schema"], v["schema"]);
    std::fs::remove_dir_all(&scratch).unwrap();

    // Bad flags fail cleanly.
    let out = netpp(&["bench-json", "--flows", "none"]);
    assert!(!out.status.success());
}

/// `netpp lint`: the committed tree passes the gate, the JSON report
/// is parseable and byte-stable, and a seeded violation fails naming
/// the rules that fired.
#[test]
fn binary_lint_gate() {
    let out = netpp(&["lint"]);
    assert!(
        out.status.success(),
        "workspace must lint clean: {}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );

    // The bare run above warmed the incremental cache, so both JSON
    // runs below replay it fully and must be byte-identical.
    let first = netpp(&["lint", "--json"]);
    assert!(first.status.success());
    let second = netpp(&["lint", "--json"]);
    assert!(second.status.success());
    assert_eq!(
        first.stdout, second.stdout,
        "lint --json must be byte-stable across runs"
    );
    let v: serde_json::Value =
        serde_json::from_slice(&first.stdout).expect("lint --json is valid JSON");
    assert_eq!(v["schema"].as_str(), Some("npp.lint.report/v2"));
    assert_eq!(v["total"].as_u64(), Some(0));
    assert!(v["findings"].as_array().unwrap().is_empty());
    assert_eq!(
        v["cache_hits"], v["files_scanned"],
        "a warm-cache lint must re-lex nothing"
    );

    // SARIF output is valid JSON, byte-stable, and carries the run.
    let sarif_a = netpp(&["lint", "--sarif"]);
    assert!(sarif_a.status.success());
    let sarif_b = netpp(&["lint", "--sarif"]);
    assert_eq!(
        sarif_a.stdout, sarif_b.stdout,
        "lint --sarif must be byte-stable across runs"
    );
    let log: serde_json::Value =
        serde_json::from_slice(&sarif_a.stdout).expect("lint --sarif is valid JSON");
    assert_eq!(log["version"].as_str(), Some("2.1.0"));
    assert_eq!(log["runs"].as_array().map(Vec::len), Some(1));
    assert_eq!(
        log["runs"][0]["tool"]["driver"]["name"].as_str(),
        Some("npp-lint")
    );

    // A seeded violation: explicit-path mode is strict (no baseline),
    // so both the wall-clock read and the bare index must fail the run.
    let scratch = std::env::temp_dir().join(format!("netpp-lint-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).unwrap();
    let seeded = scratch.join("seeded.rs");
    std::fs::write(
        &seeded,
        "pub fn f(v: &[u64]) -> u64 {\n    let t = std::time::Instant::now();\n    v[0] + t.elapsed().as_secs()\n}\n",
    )
    .unwrap();
    let out = netpp(&["lint", seeded.to_str().unwrap()]);
    assert!(!out.status.success(), "seeded violation must fail the gate");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        text.contains("[D2]"),
        "must name the wall-clock rule: {text}"
    );
    assert!(text.contains("[P1]"), "must name the panic rule: {text}");
    std::fs::remove_dir_all(&scratch).unwrap();
}

#[test]
fn binary_steps_flag_is_honored() {
    let out = netpp(&["fig3", "--steps", "2", "--json"]);
    assert!(out.status.success());
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    // 3 points per curve (0, 50, 100%).
    assert_eq!(v[0]["points"].as_array().unwrap().len(), 3);
}
