//! The `netpp profile` subcommand: run a sweep spec with telemetry
//! recording on and emit a self-contained profiling report.
//!
//! ```text
//! netpp profile <spec.json> [--out DIR] [--jobs N] [--threads N] [--power] [--window-ns N] [--json]
//! ```
//!
//! Artifacts written under `--out` (default `netpp-profile/`):
//!
//! - `trace.jsonl` — the canonical `npp.trace/v1` trace (byte-identical
//!   for any `--jobs` value);
//! - `trace.chrome.json` — the same records in Chrome `trace_event`
//!   format, loadable in Perfetto (<https://ui.perfetto.dev>);
//! - `power.jsonl` (with `--power`) — the windowed `npp.power/v1`
//!   per-device power/energy document from a second, powerscope-recorded
//!   pass over the same grid (`--window-ns` sets the bucket width,
//!   default 100 µs).
//!
//! The report itself goes to stdout: top trace record names by count,
//! histogram summaries from the metrics registry (the `prof.*` sampling
//! timers), and per-scenario energy attribution aggregated from the
//! switch's `switch.energy_j` dwell accounting.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use npp_sweep::{run_sweep, SweepOptions, SweepSpec};
use npp_telemetry::metrics::MetricValue;

use crate::paper::Result;

/// Parsed arguments for `netpp profile`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileArgs {
    /// Path of the sweep spec file.
    pub spec_path: String,
    /// Output directory for trace artifacts.
    pub out_dir: String,
    /// Worker threads (default: available parallelism).
    pub jobs: usize,
    /// Engine worker threads per scenario (default 1). Results are
    /// bit-identical at every value; this only changes wall time.
    pub threads: usize,
    /// Also emit the windowed `npp.power/v1` document (`power.jsonl`).
    pub power: bool,
    /// Residency window width for `--power`, ns.
    pub power_window_ns: u64,
}

/// Parses `profile` arguments from the raw argv tail.
///
/// # Errors
///
/// Rejects missing spec paths, malformed flag values, and unknown
/// flags.
pub fn parse_args(rest: &[&str]) -> Result<ProfileArgs> {
    let mut spec_path = None;
    let mut out_dir = None;
    let mut jobs = None;
    let mut threads = None;
    let mut power = false;
    let mut power_window_ns = None;
    let mut it = rest.iter().copied();
    while let Some(arg) = it.next() {
        match arg {
            "--json" => {}
            "--power" => power = true,
            "--window-ns" => {
                let v = it.next().ok_or("--window-ns needs a value")?;
                let ns = v
                    .parse::<u64>()
                    .map_err(|_| format!("bad --window-ns value {v:?}"))?;
                if ns == 0 {
                    return Err("--window-ns must be positive".into());
                }
                power_window_ns = Some(ns);
            }
            "--out" => {
                out_dir = Some(it.next().ok_or("--out needs a directory")?.to_string());
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                jobs = Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("bad --jobs value {v:?}"))?,
                );
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                let n = v
                    .parse::<usize>()
                    .map_err(|_| format!("bad --threads value {v:?}"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".into());
                }
                threads = Some(n);
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown profile flag {flag:?}").into());
            }
            path if spec_path.is_none() => spec_path = Some(path.to_string()),
            extra => return Err(format!("unexpected argument {extra:?}").into()),
        }
    }
    let default_jobs = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    Ok(ProfileArgs {
        spec_path: spec_path.ok_or(
            "usage: netpp profile <spec.json> [--out DIR] [--jobs N] [--threads N] \
             [--power] [--window-ns N] [--json]",
        )?,
        out_dir: out_dir.unwrap_or_else(|| "netpp-profile".to_string()),
        jobs: jobs.unwrap_or(default_jobs),
        threads: threads.unwrap_or(1),
        power,
        power_window_ns: power_window_ns.unwrap_or(100_000),
    })
}

/// One row of the per-scenario energy attribution table.
#[derive(Debug, Clone, PartialEq)]
struct EnergyRow {
    scenario: String,
    device: String,
    joules: f64,
}

/// Runs `netpp profile`.
///
/// # Errors
///
/// Propagates spec-file, engine, filesystem, and serialization errors.
pub fn run(rest: &[&str], json: bool) -> Result<()> {
    let args = parse_args(rest)?;
    if !npp_telemetry::compiled() {
        return Err(
            "netpp profile requires the `trace` feature of npp-telemetry \
                    (enabled in default builds of this binary)"
                .into(),
        );
    }

    let text = std::fs::read_to_string(&args.spec_path)
        .map_err(|e| format!("cannot read spec {:?}: {e}", args.spec_path))?;
    let spec: SweepSpec = serde_json::from_str(&text)
        .map_err(|e| format!("cannot parse spec {:?}: {e}", args.spec_path))?;

    let opts = SweepOptions {
        jobs: args.jobs,
        cache_dir: None, // profiling wants real executions, never cache hits
        threads: args.threads,
    };

    npp_telemetry::metrics::reset();
    npp_telemetry::start();
    let outcome = run_sweep(&spec, &opts, None)?;
    let trace = npp_telemetry::finish();
    let snapshot = npp_telemetry::metrics::snapshot();

    let out = Path::new(&args.out_dir);
    std::fs::create_dir_all(out)
        .map_err(|e| format!("cannot create output dir {:?}: {e}", args.out_dir))?;
    let jsonl_path = out.join("trace.jsonl");
    std::fs::write(&jsonl_path, trace.to_canonical_jsonl())
        .map_err(|e| format!("cannot write {}: {e}", jsonl_path.display()))?;
    let chrome_path = out.join("trace.chrome.json");
    std::fs::write(&chrome_path, trace.to_chrome_json())
        .map_err(|e| format!("cannot write {}: {e}", chrome_path.display()))?;

    // Optional windowed power pass: a second run over the same grid
    // with the powerscope recorder attached (after `finish()`, so the
    // power pass never pollutes the trace above).
    let power = if args.power {
        let outcome = npp_sweep::run_power_sweep(&spec, args.power_window_ns, &opts)?;
        let doc = npp_sweep::render_power_jsonl(&outcome);
        let path = out.join("power.jsonl");
        std::fs::write(&path, &doc).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        let rows: usize = outcome.scenarios.iter().map(|s| s.rows.len()).sum();
        Some((path, rows))
    } else {
        None
    };

    // Scenario labels for the energy table: scope ids are scenario seeds.
    let labels: BTreeMap<u64, &str> = outcome
        .results
        .scenarios
        .iter()
        .map(|row| (row.seed, row.label.as_str()))
        .collect();

    // Top record names by count over the canonical (sim-time) trace.
    let mut by_name: BTreeMap<&str, u64> = BTreeMap::new();
    for rec in trace.canonical() {
        *by_name.entry(rec.name).or_insert(0) += 1;
    }
    let mut top: Vec<(&str, u64)> = by_name.into_iter().collect();
    top.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));

    let energy = energy_attribution(&trace, &labels);

    if json {
        println!(
            "{}",
            render_json(&args, &outcome, &trace, &top, &energy, &snapshot, &power)
        );
        return Ok(());
    }

    let mut report = String::new();
    let _ = writeln!(
        report,
        "profile `{}`: {} scenarios on {} jobs, {} trace records",
        outcome.results.name,
        outcome.results.total,
        args.jobs,
        trace.len()
    );
    let _ = writeln!(report, "  trace: {}", jsonl_path.display());
    let _ = writeln!(
        report,
        "  perfetto: {} (open at https://ui.perfetto.dev)",
        chrome_path.display()
    );
    if let Some((path, rows)) = &power {
        let _ = writeln!(
            report,
            "  power: {} (npp.power/v1, {rows} window rows, {} ns buckets)",
            path.display(),
            args.power_window_ns
        );
    }

    let _ = writeln!(report, "\nTop trace records:");
    for (name, count) in top.iter().take(12) {
        let _ = writeln!(report, "  {count:>8}  {name}");
    }

    let histograms: Vec<_> = snapshot
        .entries
        .iter()
        .filter_map(|(name, value)| match value {
            MetricValue::Histogram(h) if h.count > 0 => Some((name, h)),
            _ => None,
        })
        .collect();
    if !histograms.is_empty() {
        let _ = writeln!(report, "\nHistograms:");
        for (name, h) in histograms {
            let _ = writeln!(
                report,
                "  {name}: count={} min={} max={} mean={:.1}",
                h.count,
                h.min,
                h.max,
                h.mean()
            );
        }
    }

    if !energy.is_empty() {
        let _ = writeln!(report, "\nEnergy attribution (per scenario, J):");
        let mut last = "";
        for row in &energy {
            if row.scenario != last {
                let _ = writeln!(report, "  {}", row.scenario);
                last = &row.scenario;
            }
            let _ = writeln!(report, "    {:<12} {:.6}", row.device, row.joules);
        }
    }

    let _ = writeln!(report, "\nMetrics:\n{}", snapshot.to_text());
    print!("{report}");
    Ok(())
}

/// Aggregates `switch.energy_j` counter records into per-scenario,
/// per-device rows. Within one scope the largest device index is the
/// chassis-overhead track (emitted after the per-pipeline tracks).
fn energy_attribution(
    trace: &npp_telemetry::Trace,
    labels: &BTreeMap<u64, &str>,
) -> Vec<EnergyRow> {
    let mut per_device: BTreeMap<(u64, u64), f64> = BTreeMap::new();
    for rec in trace.canonical() {
        if rec.name == "switch.energy_j" {
            *per_device.entry((rec.scope, rec.arg)).or_insert(0.0) += rec.value;
        }
    }
    let chassis_arg: BTreeMap<u64, u64> =
        per_device
            .keys()
            .fold(BTreeMap::new(), |mut acc, &(scope, arg)| {
                let slot = acc.entry(scope).or_insert(arg);
                *slot = (*slot).max(arg);
                acc
            });
    per_device
        .into_iter()
        .map(|((scope, arg), joules)| EnergyRow {
            scenario: labels
                .get(&scope)
                .map_or_else(|| format!("scope {scope:016x}"), ToString::to_string),
            device: if chassis_arg.get(&scope) == Some(&arg) {
                "chassis".to_string()
            } else {
                format!("pipeline {arg}")
            },
            joules,
        })
        .collect()
}

/// Byte-stable JSON report (`--json`).
fn render_json(
    args: &ProfileArgs,
    outcome: &npp_sweep::SweepOutcome,
    trace: &npp_telemetry::Trace,
    top: &[(&str, u64)],
    energy: &[EnergyRow],
    snapshot: &npp_telemetry::metrics::Snapshot,
    power: &Option<(std::path::PathBuf, usize)>,
) -> String {
    let mut out = String::from("{\"schema\":\"npp.profile/v1\"");
    let _ = write!(
        out,
        ",\"spec\":\"{}\",\"scenarios\":{},\"jobs\":{},\"trace_records\":{}",
        outcome.results.name,
        outcome.results.total,
        args.jobs,
        trace.len()
    );
    if let Some((_, rows)) = power {
        let _ = write!(
            out,
            ",\"power_rows\":{rows},\"power_window_ns\":{}",
            args.power_window_ns
        );
    }
    out.push_str(",\"top\":[");
    for (i, (name, count)) in top.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"name\":\"{name}\",\"count\":{count}}}");
    }
    out.push_str("],\"energy\":[");
    for (i, row) in energy.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"scenario\":\"{}\",\"device\":\"{}\",\"joules\":{}}}",
            row.scenario, row.device, row.joules
        );
    }
    out.push_str("],\"metrics\":");
    out.push_str(&snapshot.to_json());
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flags() {
        let args = parse_args(&["spec.json", "--out", "/tmp/p", "--jobs", "2", "--json"]).unwrap();
        assert_eq!(args.spec_path, "spec.json");
        assert_eq!(args.out_dir, "/tmp/p");
        assert_eq!(args.jobs, 2);
        assert!(!args.power);
        let args = parse_args(&["spec.json", "--power", "--window-ns", "50000"]).unwrap();
        assert!(args.power);
        assert_eq!(args.power_window_ns, 50_000);
        assert!(parse_args(&["spec.json", "--window-ns", "0"]).is_err());
    }

    #[test]
    fn defaults_and_rejections() {
        let args = parse_args(&["spec.json"]).unwrap();
        assert_eq!(args.out_dir, "netpp-profile");
        assert!(args.jobs >= 1);
        assert!(parse_args(&[]).is_err());
        assert!(parse_args(&["spec.json", "--out"]).is_err());
        assert!(parse_args(&["spec.json", "--what"]).is_err());
        assert!(parse_args(&["a.json", "b.json"]).is_err());
    }

    #[test]
    fn energy_rows_label_chassis() {
        use npp_telemetry::{Phase, Record, Trace};
        let rec = |scope: u64, arg: u64, value: f64| Record {
            scope,
            t_ns: 0,
            seq: arg,
            wall: false,
            phase: Phase::Counter,
            name: "switch.energy_j",
            arg,
            value,
        };
        let trace = Trace {
            records: vec![rec(7, 0, 1.5), rec(7, 1, 2.5), rec(7, 2, 0.5)],
        };
        let mut labels = BTreeMap::new();
        labels.insert(7u64, "s0");
        let rows = energy_attribution(&trace, &labels);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].device, "pipeline 0");
        assert_eq!(rows[2].device, "chassis");
        assert_eq!(rows[2].scenario, "s0");
    }
}
