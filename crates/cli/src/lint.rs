//! The `netpp lint` subcommand: run the `npp-lint` determinism &
//! panic-hygiene analyzer over the workspace (or explicit paths) and
//! gate on the result.
//!
//! ```text
//! netpp lint [--json] [--sarif] [--baseline <path>] [--update-baseline]
//!            [--no-cache] [--cache <path>] [paths…]
//! ```
//!
//! Default mode lints every workspace crate's library source against
//! the committed `lint_baseline.json` ratchet; the process exits
//! non-zero when any unsuppressed finding remains. Explicit paths are
//! linted strictly (all rules, no baseline, no cache) — handy for
//! pre-commit checks of a single file. `--update-baseline` rewrites the
//! baseline from the current P1 counts after a cleanup (the ratchet
//! only ever tightens this way; hand-editing the file upward defeats it
//! and will show in review). Workspace runs use the incremental cache
//! at `target/npp-lint-cache.json` by default so unchanged files are
//! never re-lexed; `--cache <path>` relocates it, `--no-cache` disables
//! it. `--sarif` emits a SARIF 2.1.0 log for CI annotation uploads.

use std::path::{Path, PathBuf};

use npp_lint::{lint, render_json, render_sarif, render_text, Baseline, Config};

use crate::paper::Result;

/// Parsed arguments for `netpp lint`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintArgs {
    /// Baseline path override (default: `<root>/lint_baseline.json`).
    pub baseline: Option<String>,
    /// Rewrite the baseline from current P1 counts instead of gating.
    pub update_baseline: bool,
    /// Emit a SARIF 2.1.0 log instead of text/JSON.
    pub sarif: bool,
    /// Disable the incremental cache.
    pub no_cache: bool,
    /// Cache path override (default: `<root>/target/npp-lint-cache.json`).
    pub cache: Option<String>,
    /// Explicit files/directories; empty means the whole workspace.
    pub paths: Vec<String>,
}

/// Parses `lint` arguments from the raw argv tail.
///
/// # Errors
///
/// Rejects unknown flags and a missing `--baseline` value.
pub fn parse_args(rest: &[&str]) -> Result<LintArgs> {
    let mut baseline = None;
    let mut update_baseline = false;
    let mut sarif = false;
    let mut no_cache = false;
    let mut cache = None;
    let mut paths = Vec::new();
    let mut it = rest.iter().copied();
    while let Some(arg) = it.next() {
        match arg {
            "--json" => {}
            "--baseline" => {
                baseline = Some(it.next().ok_or("--baseline needs a path")?.to_string());
            }
            "--update-baseline" => update_baseline = true,
            "--sarif" => sarif = true,
            "--no-cache" => no_cache = true,
            "--cache" => {
                cache = Some(it.next().ok_or("--cache needs a path")?.to_string());
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown lint flag {flag:?}").into());
            }
            path => paths.push(path.to_string()),
        }
    }
    Ok(LintArgs {
        baseline,
        update_baseline,
        sarif,
        no_cache,
        cache,
        paths,
    })
}

/// Locates the workspace root: walk up from the current directory to
/// the first `Cargo.toml` declaring `[workspace]`, falling back to the
/// build-time manifest location (CI runs from a checkout, where both
/// agree).
fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            break;
        }
    }
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .components()
        .collect()
}

/// Runs `netpp lint`.
///
/// # Errors
///
/// Returns an error (→ non-zero exit) when unsuppressed findings
/// remain, and propagates I/O and baseline-parse failures.
pub fn run(rest: &[&str], json: bool) -> Result<()> {
    let args = parse_args(rest)?;
    let root = workspace_root();
    let workspace_mode = args.paths.is_empty();

    let baseline_path = args
        .baseline
        .as_ref()
        .map(PathBuf::from)
        .unwrap_or_else(|| root.join("lint_baseline.json"));

    let mut config = if workspace_mode {
        Config::workspace(&root)
    } else {
        Config::explicit(&root, args.paths.iter().map(PathBuf::from).collect())
    };
    if workspace_mode {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => config = config.with_baseline(Baseline::from_json(&text)?),
            // A missing baseline means "no allowance": strictest gate.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(format!("cannot read {}: {e}", baseline_path.display()).into()),
        }
        if !args.no_cache {
            let cache_path = args
                .cache
                .as_ref()
                .map(PathBuf::from)
                .unwrap_or_else(|| npp_lint::cache::default_path(&root));
            config = config.with_cache(cache_path);
        }
    }

    let report = lint(&config)?;

    if args.update_baseline {
        let tightened = report.tightened_baseline();
        std::fs::write(&baseline_path, tightened.to_json())
            .map_err(|e| format!("cannot write {}: {e}", baseline_path.display()))?;
        eprintln!(
            "lint baseline updated: {} P1 finding(s) across {} file(s) -> {}",
            tightened.total(),
            tightened.files.len(),
            baseline_path.display()
        );
    }

    if args.sarif {
        print!("{}", render_sarif(&report));
    } else if json {
        print!("{}", render_json(&report));
    } else {
        print!("{}", render_text(&report));
    }

    // After --update-baseline the P1 counts are absorbed by definition;
    // only non-ratcheted rules can still fail the gate.
    let blocking = if args.update_baseline {
        report
            .findings
            .iter()
            .filter(|f| f.rule != npp_lint::RuleId::P1Panic)
            .count()
    } else {
        report.findings.len()
    };
    if blocking > 0 {
        return Err(format!(
            "{blocking} unsuppressed finding(s); fix them or annotate with \
             `// npp-lint: allow(<key>) reason=\"…\"`"
        )
        .into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flags_and_paths() {
        let args = parse_args(&[
            "--json",
            "--baseline",
            "b.json",
            "--update-baseline",
            "crates/simnet/src",
        ])
        .unwrap();
        assert_eq!(args.baseline.as_deref(), Some("b.json"));
        assert!(args.update_baseline);
        assert_eq!(args.paths, vec!["crates/simnet/src".to_string()]);
        assert!(!args.sarif);
        assert!(!args.no_cache);
    }

    #[test]
    fn parses_sarif_and_cache_flags() {
        let args = parse_args(&["--sarif", "--no-cache"]).unwrap();
        assert!(args.sarif && args.no_cache);
        let args = parse_args(&["--cache", "/tmp/c.json"]).unwrap();
        assert_eq!(args.cache.as_deref(), Some("/tmp/c.json"));
    }

    #[test]
    fn rejects_bad_invocations() {
        assert!(parse_args(&["--baseline"]).is_err());
        assert!(parse_args(&["--cache"]).is_err());
        assert!(parse_args(&["--frobnicate"]).is_err());
    }

    #[test]
    fn workspace_root_has_manifest() {
        let root = workspace_root();
        assert!(root.join("Cargo.toml").is_file(), "{}", root.display());
    }
}
