//! CLI commands regenerating the paper's tables and figures.

use npp_core::analysis::paper_cost_analysis;
use npp_core::cluster::{ClusterConfig, ClusterModel};
use npp_core::phases::phase_breakdown;
use npp_core::savings::paper_table3;
use npp_core::speedup::{figure3, figure4, paper_bandwidths, proportionality_sweep};
use npp_report::chart::{BarChart, Heatmap, LineChart};
use npp_report::export::to_json;
use npp_report::Table;
use npp_units::Gbps;
use npp_workload::{IterationModel, ScalingScenario};

/// Error type for CLI commands.
pub type CliError = Box<dyn std::error::Error>;
/// Result alias.
pub type Result<T> = std::result::Result<T, CliError>;

/// Tables 1 & 2: the device power database.
pub fn device_tables(json: bool) -> Result<()> {
    let db = npp_power::devices::DeviceDb::paper_baseline();
    if json {
        println!("{}", to_json(&db)?);
        return Ok(());
    }
    let mut t1 = Table::new(vec!["Device", "Power (W)"]).with_title("Table 1: device power");
    t1.push_row(vec!["Nvidia H100 NVL".to_string(), format!("{}", 400.0)]);
    t1.push_row(vec!["51.2 Tbps switch".to_string(), format!("{}", 750.0)]);
    t1.push_row(vec![
        "GPU incl. server share (max)".to_string(),
        format!("{}", 500.0),
    ]);
    t1.push_row(vec![
        "GPU incl. server share (idle)".to_string(),
        format!("{}", 75.0),
    ]);
    println!("{}", t1.render());

    let mut t2 = Table::new(vec!["Bandwidth (Gbps)", "100", "200", "400", "800", "1600"])
        .with_title("Table 2: network component power (W); * = extrapolated");
    let star = |p: npp_power::devices::Provenance| match p {
        npp_power::devices::Provenance::Datasheet => "",
        _ => "*",
    };
    let nic = db.nic_table();
    let mut row = vec!["NIC".to_string()];
    for e in nic.entries() {
        row.push(format!("{}{}", e.power.value(), star(e.provenance)));
    }
    t2.push_row(row);
    let xc = db.transceiver_table();
    let mut row = vec!["Transceiver".to_string()];
    for e in xc.entries() {
        row.push(format!("{}{}", e.power.value(), star(e.provenance)));
    }
    t2.push_row(row);
    println!("{}", t2.render());
    Ok(())
}

/// Figure 1: the workload scaling rules.
pub fn fig1() -> Result<()> {
    let m = IterationModel::paper_baseline();
    let mut t = Table::new(vec![
        "Scenario",
        "Compute (s)",
        "Comm (s)",
        "Iter (s)",
        "Comm ratio",
    ])
    .with_title("Figure 1: linear workload scaling (baseline = 0.9 + 0.1)");
    let mut push = |name: &str, gpus: f64, bw: f64| -> Result<()> {
        let it = m.iteration(gpus, Gbps::new(bw), ScalingScenario::FixedWorkload)?;
        t.push_row(vec![
            name.to_string(),
            format!("{:.3}", it.compute.value()),
            format!("{:.3}", it.comm.value()),
            format!("{:.3}", it.total().value()),
            format!("{}", it.comm_ratio()),
        ]);
        Ok(())
    };
    push("baseline", 15_360.0, 400.0)?;
    push("2x GPUs", 30_720.0, 400.0)?;
    push("0.5x BW", 15_360.0, 200.0)?;
    println!("{}", t.render());
    Ok(())
}

/// Figure 2: per-phase power breakdown and efficiencies.
pub fn fig2(json: bool) -> Result<()> {
    let model = ClusterModel::new(ClusterConfig::paper_baseline())?;
    let b = phase_breakdown(&model, ScalingScenario::FixedWorkload)?;
    if json {
        println!("{}", to_json(&b)?);
        return Ok(());
    }
    let mut chart = BarChart::new("Figure 2a: relative power by phase", 60);
    chart.add_legend('G', "GPU&Server");
    chart.add_legend('N', "NICs");
    chart.add_legend('S', "Switches");
    chart.add_legend('T', "Transceivers");
    for (name, p) in [
        ("Communication", &b.communication),
        ("Average", &b.average),
        ("Computation", &b.computation),
    ] {
        chart.add_bar(
            name,
            vec![
                ('G', p.gpu.value()),
                ('N', p.nics.value()),
                ('S', p.switches.value()),
                ('T', p.transceivers.value()),
            ],
        );
    }
    println!("{}", chart.render());

    let mut t = Table::new(vec![
        "Phase",
        "GPU (MW)",
        "Network (MW)",
        "Total (MW)",
        "GPU share",
    ])
    .with_title("Figure 2b: absolute power by phase");
    for (name, p) in [
        ("Computation", &b.computation),
        ("Communication", &b.communication),
        ("Average", &b.average),
    ] {
        t.push_row(vec![
            name.to_string(),
            format!("{:.3}", p.gpu.as_mw()),
            format!("{:.3}", p.network().as_mw()),
            format!("{:.3}", p.total().as_mw()),
            format!("{}", p.gpu_share()),
        ]);
    }
    println!("{}", t.render());
    println!(
        "efficiency: network {} (paper: 11%), compute {}",
        b.network_efficiency, b.compute_efficiency
    );
    Ok(())
}

/// Table 3: the savings sweep.
pub fn table3(json: bool) -> Result<()> {
    let table = paper_table3()?;
    if json {
        println!("{}", to_json(&table)?);
        return Ok(());
    }
    let mut headers = vec!["Bandwidth".to_string()];
    headers.extend(table.proportionalities.iter().map(|p| format!("{p}")));
    let mut t = Table::new(headers)
        .with_title("Table 3: total-cluster power savings vs 10% proportionality baseline");
    for (bw, row) in table.bandwidths.iter().zip(&table.cells) {
        let mut cells = vec![format!("{}G", bw.value())];
        cells.extend(row.iter().map(|c| format!("{}", c.savings)));
        t.push_row(cells);
    }
    println!("{}", t.render());

    let mut heat = Heatmap::new(
        "Savings heatmap (%)",
        table
            .proportionalities
            .iter()
            .map(|p| format!("{p}"))
            .collect(),
    );
    for (bw, row) in table.bandwidths.iter().zip(&table.cells) {
        heat.add_row(
            format!("{}G", bw.value()),
            row.iter().map(|c| c.savings.percent()).collect(),
        );
    }
    println!("{}", heat.render());
    Ok(())
}

/// §3.2: the operating-cost analysis.
pub fn cost(json: bool) -> Result<()> {
    let a = paper_cost_analysis()?;
    if json {
        println!("{}", to_json(&a)?);
        return Ok(());
    }
    println!("par. 3.2 cost analysis (400G cluster, 10% -> 50% proportionality):");
    println!(
        "  average power:   {:.3} MW -> {:.3} MW ({} saved)",
        a.baseline_power.as_mw(),
        a.improved_power.as_mw(),
        a.savings
    );
    println!(
        "  power reduction: {:.0} kW (paper: 365 kW)",
        a.power_reduction().as_kw()
    );
    println!(
        "  electricity:     ${:.0}k/year (paper: $416k)",
        a.money.electricity_per_year.as_thousands()
    );
    println!(
        "  cooling (30%):   ${:.0}k/year (paper: $125k)",
        a.money.cooling_per_year.as_thousands()
    );
    println!(
        "  total:           ${:.0}k/year",
        a.total_per_year().as_thousands()
    );
    Ok(())
}

/// Renders a speedup figure (shared by fig3/fig4).
fn speedup_chart(
    title: &str,
    curves: &[npp_core::speedup::SpeedupCurve],
    json: bool,
) -> Result<()> {
    if json {
        println!("{}", to_json(&curves)?);
        return Ok(());
    }
    let markers = ['o', '+', 'x', '#', '*'];
    let mut chart = LineChart::new(title, 64, 16).with_axes("proportionality %", "speedup %");
    for (i, c) in curves.iter().enumerate() {
        chart.add_series(
            format!("{}G", c.bandwidth.value()),
            markers.get(i % markers.len()).copied().unwrap_or('o'),
            c.points
                .iter()
                .map(|p| (p.proportionality.percent(), p.speedup.percent()))
                .collect(),
        );
    }
    println!("{}", chart.render());
    let mut t = Table::new(vec!["Bandwidth", "p=0%", "p=50%", "p=100%"]);
    for c in curves {
        let at = |f: f64| {
            c.points
                .iter()
                .min_by(|a, b| {
                    (a.proportionality.fraction() - f)
                        .abs()
                        .partial_cmp(&(b.proportionality.fraction() - f).abs())
                        .expect("finite")
                })
                .map(|p| format!("{}", p.speedup))
                .unwrap_or_default()
        };
        t.push_row(vec![
            format!("{}G", c.bandwidth.value()),
            at(0.0),
            at(0.5),
            at(1.0),
        ]);
    }
    println!("{}", t.render());
    Ok(())
}

/// Figure 3.
pub fn fig3(json: bool, steps: usize) -> Result<()> {
    let curves = figure3(&paper_bandwidths(), &proportionality_sweep(steps))?;
    speedup_chart(
        "Figure 3: fixed workload, fixed power budget (speedup vs 400G@10%)",
        &curves,
        json,
    )
}

/// Figure 4.
pub fn fig4(json: bool, steps: usize) -> Result<()> {
    let curves = figure4(&paper_bandwidths(), &proportionality_sweep(steps))?;
    speedup_chart(
        "Figure 4: fixed comm ratio, fixed power budget (speedup vs 0% proportionality)",
        &curves,
        json,
    )
}

/// §3.4: overlap sensitivity of the savings.
pub fn overlap(json: bool) -> Result<()> {
    use npp_core::overlap::overlap_savings_sweep;
    use npp_power::Proportionality;
    use npp_units::Ratio;

    let overlaps: Vec<Ratio> = (0..=4).map(|i| Ratio::new(i as f64 / 4.0)).collect();
    let sweep = overlap_savings_sweep(
        &ClusterConfig::paper_baseline(),
        Proportionality::COMPUTE,
        &overlaps,
    )?;
    if json {
        println!("{}", to_json(&sweep)?);
        return Ok(());
    }
    let mut t = Table::new(vec![
        "Overlap",
        "Avg power @10% (MW)",
        "Avg power @85% (MW)",
        "Savings",
        "Net. efficiency @10%",
    ])
    .with_title("par. 3.4: proportionality savings under compute/comm overlap (400G, 85% target)");
    for p in &sweep {
        t.push_row(vec![
            format!("{}", p.overlap),
            format!("{:.3}", p.baseline_power.as_mw()),
            format!("{:.3}", p.improved_power.as_mw()),
            format!("{}", p.savings),
            format!("{}", p.baseline_efficiency),
        ]);
    }
    println!("{}", t.render());
    println!("Even with full overlap the network idles most of the iteration,");
    println!("so most of the Table 3 saving survives — the par. 3.4 claim.");
    Ok(())
}

/// Derive the communication ratio from a concrete LLM training setup.
pub fn llm(json: bool) -> Result<()> {
    use npp_workload::models::{LlmModel, TrainingSetup};

    let setups = [
        (
            "70B / TP8 PP12 DP160 / 8M tok",
            TrainingSetup::paper_pod_70b(),
        ),
        (
            "405B / TP8 PP16 DP120 / 16M tok",
            TrainingSetup {
                model: LlmModel::dense_405b(),
                tensor_parallel: 8,
                pipeline_parallel: 16,
                data_parallel: 120,
                batch_tokens: 16e6,
                ..TrainingSetup::paper_pod_70b()
            },
        ),
        (
            "7B / TP1 PP1 DP1024 / 4M tok",
            TrainingSetup {
                model: LlmModel::dense_7b(),
                tensor_parallel: 1,
                pipeline_parallel: 1,
                data_parallel: 1024,
                batch_tokens: 4e6,
                ..TrainingSetup::paper_pod_70b()
            },
        ),
    ];
    let mut t = Table::new(vec![
        "Setup",
        "GPUs",
        "Compute (s)",
        "Comm (s)",
        "Comm ratio",
    ])
    .with_title("Deriving the par. 2.1 communication-ratio assumption (H100 @ 400G)");
    let mut rows = Vec::new();
    for (name, s) in &setups {
        let it = s.iteration()?;
        t.push_row(vec![
            name.to_string(),
            format!("{}", s.gpus()),
            format!("{:.3}", it.compute.value()),
            format!("{:.3}", it.comm.value()),
            format!("{}", it.comm_ratio()),
        ]);
        rows.push((name.to_string(), it));
    }
    // MoE: the overlap-hungry case the paper cites via DeepSeek.
    let moe = npp_workload::models::MoeTrainingSetup::paper_pod_moe();
    let it = moe.iteration()?;
    t.push_row(vec![
        "MoE 671B-a37B / EP64 DP240 / 8M tok".to_string(),
        format!("{}", moe.gpus()),
        format!("{:.3}", it.compute.value()),
        format!("{:.3}", it.comm.value()),
        format!("{}", it.comm_ratio()),
    ]);
    rows.push(("moe-671B-a37B".to_string(), it));
    if json {
        println!("{}", to_json(&rows)?);
    } else {
        println!("{}", t.render());
        println!("The paper assumes 10%; realistic dense-training setups land nearby.");
    }
    Ok(())
}

/// Parameter sensitivity of the headline result (tornado table).
pub fn sensitivity(json: bool) -> Result<()> {
    use npp_core::sensitivity::headline_sensitivity;

    let rows = headline_sensitivity(&ClusterConfig::paper_baseline(), 0.10)?;
    if json {
        println!("{}", to_json(&rows)?);
        return Ok(());
    }
    let base = rows.first().map(|r| r.savings_base).unwrap_or_default();
    let mut t = Table::new(vec![
        "Parameter (+/-10%)",
        "Low",
        "High",
        "Swing (pp)",
        "Elasticity",
    ])
    .with_title(format!(
        "Sensitivity of the 400G@85% headline saving (baseline {base})"
    ));
    for r in &rows {
        t.push_row(vec![
            r.parameter.clone(),
            format!("{}", r.savings_low),
            format!("{}", r.savings_high),
            format!("{:.2}", r.swing_pp()),
            format!("{:+.2}", r.elasticity),
        ]);
    }
    println!("{}", t.render());
    println!("Elasticity = d(ln savings)/d(ln parameter); the headline is robust to");
    println!("every input except the network device powers themselves.");
    Ok(())
}

/// Scale-out sweep: the paper's argument at multi-pod scale.
pub fn scale(json: bool) -> Result<()> {
    use npp_core::scaleout::{pod_grid, savings_vs_scale};

    let rows = savings_vs_scale(&ClusterConfig::paper_baseline(), &pod_grid())?;
    if json {
        println!("{}", to_json(&rows)?);
        return Ok(());
    }
    let mut t = Table::new(vec![
        "GPUs",
        "Tree stages",
        "Switches/1k GPUs",
        "Network share",
        "Savings 10%->85%",
    ])
    .with_title("Scale-out: the value of proportionality grows with cluster size");
    for r in &rows {
        t.push_row(vec![
            format!("{:.0}", r.gpus),
            format!("{:.2}", r.stages),
            format!("{:.1}", r.switches_per_kilo_gpu),
            format!("{}", r.network_share),
            format!("{}", r.headline_savings),
        ]);
    }
    println!("{}", t.render());
    Ok(())
}
