//! `netpp` — regenerate every table and figure of *"It Is Time to
//! Address Network Power Proportionality"* (HotNets '25), plus the §4
//! mechanism evaluations.
//!
//! Run `netpp help` for the command list. Argument parsing is hand-rolled
//! to keep the dependency set minimal (see DESIGN.md).

use std::process::ExitCode;

use npp_cli::{bench, bench_compare, lint, mech, paper, powerscope, profile, serve, sweep};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    let rest: Vec<&str> = args.iter().skip(1).map(String::as_str).collect();
    let json = rest.contains(&"--json");

    let result = match cmd {
        "tables" => paper::device_tables(json),
        "table3" => paper::table3(json),
        "fig1" => paper::fig1(),
        "fig2" | "fig2a" | "fig2b" => paper::fig2(json),
        "fig3" => paper::fig3(json, steps(&rest)),
        "fig4" => paper::fig4(json, steps(&rest)),
        "cost" => paper::cost(json),
        "overlap" => paper::overlap(json),
        "sensitivity" => paper::sensitivity(json),
        "scale" => paper::scale(json),
        "llm" => paper::llm(json),
        "isp" => mech::isp(json),
        "sweep" => sweep::run(&rest, json),
        "serve" => serve::run(&rest, json),
        "serve-bench" => serve::run_bench(&rest, json),
        "profile" => profile::run(&rest, json),
        "powerscope" => powerscope::run(&rest, json),
        "bench-json" => bench::run(&rest, json),
        "bench-compare" => bench_compare::run(&rest, json),
        "lint" => lint::run(&rest, json),
        "fabric" => mech::fabric(json),
        "mech" => match rest.first().copied().unwrap_or("compare") {
            "eee" => mech::eee(json),
            "rate" => mech::rate(json),
            "park" => mech::park(json),
            "ocs" => mech::ocs(json),
            "knobs" => mech::knobs(json),
            "redesign" => mech::redesign(json),
            "governor" => mech::governor(json),
            "timeline" => mech::timeline(json),
            "frontier" => mech::frontier(json),
            "compare" => mech::compare(json),
            other => {
                eprintln!("unknown mechanism {other:?} (eee|rate|park|ocs|knobs|redesign|governor|timeline|frontier|compare)");
                return ExitCode::FAILURE;
            }
        },
        "all" => paper::device_tables(false)
            .and_then(|()| paper::fig1())
            .and_then(|()| paper::fig2(false))
            .and_then(|()| paper::table3(false))
            .and_then(|()| paper::cost(false))
            .and_then(|()| paper::fig3(false, 10))
            .and_then(|()| paper::fig4(false, 10))
            .and_then(|()| mech::compare(false))
            .and_then(|()| mech::knobs(false))
            .and_then(|()| mech::ocs(false))
            .and_then(|()| mech::eee(false))
            .and_then(|()| mech::redesign(false))
            .and_then(|()| mech::governor(false))
            .and_then(|()| mech::timeline(false))
            .and_then(|()| paper::overlap(false))
            .and_then(|()| paper::sensitivity(false))
            .and_then(|()| paper::scale(false))
            .and_then(|()| paper::llm(false))
            .and_then(|()| mech::fabric(false))
            .and_then(|()| mech::isp(false)),
        "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        other => {
            eprintln!("unknown command {other:?}; try `netpp help`");
            return ExitCode::FAILURE;
        }
    };

    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("netpp {cmd}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parses `--steps N` (default 10) for the figure sweeps.
fn steps(rest: &[&str]) -> usize {
    rest.iter()
        .position(|&a| a == "--steps")
        .and_then(|i| rest.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(10)
}

fn print_help() {
    println!(
        "netpp — network power proportionality toolkit (HotNets'25 reproduction)

USAGE: netpp <command> [--json] [--steps N]

Paper artifacts:
  tables     Tables 1 & 2: device power database (incl. extrapolation)
  fig1       Figure 1: workload scaling rules
  fig2       Figure 2: per-phase power breakdown of the baseline cluster
  table3     Table 3: cluster power savings vs proportionality x bandwidth
  cost       par. 3.2: kW and $/year from better proportionality
  fig3       Figure 3: fixed-workload speedup under a power budget
  fig4       Figure 4: fixed-comm-ratio speedup under a power budget
  overlap    par. 3.4: do the savings survive compute/comm overlap?
  sensitivity tornado table: which model inputs move the headline
  scale      savings vs cluster size (1-32 pods)
  llm        derive the 10% comm-ratio assumption from a real LLM setup

Mechanisms (par. 4):
  mech eee       802.3az link sleeping baseline + obsolescence analysis
  mech knobs     par. 4.1 power-knob gating (exposed vs physical)
  mech ocs       par. 4.2 job scheduling + OCS topology tailoring
  mech rate      par. 4.3 per-pipeline rate adaptation vs global
  mech park      par. 4.4 pipeline parking (reactive vs predictive)
  mech redesign  par. 4.5 clean-slate ASIC: granularity sweep + CPO
  mech governor  par. 4.1 automatic C-state governor (load -> mode)
  mech timeline  par. 4.2 one day of job churn with OCS replanning
  mech frontier  par. 4.4 wake-latency vs loss frontier
  mech compare   all dynamic mechanisms on one workload
  fabric         par. 3.4 fabric-scale underutilization (fat-tree job)
  isp            par. 3.4 ISP diurnal underutilization (Abilene, 24h)

  all        run everything (text output)

Sweeps:
  sweep <spec.json> [--jobs N] [--threads N] [--cache DIR] [--quiet] [--trace PATH] [--metrics] [--dry-run]
             expand a SweepSpec grid and run every scenario in parallel;
             results are cached by content hash under --cache; --json
             prints the deterministic results document (identical bytes
             for any --jobs or --threads value); --threads shards each
             fluid-fabric scenario's max-min engine across N workers;
             --trace writes the canonical npp.trace/v1 JSONL (also
             jobs-invariant); --metrics dumps the metrics registry to
             stderr; --quiet drops progress; --dry-run prints the
             scenario count and per-axis cardinalities without
             simulating anything

Serving:
  serve [--addr HOST:PORT] [--cache DIR] [--jobs N] [--threads N] [--max-inflight K] [--workers N] [--metrics]
             long-running what-if daemon over HTTP/1.1: POST /scenario
             (one spec, one metrics row), POST /sweep (byte-identical to
             `netpp sweep --json`), POST /sweep/stream (JSONL), GET
             /healthz | /metrics | /stats; warm requests answer from the
             sharded result cache, cold batches run on the deterministic
             executor; graceful drain on SIGINT/SIGTERM or POST
             /admin/shutdown; --max-inflight rejects excess load with 429
  serve-bench [--quick] [--out PATH] [--jobs N]
             self-driving load harness: cold-burst throughput, warm qps
             with p50/p99 latency, and drain time; asserts byte-identity
             against the engine inline and emits BENCH_serve.json

Profiling:
  profile <spec.json> [--out DIR] [--jobs N] [--threads N] [--power] [--window-ns N]
             run the spec with telemetry recording on and emit a report:
             top trace records, sampling-timer histograms, per-scenario
             energy attribution; writes trace.jsonl (npp.trace/v1) and
             trace.chrome.json (Perfetto-loadable) under --out; --power
             adds power.jsonl, the windowed npp.power/v1 document
  powerscope <spec.json> [--window-ns N] [--jobs N] [--threads N] [--out PATH] [--top K]
  powerscope --diurnal DAYS [--window-ns N] [--out PATH] [--top K]
             windowed per-device power/energy observability: replay a
             sweep grid (or stream the paper-pod diurnal fleet for N
             simulated days) through the powerscope recorder and emit
             the deterministic npp.power/v1 JSONL document (--out /
             --json; bytes invariant under --jobs/--threads) plus a
             human summary: per-tier energy, fleet power curve, top-K
             least-proportional devices, state-residency heatmaps;
             window energies sum bit-exactly to each device's total

Benchmarks:
  bench-json [--quick] [--out PATH] [--flows N] [--threads N] [--scaling | --scaling-smoke]
             time the fluid-simulator hot path (indexed engine vs naive
             baseline) and emit a BENCH_simnet.json document; --threads
             shards the engine by link-sharing component (rates stay
             bit-identical); --scaling appends the flows x threads
             matrix; --scaling-smoke is its CI cut-down (identity is a
             hard gate, throughput a warning); --quick is the CI smoke
             mode (small scenario, indexed engine only, plus a 2-thread
             bit-identity check)
  bench-compare <old.json> <new.json> [--warn-pct P] [--fail-pct P] [--strict]
             structured regression diff over two benchmark JSON
             documents (BENCH_*.json): numeric leaves are matched by
             dotted path (arrays keyed by engine/name), classified by a
             direction heuristic, and gated at --warn-pct / --fail-pct
             (defaults 5 / 25); exit stays 0 unless --strict, so CI can
             run it warn-only

Static analysis:
  lint [--sarif] [--baseline PATH] [--update-baseline] [--no-cache] [--cache PATH] [paths...]
             determinism & panic-hygiene analyzer (npp-lint): D1 no
             HashMap/HashSet iteration, D2 no wall clock/RNG/env reads,
             D3 no float reduction over map iterators (simnet, sweep,
             mechanisms, core), D4 no raw thread spawns outside the
             sanctioned executor modules, D5 no tie-prone unstable
             sorts or partial_cmp comparators, C1 worker fns taking
             &EngineCore stay pure, F1 no float accumulation over
             unordered collections, U1 every unsafe block carries a
             SAFETY comment, P1 panic hygiene everywhere (ratcheted by
             lint_baseline.json), S1 sweep specs deny unknown fields;
             exits non-zero on any unsuppressed finding. Explicit paths
             are linted strictly (all rules, no baseline, no cache).
             Workspace runs reuse target/npp-lint-cache.json so
             unchanged files are never re-lexed (--no-cache disables,
             --cache PATH relocates); --sarif emits SARIF 2.1.0.

Flags: --json machine-readable output; --steps N sweep resolution."
    );
}
