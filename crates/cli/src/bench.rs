//! The `netpp bench-json` subcommand: measure the fluid-simulator hot
//! path and emit a machine-readable trajectory point.
//!
//! ```text
//! netpp bench-json [--quick] [--out PATH] [--flows N] [--threads N]
//!                  [--scaling | --scaling-smoke]
//! ```
//!
//! Full mode runs the deterministic hot-path scenario through both the
//! indexed engine and the preserved naive baseline, then writes
//! `BENCH_simnet.json` (events/sec, ns/event, peak live flows, speedup)
//! so the repository carries a committed perf trajectory next to the
//! `simnet_hotpath` criterion bench.
//!
//! `--quick` is the CI smoke mode: a smaller scenario, indexed engine
//! only, no file written unless `--out` is given — but every emitted
//! number is still validated, so a NaN, a non-finite rate, or a panic in
//! the engine fails the pipeline. Quick mode additionally replays the
//! scenario through the component-sharded runtime at 2 threads and
//! hard-asserts the state digest matches the serial run.
//!
//! `--scaling` appends the parallel-engine scaling matrix to the
//! report: pod fat-tree rows (many components — measures component
//! sharding) plus a single-giant-component spine row (one component —
//! measures the within-component splitter), each at flow counts ×
//! thread counts. Every cell's state digest is hard-checked against
//! the 1-thread run of the same row, so the curve can never quietly
//! trade correctness for throughput. `--scaling-smoke` is the CI
//! variant: one flow count per scenario, threads {1, 8}, identity
//! hard-fails while the per-scenario throughput ratio only warns
//! (shared runners make wall-clock promises unreliable).

use serde::Serialize;

use npp_simnet::netsim::NetSim;
use npp_simnet::netsim_naive::NaiveNetSim;
use npp_simnet::scenarios::{
    hotpath_scenario, pod_fattree_scenario, spine_fattree_scenario, Scenario,
};
use npp_simnet::EngineMetrics;
use npp_telemetry::wall_clock;

use crate::paper::Result;

/// Default flow count for the full benchmark (matches
/// `benches/simnet_hotpath.rs`).
const FULL_FLOWS: usize = 1000;
/// Flow count for `--quick` CI smoke runs.
const QUICK_FLOWS: usize = 200;
/// Timed repetitions (best-of) for the indexed engine.
const INDEXED_RUNS: usize = 5;
/// Timed repetitions (best-of) for the naive baseline.
const NAIVE_RUNS: usize = 2;
/// Flow counts of the full `--scaling` matrix (pod fat-tree rows).
const SCALING_FLOWS: [usize; 3] = [1_000, 10_000, 100_000];
/// Flow count of the full matrix's single-giant-component spine row.
const SPINE_FLOWS: usize = 65_536;
/// Thread counts of the full `--scaling` matrix.
const SCALING_THREADS: [usize; 4] = [1, 2, 4, 8];
/// Pod-scenario flow count for the `--scaling-smoke` CI gate.
const SMOKE_FLOWS: usize = 100_000;
/// Spine-scenario flow count for the `--scaling-smoke` CI gate. The
/// full 65,536-flow spine row costs minutes of serial wall time; the
/// smoke cell keeps the same one-component 8×16 fabric and single-wave
/// injection but at a quarter of the flows, so the digest gate and the
/// splitter's speedup are both exercised inside a CI budget.
const SMOKE_SPINE_FLOWS: usize = 16_384;
/// Thread counts for the `--scaling-smoke` CI gate.
const SMOKE_THREADS: [usize; 2] = [1, 8];
/// Minimum 8-vs-1-thread events/sec ratio the smoke gate expects per
/// scenario; a shortfall prints a warning rather than failing (shared
/// CI runners).
const SMOKE_MIN_RATIO: f64 = 1.5;

/// Parsed arguments for `netpp bench-json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchArgs {
    /// CI smoke mode: small scenario, indexed engine only.
    pub quick: bool,
    /// Where to write the JSON document (`None` = stdout only).
    pub out: Option<String>,
    /// Scenario flow count override.
    pub flows: Option<usize>,
    /// Worker threads for the headline indexed run (1 = serial engine).
    pub threads: usize,
    /// Append the full flows × threads scaling matrix.
    pub scaling: bool,
    /// Run the reduced CI scaling gate instead of the full matrix.
    pub scaling_smoke: bool,
}

/// Parses `bench-json` arguments from the raw argv tail.
///
/// # Errors
///
/// Rejects malformed flag values and unknown flags.
pub fn parse_args(rest: &[&str]) -> Result<BenchArgs> {
    let mut args = BenchArgs {
        quick: false,
        out: None,
        flows: None,
        threads: 1,
        scaling: false,
        scaling_smoke: false,
    };
    let mut it = rest.iter().copied();
    while let Some(arg) = it.next() {
        match arg {
            "--json" => {} // bench-json is always JSON; accepted for symmetry
            "--quick" => args.quick = true,
            "--scaling" => args.scaling = true,
            "--scaling-smoke" => args.scaling_smoke = true,
            "--out" => {
                args.out = Some(it.next().ok_or("--out needs a path")?.to_string());
            }
            "--flows" => {
                let v = it.next().ok_or("--flows needs a value")?;
                let n = v
                    .parse::<usize>()
                    .map_err(|_| format!("bad --flows value {v:?}"))?;
                if n == 0 {
                    return Err("--flows must be positive".into());
                }
                args.flows = Some(n);
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                let n = v
                    .parse::<usize>()
                    .map_err(|_| format!("bad --threads value {v:?}"))?;
                if n == 0 {
                    return Err("--threads must be positive".into());
                }
                args.threads = n;
            }
            other => {
                return Err(format!(
                    "unknown bench-json argument {other:?} (usage: netpp bench-json [--quick] \
                     [--out PATH] [--flows N] [--threads N] [--scaling | --scaling-smoke])"
                )
                .into());
            }
        }
    }
    if args.scaling && args.scaling_smoke {
        return Err("--scaling and --scaling-smoke are mutually exclusive".into());
    }
    Ok(args)
}

/// One engine's measurement on the shared scenario.
#[derive(Debug, Serialize)]
pub struct EngineResult {
    /// Engine tag: `"indexed"` or `"naive"`.
    pub engine: String,
    /// Timed repetitions (best-of).
    pub runs: usize,
    /// Events processed per run (releases + completions).
    pub events: u64,
    /// Best wall-clock time for one full run, in seconds.
    pub best_secs: f64,
    /// Events per second at the best run.
    pub events_per_sec: f64,
    /// Nanoseconds per event at the best run.
    pub ns_per_event: f64,
    /// Peak number of simultaneously live flows (indexed engine only).
    pub peak_live_flows: Option<usize>,
    /// Simulated makespan in nanoseconds (a correctness echo: both
    /// engines must report the same value).
    pub makespan_ns: u64,
    /// Engine-internal counters from the best run (indexed engine only):
    /// recomputes, fixing iterations, dirty/touched-set high-water marks.
    pub metrics: Option<EngineMetrics>,
}

/// Telemetry cost accounting for the headline numbers.
#[derive(Debug, Serialize)]
pub struct TelemetryOverhead {
    /// Whether the binary was compiled with the `trace` feature (the
    /// feature-off build has empty inline stubs and zero overhead by
    /// construction; `benches/simnet_hotpath.rs` in `crates/bench`
    /// measures that configuration).
    pub compiled: bool,
    /// The headline timings above always run with capture off — only
    /// the per-site `enabled()` atomic load is paid.
    pub capture_off_best_secs: f64,
    /// Best indexed-engine time with trace capture active (absent when
    /// the feature is compiled out or in `--quick` mode).
    pub capture_on_best_secs: Option<f64>,
    /// `(capture_on / capture_off - 1) * 100`.
    pub capture_overhead_pct: Option<f64>,
}

/// One cell of the parallel-engine scaling matrix: the pod fat-tree
/// scenario at one flow count, run with one worker-thread count.
#[derive(Debug, Serialize)]
pub struct ScalingCell {
    /// Scenario tag of this row's workload (pod fat-tree rows decompose
    /// into many components; the spine row is one giant component).
    pub scenario: String,
    /// Flows injected.
    pub flows: usize,
    /// Worker threads (`1` = the serial indexed engine).
    pub threads: usize,
    /// Link-sharing components the fabric decomposed into.
    pub components: usize,
    /// Wall-clock seconds spent injecting (route resolution; excluded
    /// from the throughput figure).
    pub inject_secs: f64,
    /// Wall-clock seconds of the simulation run itself.
    pub run_secs: f64,
    /// Events processed (releases + completions / fluid epochs).
    pub events: u64,
    /// Events per second over `run_secs` only.
    pub events_per_sec: f64,
    /// Peak number of simultaneously live flows.
    pub peak_live_flows: usize,
    /// `events_per_sec` of this cell over the 1-thread cell at the same
    /// flow count (`1.0` for the 1-thread cell itself).
    pub speedup_vs_one_thread: f64,
    /// Coordinator nanoseconds spent waiting on worker replies.
    pub merge_wait_ns: u64,
    /// From-scratch rebuilds of the persistent component index.
    pub index_rebuilds: u64,
    /// Incremental arrival unions absorbed by the component index.
    pub index_incremental_ops: u64,
    /// Epochs in which work stealing migrated at least one component.
    pub steal_events: u64,
    /// Components migrated by epoch work stealing.
    pub stolen_components: u64,
    /// Independent subproblems executed by the within-component
    /// splitter.
    pub subproblems: u64,
    /// Final-state FNV digest, hex — bit-identical across every thread
    /// count of a flow count by construction (hard-checked before the
    /// report is emitted).
    pub state_digest: String,
    /// `VmHWM` after this cell, bytes. Process-wide high-water mark, so
    /// the value is monotone across cells; the first cell of each flow
    /// count is the honest per-size footprint.
    pub peak_rss_bytes: Option<u64>,
}

/// The `--scaling` / `--scaling-smoke` section of the report.
#[derive(Debug, Serialize)]
pub struct ScalingSection {
    /// `"full"` or `"smoke"`.
    pub mode: String,
    /// Hardware threads the host reports (context for the curve: on a
    /// single-core runner the speedup is the per-shard waterfill
    /// interleave win, not true parallel execution).
    pub host_parallelism: usize,
    /// Flow counts of the matrix.
    pub flow_counts: Vec<usize>,
    /// Thread counts of the matrix.
    pub thread_counts: Vec<usize>,
    /// One cell per (flow count, thread count), flows-major.
    pub cells: Vec<ScalingCell>,
}

/// The document written to `BENCH_simnet.json`.
#[derive(Debug, Serialize)]
pub struct BenchReport {
    /// Document schema tag.
    pub schema: String,
    /// Scenario name (topology shape + flow count).
    pub scenario: String,
    /// Flows injected.
    pub flows: usize,
    /// Whether this was a `--quick` smoke run.
    pub quick: bool,
    /// Worker threads of the headline indexed run.
    pub threads: usize,
    /// Per-engine measurements.
    pub engines: Vec<EngineResult>,
    /// Indexed-engine throughput over naive-baseline throughput
    /// (absent in quick mode, which skips the baseline).
    pub speedup_vs_naive: Option<f64>,
    /// Telemetry cost accounting (instrumentation-off vs -on timings).
    pub telemetry: TelemetryOverhead,
    /// Parallel-engine scaling matrix (`--scaling`/`--scaling-smoke`).
    pub scaling: Option<ScalingSection>,
    /// Peak resident set size of this process in bytes (`VmHWM` from
    /// `/proc/self/status`; absent on platforms without procfs).
    pub peak_rss_bytes: Option<u64>,
}

/// Reads the process peak-RSS high-water mark from `/proc/self/status`.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// One measured indexed-engine execution.
struct IndexedRun {
    inject_secs: f64,
    secs: f64,
    events: u64,
    peak: usize,
    makespan_ns: u64,
    digest: u64,
    metrics: EngineMetrics,
}

fn run_indexed(scenario: &Scenario, threads: usize) -> Result<IndexedRun> {
    let inject_start = wall_clock();
    let mut sim = NetSim::new(scenario.topo.clone());
    scenario.inject_into(|at, s, d, b, p| sim.inject(at, s, d, b, p).map(|_| ()))?;
    let inject_secs = inject_start.elapsed().as_secs_f64();
    let start = wall_clock();
    sim.run_threads(threads)?;
    let secs = start.elapsed().as_secs_f64();
    let makespan = sim
        .makespan()
        .ok_or("indexed engine reported no makespan")?;
    Ok(IndexedRun {
        inject_secs,
        secs,
        events: sim.events_processed(),
        peak: sim.peak_live_flows(),
        makespan_ns: makespan.as_nanos(),
        digest: sim.state_digest(),
        metrics: sim.engine_metrics(),
    })
}

fn run_naive(scenario: &Scenario) -> Result<(f64, u64, u64)> {
    // Same timing basis as `run_indexed`: the run itself, with setup
    // and injection excluded, so the speedup compares engines only.
    let mut sim = NaiveNetSim::new(scenario.topo.clone());
    scenario.inject_into(|at, s, d, b, p| sim.inject(at, s, d, b, p).map(|_| ()))?;
    let start = wall_clock();
    sim.run()?;
    let secs = start.elapsed().as_secs_f64();
    let makespan = sim.makespan().ok_or("naive engine reported no makespan")?;
    Ok((secs, sim.events_processed(), makespan.as_nanos()))
}

fn engine_result(
    engine: &str,
    runs: usize,
    events: u64,
    best_secs: f64,
    peak_live_flows: Option<usize>,
    makespan_ns: u64,
    metrics: Option<EngineMetrics>,
) -> Result<EngineResult> {
    if !best_secs.is_finite() || best_secs <= 0.0 {
        return Err(format!("{engine} engine produced a degenerate timing {best_secs}").into());
    }
    let events_per_sec = events as f64 / best_secs;
    let ns_per_event = best_secs * 1e9 / events as f64;
    for (what, v) in [("events/sec", events_per_sec), ("ns/event", ns_per_event)] {
        if !v.is_finite() {
            return Err(format!("{engine} engine produced non-finite {what}: {v}").into());
        }
    }
    Ok(EngineResult {
        engine: engine.to_string(),
        runs,
        events,
        best_secs,
        events_per_sec,
        ns_per_event,
        peak_live_flows,
        makespan_ns,
        metrics,
    })
}

/// Runs `scenario` with every entry of `threads`, hard-asserting that
/// every thread count reproduces the 1-thread state digest
/// bit-for-bit, and appends one cell per run.
fn scaling_row(
    scenario: &Scenario,
    flows: usize,
    threads: &[usize],
    cells: &mut Vec<ScalingCell>,
) -> Result<()> {
    let mut reference: Option<(u64, f64)> = None; // (digest, 1-thread events/sec)
    for &t in threads {
        let r = run_indexed(scenario, t)?;
        if r.secs <= 0.0 || !r.secs.is_finite() {
            return Err(format!("scaling cell {flows}x{t} produced degenerate timing").into());
        }
        let events_per_sec = r.events as f64 / r.secs;
        let (ref_digest, ref_eps) = *reference.get_or_insert((r.digest, events_per_sec));
        if r.digest != ref_digest {
            return Err(format!(
                "parallel engine diverged on {}: {flows} flows at {t} threads digest \
                 {:016x}, 1-thread digest {ref_digest:016x}",
                scenario.name, r.digest
            )
            .into());
        }
        eprintln!(
            "scaling {flows:>7} flows x {t} threads: {events_per_sec:>12.0} events/s \
             ({:.2}s run, {} components, {} subproblems, peak {} flows)",
            r.secs, r.metrics.components, r.metrics.subproblems, r.peak
        );
        cells.push(ScalingCell {
            scenario: scenario.name.clone(),
            flows,
            threads: t,
            components: r.metrics.components,
            inject_secs: r.inject_secs,
            run_secs: r.secs,
            events: r.events,
            events_per_sec,
            peak_live_flows: r.peak,
            speedup_vs_one_thread: events_per_sec / ref_eps,
            merge_wait_ns: r.metrics.merge_wait_ns,
            index_rebuilds: r.metrics.index_rebuilds,
            index_incremental_ops: r.metrics.index_incremental_ops,
            steal_events: r.metrics.steal_events,
            stolen_components: r.metrics.stolen_components,
            subproblems: r.metrics.subproblems,
            state_digest: format!("{:016x}", r.digest),
            peak_rss_bytes: peak_rss_bytes(),
        });
    }
    Ok(())
}

/// Builds the `--scaling` / `--scaling-smoke` section: pod fat-tree
/// rows (component sharding) followed by a single-giant-component
/// spine row (within-component splitting), both digest-gated at every
/// cell.
fn measure_scaling(smoke: bool) -> Result<ScalingSection> {
    let (pod_flows, spine_flows, thread_counts): (Vec<usize>, usize, Vec<usize>) = if smoke {
        (vec![SMOKE_FLOWS], SMOKE_SPINE_FLOWS, SMOKE_THREADS.to_vec())
    } else {
        (
            SCALING_FLOWS.to_vec(),
            SPINE_FLOWS,
            SCALING_THREADS.to_vec(),
        )
    };
    let mut cells = Vec::new();
    let mut flow_counts = pod_flows.clone();
    for &flows in &pod_flows {
        let scenario = pod_fattree_scenario(flows)?;
        scaling_row(&scenario, flows, &thread_counts, &mut cells)?;
    }
    let spine = spine_fattree_scenario(spine_flows)?;
    scaling_row(&spine, spine_flows, &thread_counts, &mut cells)?;
    flow_counts.push(spine_flows);
    if smoke {
        // Identity above is the hard gate; throughput only warns, since
        // shared CI runners cannot promise wall-clock ratios. Each
        // scenario's ratio is judged against its own 1-thread cell.
        for row in cells.chunks(thread_counts.len()) {
            let (Some(base), Some(multi)) = (row.first(), row.last()) else {
                continue;
            };
            let ratio = multi.events_per_sec / base.events_per_sec;
            if ratio < SMOKE_MIN_RATIO {
                eprintln!(
                    "warning: scaling smoke ratio {ratio:.2}x below the {SMOKE_MIN_RATIO}x \
                     target on {} ({:.0} -> {:.0} events/s); not failing (shared runner)",
                    base.scenario, base.events_per_sec, multi.events_per_sec
                );
            }
        }
    }
    Ok(ScalingSection {
        mode: if smoke { "smoke" } else { "full" }.to_string(),
        host_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        flow_counts,
        thread_counts,
        cells,
    })
}

/// Measures the hot path and builds the report document.
///
/// # Errors
///
/// Propagates engine errors and rejects any non-finite measurement —
/// the property the CI smoke step relies on. A parallel run whose state
/// digest differs from the serial engine's is an error, never a warning.
pub fn measure(args: &BenchArgs) -> Result<BenchReport> {
    let flows = args
        .flows
        .unwrap_or(if args.quick { QUICK_FLOWS } else { FULL_FLOWS });
    let scenario = hotpath_scenario(flows)?;

    let mut best_indexed: Option<IndexedRun> = None;
    for _ in 0..INDEXED_RUNS {
        let r = run_indexed(&scenario, args.threads)?;
        match &best_indexed {
            Some(b) if b.secs <= r.secs => {}
            _ => best_indexed = Some(r),
        }
    }
    let best = best_indexed.expect("at least one run");
    let makespan_ns = best.makespan_ns;
    let indexed = engine_result(
        "indexed",
        INDEXED_RUNS,
        best.events,
        best.secs,
        Some(best.peak),
        makespan_ns,
        Some(best.metrics),
    )?;
    let indexed_events_per_sec = indexed.events_per_sec;

    let mut engines = vec![indexed];
    let mut speedup = None;
    if args.quick {
        // Smoke gate: the component-sharded runtime at 2 threads must
        // reproduce the headline run's final state bit-for-bit.
        let par = run_indexed(&scenario, 2)?;
        if par.digest != best.digest {
            return Err(format!(
                "parallel engine diverged on the hotpath scenario: 2-thread digest \
                 {:016x}, serial digest {:016x}",
                par.digest, best.digest
            )
            .into());
        }
    }
    if !args.quick {
        let mut best_naive: Option<(f64, u64, u64)> = None;
        for _ in 0..NAIVE_RUNS {
            let r = run_naive(&scenario)?;
            match &best_naive {
                Some(b) if b.0 <= r.0 => {}
                _ => best_naive = Some(r),
            }
        }
        let (nsecs, nevents, nmakespan) = best_naive.expect("at least one run");
        if nmakespan != makespan_ns {
            return Err(format!(
                "engines diverged: indexed makespan {makespan_ns} ns, naive {nmakespan} ns"
            )
            .into());
        }
        let naive = engine_result("naive", NAIVE_RUNS, nevents, nsecs, None, nmakespan, None)?;
        let ratio = indexed_events_per_sec / naive.events_per_sec;
        if !ratio.is_finite() {
            return Err(format!("non-finite speedup {ratio}").into());
        }
        speedup = Some(ratio);
        engines.push(naive);
    }

    // Re-run the indexed engine with trace capture active to price the
    // recording path (skipped in quick mode; the feature-off build's
    // zero-overhead claim is covered by the criterion bench instead).
    let mut capture_on_best = None;
    if npp_telemetry::compiled() && !args.quick {
        for _ in 0..NAIVE_RUNS {
            npp_telemetry::metrics::reset();
            npp_telemetry::start();
            let r = run_indexed(&scenario, args.threads)?;
            let _ = npp_telemetry::finish();
            capture_on_best = Some(match capture_on_best {
                Some(b) if b <= r.secs => b,
                _ => r.secs,
            });
        }
    }
    let telemetry = TelemetryOverhead {
        compiled: npp_telemetry::compiled(),
        capture_off_best_secs: best.secs,
        capture_on_best_secs: capture_on_best,
        capture_overhead_pct: capture_on_best.map(|on| (on / best.secs - 1.0) * 100.0),
    };

    let scaling = if args.scaling || args.scaling_smoke {
        Some(measure_scaling(args.scaling_smoke)?)
    } else {
        None
    };

    Ok(BenchReport {
        schema: "npp.bench.simnet/v3".to_string(),
        scenario: scenario.name,
        flows,
        quick: args.quick,
        threads: args.threads,
        engines,
        speedup_vs_naive: speedup,
        telemetry,
        scaling,
        peak_rss_bytes: peak_rss_bytes(),
    })
}

/// Runs `netpp bench-json`.
///
/// # Errors
///
/// Propagates measurement, serialization, and file-write errors.
pub fn run(rest: &[&str], _json: bool) -> Result<()> {
    let args = parse_args(rest)?;
    let report = measure(&args)?;
    let doc = npp_report::export::to_json(&report)?;
    if let Some(path) = &args.out {
        std::fs::write(path, format!("{doc}\n"))
            .map_err(|e| format!("cannot write {path:?}: {e}"))?;
        eprintln!("wrote {path}");
    }
    println!("{doc}");
    let indexed = report
        .engines
        .first()
        .ok_or("bench report carries no engine result")?;
    if let (Some(s), Some(naive)) = (report.speedup_vs_naive, report.engines.get(1)) {
        eprintln!(
            "indexed: {:.0} events/s ({:.0} ns/event), naive: {:.0} events/s — {s:.1}x",
            indexed.events_per_sec, indexed.ns_per_event, naive.events_per_sec,
        );
    } else {
        eprintln!(
            "indexed: {:.0} events/s ({:.0} ns/event), peak {} live flows",
            indexed.events_per_sec,
            indexed.ns_per_event,
            indexed.peak_live_flows.unwrap_or(0),
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flags() {
        let args = parse_args(&[
            "--quick",
            "--out",
            "b.json",
            "--flows",
            "50",
            "--threads",
            "4",
        ])
        .unwrap();
        assert!(args.quick);
        assert_eq!(args.out.as_deref(), Some("b.json"));
        assert_eq!(args.flows, Some(50));
        assert_eq!(args.threads, 4);
        assert_eq!(
            parse_args(&[]).unwrap(),
            BenchArgs {
                quick: false,
                out: None,
                flows: None,
                threads: 1,
                scaling: false,
                scaling_smoke: false,
            }
        );
        assert!(parse_args(&["--scaling"]).unwrap().scaling);
        assert!(parse_args(&["--scaling-smoke"]).unwrap().scaling_smoke);
    }

    #[test]
    fn rejects_bad_invocations() {
        assert!(parse_args(&["--out"]).is_err());
        assert!(parse_args(&["--flows"]).is_err());
        assert!(parse_args(&["--flows", "zero"]).is_err());
        assert!(parse_args(&["--flows", "0"]).is_err());
        assert!(parse_args(&["--threads"]).is_err());
        assert!(parse_args(&["--threads", "0"]).is_err());
        assert!(parse_args(&["--scaling", "--scaling-smoke"]).is_err());
        assert!(parse_args(&["--frobnicate"]).is_err());
    }

    #[test]
    fn quick_measurement_is_finite_and_indexed_only() {
        let report = measure(&BenchArgs {
            quick: true,
            out: None,
            flows: Some(64),
            threads: 1,
            scaling: false,
            scaling_smoke: false,
        })
        .unwrap();
        assert_eq!(report.engines.len(), 1);
        assert_eq!(report.engines[0].engine, "indexed");
        assert!(report.engines[0].events_per_sec.is_finite());
        assert!(report.engines[0].ns_per_event > 0.0);
        assert!(report.engines[0].peak_live_flows.unwrap() >= 1);
        assert!(report.speedup_vs_naive.is_none());
        // Quick mode skips the capture-on overhead run.
        assert!(report.telemetry.capture_on_best_secs.is_none());
        assert!(report.telemetry.capture_off_best_secs > 0.0);
        let m = report.engines[0].metrics.as_ref().unwrap();
        assert!(m.events > 0 && m.recomputes > 0);
    }

    #[test]
    fn full_measurement_compares_both_engines() {
        let report = measure(&BenchArgs {
            quick: false,
            out: None,
            flows: Some(96),
            threads: 1,
            scaling: false,
            scaling_smoke: false,
        })
        .unwrap();
        assert_eq!(report.engines.len(), 2);
        assert_eq!(report.engines[1].engine, "naive");
        // Equivalence is asserted inside measure(); the echoed makespans
        // must therefore match here too.
        assert_eq!(report.engines[0].makespan_ns, report.engines[1].makespan_ns);
        assert!(report.speedup_vs_naive.unwrap().is_finite());
        // Full mode prices the capture-on path (this binary compiles the
        // trace feature in).
        assert!(report.telemetry.compiled);
        assert!(report.telemetry.capture_on_best_secs.unwrap() > 0.0);
        assert!(report.telemetry.capture_overhead_pct.unwrap().is_finite());
        #[cfg(target_os = "linux")]
        assert!(report.peak_rss_bytes.unwrap() > 0);
        assert!(report.scaling.is_none());
    }

    #[test]
    fn headline_run_accepts_multiple_threads() {
        // The quick path also replays at 2 threads and hard-asserts the
        // digest, so a pass here certifies the sharded runtime end to
        // end through the CLI layer.
        let report = measure(&BenchArgs {
            quick: true,
            out: None,
            flows: Some(64),
            threads: 8,
            scaling: false,
            scaling_smoke: false,
        })
        .unwrap();
        assert_eq!(report.threads, 8);
        assert!(report.engines[0].events_per_sec.is_finite());
    }

    #[test]
    fn scaling_row_emits_bit_identical_cells() {
        let scenario = pod_fattree_scenario(384).unwrap();
        let mut cells = Vec::new();
        scaling_row(&scenario, 384, &[1, 2, 8], &mut cells).unwrap();
        assert_eq!(cells.len(), 3);
        let digest = &cells[0].state_digest;
        for c in &cells {
            assert_eq!(&c.state_digest, digest);
            assert_eq!(c.flows, 384);
            assert_eq!(c.scenario, scenario.name);
            assert!(c.events_per_sec.is_finite() && c.events_per_sec > 0.0);
            assert!(c.speedup_vs_one_thread > 0.0);
            assert!(c.index_incremental_ops > 0);
            if c.threads > 1 {
                // Four disconnected pods shard into >= 4 components.
                assert!(c.components >= 4);
            }
        }
        assert_eq!(cells[0].speedup_vs_one_thread, 1.0);
    }

    #[test]
    fn scaling_row_on_the_spine_scenario_is_one_component() {
        let scenario = spine_fattree_scenario(256).unwrap();
        let mut cells = Vec::new();
        scaling_row(&scenario, 256, &[1, 8], &mut cells).unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].state_digest, cells[1].state_digest);
        for c in &cells {
            // The spine glue collapses the fabric into one component;
            // any speedup here is the within-component splitter's.
            assert_eq!(c.components, 1);
        }
    }
}
