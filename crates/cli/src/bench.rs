//! The `netpp bench-json` subcommand: measure the fluid-simulator hot
//! path and emit a machine-readable trajectory point.
//!
//! ```text
//! netpp bench-json [--quick] [--out PATH] [--flows N]
//! ```
//!
//! Full mode runs the deterministic hot-path scenario through both the
//! indexed engine and the preserved naive baseline, then writes
//! `BENCH_simnet.json` (events/sec, ns/event, peak live flows, speedup)
//! so the repository carries a committed perf trajectory next to the
//! `simnet_hotpath` criterion bench.
//!
//! `--quick` is the CI smoke mode: a smaller scenario, indexed engine
//! only, no file written unless `--out` is given — but every emitted
//! number is still validated, so a NaN, a non-finite rate, or a panic in
//! the engine fails the pipeline.

use std::time::Instant;

use serde::Serialize;

use npp_simnet::netsim::NetSim;
use npp_simnet::netsim_naive::NaiveNetSim;
use npp_simnet::scenarios::{hotpath_scenario, Scenario};

use crate::paper::Result;

/// Default flow count for the full benchmark (matches
/// `benches/simnet_hotpath.rs`).
const FULL_FLOWS: usize = 1000;
/// Flow count for `--quick` CI smoke runs.
const QUICK_FLOWS: usize = 200;
/// Timed repetitions (best-of) for the indexed engine.
const INDEXED_RUNS: usize = 5;
/// Timed repetitions (best-of) for the naive baseline.
const NAIVE_RUNS: usize = 2;

/// Parsed arguments for `netpp bench-json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchArgs {
    /// CI smoke mode: small scenario, indexed engine only.
    pub quick: bool,
    /// Where to write the JSON document (`None` = stdout only).
    pub out: Option<String>,
    /// Scenario flow count override.
    pub flows: Option<usize>,
}

/// Parses `bench-json` arguments from the raw argv tail.
///
/// # Errors
///
/// Rejects malformed flag values and unknown flags.
pub fn parse_args(rest: &[&str]) -> Result<BenchArgs> {
    let mut args = BenchArgs {
        quick: false,
        out: None,
        flows: None,
    };
    let mut it = rest.iter().copied();
    while let Some(arg) = it.next() {
        match arg {
            "--json" => {} // bench-json is always JSON; accepted for symmetry
            "--quick" => args.quick = true,
            "--out" => {
                args.out = Some(it.next().ok_or("--out needs a path")?.to_string());
            }
            "--flows" => {
                let v = it.next().ok_or("--flows needs a value")?;
                let n = v
                    .parse::<usize>()
                    .map_err(|_| format!("bad --flows value {v:?}"))?;
                if n == 0 {
                    return Err("--flows must be positive".into());
                }
                args.flows = Some(n);
            }
            other => {
                return Err(format!(
                    "unknown bench-json argument {other:?} (usage: netpp bench-json [--quick] [--out PATH] [--flows N])"
                )
                .into());
            }
        }
    }
    Ok(args)
}

/// One engine's measurement on the shared scenario.
#[derive(Debug, Serialize)]
pub struct EngineResult {
    /// Engine tag: `"indexed"` or `"naive"`.
    pub engine: String,
    /// Timed repetitions (best-of).
    pub runs: usize,
    /// Events processed per run (releases + completions).
    pub events: u64,
    /// Best wall-clock time for one full run, in seconds.
    pub best_secs: f64,
    /// Events per second at the best run.
    pub events_per_sec: f64,
    /// Nanoseconds per event at the best run.
    pub ns_per_event: f64,
    /// Peak number of simultaneously live flows (indexed engine only).
    pub peak_live_flows: Option<usize>,
    /// Simulated makespan in nanoseconds (a correctness echo: both
    /// engines must report the same value).
    pub makespan_ns: u64,
}

/// The document written to `BENCH_simnet.json`.
#[derive(Debug, Serialize)]
pub struct BenchReport {
    /// Document schema tag.
    pub schema: String,
    /// Scenario name (topology shape + flow count).
    pub scenario: String,
    /// Flows injected.
    pub flows: usize,
    /// Whether this was a `--quick` smoke run.
    pub quick: bool,
    /// Per-engine measurements.
    pub engines: Vec<EngineResult>,
    /// Indexed-engine throughput over naive-baseline throughput
    /// (absent in quick mode, which skips the baseline).
    pub speedup_vs_naive: Option<f64>,
}

fn run_indexed(scenario: &Scenario) -> Result<(f64, u64, usize, u64)> {
    let start = Instant::now();
    let mut sim = NetSim::new(scenario.topo.clone());
    scenario.inject_into(|at, s, d, b, p| sim.inject(at, s, d, b, p).map(|_| ()))?;
    sim.run()?;
    let secs = start.elapsed().as_secs_f64();
    let makespan = sim
        .makespan()
        .ok_or("indexed engine reported no makespan")?;
    Ok((
        secs,
        sim.events_processed(),
        sim.peak_live_flows(),
        makespan.as_nanos(),
    ))
}

fn run_naive(scenario: &Scenario) -> Result<(f64, u64, u64)> {
    let start = Instant::now();
    let mut sim = NaiveNetSim::new(scenario.topo.clone());
    scenario.inject_into(|at, s, d, b, p| sim.inject(at, s, d, b, p).map(|_| ()))?;
    sim.run()?;
    let secs = start.elapsed().as_secs_f64();
    let makespan = sim.makespan().ok_or("naive engine reported no makespan")?;
    Ok((secs, sim.events_processed(), makespan.as_nanos()))
}

fn engine_result(
    engine: &str,
    runs: usize,
    events: u64,
    best_secs: f64,
    peak_live_flows: Option<usize>,
    makespan_ns: u64,
) -> Result<EngineResult> {
    if !best_secs.is_finite() || best_secs <= 0.0 {
        return Err(format!("{engine} engine produced a degenerate timing {best_secs}").into());
    }
    let events_per_sec = events as f64 / best_secs;
    let ns_per_event = best_secs * 1e9 / events as f64;
    for (what, v) in [("events/sec", events_per_sec), ("ns/event", ns_per_event)] {
        if !v.is_finite() {
            return Err(format!("{engine} engine produced non-finite {what}: {v}").into());
        }
    }
    Ok(EngineResult {
        engine: engine.to_string(),
        runs,
        events,
        best_secs,
        events_per_sec,
        ns_per_event,
        peak_live_flows,
        makespan_ns,
    })
}

/// Measures the hot path and builds the report document.
///
/// # Errors
///
/// Propagates engine errors and rejects any non-finite measurement —
/// the property the CI smoke step relies on.
pub fn measure(args: &BenchArgs) -> Result<BenchReport> {
    let flows = args
        .flows
        .unwrap_or(if args.quick { QUICK_FLOWS } else { FULL_FLOWS });
    let scenario = hotpath_scenario(flows)?;

    let mut best_indexed: Option<(f64, u64, usize, u64)> = None;
    for _ in 0..INDEXED_RUNS {
        let r = run_indexed(&scenario)?;
        match &best_indexed {
            Some(b) if b.0 <= r.0 => {}
            _ => best_indexed = Some(r),
        }
    }
    let (secs, events, peak, makespan_ns) = best_indexed.expect("at least one run");
    let indexed = engine_result(
        "indexed",
        INDEXED_RUNS,
        events,
        secs,
        Some(peak),
        makespan_ns,
    )?;

    let mut engines = vec![indexed];
    let mut speedup = None;
    if !args.quick {
        let mut best_naive: Option<(f64, u64, u64)> = None;
        for _ in 0..NAIVE_RUNS {
            let r = run_naive(&scenario)?;
            match &best_naive {
                Some(b) if b.0 <= r.0 => {}
                _ => best_naive = Some(r),
            }
        }
        let (nsecs, nevents, nmakespan) = best_naive.expect("at least one run");
        if nmakespan != makespan_ns {
            return Err(format!(
                "engines diverged: indexed makespan {makespan_ns} ns, naive {nmakespan} ns"
            )
            .into());
        }
        let naive = engine_result("naive", NAIVE_RUNS, nevents, nsecs, None, nmakespan)?;
        let ratio = engines[0].events_per_sec / naive.events_per_sec;
        if !ratio.is_finite() {
            return Err(format!("non-finite speedup {ratio}").into());
        }
        speedup = Some(ratio);
        engines.push(naive);
    }

    Ok(BenchReport {
        schema: "npp.bench.simnet/v1".to_string(),
        scenario: scenario.name,
        flows,
        quick: args.quick,
        engines,
        speedup_vs_naive: speedup,
    })
}

/// Runs `netpp bench-json`.
///
/// # Errors
///
/// Propagates measurement, serialization, and file-write errors.
pub fn run(rest: &[&str], _json: bool) -> Result<()> {
    let args = parse_args(rest)?;
    let report = measure(&args)?;
    let doc = npp_report::export::to_json(&report)?;
    if let Some(path) = &args.out {
        std::fs::write(path, format!("{doc}\n"))
            .map_err(|e| format!("cannot write {path:?}: {e}"))?;
        eprintln!("wrote {path}");
    }
    println!("{doc}");
    if let Some(s) = report.speedup_vs_naive {
        eprintln!(
            "indexed: {:.0} events/s ({:.0} ns/event), naive: {:.0} events/s — {s:.1}x",
            report.engines[0].events_per_sec,
            report.engines[0].ns_per_event,
            report.engines[1].events_per_sec,
        );
    } else {
        eprintln!(
            "indexed: {:.0} events/s ({:.0} ns/event), peak {} live flows",
            report.engines[0].events_per_sec,
            report.engines[0].ns_per_event,
            report.engines[0].peak_live_flows.unwrap_or(0),
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flags() {
        let args = parse_args(&["--quick", "--out", "b.json", "--flows", "50"]).unwrap();
        assert!(args.quick);
        assert_eq!(args.out.as_deref(), Some("b.json"));
        assert_eq!(args.flows, Some(50));
        assert_eq!(
            parse_args(&[]).unwrap(),
            BenchArgs {
                quick: false,
                out: None,
                flows: None
            }
        );
    }

    #[test]
    fn rejects_bad_invocations() {
        assert!(parse_args(&["--out"]).is_err());
        assert!(parse_args(&["--flows"]).is_err());
        assert!(parse_args(&["--flows", "zero"]).is_err());
        assert!(parse_args(&["--flows", "0"]).is_err());
        assert!(parse_args(&["--frobnicate"]).is_err());
    }

    #[test]
    fn quick_measurement_is_finite_and_indexed_only() {
        let report = measure(&BenchArgs {
            quick: true,
            out: None,
            flows: Some(64),
        })
        .unwrap();
        assert_eq!(report.engines.len(), 1);
        assert_eq!(report.engines[0].engine, "indexed");
        assert!(report.engines[0].events_per_sec.is_finite());
        assert!(report.engines[0].ns_per_event > 0.0);
        assert!(report.engines[0].peak_live_flows.unwrap() >= 1);
        assert!(report.speedup_vs_naive.is_none());
    }

    #[test]
    fn full_measurement_compares_both_engines() {
        let report = measure(&BenchArgs {
            quick: false,
            out: None,
            flows: Some(96),
        })
        .unwrap();
        assert_eq!(report.engines.len(), 2);
        assert_eq!(report.engines[1].engine, "naive");
        // Equivalence is asserted inside measure(); the echoed makespans
        // must therefore match here too.
        assert_eq!(report.engines[0].makespan_ns, report.engines[1].makespan_ns);
        assert!(report.speedup_vs_naive.unwrap().is_finite());
    }
}
