//! Library backing the `netpp` binary: every subcommand is a plain
//! function here so it can be unit- and integration-tested without
//! spawning processes.
//!
//! The separation also documents the boundary: `main.rs` only parses
//! arguments and dispatches; all behaviour lives in [`paper`] (the
//! paper's tables/figures) and [`mech`] (the §4 mechanism evaluations
//! and §3.4 studies).

pub mod bench;
pub mod bench_compare;
pub mod lint;
pub mod mech;
pub mod paper;
pub mod powerscope;
pub mod profile;
pub mod serve;
pub mod sweep;

pub use paper::{CliError, Result};
