//! CLI commands for the §4 mechanism evaluations and the §3.4 ISP
//! scenario.

use npp_mechanisms::comparison::{compare_mechanisms, ml_workload};
use npp_mechanisms::eee::{simulate_eee, sleep_viability, EeeParams};
use npp_mechanisms::knobs::{apply_profile, DeploymentProfile};
use npp_mechanisms::ocs_sched::{plan, Job, Placement, RoutingMode};
use npp_mechanisms::pipeline_park::{simulate_parking, ParkConfig, PredictiveSchedule};
use npp_mechanisms::rate_adapt::{simulate_rate_adaptation, RateAdaptConfig};
use npp_power::{LinearPower, PowerModel, Proportionality, TwoStatePower};
use npp_report::export::to_json;
use npp_report::Table;
use npp_simnet::sources::OnOffSource;
use npp_simnet::switchsim::SwitchParams;
use npp_simnet::SimTime;
use npp_topology::builder::three_tier_fat_tree;
use npp_topology::isp::abilene;
use npp_units::{Gbps, Ratio, Watts};
use npp_workload::parallelism::TrafficMatrix;
use npp_workload::trace::{DiurnalTrace, LoadTrace};

use crate::paper::Result;

const HORIZON: SimTime = SimTime::from_millis(10);

/// §-history: the EEE baseline and its obsolescence at high rates.
pub fn eee(json: bool) -> Result<()> {
    let params = EeeParams::ten_gbase_t();
    let mut src = OnOffSource::new(1_000_000, 900_000, Gbps::new(10.0), 1500, 0, HORIZON)?;
    let report = simulate_eee(&params, &mut src, HORIZON)?;
    if json {
        println!("{}", to_json(&report)?);
        return Ok(());
    }
    println!("802.3az EEE on 10GBASE-T, ML burst traffic (10% duty):");
    println!(
        "  savings: {}   LPI time: {}   sleep cycles: {}",
        report.savings, report.lpi_fraction, report.sleep_cycles
    );
    println!(
        "  added latency: mean {:.0} ns, max {:.0} ns",
        report.mean_added_latency_ns, report.max_added_latency_ns
    );

    let mut t = Table::new(vec!["Utilization", "10G viable sleep", "400G viable sleep"])
        .with_title("\nWhy EEE became obsolete: usable fraction of idle gaps");
    for u in [0.001, 0.01, 0.05, 0.1, 0.3] {
        t.push_row(vec![
            format!("{:.1}%", u * 100.0),
            format!("{}", sleep_viability(&EeeParams::ten_gbase_t(), u, 1500)),
            format!(
                "{}",
                sleep_viability(&EeeParams::hypothetical_400g(), u, 1500)
            ),
        ]);
    }
    println!("{}", t.render());
    Ok(())
}

/// §4.1: power knobs.
pub fn knobs(json: bool) -> Result<()> {
    let profiles = [
        (
            "L2 leaf, half ports, buggy firmware",
            DeploymentProfile::l2_leaf_today(),
        ),
        (
            "L2 leaf, half ports, fixed firmware",
            DeploymentProfile::l2_leaf_fixed(),
        ),
        (
            "L3 full-FIB, all ports",
            DeploymentProfile {
                ports_used: 64,
                ports_total: 64,
                l3_routing: true,
                full_fib: true,
                port_gating_works: true,
            },
        ),
    ];
    let mut t = Table::new(vec![
        "Deployment",
        "Exposed savings",
        "Physical savings",
        "Physical prop.",
    ])
    .with_title("par. 4.1: exposed vs physically possible gating savings (750W switch)");
    let mut reports = Vec::new();
    for (name, p) in &profiles {
        let r = apply_profile(p)?;
        t.push_row(vec![
            name.to_string(),
            format!("{}", r.exposed_savings),
            format!("{}", r.physical_savings),
            format!("{}", r.physical_proportionality),
        ]);
        reports.push(r);
    }
    if json {
        println!("{}", to_json(&reports)?);
    } else {
        println!("{}", t.render());
    }
    Ok(())
}

/// §4.2: OCS job scheduling on a k=8 fat tree.
pub fn ocs(json: bool) -> Result<()> {
    let topo = three_tier_fat_tree(8, Gbps::new(400.0))?;
    let ring: Vec<usize> = (0..32).collect();
    let m = TrafficMatrix::ring(32, &ring, Gbps::new(100.0))?;
    let job = Job::from_matrix("dp-ring-32", &m);
    let scenarios = [
        (
            "spread placement, ECMP spray",
            Placement::Spread,
            RoutingMode::Sprayed,
            false,
        ),
        (
            "packed placement, ECMP spray",
            Placement::Packed,
            RoutingMode::Sprayed,
            false,
        ),
        (
            "packed + concentrated routing",
            Placement::Packed,
            RoutingMode::Concentrated,
            false,
        ),
        (
            "packed + concentrated + OCS",
            Placement::Packed,
            RoutingMode::Concentrated,
            true,
        ),
    ];
    let mut t = Table::new(vec!["Scenario", "Switches on", "Power (kW)", "Savings"])
        .with_title("par. 4.2: 32-rank DP ring on a 128-host fat tree (80 switches)");
    let mut plans = Vec::new();
    for (name, placement, mode, use_ocs) in scenarios {
        let p = plan(
            &topo,
            &[(job.clone(), placement)],
            Watts::new(750.0),
            mode,
            use_ocs,
        )?;
        t.push_row(vec![
            name.to_string(),
            format!("{}", p.active_switches.len()),
            format!("{:.1}", p.power.as_kw()),
            format!("{}", p.savings),
        ]);
        plans.push(p);
    }
    if json {
        println!("{}", to_json(&plans)?);
    } else {
        println!("{}", t.render());
        if let Some(first) = plans.first() {
            println!("(all-on fabric: {:.1} kW)", first.power_all_on.as_kw());
        }
    }
    Ok(())
}

/// §4.3: rate adaptation.
pub fn rate(json: bool) -> Result<()> {
    let params = SwitchParams::paper_51t2();
    let global = simulate_rate_adaptation(
        params,
        &RateAdaptConfig::default_global(),
        &mut ml_workload(HORIZON),
        HORIZON,
    )?;
    let per = simulate_rate_adaptation(
        params,
        &RateAdaptConfig::default_per_pipeline(),
        &mut ml_workload(HORIZON),
        HORIZON,
    )?;
    if json {
        println!("{}", to_json(&vec![&global, &per])?);
        return Ok(());
    }
    let mut t = Table::new(vec!["Mode", "Savings", "Loss", "p99 latency (us)"])
        .with_title("par. 4.3: rate adaptation on ML burst traffic (51.2T switch)");
    for (name, r) in [
        ("global clock (today)", &global),
        ("per-pipeline (proposal)", &per),
    ] {
        t.push_row(vec![
            name.to_string(),
            format!("{}", r.savings),
            format!("{:.2}%", r.loss_rate * 100.0),
            format!("{:.1}", r.p99_latency_ns / 1000.0),
        ]);
    }
    println!("{}", t.render());
    Ok(())
}

/// §4.4: pipeline parking.
pub fn park(json: bool) -> Result<()> {
    let params = SwitchParams::paper_51t2();
    let reactive = simulate_parking(
        params,
        &ParkConfig::reactive(),
        &mut ml_workload(HORIZON),
        HORIZON,
    )?;
    let predictive = simulate_parking(
        params,
        &ParkConfig::predictive(PredictiveSchedule {
            period_ns: 1_000_000,
            burst_start_ns: 900_000,
            burst_len_ns: 100_000,
            prewake_ns: 200_000,
        }),
        &mut ml_workload(HORIZON),
        HORIZON,
    )?;
    if json {
        println!("{}", to_json(&vec![&reactive, &predictive])?);
        return Ok(());
    }
    let mut t = Table::new(vec![
        "Policy", "Savings", "Loss", "p99 (us)", "Parks", "Wakes",
    ])
    .with_title("par. 4.4: pipeline parking behind a circuit switch (Figure 5)");
    for (name, r) in [
        ("reactive", &reactive),
        ("predictive (ML schedule)", &predictive),
    ] {
        t.push_row(vec![
            name.to_string(),
            format!("{}", r.savings),
            format!("{:.2}%", r.loss_rate * 100.0),
            format!("{:.1}", r.p99_latency_ns / 1000.0),
            format!("{}", r.parks),
            format!("{}", r.wakes),
        ]);
    }
    println!("{}", t.render());
    Ok(())
}

/// The cross-mechanism comparison.
pub fn compare(json: bool) -> Result<()> {
    let table = compare_mechanisms(HORIZON)?;
    if json {
        println!("{}", to_json(&table)?);
        return Ok(());
    }
    let mut t = Table::new(vec![
        "Mechanism",
        "Savings",
        "Prop. floor",
        "Loss",
        "p99 (us)",
    ])
    .with_title("par. 4: all mechanisms, one ML workload (51.2T switch, 10% comm ratio)");
    for r in &table {
        t.push_row(vec![
            r.name.clone(),
            format!("{}", r.savings),
            format!("{}", r.proportionality_floor),
            format!("{:.2}%", r.loss_rate * 100.0),
            format!("{:.1}", r.p99_latency_ns / 1000.0),
        ]);
    }
    println!("{}", t.render());
    println!("(compute proportionality for reference: 85%)");
    Ok(())
}

/// §3.4: ISP diurnal underutilization on the Abilene backbone.
pub fn isp(json: bool) -> Result<()> {
    let topo = abilene(Gbps::new(400.0));
    let routers = topo.switches().len() as f64;
    let trace = DiurnalTrace::typical_backbone(42);
    let day = npp_units::Seconds::from_hours(24.0);
    let mean_util = trace.mean_utilization(day, 24 * 60);

    #[derive(serde::Serialize)]
    struct IspRow {
        proportionality: f64,
        two_state_mw: f64,
        linear_mw: f64,
        savings_vs_flat: f64,
    }

    let router_max = Watts::new(750.0);
    let flat_power = router_max * routers;
    let mut rows = Vec::new();
    for pct in [10.0, 50.0, 85.0, 100.0] {
        let p = Proportionality::from_percent(pct)?;
        // Two-state: routers never fully idle (traffic 24/7), so a
        // two-state device saves nothing — linearity is what pays here.
        let two_state =
            TwoStatePower::new(router_max, p).power_at(Ratio::new(mean_util.fraction()));
        let linear = LinearPower::new(router_max, p).power_at(mean_util);
        rows.push(IspRow {
            proportionality: pct,
            two_state_mw: (two_state * routers).as_mw(),
            linear_mw: (linear * routers).as_mw(),
            savings_vs_flat: 1.0 - (linear * routers) / flat_power,
        });
    }
    if json {
        println!("{}", to_json(&rows)?);
        return Ok(());
    }
    println!(
        "par. 3.4: Abilene backbone ({} routers), diurnal load, mean utilization {}",
        routers, mean_util
    );
    let mut t = Table::new(vec![
        "Proportionality",
        "Two-state power (MW)",
        "Linear power (MW)",
        "Linear savings",
    ]);
    for r in rows {
        t.push_row(vec![
            format!("{}%", r.proportionality),
            format!("{:.4}", r.two_state_mw),
            format!("{:.4}", r.linear_mw),
            format!("{:.1}%", r.savings_vs_flat * 100.0),
        ]);
    }
    println!("{}", t.render());
    println!("ISP links are *underutilized*, not unused: only load-proportional");
    println!("(linear) devices capture the gap — the par. 3.4 distinction.");

    // Green TE: concentrate traffic at night and sleep whole links.
    let te = npp_mechanisms::isp_study::run_green_te(
        &npp_mechanisms::isp_study::IspStudyConfig::default(),
        Ratio::new(0.8),
    )?;
    println!(
        "
Green traffic engineering (sleep links whose traffic reroutes <=80% util):"
    );
    print!("  sleepable links by hour: ");
    let marks: Vec<String> = te
        .sleepable_per_hour
        .iter()
        .map(|n| n.to_string())
        .collect();
    println!("{}", marks.join(" "));
    println!(
        "  transceiver energy saved over 24h: {} (of {} backbone links)",
        te.savings, te.links_total
    );
    Ok(())
}

/// §4.5: the clean-slate redesign options.
pub fn redesign(json: bool) -> Result<()> {
    use npp_mechanisms::redesign::{granularity_sweep, CpoSwitch};

    let sweep = granularity_sweep(0.10)?;
    if json {
        println!("{}", to_json(&sweep)?);
        return Ok(());
    }
    let mut t = Table::new(vec![
        "Units",
        "Max power (W)",
        "Idle prop.",
        "ML avg power (W)",
        "Savings vs 4 units",
    ])
    .with_title("par. 4.5: many-small-pipelines granularity sweep (10% comm duty)");
    for p in &sweep {
        t.push_row(vec![
            format!("{}", p.units),
            format!("{:.0}", p.max_power.value()),
            format!("{}", p.idle_proportionality),
            format!("{:.0}", p.average_power_ml.value()),
            format!("{}", p.savings_vs_baseline),
        ]);
    }
    println!("{}", t.render());

    let sim_rows = npp_mechanisms::comparison::compare_granularity(SimTime::from_millis(10))?;
    let mut ts = Table::new(vec![
        "Units",
        "Simulated savings (predictive parking)",
        "Loss",
    ])
    .with_title("Granularity validated by simulation (same policy, same traffic)");
    for r in &sim_rows {
        ts.push_row(vec![
            format!("{}", r.units),
            format!("{}", r.savings),
            format!("{:.2}%", r.loss_rate * 100.0),
        ]);
    }
    println!("{}", ts.render());

    let cpo = CpoSwitch::paper_cpo();
    println!("Co-packaged optics (64x800G):");
    println!(
        "  pluggables: {:.0} W -> CPO: {:.0} W ({} at full load)",
        CpoSwitch::pluggable_total().value(),
        cpo.max_power().value(),
        cpo.full_load_savings(),
    );
    println!(
        "  with half the ports dark: {:.0} W (optics gate per port)",
        cpo.power_with_ports(32).value()
    );
    Ok(())
}

/// §3.4 fabric-scale underutilization on an explicit fat tree.
pub fn fabric(json: bool) -> Result<()> {
    use npp_mechanisms::fabric::{run_fabric_study, FabricStudyConfig};

    let r = run_fabric_study(&FabricStudyConfig::default())?;
    if json {
        println!("{}", to_json(&r)?);
        return Ok(());
    }
    println!("par. 3.4: 64-rank ring all-reduce on a 128-host fat tree (400G links)");
    println!(
        "  switches touched during comm: {}/{}   unused inter-switch links: {}/{}",
        r.switches_touched, r.switches_total, r.links_unused_during_comm, r.links_total
    );
    println!(
        "  mean inter-switch utilization during comm: {}",
        r.mean_comm_utilization
    );
    let mut t = Table::new(vec!["Scheme", "Energy/iter (kJ)", "Savings vs two-state"]);
    for (name, e, s) in [
        ("all devices at max", r.energy_all_max, None),
        ("two-state @10% (core model)", r.energy_two_state, None),
        (
            "+ park untouched devices (par. 4.2)",
            r.energy_parked,
            Some(r.savings_parked),
        ),
        (
            "+ sleep used devices off-phase (par. 4.3/4.4)",
            r.energy_parked_and_sleeping,
            Some(r.savings_composite),
        ),
    ] {
        t.push_row(vec![
            name.to_string(),
            format!("{:.1}", e.value() / 1000.0),
            s.map(|x| format!("{x}")).unwrap_or_default(),
        ]);
    }
    println!("{}", t.render());
    Ok(())
}

/// §4.1 automatic C-state governor on ML phase traffic.
pub fn governor(json: bool) -> Result<()> {
    use npp_mechanisms::governor::{run_governor, GovernorConfig};
    use npp_units::Seconds;
    use npp_workload::trace::MlPhaseTrace;

    let trace = MlPhaseTrace {
        compute: Seconds::from_millis(90.0),
        comm: Seconds::from_millis(10.0),
        peak: Ratio::ONE,
    };
    let configs = [
        ("default (200us exit budget)", GovernorConfig::default()),
        (
            "latency-sensitive (50us budget)",
            GovernorConfig {
                exit_latency_budget: Seconds::from_micros(50.0),
                ..GovernorConfig::default()
            },
        ),
    ];
    let mut t = Table::new(vec![
        "Governor",
        "Savings",
        "Transitions",
        "Capacity misses",
    ])
    .with_title("par. 4.1: automatic C-state governor (ML phases, 100ms iterations)");
    let mut reports = Vec::new();
    for (name, cfg) in &configs {
        let r = run_governor(&trace, Seconds::new(2.0), cfg)?;
        t.push_row(vec![
            name.to_string(),
            format!("{}", r.savings),
            format!("{}", r.transitions),
            format!("{}", r.capacity_misses),
        ]);
        reports.push(r);
    }
    if json {
        println!("{}", to_json(&reports)?);
    } else {
        println!("{}", t.render());
        print!("state residency (default governor): ");
        let parts: Vec<String> = reports
            .first()
            .map(|r| r.residency.as_slice())
            .unwrap_or_default()
            .iter()
            .map(|(n, s)| format!("{n}={:.0}%", s.value() / 2.0 * 100.0))
            .collect();
        println!("{}", parts.join("  "));
    }
    Ok(())
}

/// §4.2 job-churn timeline with OCS replanning.
pub fn timeline(json: bool) -> Result<()> {
    use npp_mechanisms::ocs_dynamics::{simulate_job_timeline, JobEvent, OcsDynamicsConfig};
    use npp_units::Seconds;

    let ring_job = |name: &str, ranks: usize| -> Result<npp_mechanisms::ocs_sched::Job> {
        let ring: Vec<usize> = (0..ranks).collect();
        Ok(Job::from_matrix(
            name,
            &TrafficMatrix::ring(ranks, &ring, Gbps::new(100.0))?,
        ))
    };
    let events = vec![
        JobEvent::Arrive {
            at: Seconds::from_hours(1.0),
            job: ring_job("train-a", 64)?,
            placement: Placement::Packed,
        },
        JobEvent::Arrive {
            at: Seconds::from_hours(6.0),
            job: ring_job("train-b", 32)?,
            placement: Placement::Packed,
        },
        JobEvent::Depart {
            at: Seconds::from_hours(18.0),
            name: "train-a".into(),
        },
    ];
    let r = simulate_job_timeline(
        &OcsDynamicsConfig::default(),
        &events,
        Seconds::from_hours(24.0),
    )?;
    if json {
        println!("{}", to_json(&r)?);
        return Ok(());
    }
    println!("par. 4.2: one day of job churn on a 128-host fat tree (80 switches)");
    println!(
        "  replans: {}   make-before-break time: {:.0} ms",
        r.reconfigurations,
        r.reconfiguration_time.as_millis()
    );
    println!("  avg switches powered: {:.1} / 80", r.avg_switches_on);
    println!(
        "  energy: {:.1} kWh vs always-on {:.1} kWh  ->  {} saved",
        r.energy.as_kwh(),
        r.energy_all_on.as_kwh(),
        r.savings
    );
    Ok(())
}

/// §4.4 wake-latency frontier.
pub fn frontier(json: bool) -> Result<()> {
    use npp_mechanisms::pipeline_park::wake_latency_frontier;
    use npp_simnet::sources::MergedSource;

    let horizon = SimTime::from_millis(10);
    // 300 µs bursts so mid-burst wakes matter.
    let mk = || -> Box<dyn npp_simnet::sources::TrafficSource> {
        let per_port = (0..4)
            .map(|port| {
                Box::new(
                    OnOffSource::new(
                        1_000_000,
                        700_000,
                        Gbps::from_tbps(5.0),
                        12_500,
                        port,
                        horizon,
                    )
                    .expect("static parameters are valid"),
                ) as Box<dyn npp_simnet::sources::TrafficSource>
            })
            .collect();
        Box::new(MergedSource::new(per_port))
    };
    let grid = [1_000u64, 10_000, 50_000, 100_000, 500_000, 1_000_000];
    let rows = wake_latency_frontier(
        SwitchParams::paper_51t2(),
        &npp_mechanisms::pipeline_park::ParkConfig::reactive(),
        &mk,
        horizon,
        &grid,
    )?;
    if json {
        println!("{}", to_json(&rows)?);
        return Ok(());
    }
    let mut t = Table::new(vec!["Wake latency (us)", "Savings", "Loss", "p99 (us)"])
        .with_title("par. 4.4 frontier: how fast must a pipeline wake? (reactive parking)");
    for r in &rows {
        t.push_row(vec![
            format!("{}", r.wake_ns / 1000),
            format!("{}", r.savings),
            format!("{:.2}%", r.loss_rate * 100.0),
            format!("{:.1}", r.p99_latency_ns / 1000.0),
        ]);
    }
    println!("{}", t.render());
    println!("\"The challenge here is to be able to turn a pipeline on quickly");
    println!("enough to react to an increase in demand without inducing packet");
    println!("losses\" — par. 4.4, as a measurable hardware requirement.");
    Ok(())
}
