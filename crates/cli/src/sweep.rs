//! The `netpp sweep` subcommand: run a `SweepSpec` file through the
//! `npp-sweep` engine.
//!
//! ```text
//! netpp sweep <spec.json> [--jobs N] [--threads N] [--cache DIR]
//!                         [--json] [--quiet] [--trace PATH]
//!                         [--metrics] [--dry-run]
//! ```
//!
//! The deterministic results document goes to stdout; progress and the
//! volatile run summary (wall time, cache counters) go to stderr, so
//! `--json` output is byte-identical for any `--jobs` value and can be
//! diffed or hashed directly. `--trace` writes the canonical
//! `npp.trace/v1` JSONL (also byte-identical for any `--jobs` value);
//! `--metrics` dumps the metrics registry snapshot to stderr.

use std::sync::atomic::{AtomicUsize, Ordering};

use npp_report::export::to_json;
use npp_sweep::{
    best_per_axis, frontier_table, run_summary, run_sweep, ProgressEvent, SweepOptions, SweepSpec,
};
use npp_telemetry::progress;

use crate::paper::Result;

/// Parsed arguments for `netpp sweep`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepArgs {
    /// Path of the spec file.
    pub spec_path: String,
    /// Worker threads (default: available parallelism).
    pub jobs: usize,
    /// Engine worker threads per scenario (default 1). Results are
    /// bit-identical at every value; this only changes wall time.
    pub threads: usize,
    /// Cache directory, if caching was requested.
    pub cache_dir: Option<String>,
    /// Suppress stderr progress lines.
    pub quiet: bool,
    /// Write the canonical trace JSONL here.
    pub trace_path: Option<String>,
    /// Dump the metrics registry snapshot to stderr after the run.
    pub metrics: bool,
    /// Validate and size the grid without simulating anything.
    pub dry_run: bool,
}

/// Parses `sweep` arguments from the raw argv tail (everything after
/// the subcommand; `--json` is handled by the caller and ignored here).
///
/// # Errors
///
/// Rejects missing spec paths, malformed flag values, and unknown
/// flags.
pub fn parse_args(rest: &[&str]) -> Result<SweepArgs> {
    let mut spec_path = None;
    let mut jobs = None;
    let mut threads = None;
    let mut cache_dir = None;
    let mut quiet = false;
    let mut trace_path = None;
    let mut metrics = false;
    let mut dry_run = false;
    let mut it = rest.iter().copied();
    while let Some(arg) = it.next() {
        match arg {
            "--json" => {}
            "--quiet" => quiet = true,
            "--metrics" => metrics = true,
            "--dry-run" => dry_run = true,
            "--trace" => {
                trace_path = Some(it.next().ok_or("--trace needs a path")?.to_string());
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                jobs = Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("bad --jobs value {v:?}"))?,
                );
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                let n = v
                    .parse::<usize>()
                    .map_err(|_| format!("bad --threads value {v:?}"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".into());
                }
                threads = Some(n);
            }
            "--cache" => {
                cache_dir = Some(it.next().ok_or("--cache needs a directory")?.to_string());
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown sweep flag {flag:?}").into());
            }
            path if spec_path.is_none() => spec_path = Some(path.to_string()),
            extra => return Err(format!("unexpected argument {extra:?}").into()),
        }
    }
    let default_jobs = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    Ok(SweepArgs {
        spec_path: spec_path.ok_or(
            "usage: netpp sweep <spec.json> [--jobs N] [--threads N] [--cache DIR] [--json] [--quiet] [--trace PATH] [--metrics] [--dry-run]",
        )?,
        jobs: jobs.unwrap_or(default_jobs),
        threads: threads.unwrap_or(1),
        cache_dir,
        quiet,
        trace_path,
        metrics,
        dry_run,
    })
}

/// Renders the `--dry-run` summary: validates the spec and reports the
/// grid shape without executing a single scenario.
fn dry_run_summary(spec: &SweepSpec, json: bool) -> String {
    let total = spec.grid_size();
    if json {
        let axes: Vec<String> = spec
            .axes
            .iter()
            .map(|a| format!("{{\"axis\":\"{}\",\"cardinality\":{}}}", a.name(), a.len()))
            .collect();
        format!(
            "{{\"name\":\"{}\",\"dry_run\":true,\"scenarios\":{},\"axes\":[{}]}}",
            spec.name,
            total,
            axes.join(",")
        )
    } else {
        let mut out = format!("sweep `{}` (dry run): {} scenario(s)\n", spec.name, total);
        if spec.axes.is_empty() {
            out.push_str("  no axes: the base scenario only\n");
        }
        for axis in &spec.axes {
            out.push_str(&format!("  {:<24} x{}\n", axis.name(), axis.len()));
        }
        out.push_str("nothing was simulated");
        out
    }
}

/// Runs `netpp sweep`.
///
/// # Errors
///
/// Propagates spec-file, engine, and serialization errors.
pub fn run(rest: &[&str], json: bool) -> Result<()> {
    let args = parse_args(rest)?;
    progress::set_quiet(args.quiet);
    let record = args.trace_path.is_some() || args.metrics;
    if record {
        npp_telemetry::metrics::reset();
        npp_telemetry::start();
    }

    let text = std::fs::read_to_string(&args.spec_path)
        .map_err(|e| format!("cannot read spec {:?}: {e}", args.spec_path))?;
    let spec: SweepSpec = serde_json::from_str(&text)
        .map_err(|e| format!("cannot parse spec {:?}: {e}", args.spec_path))?;

    if args.dry_run {
        // Size the grid and stop before any scenario executes.
        println!("{}", dry_run_summary(&spec, json));
        return Ok(());
    }

    let mut opts = SweepOptions {
        jobs: args.jobs,
        cache_dir: None,
        threads: args.threads,
    };
    if let Some(dir) = &args.cache_dir {
        opts = opts.with_cache(dir);
    }

    // Whole-line progress to stderr, roughly every 10 % of the grid.
    // Lines go through the telemetry progress writer so parallel workers
    // never interleave partial lines (and `--quiet` drops them all).
    let done = AtomicUsize::new(0);
    let total = spec.grid_size();
    let stride = (total / 10).max(1);
    let hook = move |ev: &ProgressEvent| match ev {
        ProgressEvent::Started { name, total, jobs } => {
            progress::emit(&format!("sweep `{name}`: {total} scenarios on {jobs} jobs"));
        }
        ProgressEvent::ScenarioDone { .. } => {
            let n = done.fetch_add(1, Ordering::Relaxed) + 1;
            if n % stride == 0 || n == total {
                progress::emit(&format!("  {n}/{total} scenarios done"));
            }
        }
        ProgressEvent::Finished { .. } => {}
    };

    let outcome = run_sweep(&spec, &opts, Some(&hook))?;
    progress::emit(&run_summary(&outcome));

    if record {
        let trace = npp_telemetry::finish();
        if let Some(path) = &args.trace_path {
            std::fs::write(path, trace.to_canonical_jsonl())
                .map_err(|e| format!("cannot write trace {path:?}: {e}"))?;
            progress::emit(&format!("trace: {} records -> {path}", trace.len()));
        }
        if args.metrics {
            progress::emit(&npp_telemetry::metrics::snapshot().to_text());
        }
    }

    if json {
        // Deterministic document only — volatile metrics stay on stderr.
        println!("{}", to_json(&outcome.results)?);
        return Ok(());
    }

    println!(
        "{}",
        best_per_axis(&spec, &outcome.results.scenarios).render()
    );
    println!(
        "{}",
        frontier_table(&outcome.results.scenarios, &outcome.results.frontier).render()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_flag_set() {
        let args = parse_args(&[
            "grid.json",
            "--jobs",
            "4",
            "--cache",
            "/tmp/c",
            "--json",
            "--quiet",
            "--trace",
            "/tmp/t.jsonl",
            "--metrics",
        ])
        .unwrap();
        assert_eq!(args.spec_path, "grid.json");
        assert_eq!(args.jobs, 4);
        assert_eq!(args.cache_dir.as_deref(), Some("/tmp/c"));
        assert!(args.quiet);
        assert_eq!(args.trace_path.as_deref(), Some("/tmp/t.jsonl"));
        assert!(args.metrics);
    }

    #[test]
    fn telemetry_flags_default_off() {
        let args = parse_args(&["grid.json"]).unwrap();
        assert!(!args.quiet);
        assert!(args.trace_path.is_none());
        assert!(!args.metrics);
        assert!(!args.dry_run);
    }

    #[test]
    fn dry_run_reports_grid_shape_without_running() {
        let args = parse_args(&["grid.json", "--dry-run"]).unwrap();
        assert!(args.dry_run);

        let spec = SweepSpec {
            name: "shape".into(),
            base: npp_sweep::ScenarioSpec::paper_baseline(),
            axes: vec![
                npp_sweep::Axis::BandwidthGbps(vec![100.0, 200.0, 400.0]),
                npp_sweep::Axis::CommRatio(vec![0.1, 0.2]),
            ],
        };
        let text = dry_run_summary(&spec, false);
        assert!(text.contains("6 scenario(s)"), "{text}");
        assert!(text.contains("bandwidth_gbps"), "{text}");
        assert!(text.contains("x3"), "{text}");
        assert!(text.contains("comm_ratio"), "{text}");
        assert!(text.contains("x2"), "{text}");

        let doc = dry_run_summary(&spec, true);
        let parsed: serde_json::Value = serde_json::from_str(&doc).unwrap();
        assert!(matches!(parsed, serde_json::Value::Object(_)));
        assert!(doc.contains("\"scenarios\":6"), "{doc}");
        assert!(doc.contains("\"cardinality\":3"), "{doc}");

        // A sweep with no axes is the single base scenario.
        let point = SweepSpec {
            name: "point".into(),
            base: npp_sweep::ScenarioSpec::paper_baseline(),
            axes: Vec::new(),
        };
        assert!(dry_run_summary(&point, false).contains("1 scenario(s)"));
    }

    #[test]
    fn rejects_bad_invocations() {
        assert!(parse_args(&[]).is_err());
        assert!(parse_args(&["spec.json", "--jobs"]).is_err());
        assert!(parse_args(&["spec.json", "--jobs", "many"]).is_err());
        assert!(parse_args(&["spec.json", "--trace"]).is_err());
        assert!(parse_args(&["spec.json", "--frobnicate"]).is_err());
        assert!(parse_args(&["a.json", "b.json"]).is_err());
    }

    #[test]
    fn jobs_defaults_to_parallelism() {
        let args = parse_args(&["spec.json"]).unwrap();
        assert!(args.jobs >= 1);
        assert!(args.cache_dir.is_none());
    }
}
