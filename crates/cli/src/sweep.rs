//! The `netpp sweep` subcommand: run a `SweepSpec` file through the
//! `npp-sweep` engine.
//!
//! ```text
//! netpp sweep <spec.json> [--jobs N] [--cache DIR] [--json]
//! ```
//!
//! The deterministic results document goes to stdout; progress and the
//! volatile run summary (wall time, cache counters) go to stderr, so
//! `--json` output is byte-identical for any `--jobs` value and can be
//! diffed or hashed directly.

use std::io::Write;
use std::sync::atomic::{AtomicUsize, Ordering};

use npp_report::export::to_json;
use npp_sweep::{
    best_per_axis, frontier_table, run_summary, run_sweep, ProgressEvent, SweepOptions, SweepSpec,
};

use crate::paper::Result;

/// Parsed arguments for `netpp sweep`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepArgs {
    /// Path of the spec file.
    pub spec_path: String,
    /// Worker threads (default: available parallelism).
    pub jobs: usize,
    /// Cache directory, if caching was requested.
    pub cache_dir: Option<String>,
}

/// Parses `sweep` arguments from the raw argv tail (everything after
/// the subcommand; `--json` is handled by the caller and ignored here).
///
/// # Errors
///
/// Rejects missing spec paths, malformed flag values, and unknown
/// flags.
pub fn parse_args(rest: &[&str]) -> Result<SweepArgs> {
    let mut spec_path = None;
    let mut jobs = None;
    let mut cache_dir = None;
    let mut it = rest.iter().copied();
    while let Some(arg) = it.next() {
        match arg {
            "--json" => {}
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                jobs = Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("bad --jobs value {v:?}"))?,
                );
            }
            "--cache" => {
                cache_dir = Some(it.next().ok_or("--cache needs a directory")?.to_string());
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown sweep flag {flag:?}").into());
            }
            path if spec_path.is_none() => spec_path = Some(path.to_string()),
            extra => return Err(format!("unexpected argument {extra:?}").into()),
        }
    }
    let default_jobs = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    Ok(SweepArgs {
        spec_path: spec_path
            .ok_or("usage: netpp sweep <spec.json> [--jobs N] [--cache DIR] [--json]")?,
        jobs: jobs.unwrap_or(default_jobs),
        cache_dir,
    })
}

/// Runs `netpp sweep`.
///
/// # Errors
///
/// Propagates spec-file, engine, and serialization errors.
pub fn run(rest: &[&str], json: bool) -> Result<()> {
    let args = parse_args(rest)?;
    let text = std::fs::read_to_string(&args.spec_path)
        .map_err(|e| format!("cannot read spec {:?}: {e}", args.spec_path))?;
    let spec: SweepSpec = serde_json::from_str(&text)
        .map_err(|e| format!("cannot parse spec {:?}: {e}", args.spec_path))?;

    let mut opts = SweepOptions {
        jobs: args.jobs,
        cache_dir: None,
    };
    if let Some(dir) = &args.cache_dir {
        opts = opts.with_cache(dir);
    }

    // Progress ticks to stderr, roughly every 10 % of the grid.
    let done = AtomicUsize::new(0);
    let total = spec.grid_size();
    let stride = (total / 10).max(1);
    let hook = move |ev: &ProgressEvent| match ev {
        ProgressEvent::Started { name, total, jobs } => {
            eprintln!("sweep `{name}`: {total} scenarios on {jobs} jobs");
        }
        ProgressEvent::ScenarioDone { .. } => {
            let n = done.fetch_add(1, Ordering::Relaxed) + 1;
            if n % stride == 0 || n == total {
                eprint!("\r  {n}/{total} scenarios done");
                let _ = std::io::stderr().flush();
            }
        }
        ProgressEvent::Finished { .. } => eprintln!(),
    };

    let outcome = run_sweep(&spec, &opts, Some(&hook))?;
    eprintln!("{}", run_summary(&outcome));

    if json {
        // Deterministic document only — volatile metrics stay on stderr.
        println!("{}", to_json(&outcome.results)?);
        return Ok(());
    }

    println!(
        "{}",
        best_per_axis(&spec, &outcome.results.scenarios).render()
    );
    println!(
        "{}",
        frontier_table(&outcome.results.scenarios, &outcome.results.frontier).render()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_flag_set() {
        let args =
            parse_args(&["grid.json", "--jobs", "4", "--cache", "/tmp/c", "--json"]).unwrap();
        assert_eq!(args.spec_path, "grid.json");
        assert_eq!(args.jobs, 4);
        assert_eq!(args.cache_dir.as_deref(), Some("/tmp/c"));
    }

    #[test]
    fn rejects_bad_invocations() {
        assert!(parse_args(&[]).is_err());
        assert!(parse_args(&["spec.json", "--jobs"]).is_err());
        assert!(parse_args(&["spec.json", "--jobs", "many"]).is_err());
        assert!(parse_args(&["spec.json", "--frobnicate"]).is_err());
        assert!(parse_args(&["a.json", "b.json"]).is_err());
    }

    #[test]
    fn jobs_defaults_to_parallelism() {
        let args = parse_args(&["spec.json"]).unwrap();
        assert!(args.jobs >= 1);
        assert!(args.cache_dir.is_none());
    }
}
