//! The `netpp bench-compare` subcommand: structured regression gating
//! over two benchmark JSON documents (`BENCH_*.json`).
//!
//! ```text
//! netpp bench-compare <old.json> <new.json> [--warn-pct P] [--fail-pct P] [--strict] [--json]
//! ```
//!
//! Both documents are walked recursively; every numeric leaf becomes a
//! dotted path (`engines[indexed].events_per_sec`). Array elements that
//! are objects are keyed by their `engine` / `name` / `label` / `id` /
//! `scenario` field when one exists, so reordered arrays still line up.
//!
//! Each shared leaf is classified by a direction heuristic on its key:
//! throughput-ish names (`*_per_sec`, `qps`, `speedup`, ...) should go
//! up, latency/energy-ish names (`*_ns`, `*_ms`, `wall`, `joule`, ...)
//! should go down, anything else is neutral. A worsening move beyond
//! `--warn-pct` (default 5) warns, beyond `--fail-pct` (default 25)
//! fails; neutral moves beyond the warn threshold are reported as
//! `changed` but never fail. The exit code stays 0 unless `--strict`
//! is given and at least one `fail` delta exists — CI runs warn-only
//! by default so noisy runners do not block merges.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use serde_json::Value;

use crate::paper::Result;

const USAGE: &str =
    "usage: netpp bench-compare <old.json> <new.json> [--warn-pct P] [--fail-pct P] [--strict] [--json]";

/// Object fields that identify an array element, in preference order.
const KEY_FIELDS: &[&str] = &["engine", "name", "label", "id", "scenario", "mechanism"];

/// Substrings (of the lower-cased leaf key) meaning "bigger is better".
const HIGHER_BETTER: &[&str] = &[
    "per_sec",
    "throughput",
    "qps",
    "ops",
    "speedup",
    "savings",
    "hits",
    "rate_gbps",
];

/// Substrings meaning "smaller is better".
const LOWER_BETTER: &[&str] = &[
    "_ns", "_ms", "_secs", "_s", "latency", "wall", "time", "loss", "miss", "joule", "energy",
    "_j", "watt", "_w", "power", "rss", "bytes", "stall", "wait", "retries",
];

/// Parsed arguments for `netpp bench-compare`.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareArgs {
    /// Baseline document path.
    pub old_path: String,
    /// Candidate document path.
    pub new_path: String,
    /// Relative move (%) that earns a warning.
    pub warn_pct: f64,
    /// Relative worsening (%) that earns a failure.
    pub fail_pct: f64,
    /// Exit non-zero when any delta fails.
    pub strict: bool,
}

/// Parses `bench-compare` arguments from the raw argv tail.
///
/// # Errors
///
/// Rejects missing paths, malformed thresholds, and unknown flags.
pub fn parse_args(rest: &[&str]) -> Result<CompareArgs> {
    let mut paths: Vec<String> = Vec::new();
    let mut warn_pct = 5.0;
    let mut fail_pct = 25.0;
    let mut strict = false;
    let mut it = rest.iter().copied();
    while let Some(arg) = it.next() {
        match arg {
            "--json" => {}
            "--strict" => strict = true,
            "--warn-pct" => {
                let v = it.next().ok_or("--warn-pct needs a value")?;
                warn_pct = v
                    .parse::<f64>()
                    .map_err(|_| format!("bad --warn-pct value {v:?}"))?;
            }
            "--fail-pct" => {
                let v = it.next().ok_or("--fail-pct needs a value")?;
                fail_pct = v
                    .parse::<f64>()
                    .map_err(|_| format!("bad --fail-pct value {v:?}"))?;
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown bench-compare flag {flag:?}").into());
            }
            path if paths.len() < 2 => paths.push(path.to_string()),
            extra => return Err(format!("unexpected argument {extra:?}").into()),
        }
    }
    if !(warn_pct.is_finite() && fail_pct.is_finite() && warn_pct >= 0.0 && fail_pct >= warn_pct) {
        return Err("thresholds must satisfy 0 <= --warn-pct <= --fail-pct".into());
    }
    let mut it = paths.into_iter();
    let (Some(old_path), Some(new_path)) = (it.next(), it.next()) else {
        return Err(USAGE.into());
    };
    Ok(CompareArgs {
        old_path,
        new_path,
        warn_pct,
        fail_pct,
        strict,
    })
}

/// Which way a metric is supposed to move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    HigherBetter,
    LowerBetter,
    Neutral,
}

impl Direction {
    fn name(self) -> &'static str {
        match self {
            Direction::HigherBetter => "higher_better",
            Direction::LowerBetter => "lower_better",
            Direction::Neutral => "neutral",
        }
    }
}

/// Classifies a leaf key. Checked against the *last* path segment so
/// container names do not leak into the heuristic.
fn direction_of(path: &str) -> Direction {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    // Strip any `[key]` suffix left by array addressing.
    let leaf = leaf.split('[').next().unwrap_or(leaf).to_ascii_lowercase();
    if HIGHER_BETTER.iter().any(|t| leaf.contains(t)) {
        return Direction::HigherBetter;
    }
    if LOWER_BETTER
        .iter()
        .any(|t| leaf.contains(t) || leaf == t.trim_start_matches('_'))
    {
        return Direction::LowerBetter;
    }
    Direction::Neutral
}

/// Verdict for one leaf.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Status {
    Ok,
    Improved,
    Changed,
    Added,
    Removed,
    Warn,
    Fail,
}

impl Status {
    fn name(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Improved => "improved",
            Status::Changed => "changed",
            Status::Added => "added",
            Status::Removed => "removed",
            Status::Warn => "warn",
            Status::Fail => "fail",
        }
    }
}

/// One compared leaf.
#[derive(Debug, Clone, PartialEq)]
struct Delta {
    path: String,
    old: Option<f64>,
    new: Option<f64>,
    /// Relative move in percent (`None` when either side is missing or
    /// the baseline is zero).
    pct: Option<f64>,
    direction: Direction,
    status: Status,
}

/// Flattens every numeric leaf of `value` into `out` under dotted
/// paths. Arrays of keyed objects address elements by key; positional
/// arrays use the index.
fn collect_leaves(value: &Value, path: &str, out: &mut BTreeMap<String, f64>) {
    match value {
        Value::Number(n) => {
            out.insert(path.to_string(), n.as_f64());
        }
        Value::Object(entries) => {
            for (key, child) in entries {
                let child_path = if path.is_empty() {
                    key.clone()
                } else {
                    format!("{path}.{key}")
                };
                collect_leaves(child, &child_path, out);
            }
        }
        Value::Array(items) => {
            for (i, child) in items.iter().enumerate() {
                let segment = element_key(child)
                    .map_or_else(|| format!("{path}[{i}]"), |k| format!("{path}[{k}]"));
                collect_leaves(child, &segment, out);
            }
        }
        Value::Null | Value::Bool(_) | Value::String(_) => {}
    }
}

/// The identifying string of an array element, if it has one.
fn element_key(value: &Value) -> Option<&str> {
    KEY_FIELDS
        .iter()
        .find_map(|field| value.get(field).and_then(Value::as_str))
}

/// Compares two flattened documents into a sorted delta list.
fn diff(
    old: &BTreeMap<String, f64>,
    new: &BTreeMap<String, f64>,
    warn_pct: f64,
    fail_pct: f64,
) -> Vec<Delta> {
    let mut paths: Vec<&String> = old.keys().chain(new.keys()).collect();
    paths.sort();
    paths.dedup();
    paths
        .into_iter()
        .map(|path| {
            let o = old.get(path).copied();
            let n = new.get(path).copied();
            let direction = direction_of(path);
            let (pct, status) = classify(o, n, direction, warn_pct, fail_pct);
            Delta {
                path: path.clone(),
                old: o,
                new: n,
                pct,
                direction,
                status,
            }
        })
        .collect()
}

fn classify(
    old: Option<f64>,
    new: Option<f64>,
    direction: Direction,
    warn_pct: f64,
    fail_pct: f64,
) -> (Option<f64>, Status) {
    let (o, n) = match (old, new) {
        (Some(o), Some(n)) => (o, n),
        (None, Some(_)) => return (None, Status::Added),
        (Some(_), None) => return (None, Status::Removed),
        (None, None) => return (None, Status::Ok),
    };
    if o.to_bits() == n.to_bits() {
        return (Some(0.0), Status::Ok);
    }
    if o == 0.0 {
        // No baseline to scale by: report as changed, never gate.
        return (None, Status::Changed);
    }
    let pct = (n - o) / o.abs() * 100.0;
    let worsened = match direction {
        Direction::HigherBetter => pct < 0.0,
        Direction::LowerBetter => pct > 0.0,
        Direction::Neutral => {
            let status = if pct.abs() >= warn_pct {
                Status::Changed
            } else {
                Status::Ok
            };
            return (Some(pct), status);
        }
    };
    let magnitude = pct.abs();
    let status = if worsened && magnitude >= fail_pct {
        Status::Fail
    } else if worsened && magnitude >= warn_pct {
        Status::Warn
    } else if !worsened && magnitude >= warn_pct {
        Status::Improved
    } else {
        Status::Ok
    };
    (Some(pct), status)
}

/// Runs `netpp bench-compare`.
///
/// # Errors
///
/// Propagates file and parse errors; with `--strict`, also fails when
/// any delta crosses the failure threshold.
pub fn run(rest: &[&str], json: bool) -> Result<()> {
    let args = parse_args(rest)?;
    let load = |path: &str| -> Result<BTreeMap<String, f64>> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
        let value: Value =
            serde_json::from_str(&text).map_err(|e| format!("cannot parse {path:?}: {e}"))?;
        let mut leaves = BTreeMap::new();
        collect_leaves(&value, "", &mut leaves);
        Ok(leaves)
    };
    let old = load(&args.old_path)?;
    let new = load(&args.new_path)?;
    let deltas = diff(&old, &new, args.warn_pct, args.fail_pct);

    let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    for d in &deltas {
        *counts.entry(d.status.name()).or_insert(0) += 1;
    }
    let fails = counts.get("fail").copied().unwrap_or(0);

    if json {
        println!("{}", render_json(&args, &deltas, &counts));
    } else {
        print!("{}", render_text(&args, &deltas, &counts));
    }
    if args.strict && fails > 0 {
        return Err(format!(
            "{fails} metric(s) worsened beyond --fail-pct {}",
            args.fail_pct
        )
        .into());
    }
    Ok(())
}

fn render_text(
    args: &CompareArgs,
    deltas: &[Delta],
    counts: &BTreeMap<&'static str, usize>,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "bench-compare {} -> {} (warn {}%, fail {}%{})",
        args.old_path,
        args.new_path,
        args.warn_pct,
        args.fail_pct,
        if args.strict {
            ", strict"
        } else {
            ", warn-only"
        },
    );
    let summary = counts
        .iter()
        .map(|(status, n)| format!("{status} {n}"))
        .collect::<Vec<_>>()
        .join("  ");
    let _ = writeln!(out, "  {} leaves: {summary}", deltas.len());
    // Interesting rows only, worst first; `ok` rows stay silent.
    let mut shown: Vec<&Delta> = deltas.iter().filter(|d| d.status != Status::Ok).collect();
    shown.sort_by(|a, b| b.status.cmp(&a.status).then_with(|| a.path.cmp(&b.path)));
    for d in shown {
        let pct = d
            .pct
            .map_or_else(|| "     n/a".to_string(), |p| format!("{p:>+7.2}%"));
        let fmt_side = |v: Option<f64>| v.map_or_else(|| "-".to_string(), |x| format!("{x:.6}"));
        let _ = writeln!(
            out,
            "  [{:<8}] {pct}  {}  ({} -> {}, {})",
            d.status.name(),
            d.path,
            fmt_side(d.old),
            fmt_side(d.new),
            d.direction.name(),
        );
    }
    out
}

fn render_json(
    args: &CompareArgs,
    deltas: &[Delta],
    counts: &BTreeMap<&'static str, usize>,
) -> String {
    use npp_telemetry::fmt::{push_escaped, push_f64};
    let mut out = String::from("{\"schema\":\"npp.benchdiff/v1\",\"old\":\"");
    push_escaped(&mut out, &args.old_path);
    out.push_str("\",\"new\":\"");
    push_escaped(&mut out, &args.new_path);
    out.push_str("\",\"warn_pct\":");
    push_f64(&mut out, args.warn_pct);
    out.push_str(",\"fail_pct\":");
    push_f64(&mut out, args.fail_pct);
    out.push_str(",\"strict\":");
    out.push_str(if args.strict { "true" } else { "false" });
    out.push_str(",\"counts\":{");
    for (i, (status, n)) in counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{status}\":{n}");
    }
    out.push_str("},\"deltas\":[");
    let mut first = true;
    for d in deltas.iter().filter(|d| d.status != Status::Ok) {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("{\"path\":\"");
        push_escaped(&mut out, &d.path);
        out.push_str("\",\"status\":\"");
        out.push_str(d.status.name());
        out.push_str("\",\"direction\":\"");
        out.push_str(d.direction.name());
        out.push('"');
        if let Some(o) = d.old {
            out.push_str(",\"old\":");
            push_f64(&mut out, o);
        }
        if let Some(n) = d.new {
            out.push_str(",\"new\":");
            push_f64(&mut out, n);
        }
        if let Some(p) = d.pct {
            out.push_str(",\"pct\":");
            push_f64(&mut out, p);
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_validates() {
        let args =
            parse_args(&["a.json", "b.json", "--warn-pct", "2", "--fail-pct", "10"]).unwrap();
        assert_eq!(args.old_path, "a.json");
        assert_eq!(args.new_path, "b.json");
        assert!((args.warn_pct - 2.0).abs() < 1e-12);
        assert!(!args.strict);
        assert!(parse_args(&["only.json"]).is_err());
        assert!(parse_args(&["a", "b", "c"]).is_err());
        assert!(parse_args(&["a", "b", "--warn-pct", "9", "--fail-pct", "3"]).is_err());
        assert!(parse_args(&["a", "b", "--weird"]).is_err());
        assert!(
            parse_args(&["a.json", "b.json", "--strict"])
                .unwrap()
                .strict
        );
    }

    fn leaves(text: &str) -> BTreeMap<String, f64> {
        let value: Value = serde_json::from_str(text).unwrap();
        let mut out = BTreeMap::new();
        collect_leaves(&value, "", &mut out);
        out
    }

    #[test]
    fn arrays_of_keyed_objects_align_by_key() {
        let old = leaves(
            r#"{"engines":[{"engine":"indexed","wall_ms":10},{"engine":"naive","wall_ms":50}]}"#,
        );
        let new = leaves(
            r#"{"engines":[{"engine":"naive","wall_ms":50},{"engine":"indexed","wall_ms":10}]}"#,
        );
        assert_eq!(old, new, "reordered keyed arrays must flatten identically");
        assert!(old.contains_key("engines[indexed].wall_ms"));
        let plain = leaves(r#"{"xs":[1,2]}"#);
        assert!(plain.contains_key("xs[0]") && plain.contains_key("xs[1]"));
    }

    #[test]
    fn direction_heuristic_reads_the_leaf() {
        assert_eq!(
            direction_of("engines[indexed].events_per_sec"),
            Direction::HigherBetter
        );
        assert_eq!(direction_of("warm.p99_ns"), Direction::LowerBetter);
        assert_eq!(direction_of("config.threads"), Direction::Neutral);
        assert_eq!(direction_of("wall_ms"), Direction::LowerBetter);
        assert_eq!(direction_of("speedup"), Direction::HigherBetter);
    }

    #[test]
    fn classification_thresholds() {
        let c = |o: f64, n: f64, d: Direction| classify(Some(o), Some(n), d, 5.0, 25.0).1;
        // Throughput drop of 30% fails, 10% warns, 3% is ok.
        assert_eq!(c(100.0, 70.0, Direction::HigherBetter), Status::Fail);
        assert_eq!(c(100.0, 90.0, Direction::HigherBetter), Status::Warn);
        assert_eq!(c(100.0, 97.0, Direction::HigherBetter), Status::Ok);
        // Throughput gain of 10% reports as improved.
        assert_eq!(c(100.0, 110.0, Direction::HigherBetter), Status::Improved);
        // Latency: up is bad.
        assert_eq!(c(100.0, 140.0, Direction::LowerBetter), Status::Fail);
        assert_eq!(c(100.0, 60.0, Direction::LowerBetter), Status::Improved);
        // Neutral never warns below nor fails above.
        assert_eq!(c(8.0, 16.0, Direction::Neutral), Status::Changed);
        assert_eq!(c(8.0, 8.2, Direction::Neutral), Status::Ok);
        // Missing sides.
        assert_eq!(
            classify(None, Some(1.0), Direction::Neutral, 5.0, 25.0).1,
            Status::Added
        );
        assert_eq!(
            classify(Some(1.0), None, Direction::Neutral, 5.0, 25.0).1,
            Status::Removed
        );
        // Zero baseline cannot be scaled.
        assert_eq!(c(0.0, 5.0, Direction::LowerBetter), Status::Changed);
        // Bit-identical values are ok even for NaN-free weird floats.
        assert_eq!(c(0.1 + 0.2, 0.1 + 0.2, Direction::LowerBetter), Status::Ok);
    }

    #[test]
    fn end_to_end_diff_and_render() {
        let old = leaves(
            r#"{"schema":"x","runs":5,
                "engines":[{"engine":"indexed","events_per_sec":1000000,"best_secs":0.001}]}"#,
        );
        let new = leaves(
            r#"{"schema":"x","runs":5,
                "engines":[{"engine":"indexed","events_per_sec":600000,"best_secs":0.002}]}"#,
        );
        let deltas = diff(&old, &new, 5.0, 25.0);
        let fails: Vec<&Delta> = deltas.iter().filter(|d| d.status == Status::Fail).collect();
        assert_eq!(fails.len(), 2, "{deltas:?}");
        let args = CompareArgs {
            old_path: "old.json".into(),
            new_path: "new.json".into(),
            warn_pct: 5.0,
            fail_pct: 25.0,
            strict: false,
        };
        let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        for d in &deltas {
            *counts.entry(d.status.name()).or_insert(0) += 1;
        }
        let text = render_text(&args, &deltas, &counts);
        assert!(text.contains("[fail"));
        assert!(text.contains("events_per_sec"));
        let json = render_json(&args, &deltas, &counts);
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["schema"], "npp.benchdiff/v1");
        assert!(v["counts"]["fail"].as_u64().unwrap() >= 2);
    }
}
