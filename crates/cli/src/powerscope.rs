//! The `netpp powerscope` subcommand: windowed per-device power and
//! energy observability documents (`npp.power/v1`).
//!
//! ```text
//! netpp powerscope <spec.json> [--window-ns N] [--jobs N] [--threads N] [--out PATH] [--top K] [--json]
//! netpp powerscope --diurnal DAYS [--window-ns N] [--out PATH] [--top K] [--json]
//! ```
//!
//! Two sources feed the same document format:
//!
//! - **spec mode** replays every simulation scenario of a sweep grid
//!   into a powerscope recorder ([`npp_sweep::run_power_sweep`]) and
//!   renders the whole grid at once — bytes are `--jobs`/`--threads`
//!   invariant;
//! - **diurnal mode** drives the paper-pod fleet
//!   ([`npp_simnet::diurnal::DiurnalFleet`]) against the diurnal load
//!   curve for N simulated days, *streaming* closed windows out as they
//!   retire — memory stays bounded by the live-window set, never the
//!   run length. Because device totals are only known at the end, the
//!   streamed document carries its `scenario` line as a trailer (after
//!   the `window` lines); consumers dispatch on `kind`, not order.
//!
//! Without `--json` the command prints a human summary instead: total
//! energy and per-tier attribution, a fleet-power curve, the top-K
//! least-proportional devices (ranked by the fraction of peak power
//! they still draw in their quietest window), and a per-device state
//! residency heatmap.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write as _;

use npp_power::Tier;
use npp_simnet::diurnal::{DiurnalFleet, DiurnalFleetConfig};
use npp_simnet::powerscope::{PowerState, WindowConfig, WindowRow, STATE_COUNT};
use npp_sweep::{
    render_power_header, render_power_jsonl, render_scenario_line, render_window_row,
    run_power_sweep, PowerDevice, ScenarioPower, SweepOptions, SweepSpec,
};

use crate::paper::Result;

/// Heatmap / curve width in character cells.
const HEAT_WIDTH: usize = 72;
/// Nanoseconds per simulated day.
const NS_PER_DAY: u64 = 86_400_000_000_000;

const USAGE: &str = "usage: netpp powerscope <spec.json> [--window-ns N] [--jobs N] [--threads N] \
     [--out PATH] [--top K] [--json]
       netpp powerscope --diurnal DAYS [--window-ns N] [--out PATH] [--top K] [--json]";

/// Parsed arguments for `netpp powerscope`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PowerscopeArgs {
    /// Sweep spec path (spec mode); exclusive with `diurnal_days`.
    pub spec_path: Option<String>,
    /// Simulated days of the paper-pod fleet (diurnal mode).
    pub diurnal_days: Option<u64>,
    /// Residency window width, ns. Defaults: 100 µs (spec mode),
    /// 1 hour (diurnal mode).
    pub window_ns: Option<u64>,
    /// Scenario fan-out (spec mode only).
    pub jobs: usize,
    /// Engine threads per scenario (spec mode only; bytes invariant).
    pub threads: usize,
    /// Write the `npp.power/v1` JSONL document here.
    pub out: Option<String>,
    /// Least-proportional device count in the summary.
    pub top: usize,
}

impl PowerscopeArgs {
    fn effective_window_ns(&self) -> u64 {
        self.window_ns.unwrap_or(if self.diurnal_days.is_some() {
            3_600_000_000_000 // 1 h
        } else {
            100_000 // 100 µs
        })
    }
}

/// Parses `powerscope` arguments from the raw argv tail.
///
/// # Errors
///
/// Rejects missing/ambiguous modes, malformed flag values, and unknown
/// flags.
pub fn parse_args(rest: &[&str]) -> Result<PowerscopeArgs> {
    let mut spec_path = None;
    let mut diurnal_days = None;
    let mut window_ns = None;
    let mut jobs = None;
    let mut threads = None;
    let mut out = None;
    let mut top = None;
    let mut it = rest.iter().copied();
    while let Some(arg) = it.next() {
        match arg {
            "--json" => {}
            "--diurnal" => {
                let v = it.next().ok_or("--diurnal needs a day count")?;
                let days = v
                    .parse::<u64>()
                    .map_err(|_| format!("bad --diurnal value {v:?}"))?;
                if days == 0 || days > 3650 {
                    return Err("--diurnal must be 1..=3650 days".into());
                }
                diurnal_days = Some(days);
            }
            "--window-ns" => {
                let v = it.next().ok_or("--window-ns needs a value")?;
                let ns = v
                    .parse::<u64>()
                    .map_err(|_| format!("bad --window-ns value {v:?}"))?;
                if ns == 0 {
                    return Err("--window-ns must be positive".into());
                }
                window_ns = Some(ns);
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                jobs = Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("bad --jobs value {v:?}"))?,
                );
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                let n = v
                    .parse::<usize>()
                    .map_err(|_| format!("bad --threads value {v:?}"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".into());
                }
                threads = Some(n);
            }
            "--out" => {
                out = Some(it.next().ok_or("--out needs a path")?.to_string());
            }
            "--top" => {
                let v = it.next().ok_or("--top needs a value")?;
                top = Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("bad --top value {v:?}"))?,
                );
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown powerscope flag {flag:?}").into());
            }
            path if spec_path.is_none() => spec_path = Some(path.to_string()),
            extra => return Err(format!("unexpected argument {extra:?}").into()),
        }
    }
    if spec_path.is_some() == diurnal_days.is_some() {
        return Err(USAGE.into());
    }
    let default_jobs = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    Ok(PowerscopeArgs {
        spec_path,
        diurnal_days,
        window_ns,
        jobs: jobs.unwrap_or(default_jobs),
        threads: threads.unwrap_or(1),
        out,
        top: top.unwrap_or(5),
    })
}

/// Runs `netpp powerscope`.
///
/// # Errors
///
/// Propagates spec-file, simulator, recorder, and filesystem errors.
pub fn run(rest: &[&str], json: bool) -> Result<()> {
    let args = parse_args(rest)?;
    if args.diurnal_days.is_some() {
        run_diurnal(&args, json)
    } else {
        run_spec(&args, json)
    }
}

fn run_spec(args: &PowerscopeArgs, json: bool) -> Result<()> {
    let spec_path = args.spec_path.as_deref().ok_or(USAGE)?;
    let text = std::fs::read_to_string(spec_path)
        .map_err(|e| format!("cannot read spec {spec_path:?}: {e}"))?;
    let spec: SweepSpec =
        serde_json::from_str(&text).map_err(|e| format!("cannot parse spec {spec_path:?}: {e}"))?;
    let window_ns = args.effective_window_ns();
    let opts = SweepOptions {
        jobs: args.jobs,
        cache_dir: None,
        threads: args.threads,
    };
    let outcome = run_power_sweep(&spec, window_ns, &opts)?;
    let doc = render_power_jsonl(&outcome);
    if let Some(path) = &args.out {
        std::fs::write(path, &doc).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if json {
        print!("{doc}");
        return Ok(());
    }

    let mut report = String::new();
    let _ = writeln!(
        report,
        "powerscope `{}`: {} scenarios, window {}",
        outcome.name,
        outcome.scenarios.len(),
        fmt_ns(window_ns),
    );
    if let Some(path) = &args.out {
        let _ = writeln!(report, "  document: {path} (npp.power/v1 JSONL)");
    }
    for s in &outcome.scenarios {
        let coords = s
            .coords
            .iter()
            .map(|(axis, value)| format!("{axis}={value}"))
            .collect::<Vec<_>>()
            .join(", ");
        let title = if coords.is_empty() {
            format!("scenario {}", s.index)
        } else {
            format!("scenario {} ({coords})", s.index)
        };
        if let Some(reason) = s.skipped {
            let _ = writeln!(report, "\n{title}: skipped — {reason}");
            continue;
        }
        let windows_total = s.rows.iter().map(|r| r.window + 1).max().unwrap_or(0);
        let mut fleet = FleetAgg::new(&title, window_ns, windows_total);
        for meta in &s.devices {
            fleet.add_device(meta.name.clone(), meta.tier, meta.peak_w);
        }
        for row in &s.rows {
            fleet.absorb(row);
        }
        fleet.render(&mut report, args.top);
    }
    print!("{report}");
    Ok(())
}

fn run_diurnal(args: &PowerscopeArgs, json: bool) -> Result<()> {
    let days = args.diurnal_days.ok_or(USAGE)?;
    let window_ns = args.effective_window_ns();
    let total_ns = days
        .checked_mul(NS_PER_DAY)
        .ok_or("--diurnal horizon overflows")?;

    let mut sink = match &args.out {
        Some(path) => {
            let file =
                std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
            Some(std::io::BufWriter::new(file))
        }
        None => None,
    };
    let mut emit = |chunk: &str| -> Result<()> {
        if let Some(w) = sink.as_mut() {
            w.write_all(chunk.as_bytes())
                .map_err(|e| format!("cannot write powerscope document: {e}"))?;
        }
        if json {
            print!("{chunk}");
        }
        Ok(())
    };

    let title = format!("diurnal paper pod, {days} day(s)");
    let fleet_agg = stream_diurnal(days, window_ns, total_ns, &title, &mut emit)?;
    if let Some(w) = sink.as_mut() {
        w.flush()
            .map_err(|e| format!("cannot flush powerscope document: {e}"))?;
    }
    if json {
        return Ok(());
    }

    let mut report = String::new();
    let _ = writeln!(
        report,
        "powerscope diurnal: paper pod over {days} day(s), window {}",
        fmt_ns(window_ns),
    );
    if let Some(path) = &args.out {
        let _ = writeln!(report, "  document: {path} (npp.power/v1 JSONL, streamed)");
    }
    let _ = writeln!(
        report,
        "  live windows peaked at {} (devices: {}) — memory bounded by the live set",
        fleet_agg.max_open_windows,
        fleet_agg.devices.len(),
    );
    fleet_agg.render(&mut report, args.top);
    print!("{report}");
    Ok(())
}

/// Drives the fleet and streams `npp.power/v1` lines through `emit`,
/// folding every closed row into a [`FleetAgg`] as it passes — rows are
/// never retained.
fn stream_diurnal(
    days: u64,
    window_ns: u64,
    total_ns: u64,
    title: &str,
    emit: &mut dyn FnMut(&str) -> Result<()>,
) -> Result<FleetAgg> {
    let cfg = DiurnalFleetConfig::paper_pod();
    let window = WindowConfig::from_nanos(window_ns)?;
    let mut fleet = DiurnalFleet::new(cfg, window)?;
    let windows_total = total_ns.div_ceil(window_ns);
    let mut agg = FleetAgg::new(title, window_ns, windows_total);
    for meta in fleet.metas() {
        agg.add_device(meta.name.clone(), meta.tier, meta.peak.value());
    }

    let mut buf = String::new();
    render_power_header(&mut buf, "diurnal", window_ns, 1);
    emit(&buf)?;
    buf.clear();

    while fleet.now().as_nanos() < total_ns {
        fleet.step()?;
        agg.max_open_windows = agg.max_open_windows.max(fleet.open_windows());
        for row in fleet.drain_closed() {
            agg.absorb(&row);
            render_window_row(&mut buf, 0, &row);
        }
        if buf.len() >= 1 << 16 {
            emit(&buf)?;
            buf.clear();
        }
    }
    let mut rec = fleet.finish()?;
    for row in rec.drain_closed() {
        agg.absorb(&row);
        render_window_row(&mut buf, 0, &row);
    }

    // Trailer: device totals are the in-order row sums, which the
    // recorder guarantees are bit-identical to each tracker's
    // `energy_until` — so the streamed trailer equals what a buffered
    // renderer would have written up front.
    let scenario = ScenarioPower {
        index: 0,
        coords: vec![
            ("mode".to_string(), "diurnal".to_string()),
            ("days".to_string(), days.to_string()),
        ],
        hash: "diurnal".to_string(),
        seed: days,
        devices: agg
            .devices
            .iter()
            .map(|d| PowerDevice {
                name: d.name.clone(),
                tier: d.tier,
                peak_w: d.peak_w,
                total_j: d.total_j,
            })
            .collect(),
        rows: Vec::new(),
        skipped: None,
    };
    render_scenario_line(&mut buf, &scenario);
    emit(&buf)?;
    Ok(agg)
}

/// Streaming per-device aggregate: everything the human summary needs,
/// in O(devices × HEAT_WIDTH) memory regardless of run length.
#[derive(Debug, Clone)]
struct DeviceAgg {
    name: String,
    tier: Tier,
    peak_w: f64,
    total_j: f64,
    transitions: u64,
    residency_ns: [u64; STATE_COUNT],
    /// Quietest / busiest window average draw, W.
    min_avg_w: f64,
    max_avg_w: f64,
    /// Chunked residency for the heatmap (`chunk = window / chunk_size`).
    cells: Vec<[u64; STATE_COUNT]>,
}

impl DeviceAgg {
    /// Fraction of peak power still drawn in the quietest window — the
    /// summary's (anti-)proportionality score. 1.0 means the device
    /// never drops below peak; 0.0 means it reaches a fully dark
    /// window.
    fn idle_floor_frac(&self) -> f64 {
        if self.peak_w > 0.0 && self.min_avg_w.is_finite() {
            self.min_avg_w / self.peak_w
        } else {
            0.0
        }
    }

    fn heatmap(&self) -> String {
        self.cells
            .iter()
            .filter(|cell| cell.iter().any(|&ns| ns > 0))
            .map(|cell| {
                let dominant = PowerState::all()
                    .into_iter()
                    .max_by_key(|s| cell.get(s.index()).copied().unwrap_or(0))
                    .unwrap_or(PowerState::Off);
                state_char(dominant)
            })
            .collect()
    }
}

/// Heatmap glyph per power state.
fn state_char(state: PowerState) -> char {
    match state {
        PowerState::Off => '.',
        PowerState::Waking => '~',
        PowerState::OnLow => 'o',
        PowerState::OnFull => '#',
    }
}

/// Whole-fleet aggregate for one scenario (or the diurnal run).
#[derive(Debug, Clone)]
struct FleetAgg {
    title: String,
    window_ns: u64,
    chunk_size: u64,
    chunks: usize,
    devices: Vec<DeviceAgg>,
    /// Per-chunk fleet energy (J) and device-time (ns) for the curve.
    curve_j: Vec<f64>,
    curve_ns: Vec<u64>,
    max_open_windows: usize,
}

impl FleetAgg {
    fn new(title: &str, window_ns: u64, windows_total: u64) -> FleetAgg {
        let chunk_size = windows_total.div_ceil(HEAT_WIDTH as u64).max(1);
        let chunks = usize::try_from(windows_total.div_ceil(chunk_size)).unwrap_or(HEAT_WIDTH);
        FleetAgg {
            title: title.to_string(),
            window_ns,
            chunk_size,
            chunks,
            devices: Vec::new(),
            curve_j: vec![0.0; chunks],
            curve_ns: vec![0; chunks],
            max_open_windows: 0,
        }
    }

    fn add_device(&mut self, name: String, tier: Tier, peak_w: f64) {
        self.devices.push(DeviceAgg {
            name,
            tier,
            peak_w,
            total_j: 0.0,
            transitions: 0,
            residency_ns: [0; STATE_COUNT],
            min_avg_w: f64::INFINITY,
            max_avg_w: f64::NEG_INFINITY,
            cells: vec![[0; STATE_COUNT]; self.chunks],
        })
    }

    fn absorb(&mut self, row: &WindowRow) {
        let chunk = usize::try_from(row.window / self.chunk_size).unwrap_or(usize::MAX);
        if let (Some(j), Some(ns)) = (self.curve_j.get_mut(chunk), self.curve_ns.get_mut(chunk)) {
            *j += row.energy_j;
            *ns += row.duration_ns();
        }
        let Some(dev) = self.devices.get_mut(row.device) else {
            return;
        };
        dev.total_j += row.energy_j;
        dev.transitions += u64::from(row.transitions);
        for (acc, ns) in dev.residency_ns.iter_mut().zip(row.residency_ns.iter()) {
            *acc += ns;
        }
        let w = row.avg_w();
        dev.min_avg_w = dev.min_avg_w.min(w);
        dev.max_avg_w = dev.max_avg_w.max(w);
        if let Some(cell) = dev.cells.get_mut(chunk) {
            for (acc, ns) in cell.iter_mut().zip(row.residency_ns.iter()) {
                *acc += ns;
            }
        }
    }

    fn render(&self, report: &mut String, top: usize) {
        let device_count = self.devices.len().max(1);
        let covered_ns: u64 = self
            .devices
            .iter()
            .map(|d| d.residency_ns.iter().sum::<u64>())
            .sum::<u64>()
            / device_count as u64;
        let span_s = covered_ns as f64 / 1e9;
        let total_j: f64 = self.devices.iter().map(|d| d.total_j).sum();
        let peak_sum: f64 = self.devices.iter().map(|d| d.peak_w).sum();
        let avg_w = if span_s > 0.0 { total_j / span_s } else { 0.0 };
        let _ = writeln!(
            report,
            "\n{}: {} devices over {}",
            self.title,
            self.devices.len(),
            fmt_ns(covered_ns)
        );
        let _ = writeln!(
            report,
            "  energy {total_j:.3} J, avg {avg_w:.1} W of {peak_sum:.1} W peak ({:.1}% of always-peak)",
            if peak_sum > 0.0 { 100.0 * avg_w / peak_sum } else { 0.0 },
        );

        // Fleet state residency mix.
        let mut mix = [0u64; STATE_COUNT];
        for dev in &self.devices {
            for (acc, ns) in mix.iter_mut().zip(dev.residency_ns.iter()) {
                *acc += ns;
            }
        }
        let mix_total = mix.iter().sum::<u64>().max(1) as f64;
        let mix_line = PowerState::all()
            .into_iter()
            .map(|s| {
                let ns = mix.get(s.index()).copied().unwrap_or(0) as f64;
                format!("{} {:.1}%", s.name(), 100.0 * ns / mix_total)
            })
            .collect::<Vec<_>>()
            .join("  ");
        let _ = writeln!(report, "  state residency: {mix_line}");

        // Energy-vs-time curve: fleet average watts per chunk.
        let curve: Vec<f64> = self
            .curve_j
            .iter()
            .zip(self.curve_ns.iter())
            .filter(|&(_, &ns)| ns > 0)
            .map(|(&j, &ns)| j / (ns as f64 / device_count as f64 / 1e9))
            .collect();
        let curve_max = curve.iter().copied().fold(0.0_f64, f64::max);
        if curve_max > 0.0 {
            const LEVELS: &[u8] = b" .:-=+*#%@";
            let spark: String = curve
                .iter()
                .map(|&w| {
                    let idx = ((w / curve_max) * (LEVELS.len() - 1) as f64).round() as usize;
                    char::from(LEVELS.get(idx).copied().unwrap_or(b'@'))
                })
                .collect();
            let _ = writeln!(
                report,
                "  fleet power curve (peak {:.1} W, {} per cell):",
                curve_max,
                fmt_ns(self.chunk_size * self.window_ns),
            );
            let _ = writeln!(report, "    [{spark}]");
        }

        // Least-proportional devices: highest idle floor first.
        let mut ranked: Vec<&DeviceAgg> = self.devices.iter().collect();
        ranked.sort_by(|a, b| {
            b.idle_floor_frac()
                .total_cmp(&a.idle_floor_frac())
                .then_with(|| a.name.cmp(&b.name))
        });
        if top > 0 && !ranked.is_empty() {
            let _ = writeln!(
                report,
                "  least-proportional devices (quietest-window draw / peak):"
            );
            for (i, dev) in ranked.iter().take(top).enumerate() {
                let floor = if dev.min_avg_w.is_finite() {
                    dev.min_avg_w
                } else {
                    0.0
                };
                let _ = writeln!(
                    report,
                    "    {:>2}. {:<12} {:<6} {:>8.1} W / {:>7.1} W = {:>5.1}%  ({} transitions)",
                    i + 1,
                    dev.name,
                    dev.tier.name(),
                    floor,
                    dev.peak_w,
                    100.0 * dev.idle_floor_frac(),
                    dev.transitions,
                );
            }
        }

        // Per-tier energy attribution.
        let mut by_tier: BTreeMap<&str, f64> = BTreeMap::new();
        for dev in &self.devices {
            *by_tier.entry(dev.tier.name()).or_insert(0.0) += dev.total_j;
        }
        let tier_line = by_tier
            .iter()
            .map(|(tier, j)| format!("{tier} {j:.3} J"))
            .collect::<Vec<_>>()
            .join("  |  ");
        let _ = writeln!(report, "  energy by tier: {tier_line}");

        // Residency heatmap, one row per device (capped).
        const MAX_ROWS: usize = 32;
        let _ = writeln!(
            report,
            "  residency heatmap (.=off  ~=waking  o=on_low  #=on_full):"
        );
        for dev in self.devices.iter().take(MAX_ROWS) {
            let _ = writeln!(report, "    {:<12} {}", dev.name, dev.heatmap());
        }
        if self.devices.len() > MAX_ROWS {
            let _ = writeln!(
                report,
                "    ... {} more device(s) elided",
                self.devices.len() - MAX_ROWS
            );
        }
    }
}

/// Human-readable duration for window widths (`100 µs`, `1.0 h`, ...).
fn fmt_ns(ns: u64) -> String {
    let ns_f = ns as f64;
    if ns >= 3_600_000_000_000 {
        format!("{:.1} h", ns_f / 3.6e12)
    } else if ns >= 1_000_000_000 {
        format!("{:.1} s", ns_f / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1} ms", ns_f / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1} µs", ns_f / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_spec_mode() {
        let args = parse_args(&[
            "spec.json",
            "--window-ns",
            "250000",
            "--jobs",
            "2",
            "--threads",
            "4",
            "--out",
            "/tmp/p.jsonl",
            "--top",
            "3",
            "--json",
        ])
        .unwrap();
        assert_eq!(args.spec_path.as_deref(), Some("spec.json"));
        assert_eq!(args.diurnal_days, None);
        assert_eq!(args.effective_window_ns(), 250_000);
        assert_eq!(args.jobs, 2);
        assert_eq!(args.threads, 4);
        assert_eq!(args.out.as_deref(), Some("/tmp/p.jsonl"));
        assert_eq!(args.top, 3);
    }

    #[test]
    fn parses_diurnal_mode_with_defaults() {
        let args = parse_args(&["--diurnal", "2"]).unwrap();
        assert_eq!(args.diurnal_days, Some(2));
        assert_eq!(args.spec_path, None);
        assert_eq!(args.effective_window_ns(), 3_600_000_000_000);
        assert_eq!(args.top, 5);
        // Spec mode default window differs.
        let spec = parse_args(&["s.json"]).unwrap();
        assert_eq!(spec.effective_window_ns(), 100_000);
    }

    #[test]
    fn rejects_ambiguous_and_malformed() {
        assert!(parse_args(&[]).is_err());
        assert!(parse_args(&["spec.json", "--diurnal", "1"]).is_err());
        assert!(parse_args(&["--diurnal", "0"]).is_err());
        assert!(parse_args(&["--diurnal", "many"]).is_err());
        assert!(parse_args(&["spec.json", "--window-ns", "0"]).is_err());
        assert!(parse_args(&["spec.json", "--threads", "0"]).is_err());
        assert!(parse_args(&["spec.json", "--whatever"]).is_err());
        assert!(parse_args(&["a.json", "b.json"]).is_err());
    }

    #[test]
    fn state_chars_are_distinct() {
        let chars: Vec<char> = PowerState::all().into_iter().map(state_char).collect();
        let mut dedup = chars.clone();
        dedup.dedup();
        assert_eq!(chars, dedup);
        assert_eq!(chars, vec!['.', '~', 'o', '#']);
    }

    fn row(device: usize, window: u64, energy_j: f64, residency: [u64; STATE_COUNT]) -> WindowRow {
        let width = 1_000u64;
        WindowRow {
            device,
            window,
            start_ns: window * width,
            end_ns: (window + 1) * width,
            energy_j,
            events: 1,
            transitions: 1,
            residency_ns: residency,
        }
    }

    #[test]
    fn fleet_agg_tracks_floor_and_heatmap() {
        let mut agg = FleetAgg::new("t", 1_000, 4);
        agg.add_device("dev0".into(), Tier::Tor, 100.0);
        // Window 0: full power; window 1: half; window 2: off.
        agg.absorb(&row(0, 0, 100.0 * 1e-6, [0, 0, 0, 1_000]));
        agg.absorb(&row(0, 1, 50.0 * 1e-6, [0, 0, 1_000, 0]));
        agg.absorb(&row(0, 2, 0.0, [1_000, 0, 0, 0]));
        let dev = agg.devices.first().unwrap();
        assert!((dev.min_avg_w - 0.0).abs() < 1e-12);
        assert!((dev.max_avg_w - 100.0).abs() < 1e-9);
        assert_eq!(dev.transitions, 3);
        // 4 windows over 72 cells → chunk size 1; 3 filled cells.
        assert_eq!(dev.heatmap(), "#o.");
        assert!((dev.idle_floor_frac() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn render_summary_mentions_every_section() {
        let mut agg = FleetAgg::new("unit scenario", 1_000, 2);
        agg.add_device("a".into(), Tier::Host, 25.0);
        agg.add_device("b".into(), Tier::Spine, 750.0);
        agg.absorb(&row(0, 0, 2.0e-5, [0, 0, 0, 1_000]));
        agg.absorb(&row(0, 1, 2.0e-5, [0, 0, 0, 1_000]));
        agg.absorb(&row(1, 0, 0.0, [1_000, 0, 0, 0]));
        agg.absorb(&row(1, 1, 0.0, [1_000, 0, 0, 0]));
        let mut out = String::new();
        agg.render(&mut out, 2);
        for needle in [
            "unit scenario",
            "least-proportional",
            "energy by tier",
            "residency heatmap",
            "state residency",
            "host",
            "spine",
        ] {
            assert!(out.contains(needle), "missing {needle:?} in {out}");
        }
        // Host never throttles → 100% idle floor, ranked first.
        let host_pos = out.find("1. a").expect("host should rank first");
        let spine_pos = out.find("2. b").expect("spine second");
        assert!(host_pos < spine_pos);
    }

    #[test]
    fn diurnal_stream_is_deterministic_and_conserves_shape() {
        let mut doc_a = String::new();
        let agg = stream_diurnal(1, 3_600_000_000_000, NS_PER_DAY, "t", &mut |chunk: &str| {
            doc_a.push_str(chunk);
            Ok(())
        })
        .unwrap();
        let mut doc_b = String::new();
        stream_diurnal(1, 3_600_000_000_000, NS_PER_DAY, "t", &mut |chunk: &str| {
            doc_b.push_str(chunk);
            Ok(())
        })
        .unwrap();
        assert_eq!(doc_a, doc_b, "diurnal stream must be byte-deterministic");

        // paper pod: 16 + 4 + 4 + 4 devices; 24 one-hour windows each.
        assert_eq!(agg.devices.len(), 28);
        assert_eq!(agg.max_open_windows, 28);
        let windows = doc_a
            .lines()
            .filter(|l| l.contains("\"kind\":\"window\""))
            .count();
        assert_eq!(windows, 28 * 24);
        let header = doc_a.lines().next().unwrap();
        assert!(header.starts_with("{\"schema\":\"npp.power/v1\""));
        let trailer = doc_a.lines().last().unwrap();
        assert!(trailer.contains("\"kind\":\"scenario\""));
        assert!(trailer.contains("[\"mode\",\"diurnal\"]"));
        // Every line parses as JSON.
        for line in doc_a.lines() {
            let v: serde_json::Value = serde_json::from_str(line).expect(line);
            drop(v);
        }
        // Residency in every window covers the whole window.
        for dev in &agg.devices {
            let total: u64 = dev.residency_ns.iter().sum();
            assert_eq!(total, NS_PER_DAY, "{}", dev.name);
            assert!(dev.total_j >= 0.0);
        }
        // Hosts never park; spines do.
        let host = agg.devices.iter().find(|d| d.name == "host0").unwrap();
        assert_eq!(host.residency_ns[PowerState::Off.index()], 0);
        let spine_off: u64 = agg
            .devices
            .iter()
            .filter(|d| d.tier == Tier::Spine)
            .map(|d| d.residency_ns[PowerState::Off.index()])
            .sum();
        assert!(spine_off > 0, "spines should park overnight");
    }
}
