//! The `netpp serve` and `netpp serve-bench` subcommands.
//!
//! ```text
//! netpp serve [--addr HOST:PORT] [--cache DIR] [--jobs N]
//!             [--threads N] [--max-inflight K] [--workers N]
//!             [--metrics]
//! netpp serve-bench [--quick] [--out PATH] [--jobs N]
//! ```
//!
//! `serve` runs the what-if daemon from `npp-serve` until SIGINT,
//! SIGTERM, or `POST /admin/shutdown`, then drains gracefully.
//! `serve-bench` runs the self-driving load harness and prints (or
//! writes) the `BENCH_serve.json` document.

use npp_serve::{bench, ServeConfig};
use npp_telemetry::progress;

use crate::paper::Result;

/// Parsed arguments for `netpp serve`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeArgs {
    /// Daemon configuration assembled from the flags.
    pub addr: String,
    /// Cache directory, if persistence was requested.
    pub cache_dir: Option<String>,
    /// Executor threads for cold batches (`None` = default).
    pub jobs: Option<usize>,
    /// Engine worker threads per scenario (`None` = default 1).
    pub threads: Option<usize>,
    /// Admission cap (`None` = default).
    pub max_inflight: Option<usize>,
    /// Connection-handler threads (`None` = default).
    pub workers: Option<usize>,
    /// Dump the metrics registry snapshot to stderr after the drain.
    pub metrics: bool,
}

/// Parses `serve` arguments.
///
/// # Errors
///
/// Rejects malformed flag values and unknown flags.
pub fn parse_args(rest: &[&str]) -> Result<ServeArgs> {
    let mut args = ServeArgs {
        addr: "127.0.0.1:7733".to_string(),
        cache_dir: None,
        jobs: None,
        threads: None,
        max_inflight: None,
        workers: None,
        metrics: false,
    };
    let mut it = rest.iter().copied();
    while let Some(arg) = it.next() {
        match arg {
            "--json" => {}
            "--metrics" => args.metrics = true,
            "--addr" => {
                args.addr = it.next().ok_or("--addr needs HOST:PORT")?.to_string();
            }
            "--cache" => {
                args.cache_dir = Some(it.next().ok_or("--cache needs a directory")?.to_string());
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                args.jobs = Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("bad --jobs value {v:?}"))?,
                );
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                let n = v
                    .parse::<usize>()
                    .map_err(|_| format!("bad --threads value {v:?}"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".into());
                }
                args.threads = Some(n);
            }
            "--max-inflight" => {
                let v = it.next().ok_or("--max-inflight needs a value")?;
                args.max_inflight = Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("bad --max-inflight value {v:?}"))?,
                );
            }
            "--workers" => {
                let v = it.next().ok_or("--workers needs a value")?;
                args.workers = Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("bad --workers value {v:?}"))?,
                );
            }
            flag => return Err(format!("unknown serve flag {flag:?}").into()),
        }
    }
    Ok(args)
}

impl ServeArgs {
    /// Builds the daemon configuration, filling unset flags from the
    /// crate defaults.
    #[must_use]
    pub fn to_config(&self) -> ServeConfig {
        let defaults = ServeConfig::default();
        ServeConfig {
            addr: self.addr.clone(),
            cache_dir: self.cache_dir.as_ref().map(Into::into),
            jobs: self.jobs.unwrap_or(defaults.jobs).max(1),
            threads: self.threads.unwrap_or(defaults.threads).max(1),
            max_inflight: self.max_inflight.unwrap_or(defaults.max_inflight).max(1),
            workers: self.workers.unwrap_or(defaults.workers).max(1),
            ..defaults
        }
    }
}

/// Runs `netpp serve` (blocks until shutdown, then drains).
///
/// # Errors
///
/// Propagates bind, cache, and engine errors.
pub fn run(rest: &[&str], _json: bool) -> Result<()> {
    let args = parse_args(rest)?;
    npp_serve::run(args.to_config()).map_err(|e| e.to_string())?;
    if args.metrics {
        progress::emit(&npp_telemetry::metrics::snapshot().to_text());
    }
    Ok(())
}

/// Parsed arguments for `netpp serve-bench`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchArgs {
    /// CI smoke mode.
    pub quick: bool,
    /// Write the document here instead of stdout.
    pub out: Option<String>,
    /// Executor threads for the cold batch (`None` = default).
    pub jobs: Option<usize>,
}

/// Parses `serve-bench` arguments.
///
/// # Errors
///
/// Rejects malformed flag values and unknown flags.
pub fn parse_bench_args(rest: &[&str]) -> Result<BenchArgs> {
    let mut args = BenchArgs {
        quick: false,
        out: None,
        jobs: None,
    };
    let mut it = rest.iter().copied();
    while let Some(arg) = it.next() {
        match arg {
            "--json" => {}
            "--quick" => args.quick = true,
            "--out" => {
                args.out = Some(it.next().ok_or("--out needs a path")?.to_string());
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                args.jobs = Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("bad --jobs value {v:?}"))?,
                );
            }
            flag => return Err(format!("unknown serve-bench flag {flag:?}").into()),
        }
    }
    Ok(args)
}

/// Runs `netpp serve-bench`.
///
/// # Errors
///
/// Propagates harness errors, including any byte-identity mismatch.
pub fn run_bench(rest: &[&str], _json: bool) -> Result<()> {
    let args = parse_bench_args(rest)?;
    let mut opts = if args.quick {
        bench::BenchOptions::quick()
    } else {
        bench::BenchOptions::default()
    };
    if let Some(jobs) = args.jobs {
        opts.jobs = jobs.max(1);
    }
    npp_telemetry::metrics::set_standalone(true);
    let doc = bench::run(&opts);
    npp_telemetry::metrics::set_standalone(false);
    let doc = doc.map_err(|e| e.to_string())?;
    match &args.out {
        Some(path) => {
            std::fs::write(path, format!("{doc}\n"))
                .map_err(|e| format!("cannot write {path:?}: {e}"))?;
            progress::emit(&format!("serve-bench: wrote {path}"));
        }
        None => println!("{doc}"),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_serve_flag_set() {
        let args = parse_args(&[
            "--addr",
            "0.0.0.0:8080",
            "--cache",
            "/tmp/c",
            "--jobs",
            "3",
            "--max-inflight",
            "16",
            "--workers",
            "2",
            "--metrics",
        ])
        .unwrap();
        assert_eq!(args.addr, "0.0.0.0:8080");
        assert_eq!(args.cache_dir.as_deref(), Some("/tmp/c"));
        assert_eq!(args.jobs, Some(3));
        assert_eq!(args.max_inflight, Some(16));
        assert_eq!(args.workers, Some(2));
        assert!(args.metrics);

        let config = args.to_config();
        assert_eq!(config.addr, "0.0.0.0:8080");
        assert_eq!(config.jobs, 3);
        assert_eq!(config.max_inflight, 16);
        assert_eq!(config.workers, 2);
    }

    #[test]
    fn serve_defaults_are_sensible() {
        let args = parse_args(&[]).unwrap();
        assert_eq!(args.addr, "127.0.0.1:7733");
        assert!(args.cache_dir.is_none());
        let config = args.to_config();
        assert!(config.jobs >= 1);
        assert!(config.max_inflight >= 1);
        assert!(config.workers >= 1);
    }

    #[test]
    fn rejects_bad_serve_invocations() {
        assert!(parse_args(&["--addr"]).is_err());
        assert!(parse_args(&["--jobs", "many"]).is_err());
        assert!(parse_args(&["--max-inflight"]).is_err());
        assert!(parse_args(&["--frobnicate"]).is_err());
        assert!(parse_args(&["spec.json"]).is_err());
    }

    #[test]
    fn parses_bench_flags() {
        let args = parse_bench_args(&["--quick", "--out", "/tmp/b.json", "--jobs", "2"]).unwrap();
        assert!(args.quick);
        assert_eq!(args.out.as_deref(), Some("/tmp/b.json"));
        assert_eq!(args.jobs, Some(2));
        assert!(parse_bench_args(&["--out"]).is_err());
        assert!(parse_bench_args(&["--nope"]).is_err());
    }
}
