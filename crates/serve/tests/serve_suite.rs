//! End-to-end suite for the serve daemon: a real listener on an
//! ephemeral port, exercised over TCP with the crate's own client.

use std::path::PathBuf;
use std::time::Duration;

use npp_serve::{spawn, Client, ServeConfig};
use npp_sweep::{run_sweep, Axis, ScenarioSpec, SweepOptions, SweepSpec};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("npp-serve-suite-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn test_config(cache: Option<PathBuf>) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        cache_dir: cache,
        jobs: 2,
        threads: 1,
        max_inflight: 32,
        workers: 2,
        read_timeout_ms: 2_000,
        max_body_bytes: 1 << 20,
    }
}

fn analytic_spec() -> SweepSpec {
    SweepSpec {
        name: "serve-suite".into(),
        base: ScenarioSpec::paper_baseline(),
        axes: vec![
            Axis::BandwidthGbps(vec![100.0, 400.0]),
            Axis::NetworkProportionality(vec![0.2, 0.8]),
        ],
    }
}

#[test]
fn sweep_endpoint_is_byte_identical_to_local_sweep() {
    let dir = scratch_dir("byteident");
    let handle = spawn(test_config(Some(dir.clone()))).unwrap();
    let mut client = Client::new(handle.addr());

    let spec = analytic_spec();
    let expected = {
        let outcome = run_sweep(&spec, &SweepOptions::serial(), None).unwrap();
        let mut doc = serde_json::to_string_pretty(&outcome.results).unwrap();
        doc.push('\n');
        doc
    };
    let body = serde_json::to_string(&spec).unwrap();

    let cold = client.post("/sweep", body.as_bytes()).unwrap();
    assert_eq!(cold.status, 200);
    assert_eq!(cold.header("x-npp-cache"), Some("miss"));
    assert_eq!(cold.text(), expected, "cold body diverged");

    let warm = client.post("/sweep", body.as_bytes()).unwrap();
    assert_eq!(warm.status, 200);
    assert_eq!(warm.header("x-npp-cache"), Some("hit"));
    assert_eq!(warm.text(), expected, "warm body diverged");

    handle.request_drain();
    handle.join();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn scenario_endpoint_serves_single_rows_with_cache_headers() {
    let dir = scratch_dir("scenario");
    let handle = spawn(test_config(Some(dir.clone()))).unwrap();
    let mut client = Client::new(handle.addr());

    let spec = ScenarioSpec::paper_baseline();
    let body = serde_json::to_string(&spec).unwrap();
    let cold = client.post("/scenario", body.as_bytes()).unwrap();
    assert_eq!(cold.status, 200);
    assert_eq!(cold.header("x-npp-cache"), Some("miss"));
    let warm = client.post("/scenario", body.as_bytes()).unwrap();
    assert_eq!(warm.status, 200);
    assert_eq!(warm.header("x-npp-cache"), Some("hit"));
    // Warm and cold response bodies are byte-identical.
    assert_eq!(cold.body, warm.body);
    let doc: serde_json::Value = serde_json::from_slice(&warm.body).unwrap();
    if let serde_json::Value::Object(fields) = &doc {
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["hash", "seed", "metrics"]);
    } else {
        panic!("scenario reply is not an object: {doc:?}");
    }

    handle.request_drain();
    handle.join();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn stream_endpoint_emits_jsonl_rows_in_grid_order() {
    let handle = spawn(test_config(None)).unwrap();
    let mut client = Client::new(handle.addr());
    let spec = analytic_spec();
    let body = serde_json::to_string(&spec).unwrap();
    let reply = client.post("/sweep/stream", body.as_bytes()).unwrap();
    assert_eq!(reply.status, 200);
    let text = reply.text();
    let lines: Vec<&str> = text.lines().collect();
    // Header + 4 scenarios + frontier trailer.
    assert_eq!(lines.len(), 6, "{text}");
    assert!(lines.first().unwrap().contains("\"total\":4"));
    assert!(lines.last().unwrap().contains("\"frontier\""));
    for (i, line) in lines.iter().enumerate().skip(1).take(4) {
        let row: serde_json::Value = serde_json::from_str(line).unwrap();
        assert!(matches!(row, serde_json::Value::Object(_)), "{line}");
        let expected_prefix = format!("{{\"index\":{}", i - 1);
        assert!(line.starts_with(&expected_prefix), "{line}");
    }

    handle.request_drain();
    handle.join();
}

#[test]
fn malformed_and_unknown_requests_are_structured_errors() {
    let handle = spawn(test_config(None)).unwrap();
    let mut client = Client::new(handle.addr());

    let bad = client.post("/sweep", b"{ definitely not json").unwrap();
    assert_eq!(bad.status, 400);
    assert!(
        bad.text().contains("\"kind\":\"bad_spec\""),
        "{}",
        bad.text()
    );

    // Unknown fields in a spec are rejected, not silently accepted.
    let with_typo = r#"{"name":"x","axes":[],"surprise":1}"#;
    let bad = client.post("/sweep", with_typo.as_bytes()).unwrap();
    assert_eq!(bad.status, 400);

    let missing = client.get("/no/such/route").unwrap();
    assert_eq!(missing.status, 404);
    let wrong_method = client.get("/sweep").unwrap();
    assert_eq!(wrong_method.status, 405);

    handle.request_drain();
    handle.join();
}

#[test]
fn health_metrics_and_stats_respond() {
    let dir = scratch_dir("introspect");
    let handle = spawn(test_config(Some(dir.clone()))).unwrap();
    let mut client = Client::new(handle.addr());

    let health = client.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    assert!(health.text().contains("\"status\":\"ok\""));

    let metrics = client.get("/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    assert!(metrics.text().starts_with('{'), "{}", metrics.text());

    let stats = client.get("/stats").unwrap();
    assert_eq!(stats.status, 200);
    assert!(stats.text().contains("\"jobs\""), "{}", stats.text());
    assert!(stats.text().contains("\"entries\""), "{}", stats.text());

    handle.request_drain();
    handle.join();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn admin_shutdown_drains_within_deadline() {
    let handle = spawn(test_config(None)).unwrap();
    let mut client = Client::new(handle.addr());
    let reply = client.post("/admin/shutdown", b"").unwrap();
    assert_eq!(reply.status, 200);
    assert!(reply.text().contains("draining"));

    let addr = handle.addr();
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        handle.join();
        let _ = done_tx.send(());
    });
    done_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("drain exceeded the 10s deadline");

    // The listener is really gone (allow the OS a moment to reap it).
    std::thread::sleep(Duration::from_millis(50));
    let mut probe = Client::new(addr).with_timeout(Duration::from_millis(500));
    assert!(probe.get("/healthz").is_err(), "listener still accepting");
}

#[test]
fn oversized_bodies_are_rejected_with_413() {
    let mut config = test_config(None);
    config.max_body_bytes = 64;
    let handle = spawn(config).unwrap();
    let mut client = Client::new(handle.addr());
    let big = vec![b'x'; 1024];
    let reply = client.post("/sweep", &big).unwrap();
    assert_eq!(reply.status, 413);
    assert!(reply.text().contains("too_large"), "{}", reply.text());

    handle.request_drain();
    handle.join();
}

#[test]
fn persistent_cache_survives_server_restarts() {
    let dir = scratch_dir("restart");
    let spec = analytic_spec();
    let body = serde_json::to_string(&spec).unwrap();

    let first = spawn(test_config(Some(dir.clone()))).unwrap();
    let mut client = Client::new(first.addr());
    let cold = client.post("/sweep", body.as_bytes()).unwrap();
    assert_eq!(cold.header("x-npp-cache"), Some("miss"));
    first.request_drain();
    first.join();

    // A fresh daemon over the same directory rebuilds the index from
    // the segment files and serves the sweep warm.
    let second = spawn(test_config(Some(dir.clone()))).unwrap();
    let mut client = Client::new(second.addr());
    let warm = client.post("/sweep", body.as_bytes()).unwrap();
    assert_eq!(warm.header("x-npp-cache"), Some("hit"));
    assert_eq!(warm.body, cold.body);
    second.request_drain();
    second.join();
    std::fs::remove_dir_all(&dir).unwrap();
}
