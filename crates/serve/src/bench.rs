//! Self-driving load harness behind `netpp serve-bench`.
//!
//! Boots an in-process server on an ephemeral port with a scratch
//! cache, then measures:
//!
//! - **cold-burst throughput** — one `/sweep` over an all-cold grid,
//!   reported as scenarios/sec through the batch executor;
//! - **warm sustained load** — concurrent keep-alive clients hammering
//!   `/scenario` against the fully warm cache, reported as qps with
//!   client-side p50/p99 latency;
//! - **drain latency** — `/admin/shutdown` to fully-joined threads.
//!
//! Correctness is asserted inline: the `/sweep` body must be
//! byte-identical to the engine's own `netpp sweep --json` document,
//! cold and warm. The resulting JSON document starts the
//! `BENCH_serve.json` trajectory.

use std::path::PathBuf;
use std::time::Duration;

use serde::Serialize;

use npp_sweep::{expand, run_sweep, Axis, ScenarioSpec, SweepOptions, SweepSpec};

use crate::client::Client;
use crate::{Result, ServeConfig, ServeError};

/// Harness options (the `netpp serve-bench` flags).
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// CI smoke mode: a smaller grid and fewer warm requests.
    pub quick: bool,
    /// Warm-phase requests per client thread.
    pub requests_per_client: usize,
    /// Concurrent warm-phase client connections.
    pub clients: usize,
    /// Executor threads for the cold batch.
    pub jobs: usize,
}

impl Default for BenchOptions {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        Self {
            quick: false,
            requests_per_client: 600,
            clients: 8,
            jobs: cores,
        }
    }
}

impl BenchOptions {
    /// The CI smoke configuration.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            quick: true,
            requests_per_client: 60,
            clients: 2,
            ..Self::default()
        }
    }
}

/// Cold-burst phase measurements.
#[derive(Debug, Serialize)]
pub struct ColdPhase {
    /// Scenarios in the burst grid.
    pub scenarios: usize,
    /// Wall time of the cold `/sweep`, milliseconds.
    pub wall_ms: u64,
    /// Cold throughput through the batch executor.
    pub scenarios_per_sec: f64,
    /// The cold body matched the engine's own document byte for byte.
    pub byte_identical: bool,
}

/// Warm sustained-load phase measurements.
#[derive(Debug, Serialize)]
pub struct WarmPhase {
    /// Total `/scenario` requests issued.
    pub requests: usize,
    /// Concurrent client connections.
    pub clients: usize,
    /// Wall time of the whole phase, milliseconds.
    pub wall_ms: u64,
    /// Sustained warm-cache throughput.
    pub qps: f64,
    /// Client-side median latency, nanoseconds.
    pub p50_ns: u64,
    /// Client-side 99th-percentile latency, nanoseconds.
    pub p99_ns: u64,
    /// Every warm response carried `X-NPP-Cache: hit`.
    pub all_cache_hits: bool,
    /// The warm `/sweep` body matched the cold one byte for byte.
    pub byte_identical: bool,
}

/// The whole `BENCH_serve.json` document.
#[derive(Debug, Serialize)]
pub struct BenchDoc {
    /// Document schema tag.
    pub schema: String,
    /// Whether this was a `--quick` smoke run.
    pub quick: bool,
    /// Executor threads used for the cold batch.
    pub jobs: usize,
    /// Cold-burst phase.
    pub cold: ColdPhase,
    /// Warm sustained-load phase.
    pub warm: WarmPhase,
    /// `/admin/shutdown` to fully-joined threads, milliseconds.
    pub drain_ms: u64,
}

/// Bench grid: analytic scenarios only, so the numbers measure the
/// serving stack rather than simulation horizons.
fn bench_spec(quick: bool) -> SweepSpec {
    let (bandwidths, props) = if quick {
        (vec![100.0, 200.0, 400.0], vec![0.1, 0.5, 0.9])
    } else {
        (
            vec![100.0, 200.0, 400.0, 800.0, 1200.0, 1600.0],
            vec![0.0, 0.15, 0.3, 0.45, 0.6, 0.75, 0.9, 1.0],
        )
    };
    SweepSpec {
        name: "serve-bench".to_string(),
        base: ScenarioSpec::paper_baseline(),
        axes: vec![
            Axis::BandwidthGbps(bandwidths),
            Axis::NetworkProportionality(props),
        ],
    }
}

fn percentile(sorted: &[u64], pct: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len().saturating_sub(1)) * pct / 100;
    sorted.get(rank).copied().unwrap_or(0)
}

/// Runs the harness and returns the rendered JSON document.
///
/// # Errors
///
/// Fails on server, transport, or — deliberately — any byte-identity
/// mismatch between served and locally computed documents.
pub fn run(opts: &BenchOptions) -> Result<String> {
    let cache_dir: PathBuf =
        std::env::temp_dir().join(format!("npp-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);

    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        cache_dir: Some(cache_dir.clone()),
        jobs: opts.jobs.max(1),
        max_inflight: (opts.clients * 4).max(64),
        ..ServeConfig::default()
    };
    let handle = crate::server::spawn(config)?;
    let addr = handle.addr();

    let spec = bench_spec(opts.quick);
    let scenarios = expand(&spec)?;
    let total = scenarios.len();
    // The reference document, computed locally exactly as `netpp sweep
    // --json` would print it.
    let reference = run_sweep(&spec, &SweepOptions::serial(), None)?;
    let mut expected = serde_json::to_string_pretty(&reference.results)?;
    expected.push('\n');
    let spec_body = serde_json::to_string(&spec)?;

    // --- Cold burst -------------------------------------------------
    let mut client = Client::new(addr).with_timeout(Duration::from_secs(120));
    // npp-lint: allow(wall-clock) reason="benchmark wall times are the measurement itself; they never enter a deterministic document"
    let cold_started = npp_telemetry::wall_clock();
    let cold_reply = client.post("/sweep", spec_body.as_bytes())?;
    let cold_elapsed = cold_started.elapsed();
    if cold_reply.status != 200 {
        return Err(ServeError::Engine(format!(
            "cold /sweep returned {}: {}",
            cold_reply.status,
            cold_reply.text()
        )));
    }
    let cold_identical = cold_reply.body == expected.as_bytes();
    if !cold_identical {
        return Err(ServeError::Engine(
            "cold /sweep body diverged from the local sweep document".to_string(),
        ));
    }
    let cold = ColdPhase {
        scenarios: total,
        wall_ms: u64::try_from(cold_elapsed.as_millis()).unwrap_or(u64::MAX),
        scenarios_per_sec: total as f64 / cold_elapsed.as_secs_f64().max(1e-9),
        byte_identical: cold_identical,
    };

    // --- Warm sustained load ---------------------------------------
    // Each client cycles through the grid's individual scenario specs;
    // every request must be a cache hit.
    let scenario_bodies: Vec<Vec<u8>> = scenarios
        .iter()
        .map(|s| serde_json::to_string(&s.spec).map(String::into_bytes))
        .collect::<std::result::Result<_, _>>()
        .map_err(npp_sweep::SweepError::from)?;
    let per_client = opts.requests_per_client.max(1);
    let clients = opts.clients.max(1);
    // npp-lint: allow(wall-clock) reason="benchmark wall times are the measurement itself; they never enter a deterministic document"
    let warm_started = npp_telemetry::wall_clock();
    let mut latencies: Vec<u64> = Vec::with_capacity(per_client * clients);
    let mut all_hits = true;
    let worker_results: Vec<std::io::Result<(Vec<u64>, bool)>> = std::thread::scope(|scope| {
        let bodies = &scenario_bodies;
        (0..clients)
            .map(|client_idx| {
                scope.spawn(move || {
                    let mut client = Client::new(addr).with_timeout(Duration::from_secs(30));
                    let mut latencies = Vec::with_capacity(per_client);
                    let mut all_hits = true;
                    for k in 0..per_client {
                        let body = bodies
                            .get((client_idx + k) % bodies.len().max(1))
                            .map(Vec::as_slice)
                            .unwrap_or_default();
                        // npp-lint: allow(wall-clock) reason="client-side latency sample for the benchmark document only"
                        let started = npp_telemetry::wall_clock();
                        let reply = client.post("/scenario", body)?;
                        latencies
                            .push(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
                        if reply.status != 200 {
                            return Err(std::io::Error::other(format!(
                                "warm /scenario returned {}",
                                reply.status
                            )));
                        }
                        if reply.header("x-npp-cache") != Some("hit") {
                            all_hits = false;
                        }
                    }
                    Ok((latencies, all_hits))
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err(std::io::Error::other("client panicked")))
            })
            .collect()
    });
    let warm_elapsed = warm_started.elapsed();
    for result in worker_results {
        let (mut lats, hits) = result?;
        latencies.append(&mut lats);
        all_hits &= hits;
    }
    latencies.sort_unstable();

    // Warm byte-identity: the whole sweep again, now fully cached.
    let warm_reply = client.post("/sweep", spec_body.as_bytes())?;
    let warm_identical = warm_reply.status == 200 && warm_reply.body == expected.as_bytes();
    if !warm_identical {
        return Err(ServeError::Engine(
            "warm /sweep body diverged from the cold document".to_string(),
        ));
    }
    let warm = WarmPhase {
        requests: latencies.len(),
        clients,
        wall_ms: u64::try_from(warm_elapsed.as_millis()).unwrap_or(u64::MAX),
        qps: latencies.len() as f64 / warm_elapsed.as_secs_f64().max(1e-9),
        p50_ns: percentile(&latencies, 50),
        p99_ns: percentile(&latencies, 99),
        all_cache_hits: all_hits,
        byte_identical: warm_identical,
    };

    // --- Drain ------------------------------------------------------
    // npp-lint: allow(wall-clock) reason="drain latency is a benchmark measurement, never part of a deterministic document"
    let drain_started = npp_telemetry::wall_clock();
    let _ = client.post("/admin/shutdown", b"");
    handle.join();
    let drain_ms = u64::try_from(drain_started.elapsed().as_millis()).unwrap_or(u64::MAX);

    let _ = std::fs::remove_dir_all(&cache_dir);

    let doc = BenchDoc {
        schema: "npp.bench.serve/v1".to_string(),
        quick: opts.quick,
        jobs: opts.jobs.max(1),
        cold,
        warm,
        drain_ms,
    };
    Ok(serde_json::to_string_pretty(&doc).map_err(npp_sweep::SweepError::from)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_order_statistics() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 50), 50);
        assert_eq!(percentile(&sorted, 99), 99);
        assert_eq!(percentile(&[], 99), 0);
        assert_eq!(percentile(&[7], 50), 7);
    }

    #[test]
    fn quick_bench_produces_a_consistent_document() {
        let doc = run(&BenchOptions::quick()).unwrap();
        let value: serde_json::Value = serde_json::from_str(&doc).unwrap();
        let text = doc.as_str();
        assert!(
            text.contains("\"schema\": \"npp.bench.serve/v1\""),
            "{text}"
        );
        assert!(text.contains("\"byte_identical\": true"), "{text}");
        assert!(text.contains("\"all_cache_hits\": true"), "{text}");
        assert!(matches!(value, serde_json::Value::Object(_)));
    }
}
