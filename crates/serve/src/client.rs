//! Tiny blocking HTTP/1.1 client for the serve endpoints — used by the
//! load harness, the integration tests, and `netpp serve-bench`.
//!
//! Keep-alive by default; a request against a connection the server
//! already closed is retried once on a fresh connection.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed response.
#[derive(Debug, Clone)]
pub struct HttpReply {
    /// Status code.
    pub status: u16,
    /// Headers with lowercased names.
    pub headers: Vec<(String, String)>,
    /// The body.
    pub body: Vec<u8>,
}

impl HttpReply {
    /// First header value by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Blocking keep-alive client bound to one server address.
#[derive(Debug)]
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
    stream: Option<TcpStream>,
}

impl Client {
    /// Creates a client (connections are opened lazily).
    pub fn new(addr: SocketAddr) -> Self {
        Self {
            addr,
            timeout: Duration::from_secs(30),
            stream: None,
        }
    }

    /// Overrides the per-operation timeout.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    fn connect(&self) -> std::io::Result<TcpStream> {
        let stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        stream.set_nodelay(true)?;
        Ok(stream)
    }

    /// `GET path`.
    ///
    /// # Errors
    ///
    /// Transport or framing failures.
    pub fn get(&mut self, path: &str) -> std::io::Result<HttpReply> {
        self.request("GET", path, b"")
    }

    /// `POST path` with a JSON body.
    ///
    /// # Errors
    ///
    /// Transport or framing failures.
    pub fn post(&mut self, path: &str, body: &[u8]) -> std::io::Result<HttpReply> {
        self.request("POST", path, body)
    }

    /// Issues one request, reusing the kept-alive connection when
    /// possible and retrying once on a fresh one.
    ///
    /// # Errors
    ///
    /// Transport or framing failures after the retry.
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> std::io::Result<HttpReply> {
        let had_live_stream = self.stream.is_some();
        match self.try_request(method, path, body) {
            Ok(reply) => Ok(reply),
            Err(e) if had_live_stream => {
                // The server may have closed the kept-alive connection;
                // one retry on a fresh connection.
                let _ = e;
                self.stream = None;
                self.try_request(method, path, body)
            }
            Err(e) => Err(e),
        }
    }

    fn try_request(&mut self, method: &str, path: &str, body: &[u8]) -> std::io::Result<HttpReply> {
        if self.stream.is_none() {
            self.stream = Some(self.connect()?);
        }
        let Some(stream) = self.stream.as_mut() else {
            return Err(std::io::Error::other("no connection"));
        };
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: npp-serve\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(body)?;
        stream.flush()?;
        let reply = read_reply(stream)?;
        let close = reply
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"));
        if close {
            self.stream = None;
        }
        Ok(reply)
    }
}

/// Reads one response: head, then `Content-Length` body or read-to-EOF
/// when the length is absent (streaming endpoints).
fn read_reply(stream: &mut TcpStream) -> std::io::Result<HttpReply> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 2048];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before response head",
            ));
        }
        buf.extend_from_slice(chunk.get(..n).unwrap_or_default());
    };

    let head = String::from_utf8_lossy(buf.get(..head_end).unwrap_or_default()).into_owned();
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad status line {status_line:?}"),
            )
        })?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }

    let mut body: Vec<u8> = buf.get(head_end + 4..).unwrap_or_default().to_vec();
    let declared = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok());
    match declared {
        Some(len) => {
            while body.len() < len {
                let n = stream.read(&mut chunk)?;
                if n == 0 {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed mid-body",
                    ));
                }
                body.extend_from_slice(chunk.get(..n).unwrap_or_default());
            }
            body.truncate(len);
        }
        None => loop {
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                break;
            }
            body.extend_from_slice(chunk.get(..n).unwrap_or_default());
        },
    }

    Ok(HttpReply {
        status,
        headers,
        body,
    })
}
