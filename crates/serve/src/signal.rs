//! SIGINT/SIGTERM → an atomic flag, with no FFI crate: the platform C
//! library's `signal()` is declared directly (std already links libc).
//!
//! The handler does exactly one async-signal-safe thing — an atomic
//! store — and the daemon's run loop polls [`triggered`]. Because glibc
//! `signal()` installs `SA_RESTART` handlers, a blocked `accept()` is
//! *not* interrupted; the drain path wakes the acceptor with a
//! self-connection instead (see [`crate::server`]).

use std::sync::atomic::{AtomicBool, Ordering};

static TRIGGERED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::TRIGGERED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    type SigHandler = extern "C" fn(i32);

    extern "C" {
        fn signal(signum: i32, handler: SigHandler) -> usize;
    }

    extern "C" fn mark(_signum: i32) {
        TRIGGERED.store(true, Ordering::SeqCst);
    }

    pub(super) fn install() {
        // SAFETY: `mark` only performs an atomic store, which is
        // async-signal-safe; `signal` is the documented libc entry
        // point and the return value (the previous handler) is unused.
        unsafe {
            let _ = signal(SIGINT, mark);
            let _ = signal(SIGTERM, mark);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub(super) fn install() {}
}

/// Installs handlers for SIGINT and SIGTERM (no-op off Unix).
pub fn install() {
    imp::install();
}

/// `true` once a handled signal has arrived.
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::SeqCst)
}

/// Clears the flag (tests and restarts).
pub fn reset() {
    TRIGGERED.store(false, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_clear_and_resets() {
        reset();
        assert!(!triggered());
        TRIGGERED.store(true, Ordering::SeqCst);
        assert!(triggered());
        reset();
        assert!(!triggered());
    }
}
