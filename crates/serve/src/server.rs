//! Listener, worker pool, admission control, and graceful drain.
//!
//! The acceptor thread owns the `TcpListener`; accepted connections
//! queue to a fixed worker pool. Admission is enforced *at accept*:
//! when queued-plus-active connections reach `max_inflight`, the
//! acceptor answers 429 inline and closes — backpressure is explicit,
//! never a silent stall. Draining flips one flag: the acceptor answers
//! 503 and exits (woken by a self-connection, since a blocked
//! `accept()` never observes flags), and workers finish the queue
//! before exiting.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use npp_sweep::ResultCache;

use crate::api::{self, Action};
use crate::engine::Engine;
use crate::http::{self, ReadError, Response};
use crate::{Result, ServeConfig, ServeError};

/// State shared between the acceptor, the workers, and the handle.
#[derive(Debug)]
struct Shared {
    engine: Engine,
    config: ServeConfig,
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    draining: AtomicBool,
    /// Connections queued or in service.
    inflight: AtomicUsize,
    accepted: AtomicU64,
    rejected: AtomicU64,
}

/// A running server: join handles plus the drain switch.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `true` once a drain was requested (flag or `/admin/shutdown`).
    pub fn draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Starts a graceful drain: stop accepting, finish queued work.
    /// Idempotent.
    pub fn request_drain(&self) {
        request_drain(&self.shared, self.addr);
    }

    /// Waits for the acceptor and all workers to finish (call after
    /// [`ServerHandle::request_drain`]).
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn request_drain(shared: &Shared, addr: SocketAddr) {
    if shared.draining.swap(true, Ordering::SeqCst) {
        return;
    }
    // Wake the blocked accept() with a throwaway connection.
    let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(250));
    shared.ready.notify_all();
}

/// Binds the listener and starts the acceptor + worker threads.
///
/// # Errors
///
/// Fails if the address does not bind or the cache does not open.
pub fn spawn(config: ServeConfig) -> Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)
        .map_err(|e| ServeError::Config(format!("cannot bind {}: {e}", config.addr)))?;
    let addr = listener.local_addr()?;
    let cache = match &config.cache_dir {
        Some(dir) => Some(ResultCache::open(dir)?),
        None => None,
    };
    let engine = Engine::new(cache, config.jobs).with_threads(config.threads);
    let shared = Arc::new(Shared {
        engine,
        config,
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        draining: AtomicBool::new(false),
        inflight: AtomicUsize::new(0),
        accepted: AtomicU64::new(0),
        rejected: AtomicU64::new(0),
    });

    let workers = (0..shared.config.workers.max(1))
        .map(|_| {
            let shared = shared.clone();
            std::thread::spawn(move || worker_loop(&shared))
        })
        .collect();
    let acceptor = {
        let shared = shared.clone();
        Some(std::thread::spawn(move || accept_loop(&listener, &shared)))
    };

    Ok(ServerHandle {
        addr,
        shared,
        acceptor,
        workers,
    })
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.draining.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shared.draining.load(Ordering::SeqCst) {
            // Includes the drain wake-up connection itself.
            let mut stream = stream;
            let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
            let _ = api::write_draining(&mut stream);
            break;
        }
        shared.accepted.fetch_add(1, Ordering::Relaxed);
        npp_telemetry::metrics::counter_add("serve.accepted", 1);
        if shared.inflight.load(Ordering::SeqCst) >= shared.config.max_inflight.max(1) {
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            npp_telemetry::metrics::counter_add("serve.rejected", 1);
            let mut stream = stream;
            let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
            let _ = api::write_reject(&mut stream);
            continue;
        }
        shared.inflight.fetch_add(1, Ordering::SeqCst);
        npp_telemetry::metrics::gauge_max(
            "serve.inflight_peak",
            shared.inflight.load(Ordering::SeqCst) as f64,
        );
        let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
        queue.push_back(stream);
        drop(queue);
        shared.ready.notify_one();
    }
    // Release any workers parked on an empty queue.
    shared.ready.notify_all();
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(stream) = queue.pop_front() {
                    break Some(stream);
                }
                if shared.draining.load(Ordering::SeqCst) {
                    break None;
                }
                let (next, _) = shared
                    .ready
                    .wait_timeout(queue, Duration::from_millis(500))
                    .unwrap_or_else(PoisonError::into_inner);
                queue = next;
            }
        };
        let Some(stream) = stream else { break };
        // A panicking request must not take the worker down with it.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handle_connection(stream, shared);
        }));
        if result.is_err() {
            npp_telemetry::metrics::counter_add("serve.handler_panics", 1);
        }
        shared.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Maps a status code onto its static counter name.
fn status_counter(status: u16) -> &'static str {
    match status {
        200 => "serve.status_200",
        400 => "serve.status_400",
        404 => "serve.status_404",
        405 => "serve.status_405",
        408 => "serve.status_408",
        413 => "serve.status_413",
        429 => "serve.status_429",
        500 => "serve.status_500",
        503 => "serve.status_503",
        _ => "serve.status_other",
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(
        shared.config.read_timeout_ms.max(1),
    )));
    loop {
        let request = match http::read_request(&mut stream, shared.config.max_body_bytes) {
            Ok(Some(request)) => request,
            Ok(None) => break,
            Err(ReadError::Timeout) => {
                let body = api::error_body("timeout", "request read timed out");
                let _ = http::write_response(&mut stream, &Response::json(408, body).closing());
                npp_telemetry::metrics::counter_add(status_counter(408), 1);
                break;
            }
            Err(ReadError::TooLarge(what)) => {
                let body = api::error_body("too_large", what);
                let _ = http::write_response(&mut stream, &Response::json(413, body).closing());
                npp_telemetry::metrics::counter_add(status_counter(413), 1);
                break;
            }
            Err(ReadError::Malformed(msg)) => {
                let body = api::error_body("malformed", &msg);
                let _ = http::write_response(&mut stream, &Response::json(400, body).closing());
                npp_telemetry::metrics::counter_add(status_counter(400), 1);
                break;
            }
            Err(ReadError::Closed | ReadError::Io(_)) => break,
        };

        npp_telemetry::metrics::counter_add("serve.requests", 1);
        // npp-lint: allow(wall-clock) reason="request latency feeds the volatile metrics registry only, never a deterministic document"
        let started = npp_telemetry::wall_clock();
        let endpoint_metric = api::endpoint_metric(request.path());
        let action = api::dispatch(&request, &shared.engine, &mut stream);
        let elapsed_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        npp_telemetry::metrics::observe("serve.request_ns", elapsed_ns);
        npp_telemetry::metrics::observe(endpoint_metric, elapsed_ns);

        match action {
            Action::Respond(response) => {
                npp_telemetry::metrics::counter_add(status_counter(response.status), 1);
                let close = response.close;
                if http::write_response(&mut stream, &response).is_err() {
                    break;
                }
                if close {
                    break;
                }
            }
            Action::Streamed => {
                npp_telemetry::metrics::counter_add(status_counter(200), 1);
                break;
            }
            Action::Shutdown(response) => {
                npp_telemetry::metrics::counter_add(status_counter(response.status), 1);
                let _ = http::write_response(&mut stream, &response);
                if let Ok(addr) = stream.local_addr() {
                    request_drain(shared, addr);
                } else {
                    shared.draining.store(true, Ordering::SeqCst);
                    shared.ready.notify_all();
                }
                break;
            }
        }
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}
