//! Endpoint routing and the JSON wire format.
//!
//! Every error is structured JSON — `{"error":{"kind":…,"message":…}}`
//! — and never a panic. The `/sweep` response body is byte-identical to
//! `netpp sweep --json` for the same spec: both serialize the same
//! [`SweepResults`](npp_sweep::SweepResults) with the same pretty
//! printer and a trailing newline.

use serde::Serialize;

use npp_sweep::{expand, Metrics, ScenarioSpec, SweepSpec};

use crate::engine::Engine;
use crate::http::{write_response, write_stream_head, Request, Response, PROMETHEUS_CONTENT_TYPE};

/// What the connection handler should do after a request.
#[derive(Debug)]
pub enum Action {
    /// Write this framed response.
    Respond(Response),
    /// The response was already streamed; close the connection.
    Streamed,
    /// Write this response, then start a graceful drain.
    Shutdown(Response),
}

/// Single-scenario response document.
#[derive(Debug, Serialize)]
struct ScenarioReply {
    /// Content hash of the scenario spec (the cache key).
    hash: String,
    /// Seed derived from the hash.
    seed: u64,
    /// The metrics row.
    metrics: Metrics,
}

/// `/stats` document.
#[derive(Debug, Serialize)]
struct StatsReply {
    cache: Option<npp_sweep::CacheStats>,
    jobs: usize,
    /// Per-endpoint request-latency summaries (only endpoints that have
    /// served at least one request appear; empty when telemetry is off).
    latency: Vec<EndpointLatency>,
}

/// One endpoint's request-latency summary, distilled from the
/// power-of-two telemetry histogram.
#[derive(Debug, Serialize)]
struct EndpointLatency {
    /// Endpoint label (path, or "other" for unknown routes).
    endpoint: &'static str,
    /// Requests observed.
    count: u64,
    /// Total handler time, ns.
    sum_ns: u64,
    /// Fastest request, ns.
    min_ns: u64,
    /// Slowest request, ns.
    max_ns: u64,
}

/// Known endpoints and their per-endpoint latency-histogram metric
/// names. The names are static so the hot path never allocates; the
/// table also drives the `/stats` latency section.
pub const ENDPOINT_METRICS: [(&str, &str); 8] = [
    ("/healthz", "serve.request_ns.healthz"),
    ("/metrics", "serve.request_ns.metrics"),
    ("/stats", "serve.request_ns.stats"),
    ("/scenario", "serve.request_ns.scenario"),
    ("/sweep", "serve.request_ns.sweep"),
    ("/sweep/stream", "serve.request_ns.sweep_stream"),
    ("/admin/shutdown", "serve.request_ns.shutdown"),
    ("other", "serve.request_ns.other"),
];

/// The latency-histogram metric name for a request path.
pub fn endpoint_metric(path: &str) -> &'static str {
    ENDPOINT_METRICS
        .iter()
        .find(|&&(endpoint, _)| endpoint == path)
        .map_or("serve.request_ns.other", |&(_, metric)| metric)
}

/// Renders the structured error body.
pub fn error_body(kind: &str, message: &str) -> Vec<u8> {
    let escaped: String = message
        .chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            '\r' => vec!['\\', 'r'],
            '\t' => vec!['\\', 't'],
            c if (c as u32) < 0x20 => vec![' '],
            c => vec![c],
        })
        .collect();
    format!("{{\"error\":{{\"kind\":\"{kind}\",\"message\":\"{escaped}\"}}}}\n").into_bytes()
}

fn error_response(status: u16, kind: &str, message: &str) -> Response {
    Response::json(status, error_body(kind, message))
}

/// Routes one request. Streaming endpoints write to `stream` directly
/// and return [`Action::Streamed`].
pub fn dispatch<W: std::io::Write>(req: &Request, engine: &Engine, stream: &mut W) -> Action {
    match (req.method.as_str(), req.path()) {
        ("GET", "/healthz") => Action::Respond(Response::json(200, "{\"status\":\"ok\"}\n")),
        ("GET", "/metrics") => match req.query_param("format") {
            None | Some("json") => {
                let mut body = npp_telemetry::metrics::snapshot().to_json();
                body.push('\n');
                Action::Respond(Response::json(200, body))
            }
            Some("prometheus") => {
                let body = npp_telemetry::metrics::snapshot().to_prometheus();
                Action::Respond(Response::text(200, PROMETHEUS_CONTENT_TYPE, body))
            }
            Some(other) => Action::Respond(error_response(
                400,
                "bad_format",
                &format!("unknown metrics format {other:?}; use json or prometheus"),
            )),
        },
        ("GET", "/stats") => stats(engine),
        ("POST", "/scenario") => scenario(req, engine),
        ("POST", "/sweep") => sweep(req, engine),
        ("POST", "/sweep/stream") => sweep_stream(req, engine, stream),
        ("POST", "/admin/shutdown") => {
            Action::Shutdown(Response::json(200, "{\"status\":\"draining\"}\n").closing())
        }
        (
            method,
            "/healthz" | "/metrics" | "/stats" | "/scenario" | "/sweep" | "/sweep/stream"
            | "/admin/shutdown",
        ) => Action::Respond(error_response(
            405,
            "method_not_allowed",
            &format!("{method} is not supported on {}", req.target),
        )),
        (_, target) => Action::Respond(error_response(
            404,
            "not_found",
            &format!("no such endpoint: {target}"),
        )),
    }
}

fn stats(engine: &Engine) -> Action {
    let snapshot = npp_telemetry::metrics::snapshot();
    let latency = ENDPOINT_METRICS
        .iter()
        .filter_map(|&(endpoint, metric)| {
            let h = snapshot.histogram(metric)?;
            (h.count > 0).then_some(EndpointLatency {
                endpoint,
                count: h.count,
                sum_ns: h.sum,
                min_ns: h.min,
                max_ns: h.max,
            })
        })
        .collect();
    let reply = StatsReply {
        cache: engine.cache().map(|c| c.stats()),
        jobs: engine.jobs(),
        latency,
    };
    match serde_json::to_string_pretty(&reply) {
        Ok(mut body) => {
            body.push('\n');
            Action::Respond(Response::json(200, body))
        }
        Err(e) => Action::Respond(error_response(500, "internal", &e.to_string())),
    }
}

fn scenario(req: &Request, engine: &Engine) -> Action {
    let spec: ScenarioSpec = match serde_json::from_slice(&req.body) {
        Ok(spec) => spec,
        Err(e) => return Action::Respond(error_response(400, "bad_spec", &e.to_string())),
    };
    // A scenario is a one-point sweep: same hashing, same executor.
    let sweep = SweepSpec {
        name: "scenario".to_string(),
        base: spec,
        axes: Vec::new(),
    };
    let scenarios = match expand(&sweep) {
        Ok(s) => s,
        Err(e) => return Action::Respond(error_response(400, "bad_spec", &e.to_string())),
    };
    let warm = engine.all_warm(&scenarios);
    let metrics = match engine.evaluate(&scenarios) {
        Ok(m) => m,
        Err(e) => return Action::Respond(error_response(400, "evaluation", &e.to_string())),
    };
    let reply = match (scenarios.into_iter().next(), metrics.into_iter().next()) {
        (Some(scenario), Some(metrics)) => ScenarioReply {
            hash: scenario.hash,
            seed: scenario.seed,
            metrics,
        },
        _ => return Action::Respond(error_response(500, "internal", "empty evaluation")),
    };
    match serde_json::to_string_pretty(&reply) {
        Ok(mut body) => {
            body.push('\n');
            Action::Respond(
                Response::json(200, body)
                    .with_header("X-NPP-Cache", if warm { "hit" } else { "miss" }),
            )
        }
        Err(e) => Action::Respond(error_response(500, "internal", &e.to_string())),
    }
}

fn sweep(req: &Request, engine: &Engine) -> Action {
    let spec: SweepSpec = match serde_json::from_slice(&req.body) {
        Ok(spec) => spec,
        Err(e) => return Action::Respond(error_response(400, "bad_spec", &e.to_string())),
    };
    let warm = match expand(&spec) {
        Ok(scenarios) => engine.all_warm(&scenarios),
        Err(e) => return Action::Respond(error_response(400, "bad_spec", &e.to_string())),
    };
    let results = match engine.run_sweep_spec(&spec) {
        Ok(results) => results,
        Err(e) => return Action::Respond(error_response(400, "evaluation", &e.to_string())),
    };
    // Byte-for-byte the `netpp sweep --json` document: pretty JSON plus
    // the trailing newline `println!` appends.
    match serde_json::to_string_pretty(&results) {
        Ok(mut body) => {
            body.push('\n');
            Action::Respond(
                Response::json(200, body)
                    .with_header("X-NPP-Cache", if warm { "hit" } else { "miss" }),
            )
        }
        Err(e) => Action::Respond(error_response(500, "internal", &e.to_string())),
    }
}

fn sweep_stream<W: std::io::Write>(req: &Request, engine: &Engine, stream: &mut W) -> Action {
    let spec: SweepSpec = match serde_json::from_slice(&req.body) {
        Ok(spec) => spec,
        Err(e) => return Action::Respond(error_response(400, "bad_spec", &e.to_string())),
    };
    let results = match engine.run_sweep_spec(&spec) {
        Ok(results) => results,
        Err(e) => return Action::Respond(error_response(400, "evaluation", &e.to_string())),
    };
    // JSONL framing: a header line, one compact line per scenario row
    // (grid order), and a frontier trailer. EOF delimits the body.
    if write_stream_head(stream, 200, "application/jsonl").is_err() {
        return Action::Streamed;
    }
    let header = format!(
        "{{\"name\":{},\"total\":{}}}\n",
        serde_json::to_string(&results.name).unwrap_or_else(|_| "\"\"".to_string()),
        results.total
    );
    if stream.write_all(header.as_bytes()).is_err() {
        return Action::Streamed;
    }
    for row in &results.scenarios {
        let line = match serde_json::to_string(row) {
            Ok(line) => line,
            Err(_) => break,
        };
        if stream
            .write_all(line.as_bytes())
            .and_then(|()| stream.write_all(b"\n"))
            .is_err()
        {
            return Action::Streamed;
        }
    }
    let trailer = format!(
        "{{\"frontier\":{}}}\n",
        serde_json::to_string(&results.frontier).unwrap_or_else(|_| "[]".to_string())
    );
    let _ = stream.write_all(trailer.as_bytes());
    let _ = stream.flush();
    Action::Streamed
}

/// Writes the standard 429 admission-rejection response (used by the
/// acceptor before a connection ever reaches a worker).
pub fn write_reject<W: std::io::Write>(stream: &mut W) -> std::io::Result<()> {
    let resp = Response::json(
        429,
        error_body("overloaded", "max-inflight reached; retry later"),
    )
    .closing();
    write_response(stream, &resp)
}

/// Writes the standard 503 draining response.
pub fn write_draining<W: std::io::Write>(stream: &mut W) -> std::io::Result<()> {
    let resp = Response::json(503, error_body("draining", "server is shutting down")).closing();
    write_response(stream, &resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(method: &str, target: &str, body: &[u8]) -> Request {
        Request {
            method: method.to_string(),
            target: target.to_string(),
            headers: Vec::new(),
            body: body.to_vec(),
        }
    }

    fn engine() -> Engine {
        Engine::new(None, 1)
    }

    #[test]
    fn health_and_unknown_routes() {
        let e = engine();
        let mut sink = Vec::new();
        match dispatch(&request("GET", "/healthz", b""), &e, &mut sink) {
            Action::Respond(r) => assert_eq!(r.status, 200),
            other => panic!("{other:?}"),
        }
        match dispatch(&request("GET", "/nope", b""), &e, &mut sink) {
            Action::Respond(r) => {
                assert_eq!(r.status, 404);
                assert!(String::from_utf8_lossy(&r.body).contains("not_found"));
            }
            other => panic!("{other:?}"),
        }
        match dispatch(&request("DELETE", "/sweep", b""), &e, &mut sink) {
            Action::Respond(r) => assert_eq!(r.status, 405),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_specs_are_structured_400s() {
        let e = engine();
        let mut sink = Vec::new();
        for target in ["/scenario", "/sweep", "/sweep/stream"] {
            match dispatch(&request("POST", target, b"{ not json"), &e, &mut sink) {
                Action::Respond(r) => {
                    assert_eq!(r.status, 400, "{target}");
                    let body = String::from_utf8_lossy(&r.body).into_owned();
                    assert!(body.contains("\"kind\":\"bad_spec\""), "{target}: {body}");
                }
                other => panic!("{target}: {other:?}"),
            }
        }
    }

    #[test]
    fn error_body_escapes_quotes_and_newlines() {
        let body = String::from_utf8(error_body("x", "a \"b\"\nc\\d")).unwrap();
        assert_eq!(
            body,
            "{\"error\":{\"kind\":\"x\",\"message\":\"a \\\"b\\\"\\nc\\\\d\"}}\n"
        );
        let parsed: serde_json::Value = serde_json::from_str(body.trim()).unwrap();
        assert!(matches!(parsed, serde_json::Value::Object(_)));
    }

    #[test]
    fn scenario_roundtrip_against_engine() {
        let e = engine();
        let spec = npp_sweep::ScenarioSpec::paper_baseline();
        let body = serde_json::to_string(&spec).unwrap();
        let mut sink = Vec::new();
        match dispatch(
            &request("POST", "/scenario", body.as_bytes()),
            &e,
            &mut sink,
        ) {
            Action::Respond(r) => {
                assert_eq!(r.status, 200);
                let text = String::from_utf8_lossy(&r.body).into_owned();
                assert!(text.contains("\"hash\""), "{text}");
                assert!(text.contains("\"metrics\""), "{text}");
                assert_eq!(
                    r.extra_headers
                        .iter()
                        .find(|(n, _)| n == "X-NPP-Cache")
                        .map(|(_, v)| v.as_str()),
                    Some("miss")
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn every_endpoint_declares_the_right_content_type() {
        let e = engine();
        let mut sink = Vec::new();
        let spec = serde_json::to_string(&npp_sweep::ScenarioSpec::paper_baseline())
            .unwrap()
            .into_bytes();
        let sweep = serde_json::to_string(&SweepSpec {
            name: "ct".into(),
            base: npp_sweep::ScenarioSpec::paper_baseline(),
            axes: Vec::new(),
        })
        .unwrap()
        .into_bytes();
        let json_cases: [(&str, &str, &[u8]); 7] = [
            ("GET", "/healthz", b""),
            ("GET", "/metrics", b""),
            ("GET", "/metrics?format=json", b""),
            ("GET", "/stats", b""),
            ("POST", "/scenario", &spec),
            ("POST", "/sweep", &sweep),
            ("GET", "/no-such-endpoint", b""),
        ];
        for (method, target, body) in json_cases {
            match dispatch(&request(method, target, body), &e, &mut sink) {
                Action::Respond(r) => assert_eq!(
                    r.content_type, "application/json",
                    "{method} {target} → {}",
                    r.status
                ),
                other => panic!("{method} {target}: {other:?}"),
            }
        }
        match dispatch(
            &request("GET", "/metrics?format=prometheus", b""),
            &e,
            &mut sink,
        ) {
            Action::Respond(r) => {
                assert_eq!(r.status, 200);
                assert_eq!(r.content_type, "text/plain; version=0.0.4");
            }
            other => panic!("{other:?}"),
        }
        match dispatch(&request("GET", "/metrics?format=xml", b""), &e, &mut sink) {
            Action::Respond(r) => {
                assert_eq!(r.status, 400);
                assert_eq!(r.content_type, "application/json");
                assert!(String::from_utf8_lossy(&r.body).contains("bad_format"));
            }
            other => panic!("{other:?}"),
        }
        match dispatch(&request("POST", "/admin/shutdown", b""), &e, &mut sink) {
            Action::Shutdown(r) => assert_eq!(r.content_type, "application/json"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stats_reply_carries_latency_section() {
        let e = engine();
        let mut sink = Vec::new();
        match dispatch(&request("GET", "/stats", b""), &e, &mut sink) {
            Action::Respond(r) => {
                let body = String::from_utf8_lossy(&r.body).into_owned();
                assert!(body.contains("\"latency\""), "{body}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn endpoint_metric_names_are_static_and_total() {
        assert_eq!(endpoint_metric("/healthz"), "serve.request_ns.healthz");
        assert_eq!(
            endpoint_metric("/sweep/stream"),
            "serve.request_ns.sweep_stream"
        );
        assert_eq!(endpoint_metric("/nope"), "serve.request_ns.other");
        // Every table entry maps back to itself.
        for (endpoint, metric) in ENDPOINT_METRICS {
            if endpoint != "other" {
                assert_eq!(endpoint_metric(endpoint), metric);
            }
        }
    }

    #[test]
    fn query_strings_still_route_to_the_path() {
        let e = engine();
        let mut sink = Vec::new();
        match dispatch(&request("GET", "/healthz?probe=1", b""), &e, &mut sink) {
            Action::Respond(r) => assert_eq!(r.status, 200),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn shutdown_route_signals_drain() {
        let e = engine();
        let mut sink = Vec::new();
        assert!(matches!(
            dispatch(&request("POST", "/admin/shutdown", b""), &e, &mut sink),
            Action::Shutdown(_)
        ));
    }
}
