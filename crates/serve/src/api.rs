//! Endpoint routing and the JSON wire format.
//!
//! Every error is structured JSON — `{"error":{"kind":…,"message":…}}`
//! — and never a panic. The `/sweep` response body is byte-identical to
//! `netpp sweep --json` for the same spec: both serialize the same
//! [`SweepResults`](npp_sweep::SweepResults) with the same pretty
//! printer and a trailing newline.

use serde::Serialize;

use npp_sweep::{expand, Metrics, ScenarioSpec, SweepSpec};

use crate::engine::Engine;
use crate::http::{write_response, write_stream_head, Request, Response};

/// What the connection handler should do after a request.
#[derive(Debug)]
pub enum Action {
    /// Write this framed response.
    Respond(Response),
    /// The response was already streamed; close the connection.
    Streamed,
    /// Write this response, then start a graceful drain.
    Shutdown(Response),
}

/// Single-scenario response document.
#[derive(Debug, Serialize)]
struct ScenarioReply {
    /// Content hash of the scenario spec (the cache key).
    hash: String,
    /// Seed derived from the hash.
    seed: u64,
    /// The metrics row.
    metrics: Metrics,
}

/// `/stats` document.
#[derive(Debug, Serialize)]
struct StatsReply {
    cache: Option<npp_sweep::CacheStats>,
    jobs: usize,
}

/// Renders the structured error body.
pub fn error_body(kind: &str, message: &str) -> Vec<u8> {
    let escaped: String = message
        .chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            '\r' => vec!['\\', 'r'],
            '\t' => vec!['\\', 't'],
            c if (c as u32) < 0x20 => vec![' '],
            c => vec![c],
        })
        .collect();
    format!("{{\"error\":{{\"kind\":\"{kind}\",\"message\":\"{escaped}\"}}}}\n").into_bytes()
}

fn error_response(status: u16, kind: &str, message: &str) -> Response {
    Response::json(status, error_body(kind, message))
}

/// Routes one request. Streaming endpoints write to `stream` directly
/// and return [`Action::Streamed`].
pub fn dispatch<W: std::io::Write>(req: &Request, engine: &Engine, stream: &mut W) -> Action {
    match (req.method.as_str(), req.target.as_str()) {
        ("GET", "/healthz") => Action::Respond(Response::json(200, "{\"status\":\"ok\"}\n")),
        ("GET", "/metrics") => {
            let mut body = npp_telemetry::metrics::snapshot().to_json();
            body.push('\n');
            Action::Respond(Response::json(200, body))
        }
        ("GET", "/stats") => stats(engine),
        ("POST", "/scenario") => scenario(req, engine),
        ("POST", "/sweep") => sweep(req, engine),
        ("POST", "/sweep/stream") => sweep_stream(req, engine, stream),
        ("POST", "/admin/shutdown") => {
            Action::Shutdown(Response::json(200, "{\"status\":\"draining\"}\n").closing())
        }
        (
            method,
            "/healthz" | "/metrics" | "/stats" | "/scenario" | "/sweep" | "/sweep/stream"
            | "/admin/shutdown",
        ) => Action::Respond(error_response(
            405,
            "method_not_allowed",
            &format!("{method} is not supported on {}", req.target),
        )),
        (_, target) => Action::Respond(error_response(
            404,
            "not_found",
            &format!("no such endpoint: {target}"),
        )),
    }
}

fn stats(engine: &Engine) -> Action {
    let reply = StatsReply {
        cache: engine.cache().map(|c| c.stats()),
        jobs: engine.jobs(),
    };
    match serde_json::to_string_pretty(&reply) {
        Ok(mut body) => {
            body.push('\n');
            Action::Respond(Response::json(200, body))
        }
        Err(e) => Action::Respond(error_response(500, "internal", &e.to_string())),
    }
}

fn scenario(req: &Request, engine: &Engine) -> Action {
    let spec: ScenarioSpec = match serde_json::from_slice(&req.body) {
        Ok(spec) => spec,
        Err(e) => return Action::Respond(error_response(400, "bad_spec", &e.to_string())),
    };
    // A scenario is a one-point sweep: same hashing, same executor.
    let sweep = SweepSpec {
        name: "scenario".to_string(),
        base: spec,
        axes: Vec::new(),
    };
    let scenarios = match expand(&sweep) {
        Ok(s) => s,
        Err(e) => return Action::Respond(error_response(400, "bad_spec", &e.to_string())),
    };
    let warm = engine.all_warm(&scenarios);
    let metrics = match engine.evaluate(&scenarios) {
        Ok(m) => m,
        Err(e) => return Action::Respond(error_response(400, "evaluation", &e.to_string())),
    };
    let reply = match (scenarios.into_iter().next(), metrics.into_iter().next()) {
        (Some(scenario), Some(metrics)) => ScenarioReply {
            hash: scenario.hash,
            seed: scenario.seed,
            metrics,
        },
        _ => return Action::Respond(error_response(500, "internal", "empty evaluation")),
    };
    match serde_json::to_string_pretty(&reply) {
        Ok(mut body) => {
            body.push('\n');
            Action::Respond(
                Response::json(200, body)
                    .with_header("X-NPP-Cache", if warm { "hit" } else { "miss" }),
            )
        }
        Err(e) => Action::Respond(error_response(500, "internal", &e.to_string())),
    }
}

fn sweep(req: &Request, engine: &Engine) -> Action {
    let spec: SweepSpec = match serde_json::from_slice(&req.body) {
        Ok(spec) => spec,
        Err(e) => return Action::Respond(error_response(400, "bad_spec", &e.to_string())),
    };
    let warm = match expand(&spec) {
        Ok(scenarios) => engine.all_warm(&scenarios),
        Err(e) => return Action::Respond(error_response(400, "bad_spec", &e.to_string())),
    };
    let results = match engine.run_sweep_spec(&spec) {
        Ok(results) => results,
        Err(e) => return Action::Respond(error_response(400, "evaluation", &e.to_string())),
    };
    // Byte-for-byte the `netpp sweep --json` document: pretty JSON plus
    // the trailing newline `println!` appends.
    match serde_json::to_string_pretty(&results) {
        Ok(mut body) => {
            body.push('\n');
            Action::Respond(
                Response::json(200, body)
                    .with_header("X-NPP-Cache", if warm { "hit" } else { "miss" }),
            )
        }
        Err(e) => Action::Respond(error_response(500, "internal", &e.to_string())),
    }
}

fn sweep_stream<W: std::io::Write>(req: &Request, engine: &Engine, stream: &mut W) -> Action {
    let spec: SweepSpec = match serde_json::from_slice(&req.body) {
        Ok(spec) => spec,
        Err(e) => return Action::Respond(error_response(400, "bad_spec", &e.to_string())),
    };
    let results = match engine.run_sweep_spec(&spec) {
        Ok(results) => results,
        Err(e) => return Action::Respond(error_response(400, "evaluation", &e.to_string())),
    };
    // JSONL framing: a header line, one compact line per scenario row
    // (grid order), and a frontier trailer. EOF delimits the body.
    if write_stream_head(stream, 200, "application/jsonl").is_err() {
        return Action::Streamed;
    }
    let header = format!(
        "{{\"name\":{},\"total\":{}}}\n",
        serde_json::to_string(&results.name).unwrap_or_else(|_| "\"\"".to_string()),
        results.total
    );
    if stream.write_all(header.as_bytes()).is_err() {
        return Action::Streamed;
    }
    for row in &results.scenarios {
        let line = match serde_json::to_string(row) {
            Ok(line) => line,
            Err(_) => break,
        };
        if stream
            .write_all(line.as_bytes())
            .and_then(|()| stream.write_all(b"\n"))
            .is_err()
        {
            return Action::Streamed;
        }
    }
    let trailer = format!(
        "{{\"frontier\":{}}}\n",
        serde_json::to_string(&results.frontier).unwrap_or_else(|_| "[]".to_string())
    );
    let _ = stream.write_all(trailer.as_bytes());
    let _ = stream.flush();
    Action::Streamed
}

/// Writes the standard 429 admission-rejection response (used by the
/// acceptor before a connection ever reaches a worker).
pub fn write_reject<W: std::io::Write>(stream: &mut W) -> std::io::Result<()> {
    let resp = Response::json(
        429,
        error_body("overloaded", "max-inflight reached; retry later"),
    )
    .closing();
    write_response(stream, &resp)
}

/// Writes the standard 503 draining response.
pub fn write_draining<W: std::io::Write>(stream: &mut W) -> std::io::Result<()> {
    let resp = Response::json(503, error_body("draining", "server is shutting down")).closing();
    write_response(stream, &resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(method: &str, target: &str, body: &[u8]) -> Request {
        Request {
            method: method.to_string(),
            target: target.to_string(),
            headers: Vec::new(),
            body: body.to_vec(),
        }
    }

    fn engine() -> Engine {
        Engine::new(None, 1)
    }

    #[test]
    fn health_and_unknown_routes() {
        let e = engine();
        let mut sink = Vec::new();
        match dispatch(&request("GET", "/healthz", b""), &e, &mut sink) {
            Action::Respond(r) => assert_eq!(r.status, 200),
            other => panic!("{other:?}"),
        }
        match dispatch(&request("GET", "/nope", b""), &e, &mut sink) {
            Action::Respond(r) => {
                assert_eq!(r.status, 404);
                assert!(String::from_utf8_lossy(&r.body).contains("not_found"));
            }
            other => panic!("{other:?}"),
        }
        match dispatch(&request("DELETE", "/sweep", b""), &e, &mut sink) {
            Action::Respond(r) => assert_eq!(r.status, 405),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_specs_are_structured_400s() {
        let e = engine();
        let mut sink = Vec::new();
        for target in ["/scenario", "/sweep", "/sweep/stream"] {
            match dispatch(&request("POST", target, b"{ not json"), &e, &mut sink) {
                Action::Respond(r) => {
                    assert_eq!(r.status, 400, "{target}");
                    let body = String::from_utf8_lossy(&r.body).into_owned();
                    assert!(body.contains("\"kind\":\"bad_spec\""), "{target}: {body}");
                }
                other => panic!("{target}: {other:?}"),
            }
        }
    }

    #[test]
    fn error_body_escapes_quotes_and_newlines() {
        let body = String::from_utf8(error_body("x", "a \"b\"\nc\\d")).unwrap();
        assert_eq!(
            body,
            "{\"error\":{\"kind\":\"x\",\"message\":\"a \\\"b\\\"\\nc\\\\d\"}}\n"
        );
        let parsed: serde_json::Value = serde_json::from_str(body.trim()).unwrap();
        assert!(matches!(parsed, serde_json::Value::Object(_)));
    }

    #[test]
    fn scenario_roundtrip_against_engine() {
        let e = engine();
        let spec = npp_sweep::ScenarioSpec::paper_baseline();
        let body = serde_json::to_string(&spec).unwrap();
        let mut sink = Vec::new();
        match dispatch(
            &request("POST", "/scenario", body.as_bytes()),
            &e,
            &mut sink,
        ) {
            Action::Respond(r) => {
                assert_eq!(r.status, 200);
                let text = String::from_utf8_lossy(&r.body).into_owned();
                assert!(text.contains("\"hash\""), "{text}");
                assert!(text.contains("\"metrics\""), "{text}");
                assert_eq!(
                    r.extra_headers
                        .iter()
                        .find(|(n, _)| n == "X-NPP-Cache")
                        .map(|(_, v)| v.as_str()),
                    Some("miss")
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn shutdown_route_signals_drain() {
        let e = engine();
        let mut sink = Vec::new();
        assert!(matches!(
            dispatch(&request("POST", "/admin/shutdown", b""), &e, &mut sink),
            Action::Shutdown(_)
        ));
    }
}
