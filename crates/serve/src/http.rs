//! Minimal HTTP/1.1 framing over `std::io` — just enough protocol for
//! the serve endpoints, with hard limits everywhere.
//!
//! Requests are `Content-Length`-framed (no chunked bodies, no
//! pipelining); responses are either `Content-Length`-framed keep-alive
//! replies or EOF-delimited streams (`Connection: close`). The parser is
//! generic over `Read` so it unit-tests against in-memory buffers.

use std::io::{Read, Write};

/// Hard cap on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method token as received.
    pub method: String,
    /// Request target (path, no normalization).
    pub target: String,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body (empty when `Content-Length` is absent or 0).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The target's path component (everything before the first `?`).
    pub fn path(&self) -> &str {
        self.target
            .split_once('?')
            .map_or(self.target.as_str(), |(path, _)| path)
    }

    /// The raw query string, if any (everything after the first `?`).
    pub fn query(&self) -> Option<&str> {
        self.target.split_once('?').map(|(_, query)| query)
    }

    /// Value of a `name=value` query parameter (no percent-decoding —
    /// the serve API's parameter values are plain tokens). A bare
    /// `?name` yields `Some("")`.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query()?.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == name).then_some(v)
        })
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// Peer closed mid-request.
    Closed,
    /// Read timed out (maps to 408).
    Timeout,
    /// Head or body exceeded its limit (maps to 413).
    TooLarge(&'static str),
    /// Not parseable as HTTP/1.x (maps to 400).
    Malformed(String),
    /// Underlying transport failure.
    Io(std::io::Error),
}

impl core::fmt::Display for ReadError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ReadError::Closed => write!(f, "connection closed mid-request"),
            ReadError::Timeout => write!(f, "read timed out"),
            ReadError::TooLarge(what) => write!(f, "{what} too large"),
            ReadError::Malformed(msg) => write!(f, "malformed request: {msg}"),
            ReadError::Io(e) => write!(f, "I/O: {e}"),
        }
    }
}

fn classify(e: std::io::Error) -> ReadError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ReadError::Timeout,
        std::io::ErrorKind::UnexpectedEof
        | std::io::ErrorKind::ConnectionReset
        | std::io::ErrorKind::ConnectionAborted => ReadError::Closed,
        _ => ReadError::Io(e),
    }
}

/// Reads one request. `Ok(None)` means the peer closed cleanly between
/// requests (normal keep-alive end); errors mid-request are explicit.
///
/// # Errors
///
/// See [`ReadError`] for the failure taxonomy.
pub fn read_request<R: Read>(
    reader: &mut R,
    max_body: usize,
) -> std::result::Result<Option<Request>, ReadError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 2048];

    // Head: read until the blank line.
    let head_end = loop {
        if let Some(pos) = find_blank_line(&buf) {
            if pos > MAX_HEAD_BYTES {
                return Err(ReadError::TooLarge("request head"));
            }
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(ReadError::TooLarge("request head"));
        }
        let n = reader.read(&mut chunk).map_err(classify)?;
        if n == 0 {
            if buf.is_empty() {
                return Ok(None);
            }
            return Err(ReadError::Closed);
        }
        buf.extend_from_slice(chunk.get(..n).unwrap_or_default());
    };

    let head = String::from_utf8_lossy(buf.get(..head_end).unwrap_or_default()).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("empty request line".into()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("missing request target".into()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(format!(
            "unsupported version {version:?}"
        )));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ReadError::Malformed(format!("header without colon: {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let body_len = match headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| v.as_str())
    {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| ReadError::Malformed(format!("bad content-length {v:?}")))?,
        None => 0,
    };
    if body_len > max_body {
        return Err(ReadError::TooLarge("request body"));
    }

    // Body: whatever followed the blank line, then read the remainder.
    let mut body: Vec<u8> = buf.get(head_end + 4..).unwrap_or_default().to_vec();
    while body.len() < body_len {
        let n = reader.read(&mut chunk).map_err(classify)?;
        if n == 0 {
            return Err(ReadError::Closed);
        }
        body.extend_from_slice(chunk.get(..n).unwrap_or_default());
    }
    body.truncate(body_len);

    Ok(Some(Request {
        method,
        target,
        headers,
        body,
    }))
}

/// Byte offset of the `\r\n\r\n` head terminator.
fn find_blank_line(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Canonical reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// A `Content-Length`-framed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers (name, value), written verbatim.
    pub extra_headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
    /// Send `Connection: close` and drop the connection afterwards.
    pub close: bool,
}

/// `Content-Type` of the Prometheus text exposition format the
/// `/metrics?format=prometheus` endpoint speaks.
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Self {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.into(),
            close: false,
        }
    }

    /// A response with an explicit (static) content type.
    pub fn text(status: u16, content_type: &'static str, body: impl Into<Vec<u8>>) -> Self {
        Self {
            status,
            content_type,
            extra_headers: Vec::new(),
            body: body.into(),
            close: false,
        }
    }

    /// Adds one extra header.
    #[must_use]
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.extra_headers
            .push((name.to_string(), value.to_string()));
        self
    }

    /// Marks the connection for closing after this response.
    #[must_use]
    pub fn closing(mut self) -> Self {
        self.close = true;
        self
    }
}

/// Writes a framed response.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_response<W: Write>(w: &mut W, resp: &Response) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len()
    );
    for (name, value) in &resp.extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(if resp.close {
        "Connection: close\r\n\r\n"
    } else {
        "Connection: keep-alive\r\n\r\n"
    });
    w.write_all(head.as_bytes())?;
    w.write_all(&resp.body)?;
    w.flush()
}

/// Writes the head of an EOF-delimited streaming response; the caller
/// writes the body and then closes the connection.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_stream_head<W: Write>(
    w: &mut W,
    status: u16,
    content_type: &str,
) -> std::io::Result<()> {
    w.write_all(
        format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {content_type}\r\nConnection: close\r\n\r\n",
            status,
            reason(status),
        )
        .as_bytes(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> std::result::Result<Option<Request>, ReadError> {
        read_request(&mut Cursor::new(raw.as_bytes().to_vec()), 1 << 20)
    }

    #[test]
    fn parses_post_with_body_and_headers() {
        let req = parse("POST /sweep HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\n{\"a\"")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/sweep");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"{\"a\"");
    }

    #[test]
    fn path_and_query_split_on_first_question_mark() {
        let req = parse("GET /metrics?format=prometheus&x=1?y HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.path(), "/metrics");
        assert_eq!(req.query(), Some("format=prometheus&x=1?y"));
        assert_eq!(req.query_param("format"), Some("prometheus"));
        assert_eq!(req.query_param("x"), Some("1?y"));
        assert_eq!(req.query_param("missing"), None);

        let bare = parse("GET /stats HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert_eq!(bare.path(), "/stats");
        assert_eq!(bare.query(), None);

        let flag = parse("GET /stats?verbose HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(flag.query_param("verbose"), Some(""));
    }

    #[test]
    fn text_response_carries_its_content_type() {
        let mut out = Vec::new();
        let resp = Response::text(200, PROMETHEUS_CONTENT_TYPE, "npp_x 1\n");
        write_response(&mut out, &resp).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Content-Type: text/plain; version=0.0.4\r\n"));
    }

    #[test]
    fn clean_close_between_requests_is_none() {
        assert!(parse("").unwrap().is_none());
    }

    #[test]
    fn mid_request_eof_is_closed() {
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(ReadError::Closed)
        ));
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Le"),
            Err(ReadError::Closed)
        ));
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert!(matches!(parse("\r\n\r\n"), Err(ReadError::Malformed(_))));
        assert!(matches!(
            parse("GET /x SPDY/9\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET /x HTTP/1.1\r\nbroken header\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: many\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_head_and_body_are_413() {
        let huge = format!(
            "GET /x HTTP/1.1\r\nA: {}\r\n\r\n",
            "y".repeat(MAX_HEAD_BYTES)
        );
        assert!(matches!(parse(&huge), Err(ReadError::TooLarge(_))));
        let req = read_request(
            &mut Cursor::new(b"POST /x HTTP/1.1\r\nContent-Length: 100\r\n\r\n".to_vec()),
            10,
        );
        assert!(matches!(req, Err(ReadError::TooLarge(_))));
    }

    #[test]
    fn response_framing_round_trips() {
        let mut out = Vec::new();
        let resp = Response::json(200, "{}").with_header("X-NPP-Cache", "hit");
        write_response(&mut out, &resp).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("X-NPP-Cache: hit\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n\r\n{}"));
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(429, "{}").closing()).unwrap();
        assert!(String::from_utf8(out)
            .unwrap()
            .contains("Connection: close"));
    }

    #[test]
    fn stream_head_is_eof_delimited() {
        let mut out = Vec::new();
        write_stream_head(&mut out, 200, "application/jsonl").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: close\r\n\r\n"));
        assert!(!text.contains("Content-Length"));
    }
}
