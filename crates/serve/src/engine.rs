//! Request evaluation: cache-first lookup, single-flight coalescing,
//! and batched cold execution on the deterministic indexed executor.
//!
//! A batch of scenarios splits three ways:
//!
//! - **warm** — answered straight from the cache index;
//! - **leaders** — cold scenarios this call claims: they run as one
//!   batch through [`npp_sweep::exec::run_indexed`] (the same executor
//!   as `netpp sweep`, so results are bit-identical for any `jobs`);
//! - **followers** — cold scenarios another in-flight call already
//!   claimed: they block on that leader's slot instead of recomputing.
//!
//! Cold batches serialize through one gate so concurrent requests
//! coalesce into full batches instead of oversubscribing the executor.
//! Determinism is untouched by any of this: every scenario's seed comes
//! from its content hash, and per-scenario results are combined in grid
//! order by the caller.

use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex, PoisonError};

use npp_sweep::{
    assemble_results, expand, Metrics, ResultCache, Scenario, SweepResults, SweepSpec,
};

use crate::{Result, ServeError};

/// Terminal state of one in-flight scenario.
#[derive(Debug, Clone)]
enum SlotState {
    Pending,
    Done(Metrics),
    Failed(String),
}

#[derive(Debug)]
struct Slot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Self {
        Self {
            state: Mutex::new(SlotState::Pending),
            ready: Condvar::new(),
        }
    }

    fn fill(&self, state: SlotState) {
        let mut guard = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if matches!(*guard, SlotState::Pending) {
            *guard = state;
            self.ready.notify_all();
        }
    }

    fn wait(&self) -> SlotState {
        let mut guard = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        while matches!(*guard, SlotState::Pending) {
            guard = self
                .ready
                .wait(guard)
                .unwrap_or_else(PoisonError::into_inner);
        }
        guard.clone()
    }
}

/// The evaluation engine shared by all connection handlers.
#[derive(Debug)]
pub struct Engine {
    cache: Option<ResultCache>,
    jobs: usize,
    /// Engine worker threads per scenario (fluid path); results are
    /// bit-identical at every value.
    threads: usize,
    /// Serializes cold batches so the executor is never oversubscribed.
    exec_gate: Mutex<()>,
    /// Single-flight table: scenario hash → slot being computed.
    inflight: Mutex<BTreeMap<String, Arc<Slot>>>,
}

/// Fills still-pending claimed slots if evaluation unwinds, so
/// followers of a crashed leader fail instead of hanging.
struct ClaimGuard<'a> {
    engine: &'a Engine,
    claims: Vec<(String, Arc<Slot>)>,
}

impl Drop for ClaimGuard<'_> {
    fn drop(&mut self) {
        let mut table = self
            .engine
            .inflight
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        for (hash, slot) in self.claims.drain(..) {
            slot.fill(SlotState::Failed("evaluation aborted".to_string()));
            table.remove(&hash);
        }
    }
}

impl Engine {
    /// Builds an engine over an optional shared cache handle.
    pub fn new(cache: Option<ResultCache>, jobs: usize) -> Self {
        Self {
            cache,
            jobs: jobs.max(1),
            threads: 1,
            exec_gate: Mutex::new(()),
            inflight: Mutex::new(BTreeMap::new()),
        }
    }

    /// Sets the per-scenario engine worker-thread count (default 1).
    /// Purely an execution knob: cached and computed results are
    /// bit-identical at every value.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The shared cache handle, if caching is enabled.
    pub fn cache(&self) -> Option<&ResultCache> {
        self.cache.as_ref()
    }

    /// Executor threads used for cold batches.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// `true` when every scenario of the slice is already cached (the
    /// request can be answered without the executor).
    pub fn all_warm(&self, scenarios: &[Scenario]) -> bool {
        match &self.cache {
            Some(cache) => scenarios.iter().all(|s| cache.contains(&s.hash)),
            None => false,
        }
    }

    /// Evaluates scenarios in order: warm from cache, cold batched
    /// through the deterministic executor, duplicates coalesced onto a
    /// single computation.
    ///
    /// # Errors
    ///
    /// Returns the first failing scenario's error (cache write failures
    /// included).
    pub fn evaluate(&self, scenarios: &[Scenario]) -> Result<Vec<Metrics>> {
        let mut out: Vec<Option<Metrics>> = vec![None; scenarios.len()];
        let mut followers: Vec<(usize, Arc<Slot>)> = Vec::new();
        let mut claims: Vec<(usize, Arc<Slot>)> = Vec::new();
        let mut warm = 0u64;

        {
            let mut table = self.inflight.lock().unwrap_or_else(PoisonError::into_inner);
            for (i, scenario) in scenarios.iter().enumerate() {
                if let Some(found) = self.cache.as_ref().and_then(|c| c.get(&scenario.hash)) {
                    if let Some(slot) = out.get_mut(i) {
                        *slot = Some(found);
                    }
                    warm += 1;
                    continue;
                }
                match table.get(&scenario.hash) {
                    Some(slot) => followers.push((i, slot.clone())),
                    None => {
                        let slot = Arc::new(Slot::new());
                        table.insert(scenario.hash.clone(), slot.clone());
                        claims.push((i, slot));
                    }
                }
            }
        }
        npp_telemetry::metrics::counter_add("serve.cache_hits", warm);
        npp_telemetry::metrics::counter_add(
            "serve.cache_misses",
            (followers.len() + claims.len()) as u64,
        );

        if !claims.is_empty() {
            let mut guard = ClaimGuard {
                engine: self,
                claims: claims
                    .iter()
                    .filter_map(|(i, slot)| {
                        scenarios.get(*i).map(|s| (s.hash.clone(), slot.clone()))
                    })
                    .collect(),
            };
            let _gate = self
                .exec_gate
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            npp_telemetry::metrics::observe("serve.batch_cold", claims.len() as u64);
            let computed: Vec<std::result::Result<Metrics, String>> =
                npp_sweep::exec::run_indexed(claims.len(), self.jobs, |k| {
                    let scenario = claims
                        .get(k)
                        .and_then(|(i, _)| scenarios.get(*i))
                        .ok_or_else(|| "batch index out of range".to_string())?;
                    let _scope = npp_telemetry::scope(scenario.seed);
                    npp_sweep::run_scenario_threaded(&scenario.spec, scenario.seed, self.threads)
                        .map_err(|e| e.to_string())
                });

            // Publish every result (even failures) before surfacing the
            // first error, so followers never hang.
            let mut first_error: Option<String> = None;
            {
                let mut table = self.inflight.lock().unwrap_or_else(PoisonError::into_inner);
                for ((i, slot), computed) in claims.iter().zip(&computed) {
                    let state = match computed {
                        Ok(metrics) => {
                            if let (Some(cache), Some(s)) = (&self.cache, scenarios.get(*i)) {
                                if let Err(e) = cache.put(&s.hash, metrics) {
                                    let msg = format!("cache write failed: {e}");
                                    first_error.get_or_insert(msg.clone());
                                    slot.fill(SlotState::Failed(msg));
                                    if let Some(s) = scenarios.get(*i) {
                                        table.remove(&s.hash);
                                    }
                                    continue;
                                }
                            }
                            SlotState::Done(*metrics)
                        }
                        Err(msg) => {
                            first_error.get_or_insert(msg.clone());
                            SlotState::Failed(msg.clone())
                        }
                    };
                    if let (SlotState::Done(m), Some(target)) = (&state, out.get_mut(*i)) {
                        *target = Some(*m);
                    }
                    slot.fill(state);
                    if let Some(s) = scenarios.get(*i) {
                        table.remove(&s.hash);
                    }
                }
            }
            guard.claims.clear(); // everything published; disarm
            if let Some(msg) = first_error {
                return Err(ServeError::Engine(msg));
            }
        }

        for (i, slot) in followers {
            match slot.wait() {
                SlotState::Done(metrics) => {
                    if let Some(target) = out.get_mut(i) {
                        *target = Some(metrics);
                    }
                }
                SlotState::Failed(msg) => return Err(ServeError::Engine(msg)),
                SlotState::Pending => {
                    return Err(ServeError::Engine("slot never completed".to_string()))
                }
            }
        }

        npp_telemetry::metrics::counter_add("serve.scenarios", scenarios.len() as u64);
        out.into_iter()
            .map(|m| m.ok_or_else(|| ServeError::Engine("missing scenario result".to_string())))
            .collect()
    }

    /// Expands and evaluates a full sweep; the returned document is the
    /// same [`SweepResults`] `netpp sweep` builds, byte-identical once
    /// serialized.
    ///
    /// # Errors
    ///
    /// Spec expansion and evaluation errors.
    pub fn run_sweep_spec(&self, spec: &SweepSpec) -> Result<SweepResults> {
        let scenarios = expand(spec)?;
        let metrics = self.evaluate(&scenarios)?;
        Ok(assemble_results(&spec.name, scenarios, metrics))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npp_sweep::{Axis, ScenarioSpec};
    use std::path::PathBuf;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("npp-serve-engine-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_spec() -> SweepSpec {
        SweepSpec {
            name: "engine-unit".into(),
            base: ScenarioSpec::paper_baseline(),
            axes: vec![
                Axis::BandwidthGbps(vec![100.0, 400.0]),
                Axis::NetworkProportionality(vec![0.2, 0.8]),
            ],
        }
    }

    #[test]
    fn cold_matches_sweep_engine_for_any_jobs() {
        let spec = small_spec();
        let reference =
            npp_sweep::run_sweep(&spec, &npp_sweep::SweepOptions::serial(), None).unwrap();
        let expected = serde_json::to_string_pretty(&reference.results).unwrap();
        for jobs in [1usize, 4] {
            let dir = scratch_dir(&format!("jobs{jobs}"));
            let cache = ResultCache::open(&dir).unwrap();
            let engine = Engine::new(Some(cache), jobs);
            let results = engine.run_sweep_spec(&spec).unwrap();
            assert_eq!(
                serde_json::to_string_pretty(&results).unwrap(),
                expected,
                "jobs={jobs} diverged"
            );
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn warm_rerun_is_byte_identical_and_cache_backed() {
        let dir = scratch_dir("warm");
        let engine = Engine::new(Some(ResultCache::open(&dir).unwrap()), 2);
        let spec = small_spec();
        let cold = engine.run_sweep_spec(&spec).unwrap();
        let scenarios = expand(&spec).unwrap();
        assert!(engine.all_warm(&scenarios), "cold run must fill the cache");
        let warm = engine.run_sweep_spec(&spec).unwrap();
        assert_eq!(
            serde_json::to_string_pretty(&cold).unwrap(),
            serde_json::to_string_pretty(&warm).unwrap()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicate_scenarios_in_one_batch_coalesce() {
        let engine = Engine::new(None, 2);
        let spec = SweepSpec {
            name: "dup".into(),
            base: ScenarioSpec::paper_baseline(),
            axes: vec![],
        };
        let one = expand(&spec).unwrap();
        let doubled: Vec<Scenario> = one.iter().chain(one.iter()).cloned().collect();
        let metrics = engine.evaluate(&doubled).unwrap();
        assert_eq!(metrics.len(), 2);
        assert_eq!(metrics.first(), metrics.get(1));
    }

    #[test]
    fn concurrent_identical_requests_share_work_and_agree() {
        let dir = scratch_dir("concurrent");
        let engine = Engine::new(Some(ResultCache::open(&dir).unwrap()), 2);
        let spec = small_spec();
        let expected = serde_json::to_string_pretty(
            &npp_sweep::run_sweep(&spec, &npp_sweep::SweepOptions::serial(), None)
                .unwrap()
                .results,
        )
        .unwrap();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        serde_json::to_string_pretty(&engine.run_sweep_spec(&spec).unwrap())
                            .unwrap()
                    })
                })
                .collect();
            for handle in handles {
                assert_eq!(handle.join().unwrap(), expected);
            }
        });
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invalid_axes_are_errors_not_panics() {
        let engine = Engine::new(None, 1);
        let spec = SweepSpec {
            name: "bad".into(),
            base: ScenarioSpec::paper_baseline(),
            axes: vec![Axis::BandwidthGbps(vec![])],
        };
        assert!(engine.run_sweep_spec(&spec).is_err());
    }
}
