//! # npp-serve
//!
//! Long-running what-if daemon: a dependency-free HTTP/1.1 front end
//! over the deterministic sweep engine and its sharded result cache.
//!
//! The service answers three kinds of questions:
//!
//! - `POST /scenario` — one [`ScenarioSpec`](npp_sweep::ScenarioSpec),
//!   one JSON metrics row (warm requests never touch the executor);
//! - `POST /sweep` — a full [`SweepSpec`](npp_sweep::SweepSpec); the
//!   response body is **byte-identical** to `netpp sweep --json` for
//!   the same spec;
//! - `POST /sweep/stream` — the same sweep as JSONL, one scenario row
//!   per line (EOF-delimited, `Connection: close`).
//!
//! Three properties carry over from the engine unchanged:
//!
//! 1. **determinism** — responses are pure functions of the spec; cold
//!    batches run on the same indexed executor as `netpp sweep`, so the
//!    answer is bit-identical whatever `--jobs` or arrival order;
//! 2. **cacheability** — every scenario is content-addressed, so a
//!    warm daemon answers from the in-memory index of the segment
//!    cache ([`npp_sweep::ResultCache`]) without recomputing;
//! 3. **bounded state** — the metrics registry is switched on in
//!    standalone mode (no trace sink growth), the cache index holds one
//!    `Metrics` row per distinct scenario, and request buffers are
//!    size-capped.
//!
//! Robustness surface: per-request read timeouts, bounded request
//! bodies, `--max-inflight` admission with 429 rejection, malformed
//! specs as structured JSON errors (never panics), and graceful drain
//! on SIGINT/SIGTERM or `POST /admin/shutdown`.

#![warn(missing_docs)]

use std::path::PathBuf;

pub mod api;
pub mod bench;
pub mod client;
pub mod engine;
pub mod http;
pub mod server;
pub mod signal;

pub use client::{Client, HttpReply};
pub use engine::Engine;
pub use server::{spawn, ServerHandle};

/// Errors produced by this crate.
#[derive(Debug)]
pub enum ServeError {
    /// Invalid configuration (address, limits).
    Config(String),
    /// Scenario or sweep evaluation failed.
    Engine(String),
    /// Propagated sweep-engine error.
    Sweep(npp_sweep::SweepError),
    /// Socket or filesystem failure.
    Io(std::io::Error),
}

impl core::fmt::Display for ServeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ServeError::Config(msg) => write!(f, "invalid serve config: {msg}"),
            ServeError::Engine(msg) => write!(f, "evaluation failed: {msg}"),
            ServeError::Sweep(e) => write!(f, "sweep engine: {e}"),
            ServeError::Io(e) => write!(f, "I/O: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Config(_) | ServeError::Engine(_) => None,
            ServeError::Sweep(e) => Some(e),
            ServeError::Io(e) => Some(e),
        }
    }
}

impl From<npp_sweep::SweepError> for ServeError {
    fn from(e: npp_sweep::SweepError) -> Self {
        ServeError::Sweep(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<serde_json::Error> for ServeError {
    fn from(e: serde_json::Error) -> Self {
        ServeError::Sweep(npp_sweep::SweepError::Serde(e))
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, ServeError>;

/// Daemon configuration (the `netpp serve` flags).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, `HOST:PORT` (port 0 picks an ephemeral port).
    pub addr: String,
    /// Result-cache directory; `None` serves without a persistent cache.
    pub cache_dir: Option<PathBuf>,
    /// Executor threads for cold scenario batches.
    pub jobs: usize,
    /// Engine worker threads per scenario (fluid path). Results are
    /// bit-identical at every value; this only changes wall time.
    pub threads: usize,
    /// Admission cap: connections queued or in service before the
    /// acceptor answers 429.
    pub max_inflight: usize,
    /// Connection-handler threads.
    pub workers: usize,
    /// Per-request read timeout, milliseconds.
    pub read_timeout_ms: u64,
    /// Largest accepted request body, bytes.
    pub max_body_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        Self {
            addr: "127.0.0.1:7733".to_string(),
            cache_dir: None,
            jobs: cores,
            threads: 1,
            max_inflight: 64,
            workers: cores.clamp(2, 8),
            read_timeout_ms: 5_000,
            max_body_bytes: 1 << 20,
        }
    }
}

/// Runs the daemon until SIGINT/SIGTERM or `POST /admin/shutdown`,
/// then drains gracefully. Switches the metrics registry into
/// standalone mode for the lifetime of the run.
///
/// # Errors
///
/// Fails if the listener cannot bind or the cache cannot be opened.
pub fn run(config: ServeConfig) -> Result<()> {
    npp_telemetry::metrics::set_standalone(true);
    signal::install();
    let handle = server::spawn(config)?;
    npp_telemetry::progress::emit(&format!("netpp serve: listening on {}", handle.addr()));
    while !signal::triggered() && !handle.draining() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    npp_telemetry::progress::emit("netpp serve: draining");
    handle.request_drain();
    handle.join();
    npp_telemetry::metrics::set_standalone(false);
    Ok(())
}
