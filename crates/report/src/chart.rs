//! ASCII charts: multi-series line charts (Figures 3–4) and segmented
//! horizontal bars (Figure 2a).

/// One chart series: legend label, plot glyph, and `(x, y)` points.
type Series = (String, char, Vec<(f64, f64)>);

/// A multi-series line chart plotted on a character grid.
#[derive(Debug, Clone)]
pub struct LineChart {
    title: String,
    x_label: String,
    y_label: String,
    width: usize,
    height: usize,
    series: Vec<Series>,
}

impl LineChart {
    /// Creates an empty chart of the given plot-area size (characters).
    pub fn new(title: impl Into<String>, width: usize, height: usize) -> Self {
        Self {
            title: title.into(),
            x_label: String::new(),
            y_label: String::new(),
            width: width.max(10),
            height: height.max(4),
            series: Vec::new(),
        }
    }

    /// Sets axis labels.
    pub fn with_axes(mut self, x: impl Into<String>, y: impl Into<String>) -> Self {
        self.x_label = x.into();
        self.y_label = y.into();
        self
    }

    /// Adds a named series drawn with `marker`.
    pub fn add_series(&mut self, name: impl Into<String>, marker: char, points: Vec<(f64, f64)>) {
        self.series.push((name.into(), marker, points));
    }

    /// Renders the chart.
    pub fn render(&self) -> String {
        let mut out = format!("{}\n", self.title);
        let pts: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|(_, _, p)| p.iter().copied())
            .collect();
        if pts.is_empty() {
            out.push_str("(no data)\n");
            return out;
        }
        let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &pts {
            xmin = xmin.min(x);
            xmax = xmax.max(x);
            ymin = ymin.min(y);
            ymax = ymax.max(y);
        }
        if (xmax - xmin).abs() < f64::EPSILON {
            xmax = xmin + 1.0;
        }
        if (ymax - ymin).abs() < f64::EPSILON {
            ymax = ymin + 1.0;
        }
        let mut grid = vec![vec![' '; self.width]; self.height];
        // Zero line if the y range crosses zero.
        if ymin < 0.0 && ymax > 0.0 {
            let zr = ((ymax - 0.0) / (ymax - ymin) * (self.height - 1) as f64).round() as usize;
            for c in &mut grid[zr.min(self.height - 1)] {
                *c = '·';
            }
        }
        for (_, marker, points) in &self.series {
            for &(x, y) in points {
                let col = ((x - xmin) / (xmax - xmin) * (self.width - 1) as f64).round() as usize;
                let row = ((ymax - y) / (ymax - ymin) * (self.height - 1) as f64).round() as usize;
                grid[row.min(self.height - 1)][col.min(self.width - 1)] = *marker;
            }
        }
        let y_top = format!("{ymax:.1}");
        let y_bot = format!("{ymin:.1}");
        let margin = y_top.len().max(y_bot.len());
        for (r, row) in grid.iter().enumerate() {
            let label = if r == 0 {
                format!("{y_top:>margin$}")
            } else if r == self.height - 1 {
                format!("{y_bot:>margin$}")
            } else {
                " ".repeat(margin)
            };
            out.push_str(&format!("{label} |{}\n", row.iter().collect::<String>()));
        }
        out.push_str(&format!(
            "{} +{}\n{}  {xmin:<.1}{}{xmax:>.1}\n",
            " ".repeat(margin),
            "-".repeat(self.width),
            " ".repeat(margin),
            " ".repeat(self.width.saturating_sub(8)),
        ));
        if !self.x_label.is_empty() || !self.y_label.is_empty() {
            out.push_str(&format!("x: {}   y: {}\n", self.x_label, self.y_label));
        }
        out.push_str("legend: ");
        let legend: Vec<String> = self
            .series
            .iter()
            .map(|(n, m, _)| format!("{m} {n}"))
            .collect();
        out.push_str(&legend.join("   "));
        out.push('\n');
        out
    }
}

/// A horizontal bar chart where each bar is split into labeled segments
/// summing to 100 % (Figure 2a's stacked bars).
#[derive(Debug, Clone, Default)]
pub struct BarChart {
    title: String,
    width: usize,
    /// (bar label, segments as (segment label char, fraction)).
    bars: Vec<(String, Vec<(char, f64)>)>,
    legend: Vec<(char, String)>,
}

impl BarChart {
    /// Creates an empty chart whose bars are `width` characters long.
    pub fn new(title: impl Into<String>, width: usize) -> Self {
        Self {
            title: title.into(),
            width: width.max(10),
            bars: Vec::new(),
            legend: Vec::new(),
        }
    }

    /// Declares a legend entry.
    pub fn add_legend(&mut self, marker: char, name: impl Into<String>) {
        self.legend.push((marker, name.into()));
    }

    /// Adds a bar from absolute segment values (normalized internally).
    pub fn add_bar(&mut self, label: impl Into<String>, segments: Vec<(char, f64)>) {
        self.bars.push((label.into(), segments));
    }

    /// Renders the chart.
    pub fn render(&self) -> String {
        let mut out = format!("{}\n", self.title);
        let label_w = self
            .bars
            .iter()
            .map(|(l, _)| l.chars().count())
            .max()
            .unwrap_or(0);
        for (label, segments) in &self.bars {
            let total: f64 = segments.iter().map(|(_, v)| v.max(0.0)).sum();
            let mut bar = String::new();
            if total > 0.0 {
                let mut used = 0usize;
                for (i, (marker, v)) in segments.iter().enumerate() {
                    let cells = if i == segments.len() - 1 {
                        self.width - used
                    } else {
                        ((v.max(0.0) / total) * self.width as f64).round() as usize
                    };
                    let cells = cells.min(self.width - used);
                    bar.push_str(&marker.to_string().repeat(cells));
                    used += cells;
                }
            }
            out.push_str(&format!("{label:<label_w$} |{bar:<w$}|\n", w = self.width));
        }
        if !self.legend.is_empty() {
            out.push_str("legend: ");
            let legend: Vec<String> = self
                .legend
                .iter()
                .map(|(m, n)| format!("{m}={n}"))
                .collect();
            out.push_str(&legend.join("  "));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_chart_renders_all_series() {
        let mut c = LineChart::new("Figure 3", 40, 10).with_axes("prop %", "speedup %");
        c.add_series("400G", 'o', vec![(0.0, -2.0), (50.0, 3.0), (100.0, 8.0)]);
        c.add_series(
            "1600G",
            'x',
            vec![(0.0, -30.0), (50.0, -10.0), (100.0, 13.0)],
        );
        let s = c.render();
        assert!(s.contains("Figure 3"));
        assert!(s.contains('o'));
        assert!(s.contains('x'));
        assert!(s.contains("legend: o 400G   x 1600G"));
        // Zero line drawn because the range crosses zero.
        assert!(s.contains('·'));
    }

    #[test]
    fn line_chart_handles_empty_and_degenerate() {
        let c = LineChart::new("empty", 20, 5);
        assert!(c.render().contains("(no data)"));
        let mut c = LineChart::new("flat", 20, 5);
        c.add_series("s", '*', vec![(1.0, 2.0)]);
        let s = c.render();
        assert!(s.contains('*'));
    }

    #[test]
    fn bar_chart_proportions() {
        let mut b = BarChart::new("Figure 2a", 50);
        b.add_legend('G', "GPU&Server");
        b.add_legend('N', "Network");
        b.add_bar("Computation", vec![('G', 88.1), ('N', 11.9)]);
        b.add_bar("Communication", vec![('G', 52.5), ('N', 47.5)]);
        let s = b.render();
        let comp_line = s.lines().find(|l| l.starts_with("Computation")).unwrap();
        let g_count = comp_line.matches('G').count() - 1; // minus label's G... none in label
        let _ = g_count;
        // ~88% of 50 cells ≈ 44.
        let g_cells = comp_line.chars().filter(|&c| c == 'G').count();
        assert!((43..=45).contains(&g_cells), "G cells {g_cells}");
        assert!(s.contains("legend: G=GPU&Server  N=Network"));
    }

    #[test]
    fn bar_chart_zero_total() {
        let mut b = BarChart::new("t", 10);
        b.add_bar("empty", vec![('x', 0.0)]);
        let s = b.render();
        assert!(s.contains("empty"));
    }

    #[test]
    fn bar_fills_exact_width() {
        let mut b = BarChart::new("t", 30);
        b.add_bar("bar", vec![('a', 1.0), ('b', 1.0), ('c', 1.0)]);
        let s = b.render();
        let line = s.lines().find(|l| l.starts_with("bar")).unwrap();
        let inner: String = line
            .chars()
            .skip_while(|&c| c != '|')
            .skip(1)
            .take_while(|&c| c != '|')
            .collect();
        assert_eq!(inner.chars().count(), 30);
    }
}

/// An ASCII heatmap: a matrix shaded by magnitude (Table 3 at a glance).
#[derive(Debug, Clone, Default)]
pub struct Heatmap {
    title: String,
    col_labels: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
}

impl Heatmap {
    /// Shade ramp from cold to hot.
    const RAMP: [char; 8] = [' ', '.', ':', '-', '=', '+', '#', '@'];

    /// Creates a heatmap with the given column labels.
    pub fn new(title: impl Into<String>, col_labels: Vec<String>) -> Self {
        Self {
            title: title.into(),
            col_labels,
            rows: Vec::new(),
        }
    }

    /// Adds a labeled row of values.
    pub fn add_row(&mut self, label: impl Into<String>, values: Vec<f64>) {
        self.rows.push((label.into(), values));
    }

    /// Renders the shaded matrix with the numeric value beside each cell.
    pub fn render(&self) -> String {
        let mut out = format!("{}\n", self.title);
        let max = self
            .rows
            .iter()
            .flat_map(|(_, v)| v.iter().copied())
            .fold(0.0f64, f64::max);
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.chars().count())
            .max()
            .unwrap_or(0);
        // Header.
        out.push_str(&" ".repeat(label_w + 1));
        for c in &self.col_labels {
            out.push_str(&format!("{c:>9}"));
        }
        out.push('\n');
        for (label, values) in &self.rows {
            out.push_str(&format!("{label:<label_w$} "));
            for &v in values {
                let shade = if max > 0.0 {
                    let idx = ((v / max) * (Self::RAMP.len() - 1) as f64).round() as usize;
                    Self::RAMP[idx.min(Self::RAMP.len() - 1)]
                } else {
                    ' '
                };
                out.push_str(&format!(" {shade}{shade}{v:>5.1}"));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "shade: '{}' = 0 … '{}' = {max:.1}\n",
            Self::RAMP[0],
            Self::RAMP[Self::RAMP.len() - 1]
        ));
        out
    }
}

#[cfg(test)]
mod heatmap_tests {
    use super::*;

    #[test]
    fn shades_scale_with_magnitude() {
        let mut h = Heatmap::new("Table 3", vec!["10%".into(), "50%".into(), "100%".into()]);
        h.add_row("400G", vec![0.0, 4.7, 10.6]);
        h.add_row("1600G", vec![0.0, 15.6, 35.1]);
        let s = h.render();
        assert!(s.contains("Table 3"));
        // The hottest cell gets the densest shade, zero cells the lightest.
        assert!(s.contains("@@ 35.1"), "{s}");
        assert!(s.contains("   0.0"), "{s}");
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn empty_and_flat_maps() {
        let h = Heatmap::new("empty", vec![]);
        assert!(h.render().contains("empty"));
        let mut h = Heatmap::new("flat", vec!["a".into()]);
        h.add_row("r", vec![0.0]);
        assert!(h.render().contains("0.0"));
    }
}
