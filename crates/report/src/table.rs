//! Plain-text tables (markdown-compatible).

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple text table with a header row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl Table {
    /// Creates a table with the given column headers; the first column is
    /// left-aligned, the rest right-aligned (the common numeric layout).
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let aligns = headers
            .iter()
            .enumerate()
            .map(|(i, _)| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        Self {
            headers,
            aligns,
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets a title printed above the table.
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Overrides column alignments (excess entries ignored, missing ones
    /// keep defaults).
    pub fn with_aligns(mut self, aligns: Vec<Align>) -> Self {
        for (i, a) in aligns.into_iter().enumerate() {
            if i < self.aligns.len() {
                self.aligns[i] = a;
            }
        }
        self
    }

    /// Appends a row; short rows are padded with empty cells, long rows
    /// truncated to the header width.
    pub fn push_row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        row.truncate(self.headers.len());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders as aligned plain text with a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let fmt_cell = |s: &str, i: usize| -> String {
            let pad = widths[i] - s.chars().count();
            match self.aligns[i] {
                Align::Left => format!("{s}{}", " ".repeat(pad)),
                Align::Right => format!("{}{s}", " ".repeat(pad)),
            }
        };
        let mut out = String::new();
        if let Some(t) = &self.title {
            out.push_str(t);
            out.push('\n');
        }
        let header: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| fmt_cell(h, i))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| fmt_cell(c, i))
                .collect();
            out.push_str(&cells.join("  "));
            out.push('\n');
        }
        out
    }

    /// Renders as a GitHub-flavored markdown table.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        if let Some(t) = &self.title {
            out.push_str(&format!("**{t}**\n\n"));
        }
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        let seps: Vec<&str> = self
            .aligns
            .iter()
            .map(|a| match a {
                Align::Left => ":---",
                Align::Right => "---:",
            })
            .collect();
        out.push_str(&format!("| {} |\n", seps.join(" | ")));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["Bandwidth", "10%", "50%"]).with_title("Table 3");
        t.push_row(vec!["400G", "0.0%", "4.7%"]);
        t.push_row(vec!["1600G", "0.0%", "15.6%"]);
        t
    }

    #[test]
    fn renders_aligned_text() {
        let s = sample().render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "Table 3");
        assert!(lines[1].starts_with("Bandwidth"));
        assert!(lines[2].chars().all(|c| c == '-'));
        // Numbers right-aligned: the 50% column ends with the value.
        assert!(lines[3].ends_with("4.7%"));
        assert!(lines[4].ends_with("15.6%"));
        // Left column left-aligned.
        assert!(lines[3].starts_with("400G "));
    }

    #[test]
    fn renders_markdown() {
        let md = sample().render_markdown();
        assert!(md.contains("| Bandwidth | 10% | 50% |"));
        assert!(md.contains("| :--- | ---: | ---: |"));
        assert!(md.contains("| 1600G | 0.0% | 15.6% |"));
    }

    #[test]
    fn pads_and_truncates_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["only"]);
        t.push_row(vec!["x", "y", "z"]);
        assert_eq!(t.row_count(), 2);
        let s = t.render();
        assert!(!s.contains('z'));
    }

    #[test]
    fn custom_alignment() {
        let mut t = Table::new(vec!["n", "name"]).with_aligns(vec![Align::Right, Align::Left]);
        t.push_row(vec!["1", "alpha"]);
        t.push_row(vec!["100", "b"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[2].starts_with("  1"));
        assert!(lines[3].starts_with("100"));
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new(vec!["x"]);
        let s = t.render();
        assert_eq!(s.lines().count(), 2);
    }
}
