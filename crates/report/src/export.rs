//! CSV and JSON export.

use serde::Serialize;

/// Serializes rows of `(column, value)` data to CSV with proper quoting.
#[derive(Debug, Clone, Default)]
pub struct Csv {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Csv {
    /// Creates a CSV with the given headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn push_row<S: Into<String>>(&mut self, cells: Vec<S>) {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Renders RFC-4180-style CSV (quotes cells containing commas,
    /// quotes, or newlines; doubles embedded quotes).
    pub fn render(&self) -> String {
        fn escape(cell: &str) -> String {
            if cell.contains([',', '"', '\n', '\r']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Serializes any `Serialize` value to pretty JSON (the export format of
/// every `netpp --json` command).
///
/// # Errors
///
/// Propagates `serde_json` serialization errors.
pub fn to_json<T: Serialize>(value: &T) -> serde_json::Result<String> {
    serde_json::to_string_pretty(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_basic() {
        let mut c = Csv::new(vec!["bw", "savings"]);
        c.push_row(vec!["400G", "4.7%"]);
        let s = c.render();
        assert_eq!(s, "bw,savings\n400G,4.7%\n");
    }

    #[test]
    fn csv_escaping() {
        let mut c = Csv::new(vec!["name"]);
        c.push_row(vec!["has,comma"]);
        c.push_row(vec!["has\"quote"]);
        c.push_row(vec!["has\nnewline"]);
        let s = c.render();
        assert!(s.contains("\"has,comma\""));
        assert!(s.contains("\"has\"\"quote\""));
        assert!(s.contains("\"has\nnewline\""));
    }

    #[test]
    fn json_round_trip() {
        #[derive(Serialize)]
        struct Row {
            bw: f64,
            savings: f64,
        }
        let s = to_json(&Row {
            bw: 400.0,
            savings: 0.047,
        })
        .unwrap();
        assert!(s.contains("\"bw\": 400.0"));
        let v: serde_json::Value = serde_json::from_str(&s).unwrap();
        assert_eq!(v["savings"], 0.047);
    }
}
