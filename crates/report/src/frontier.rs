//! Pareto-frontier extraction for two-objective result sets.
//!
//! Several experiments trade a benefit against a cost: power saved vs.
//! training slowdown (Table 3 read along the bandwidth axis), energy
//! savings vs. packet loss (§4.4's wake-latency frontier). This module
//! gives them one shared definition of "the interesting subset": the
//! points no other point beats on both objectives at once.

/// Returns the indices of the Pareto-optimal items, sorted by ascending
/// cost.
///
/// An item is on the frontier when no other item has cost ≤ its cost
/// *and* benefit ≥ its benefit with at least one strict inequality
/// (benefit is maximized, cost minimized). Items whose cost or benefit
/// is NaN are excluded. Duplicate (cost, benefit) pairs keep only the
/// first occurrence, so the frontier is strictly increasing in both
/// coordinates.
pub fn pareto_indices<T>(
    items: &[T],
    cost: impl Fn(&T) -> f64,
    benefit: impl Fn(&T) -> f64,
) -> Vec<usize> {
    let mut candidates: Vec<(usize, f64, f64)> = items
        .iter()
        .enumerate()
        .map(|(i, it)| (i, cost(it), benefit(it)))
        .filter(|(_, c, b)| !c.is_nan() && !b.is_nan())
        .collect();
    // Ascending cost; ties broken by descending benefit so the best item
    // at each cost comes first, then by index for determinism.
    candidates.sort_by(|a, b| {
        a.1.total_cmp(&b.1)
            .then(b.2.total_cmp(&a.2))
            .then(a.0.cmp(&b.0))
    });
    let mut frontier = Vec::new();
    let mut best_benefit = f64::NEG_INFINITY;
    let mut last_cost = f64::NEG_INFINITY;
    for (i, c, b) in candidates {
        if b > best_benefit || (frontier.is_empty() && b == best_benefit) {
            // A same-cost point with lower benefit is dominated; a
            // same-cost point with higher benefit replaces nothing (the
            // sort already put the better one first).
            if c == last_cost {
                continue;
            }
            frontier.push(i);
            best_benefit = b;
            last_cost = c;
        }
    }
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_non_dominated_points() {
        // (cost, benefit)
        let pts = [(1.0, 1.0), (2.0, 3.0), (3.0, 2.0), (4.0, 4.0), (2.5, 3.0)];
        let f = pareto_indices(&pts, |p| p.0, |p| p.1);
        // (3,2) is dominated by (2,3); (2.5,3) is dominated by (2,3).
        assert_eq!(f, vec![0, 1, 3]);
    }

    #[test]
    fn single_point_is_frontier() {
        let pts = [(5.0, 5.0)];
        assert_eq!(pareto_indices(&pts, |p| p.0, |p| p.1), vec![0]);
    }

    #[test]
    fn nan_points_are_excluded() {
        let pts = [(1.0, f64::NAN), (2.0, 1.0), (f64::NAN, 9.0)];
        assert_eq!(pareto_indices(&pts, |p| p.0, |p| p.1), vec![1]);
    }

    #[test]
    fn equal_cost_keeps_best_benefit_only() {
        let pts = [(1.0, 2.0), (1.0, 5.0), (2.0, 6.0)];
        assert_eq!(pareto_indices(&pts, |p| p.0, |p| p.1), vec![1, 2]);
    }

    #[test]
    fn frontier_monotone_in_both_axes() {
        let pts: Vec<(f64, f64)> = (0..50)
            .map(|i| {
                let x = f64::from(i) * 0.13;
                (x.sin().abs() * 10.0, (x * 0.7).cos().abs() * 8.0)
            })
            .collect();
        let f = pareto_indices(&pts, |p| p.0, |p| p.1);
        assert!(!f.is_empty());
        for w in f.windows(2) {
            assert!(pts[w[0]].0 < pts[w[1]].0);
            assert!(pts[w[0]].1 < pts[w[1]].1);
        }
    }
}
