//! # npp-report
//!
//! Presentation for `netpp` experiment results: plain-text tables that
//! mirror the paper's tables, ASCII charts that mirror its figures, and
//! CSV/JSON export for external plotting.
//!
//! Everything renders to `String` — the CLI decides where bytes go.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod export;
pub mod frontier;
pub mod table;

pub use chart::{BarChart, LineChart};
pub use frontier::pareto_indices;
pub use table::Table;
