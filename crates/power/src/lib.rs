//! # npp-power
//!
//! Power modeling for networking and compute hardware, following §2.3 of
//! *"It Is Time to Address Network Power Proportionality"* (HotNets '25).
//!
//! The crate provides:
//!
//! - [`Proportionality`] — the paper's Equation 1,
//!   `(max − idle) / max`, with conversions between idle power and
//!   proportionality;
//! - [`PowerModel`] implementations — the paper's two-state (idle/max)
//!   model plus a linear load-proportional model used for ablations;
//! - [`devices`] — an embedded device database reproducing Table 1
//!   (GPU, switch) and Table 2 (NICs, transceivers) including the paper's
//!   extrapolation rule for speeds with no published datasheet value;
//! - [`energy`] — phase-profile energy accounting and the energy-efficiency
//!   metric of §3.1;
//! - [`cost`] — the §3.2 operating-cost model (electricity price + cooling
//!   overhead);
//! - [`gating`] — a hierarchical component/power-domain model for the §4.1
//!   "power knobs" discussion, including switch C-state catalogs;
//! - [`psu`] — load-dependent power-supply efficiency, for the wall-side
//!   view of proportionality.
//!
//! ## Example
//!
//! ```
//! use npp_power::{Proportionality, TwoStatePower, PowerModel};
//! use npp_units::{Ratio, Watts};
//!
//! // A 750 W switch with the paper's baseline 10% proportionality:
//! let switch = TwoStatePower::new(Watts::new(750.0), Proportionality::new(0.10).unwrap());
//! assert_eq!(switch.idle_power(), Watts::new(675.0));
//! assert_eq!(switch.power_at(Ratio::ZERO), Watts::new(675.0));
//! assert_eq!(switch.power_at(Ratio::ONE), Watts::new(750.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod devices;
pub mod energy;
pub mod gating;
mod model;
mod proportionality;
pub mod psu;
pub mod tier;

pub use model::{LinearPower, PowerModel, TwoStatePower};
pub use proportionality::Proportionality;
pub use tier::Tier;

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum PowerError {
    /// A proportionality value was outside `[0, 1]`.
    InvalidProportionality(f64),
    /// A requested device speed has no entry (and extrapolation was
    /// disallowed or impossible).
    UnknownDeviceSpeed {
        /// Device kind, e.g. "NIC".
        kind: &'static str,
        /// Requested speed in Gbps.
        gbps: f64,
    },
    /// A component path did not resolve in a gating tree.
    UnknownComponent(String),
    /// A power value was negative or non-finite.
    InvalidPower(f64),
}

impl core::fmt::Display for PowerError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PowerError::InvalidProportionality(v) => {
                write!(f, "power proportionality {v} is outside [0, 1]")
            }
            PowerError::UnknownDeviceSpeed { kind, gbps } => {
                write!(f, "no {kind} power entry for {gbps} Gbps")
            }
            PowerError::UnknownComponent(path) => {
                write!(f, "no component at path {path:?}")
            }
            PowerError::InvalidPower(v) => write!(f, "invalid power value {v} W"),
        }
    }
}

impl std::error::Error for PowerError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, PowerError>;
