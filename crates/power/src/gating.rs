//! Hierarchical power gating — the §4.1 "exposing power knobs" proposal.
//!
//! Computing hardware reduces static power by *gating* unused components
//! (PCIe slots, memory banks, CPU cores). §4.1 argues switches should do
//! the same and should expose the knobs — ideally as a catalog of
//! pre-defined low-power modes analogous to CPU C-states, so that users
//! need no knowledge of the ASIC internals.
//!
//! This module models a device as a tree of [`Component`]s, each with its
//! own power draw and a gate state, and provides [`CState`] catalogs that
//! gate/scale whole sets of components at once. The switch breakdown in
//! [`switch_component_model`] is an *assumption documented in DESIGN.md*:
//! the paper gives only the 750 W total, so we apportion it across SerDes,
//! pipeline logic, memory, control CPU, and fans following the rough
//! shares reported in the router power-modeling literature the paper cites
//! (SerDes-dominated, ~40 %).

use serde::{Deserialize, Serialize};

use npp_units::Watts;

use crate::{PowerError, Proportionality, Result};

/// The gate state of one component.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GateState {
    /// Fully powered.
    On,
    /// Power-gated: the component and its entire subtree draw nothing.
    Off,
    /// Scaled to a fraction of its own power (rate adaptation / DVFS);
    /// children keep their own states.
    Scaled(f64),
}

/// A node in a device's component tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Component {
    name: String,
    /// Power drawn by this node itself (excluding children) when `On`.
    own_power: Watts,
    /// Whether the hardware exposes a gate for this component. §4.1's
    /// observation is that most components are physically gateable but the
    /// knob is not exposed by the NOS; modeling both lets us quantify the
    /// gap between "exposed" and "physically possible" savings.
    gateable: bool,
    state: GateState,
    children: Vec<Component>,
}

impl Component {
    /// Creates a leaf component.
    pub fn new(name: impl Into<String>, own_power: Watts) -> Self {
        Self {
            name: name.into(),
            own_power,
            gateable: true,
            state: GateState::On,
            children: Vec::new(),
        }
    }

    /// Marks this component as having no exposed gate (always-on).
    pub fn fixed(mut self) -> Self {
        self.gateable = false;
        self
    }

    /// Adds a child component (builder style).
    pub fn with_child(mut self, child: Component) -> Self {
        self.children.push(child);
        self
    }

    /// The component's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether this component's gate is exposed.
    pub fn is_gateable(&self) -> bool {
        self.gateable
    }

    /// Current gate state.
    pub fn state(&self) -> GateState {
        self.state
    }

    /// Child components.
    pub fn children(&self) -> &[Component] {
        &self.children
    }

    /// Current power draw of this subtree, honoring gate states.
    pub fn power(&self) -> Watts {
        match self.state {
            GateState::Off => Watts::ZERO,
            GateState::On => {
                self.own_power + self.children.iter().map(Component::power).sum::<Watts>()
            }
            GateState::Scaled(f) => {
                self.own_power * f.clamp(0.0, 1.0)
                    + self.children.iter().map(Component::power).sum::<Watts>()
            }
        }
    }

    /// Power draw of this subtree with every gate forced `On`.
    pub fn max_power(&self) -> Watts {
        self.own_power
            + self
                .children
                .iter()
                .map(Component::max_power)
                .sum::<Watts>()
    }

    /// Resolves a `/`-separated path ("asic/pipeline0/serdes") to a
    /// component, starting at (but not including) this node.
    pub fn find(&self, path: &str) -> Option<&Component> {
        let mut node = self;
        for seg in path.split('/').filter(|s| !s.is_empty()) {
            node = node.children.iter().find(|c| c.name == seg)?;
        }
        Some(node)
    }

    fn find_mut(&mut self, path: &str) -> Option<&mut Component> {
        let mut node = self;
        for seg in path.split('/').filter(|s| !s.is_empty()) {
            node = node.children.iter_mut().find(|c| c.name == seg)?;
        }
        Some(node)
    }

    /// Sets the gate state of the component at `path`.
    ///
    /// # Errors
    ///
    /// [`PowerError::UnknownComponent`] if the path does not resolve, and
    /// [`PowerError::InvalidPower`] if attempting to gate a component whose
    /// knob is not exposed (`fixed()`).
    pub fn set_state(&mut self, path: &str, state: GateState) -> Result<()> {
        let node = self
            .find_mut(path)
            .ok_or_else(|| PowerError::UnknownComponent(path.to_string()))?;
        if !node.gateable && state != GateState::On {
            return Err(PowerError::UnknownComponent(format!(
                "{path} has no exposed power knob"
            )));
        }
        node.state = state;
        Ok(())
    }

    /// Resets every gate in the subtree to `On`.
    pub fn reset(&mut self) {
        self.state = GateState::On;
        for c in &mut self.children {
            c.reset();
        }
    }

    /// The proportionality this device would exhibit if its current gated
    /// configuration were its idle state (Equation 1 with
    /// `idle = self.power()`, `max = self.max_power()`).
    pub fn implied_proportionality(&self) -> Result<Proportionality> {
        Proportionality::from_idle_max(self.power(), self.max_power())
    }

    /// Iterates over `(path, component)` pairs of the whole subtree in
    /// depth-first order, including this node under its own name.
    pub fn walk(&self) -> Vec<(String, &Component)> {
        let mut out = Vec::new();
        self.walk_into(String::new(), &mut out);
        out
    }

    fn walk_into<'a>(&'a self, prefix: String, out: &mut Vec<(String, &'a Component)>) {
        let path = if prefix.is_empty() {
            self.name.clone()
        } else {
            format!("{prefix}/{}", self.name)
        };
        out.push((path.clone(), self));
        for c in &self.children {
            c.walk_into(path.clone(), out);
        }
    }
}

/// A pre-defined low-power mode: the networking analogue of a CPU C-state
/// proposed at the end of §4.1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CState {
    /// Mode name ("C0", "C1-rate", …).
    pub name: String,
    /// What the mode does, for humans.
    pub description: String,
    /// Component paths gated fully off in this mode.
    pub gate_off: Vec<String>,
    /// Component paths scaled to a fraction of their power.
    pub scale: Vec<(String, f64)>,
}

impl CState {
    /// Applies this mode to a device tree (after resetting all gates).
    ///
    /// # Errors
    ///
    /// Propagates path-resolution errors.
    pub fn apply(&self, device: &mut Component) -> Result<()> {
        device.reset();
        for path in &self.gate_off {
            device.set_state(path, GateState::Off)?;
        }
        for (path, f) in &self.scale {
            device.set_state(path, GateState::Scaled(*f))?;
        }
        npp_telemetry::metrics::counter_add("power.cstate_applies", 1);
        Ok(())
    }
}

/// Number of forwarding pipelines in the modeled switch ASIC.
pub const SWITCH_PIPELINES: usize = 4;

/// Builds the component tree of a 51.2 Tbps, 750 W switch.
///
/// Breakdown (an explicit assumption; see module docs): four pipelines of
/// 138 W each (75 W SerDes + 45 W match-action logic + 18 W buffer/table
/// memory), a 48 W control-plane CPU, 90 W of fans, and 60 W of
/// miscellaneous/PSU loss that no knob can reach. Total: 750 W.
pub fn switch_component_model() -> Component {
    let mut asic = Component::new("asic", Watts::ZERO);
    for i in 0..SWITCH_PIPELINES {
        asic = asic.with_child(
            Component::new(format!("pipeline{i}"), Watts::ZERO)
                .with_child(Component::new("serdes", Watts::new(75.0)))
                .with_child(Component::new("logic", Watts::new(45.0)))
                .with_child(Component::new("memory", Watts::new(18.0))),
        );
    }
    Component::new("switch", Watts::ZERO)
        .with_child(asic)
        .with_child(Component::new("cpu", Watts::new(48.0)))
        .with_child(Component::new("fans", Watts::new(90.0)))
        .with_child(Component::new("misc", Watts::new(60.0)).fixed())
}

/// The default C-state catalog for [`switch_component_model`].
///
/// - `C0`: everything on (750 W);
/// - `C1-rate`: all pipelines frequency-scaled to 60 % (rate adaptation,
///   §4.3, applied to logic and SerDes but not memory);
/// - `C2-park2`: two of four pipelines gated off (§4.4);
/// - `C3-deep`: three pipelines off, fans at half speed, CPU scaled 70 %.
pub fn switch_cstates() -> Vec<CState> {
    let mut c1_scale = Vec::new();
    for i in 0..SWITCH_PIPELINES {
        c1_scale.push((format!("asic/pipeline{i}/logic"), 0.6));
        c1_scale.push((format!("asic/pipeline{i}/serdes"), 0.6));
    }
    vec![
        CState {
            name: "C0".into(),
            description: "fully on".into(),
            gate_off: vec![],
            scale: vec![],
        },
        CState {
            name: "C1-rate".into(),
            description: "all pipelines rate-adapted to 60% frequency".into(),
            gate_off: vec![],
            scale: c1_scale,
        },
        CState {
            name: "C2-park2".into(),
            description: "two of four pipelines power-gated".into(),
            gate_off: vec!["asic/pipeline2".into(), "asic/pipeline3".into()],
            scale: vec![],
        },
        CState {
            name: "C3-deep".into(),
            description: "three pipelines gated, fans at 50%, CPU at 70%".into(),
            gate_off: vec![
                "asic/pipeline1".into(),
                "asic/pipeline2".into(),
                "asic/pipeline3".into(),
            ],
            scale: vec![("fans".into(), 0.5), ("cpu".into(), 0.7)],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_model_totals_750w() {
        let sw = switch_component_model();
        assert!(sw.max_power().approx_eq(Watts::new(750.0), 1e-9));
        assert!(sw.power().approx_eq(Watts::new(750.0), 1e-9));
    }

    #[test]
    fn gating_a_pipeline_removes_its_whole_subtree() {
        let mut sw = switch_component_model();
        sw.set_state("asic/pipeline0", GateState::Off).unwrap();
        assert!(sw.power().approx_eq(Watts::new(750.0 - 138.0), 1e-9));
        sw.reset();
        assert!(sw.power().approx_eq(Watts::new(750.0), 1e-9));
    }

    #[test]
    fn scaling_affects_own_power_only() {
        let mut sw = switch_component_model();
        sw.set_state("fans", GateState::Scaled(0.5)).unwrap();
        assert!(sw.power().approx_eq(Watts::new(750.0 - 45.0), 1e-9));
        // Scaling an inner node with zero own power changes nothing.
        sw.set_state("asic", GateState::Scaled(0.1)).unwrap();
        assert!(sw.power().approx_eq(Watts::new(750.0 - 45.0), 1e-9));
    }

    #[test]
    fn unexposed_knob_is_rejected() {
        let mut sw = switch_component_model();
        assert!(sw.set_state("misc", GateState::Off).is_err());
        assert!(sw.set_state("nonexistent", GateState::Off).is_err());
        // Setting On is always allowed.
        assert!(sw.set_state("misc", GateState::On).is_ok());
    }

    #[test]
    fn cstates_are_monotonically_deeper() {
        let mut sw = switch_component_model();
        let mut last = f64::INFINITY;
        for cs in switch_cstates() {
            cs.apply(&mut sw).unwrap();
            let p = sw.power().value();
            assert!(p < last || cs.name == "C0", "{} did not deepen", cs.name);
            last = p;
        }
    }

    #[test]
    fn deep_state_implies_much_better_proportionality() {
        let mut sw = switch_component_model();
        let deep = &switch_cstates()[3];
        deep.apply(&mut sw).unwrap();
        // 1 pipeline (138) + 0.5·90 fans + 0.7·48 cpu + 60 misc = 276.6 W.
        assert!(sw.power().approx_eq(Watts::new(276.6), 1e-9));
        let p = sw.implied_proportionality().unwrap();
        assert!(p.fraction() > 0.6, "deep C-state proportionality {p}");
    }

    #[test]
    fn walk_enumerates_all_components() {
        let sw = switch_component_model();
        let paths: Vec<String> = sw.walk().into_iter().map(|(p, _)| p).collect();
        assert!(paths.contains(&"switch".to_string()));
        assert!(paths.contains(&"switch/asic/pipeline0/serdes".to_string()));
        // 1 root + 1 asic + 4 pipelines×(1+3) + cpu + fans + misc = 21.
        assert_eq!(paths.len(), 21);
    }

    #[test]
    fn find_resolves_paths() {
        let sw = switch_component_model();
        assert!(sw.find("asic/pipeline3/memory").is_some());
        assert!(sw.find("asic/pipeline4").is_none());
        assert_eq!(sw.find("cpu").unwrap().max_power(), Watts::new(48.0));
    }
}
