//! Power proportionality — Equation 1 of the paper.

use serde::{Deserialize, Serialize};

use npp_units::Watts;

use crate::{PowerError, Result};

/// Power proportionality as defined by Equation 1 of the paper:
///
/// ```text
/// proportionality = (max power − idle power) / max power
/// ```
///
/// A value of `1.0` means the device draws nothing when idle (perfectly
/// proportional); `0.0` means idle draw equals max draw. The paper uses
/// 0.85 for modern servers and 0.10 as the baseline for networking
/// hardware (the literature reports 5–20 %).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Proportionality(f64);

impl Proportionality {
    /// Perfectly power-proportional device (zero idle draw).
    pub const PERFECT: Self = Self(1.0);
    /// Completely non-proportional device (idle draw = max draw).
    pub const FLAT: Self = Self(0.0);
    /// The paper's network baseline (§2.3.2): 10 %.
    pub const NETWORK_BASELINE: Self = Self(0.10);
    /// The paper's compute value (§2.3.1, citing Barroso et al.): 85 %.
    pub const COMPUTE: Self = Self(0.85);

    /// Creates a proportionality from a fraction in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidProportionality`] if the value is NaN
    /// or outside `[0, 1]`.
    pub fn new(fraction: f64) -> Result<Self> {
        if fraction.is_nan() || !(0.0..=1.0).contains(&fraction) {
            return Err(PowerError::InvalidProportionality(fraction));
        }
        Ok(Self(fraction))
    }

    /// Creates a proportionality from a percentage in `[0, 100]`.
    ///
    /// # Errors
    ///
    /// Same as [`Proportionality::new`].
    pub fn from_percent(pct: f64) -> Result<Self> {
        Self::new(pct / 100.0)
    }

    /// Computes the proportionality of a device from its measured idle and
    /// max powers (Equation 1).
    ///
    /// # Errors
    ///
    /// Returns an error if the resulting fraction is outside `[0, 1]`
    /// (i.e. idle exceeds max or either is negative).
    pub fn from_idle_max(idle: Watts, max: Watts) -> Result<Self> {
        if max.value() <= 0.0 {
            return Err(PowerError::InvalidPower(max.value()));
        }
        Self::new((max.value() - idle.value()) / max.value())
    }

    /// Returns the raw fraction in `[0, 1]`.
    #[inline]
    pub const fn fraction(self) -> f64 {
        self.0
    }

    /// Returns the value as a percentage.
    #[inline]
    pub fn percent(self) -> f64 {
        self.0 * 100.0
    }

    /// The idle power implied by this proportionality for a device with the
    /// given max power: `idle = max · (1 − proportionality)`.
    #[inline]
    pub fn idle_power(self, max: Watts) -> Watts {
        max * (1.0 - self.0)
    }

    /// Absolute-tolerance comparison.
    #[inline]
    pub fn approx_eq(self, other: Self, tol: f64) -> bool {
        (self.0 - other.0).abs() <= tol
    }
}

impl core::fmt::Display for Proportionality {
    /// Renders as a percentage, with default precision 0 ("10%").
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let prec = f.precision().unwrap_or(0);
        write!(f, "{:.*}%", prec, self.0 * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_paper_values() {
        // §2.3.1: 500 W max, 85% proportionality ⇒ 75 W idle.
        let idle = Proportionality::COMPUTE.idle_power(Watts::new(500.0));
        assert!(idle.approx_eq(Watts::new(75.0), 1e-9));
        // And Eq. 1 inverts it.
        let p = Proportionality::from_idle_max(Watts::new(75.0), Watts::new(500.0)).unwrap();
        assert!(p.approx_eq(Proportionality::COMPUTE, 1e-12));
    }

    #[test]
    fn network_baseline_idle() {
        // §2.3.2: a 750 W switch at 10% proportionality idles at 675 W.
        let idle = Proportionality::NETWORK_BASELINE.idle_power(Watts::new(750.0));
        assert_eq!(idle, Watts::new(675.0));
    }

    #[test]
    fn bounds_enforced() {
        assert!(Proportionality::new(-0.01).is_err());
        assert!(Proportionality::new(1.01).is_err());
        assert!(Proportionality::new(f64::NAN).is_err());
        assert!(Proportionality::from_percent(50.0).is_ok());
        assert!(Proportionality::from_idle_max(Watts::new(800.0), Watts::new(750.0)).is_err());
        assert!(Proportionality::from_idle_max(Watts::new(10.0), Watts::ZERO).is_err());
    }

    #[test]
    fn perfect_and_flat() {
        assert_eq!(
            Proportionality::PERFECT.idle_power(Watts::new(750.0)),
            Watts::ZERO
        );
        assert_eq!(
            Proportionality::FLAT.idle_power(Watts::new(750.0)),
            Watts::new(750.0)
        );
    }

    #[test]
    fn display_percent() {
        assert_eq!(format!("{}", Proportionality::NETWORK_BASELINE), "10%");
        assert_eq!(format!("{:.1}", Proportionality::COMPUTE), "85.0%");
    }
}
