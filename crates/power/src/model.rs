//! Power models: how a device's draw depends on its load.

use serde::{Deserialize, Serialize};

use npp_units::{Ratio, Watts};

use crate::Proportionality;

/// A device power model: maps an instantaneous load (utilization in
/// `[0, 1]`) to a power draw.
///
/// The paper's analysis (§2.2–§2.3) only ever exercises the two endpoints
/// — resources are either *idle* or at *full speed* — which is captured by
/// [`TwoStatePower`]. [`LinearPower`] interpolates linearly and is used in
/// the ablation benchmarks to test how sensitive the conclusions are to the
/// binary-load assumption.
pub trait PowerModel {
    /// Power drawn at the given load.
    fn power_at(&self, load: Ratio) -> Watts;

    /// Power drawn at full load.
    fn max_power(&self) -> Watts;

    /// Power drawn at zero load.
    fn idle_power(&self) -> Watts;

    /// The proportionality implied by this model (Equation 1).
    fn proportionality(&self) -> Proportionality {
        Proportionality::from_idle_max(self.idle_power(), self.max_power())
            .expect("idle ≤ max by construction")
    }
}

/// The paper's two-state model: a device is either idle or at max power.
///
/// Any strictly positive load counts as "active"; the paper's phases are
/// binary (network idle during computation, GPUs idle during
/// communication), so no intermediate loads occur in the core analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TwoStatePower {
    max: Watts,
    proportionality: Proportionality,
}

impl TwoStatePower {
    /// Creates a two-state model from a max power and a proportionality.
    pub fn new(max: Watts, proportionality: Proportionality) -> Self {
        Self {
            max,
            proportionality,
        }
    }

    /// Creates a two-state model from explicit idle and max powers.
    ///
    /// # Errors
    ///
    /// Returns an error if `idle > max` or `max ≤ 0`.
    pub fn from_idle_max(idle: Watts, max: Watts) -> crate::Result<Self> {
        Ok(Self {
            max,
            proportionality: Proportionality::from_idle_max(idle, max)?,
        })
    }

    /// Returns a copy of this model with a different proportionality —
    /// the primary "what-if" knob of the whole paper.
    pub fn with_proportionality(self, p: Proportionality) -> Self {
        Self {
            max: self.max,
            proportionality: p,
        }
    }
}

impl PowerModel for TwoStatePower {
    fn power_at(&self, load: Ratio) -> Watts {
        if load.fraction() > 0.0 {
            self.max
        } else {
            self.idle_power()
        }
    }

    fn max_power(&self) -> Watts {
        self.max
    }

    fn idle_power(&self) -> Watts {
        self.proportionality.idle_power(self.max)
    }

    fn proportionality(&self) -> Proportionality {
        self.proportionality
    }
}

/// A linearly load-proportional model:
/// `P(load) = idle + (max − idle) · load`.
///
/// This is the classic energy-proportional server model; networking
/// devices that implement ideal rate adaptation (§4.3) would approach it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearPower {
    max: Watts,
    proportionality: Proportionality,
}

impl LinearPower {
    /// Creates a linear model from a max power and a proportionality.
    pub fn new(max: Watts, proportionality: Proportionality) -> Self {
        Self {
            max,
            proportionality,
        }
    }
}

impl PowerModel for LinearPower {
    fn power_at(&self, load: Ratio) -> Watts {
        let idle = self.idle_power();
        let span = self.max - idle;
        idle + span * load.fraction().clamp(0.0, 1.0)
    }

    fn max_power(&self) -> Watts {
        self.max
    }

    fn idle_power(&self) -> Watts {
        self.proportionality.idle_power(self.max)
    }

    fn proportionality(&self) -> Proportionality {
        self.proportionality
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn switch() -> TwoStatePower {
        TwoStatePower::new(Watts::new(750.0), Proportionality::NETWORK_BASELINE)
    }

    #[test]
    fn two_state_endpoints() {
        let m = switch();
        assert_eq!(m.power_at(Ratio::ZERO), Watts::new(675.0));
        assert_eq!(m.power_at(Ratio::ONE), Watts::new(750.0));
        // Any nonzero load counts as active under the paper's model.
        assert_eq!(m.power_at(Ratio::new(0.01)), Watts::new(750.0));
    }

    #[test]
    fn linear_interpolates() {
        let m = LinearPower::new(Watts::new(750.0), Proportionality::NETWORK_BASELINE);
        assert_eq!(m.power_at(Ratio::ZERO), Watts::new(675.0));
        assert_eq!(m.power_at(Ratio::ONE), Watts::new(750.0));
        let half = m.power_at(Ratio::new(0.5));
        assert!(half.approx_eq(Watts::new(712.5), 1e-9));
        // Loads outside [0,1] are clamped.
        assert_eq!(m.power_at(Ratio::new(2.0)), Watts::new(750.0));
    }

    #[test]
    fn implied_proportionality_round_trips() {
        let m = switch();
        assert!(m
            .proportionality()
            .approx_eq(Proportionality::NETWORK_BASELINE, 1e-12));
        let m2 = TwoStatePower::from_idle_max(Watts::new(675.0), Watts::new(750.0)).unwrap();
        assert!(m2
            .proportionality()
            .approx_eq(Proportionality::NETWORK_BASELINE, 1e-12));
    }

    #[test]
    fn what_if_knob() {
        let m = switch().with_proportionality(Proportionality::PERFECT);
        assert_eq!(m.idle_power(), Watts::ZERO);
        assert_eq!(m.max_power(), Watts::new(750.0));
    }
}
