//! Operating-cost model for power savings — §3.2 of the paper.
//!
//! The paper converts an average power reduction into an annual electricity
//! saving using the average US commercial electricity price (13 ¢/kWh) and
//! adds a cooling saving of 30 % of the IT power (the cooling share
//! estimated by Zhang et al. for data-center cooling systems).

use serde::{Deserialize, Serialize};

use npp_units::{Joules, Seconds, Usd, Watts};

/// Grid carbon intensity, for converting energy savings into emissions
/// savings (the sustainability framing of the paper's introduction).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CarbonModel {
    /// Grams of CO2-equivalent per kWh consumed.
    pub gco2e_per_kwh: f64,
}

impl Default for CarbonModel {
    fn default() -> Self {
        Self::us_grid_average()
    }
}

impl CarbonModel {
    /// The recent US grid average (≈ 390 gCO2e/kWh).
    pub fn us_grid_average() -> Self {
        Self {
            gco2e_per_kwh: 390.0,
        }
    }

    /// A low-carbon grid (hydro/nuclear heavy, ≈ 30 gCO2e/kWh).
    pub fn low_carbon_grid() -> Self {
        Self {
            gco2e_per_kwh: 30.0,
        }
    }

    /// Emissions for the given energy, in metric tonnes of CO2e.
    pub fn tonnes_for(&self, energy: Joules) -> f64 {
        energy.as_kwh() * self.gco2e_per_kwh / 1e6
    }

    /// Annual emissions of a constant power draw, in tonnes CO2e/year.
    pub fn annual_tonnes(&self, power: Watts) -> f64 {
        self.tonnes_for(power * Seconds::one_year())
    }
}

/// Electricity price and cooling overhead used to monetize power savings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Price per kWh.
    pub usd_per_kwh: f64,
    /// Cooling power as a fraction of IT power (0.30 in the paper).
    pub cooling_overhead: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self::paper_baseline()
    }
}

impl CostModel {
    /// The paper's §3.2 parameters: 13 ¢/kWh, 30 % cooling overhead.
    pub fn paper_baseline() -> Self {
        Self {
            usd_per_kwh: 0.13,
            cooling_overhead: 0.30,
        }
    }

    /// Cost of the given energy, excluding cooling.
    pub fn energy_cost(&self, energy: Joules) -> Usd {
        Usd::new(energy.as_kwh() * self.usd_per_kwh)
    }

    /// Annual electricity cost of a constant power draw, excluding cooling.
    pub fn annual_cost(&self, power: Watts) -> Usd {
        self.energy_cost(power * Seconds::one_year())
    }

    /// Annual cost of the cooling required by a constant IT power draw.
    pub fn annual_cooling_cost(&self, it_power: Watts) -> Usd {
        self.annual_cost(it_power * self.cooling_overhead)
    }

    /// Annual total (electricity + cooling) cost of a constant IT draw.
    pub fn annual_total_cost(&self, it_power: Watts) -> Usd {
        self.annual_cost(it_power) + self.annual_cooling_cost(it_power)
    }

    /// Breaks an average power *saving* down the way §3.2 reports it.
    pub fn savings(&self, avg_power_reduction: Watts) -> SavingsBreakdown {
        SavingsBreakdown {
            power_reduction: avg_power_reduction,
            electricity_per_year: self.annual_cost(avg_power_reduction),
            cooling_per_year: self.annual_cooling_cost(avg_power_reduction),
        }
    }
}

/// Annualized savings from an average power reduction (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SavingsBreakdown {
    /// The average power reduction itself.
    pub power_reduction: Watts,
    /// Annual electricity-bill saving.
    pub electricity_per_year: Usd,
    /// Annual cooling-energy saving (30 % of IT power in the paper).
    pub cooling_per_year: Usd,
}

impl SavingsBreakdown {
    /// Electricity + cooling savings per year.
    pub fn total_per_year(&self) -> Usd {
        self.electricity_per_year + self.cooling_per_year
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_365_kw_example() {
        // §3.2: 365 kW average reduction → ≈ $416k/year electricity and
        // ≈ $125k/year cooling at 13 ¢/kWh and 30 % overhead.
        let m = CostModel::paper_baseline();
        let s = m.savings(Watts::from_kw(365.0));
        assert!((s.electricity_per_year.as_thousands() - 415.7).abs() < 0.5);
        assert!((s.cooling_per_year.as_thousands() - 124.7).abs() < 0.5);
        assert!((s.total_per_year().as_thousands() - 540.4).abs() < 1.0);
    }

    #[test]
    fn energy_cost_is_linear_in_energy() {
        let m = CostModel::paper_baseline();
        let one = m.energy_cost(Joules::from_kwh(1.0));
        assert!((one.value() - 0.13).abs() < 1e-12);
        let ten = m.energy_cost(Joules::from_kwh(10.0));
        assert!((ten.value() - 1.3).abs() < 1e-12);
    }

    #[test]
    fn carbon_model_converts_energy() {
        let m = CarbonModel::us_grid_average();
        // 1 MWh at 390 g/kWh = 0.39 tonnes.
        assert!((m.tonnes_for(Joules::from_kwh(1000.0)) - 0.39).abs() < 1e-12);
        // The paper's 365 kW saving ≈ 1,247 tCO2e/year on the US grid.
        let t = m.annual_tonnes(Watts::from_kw(365.0));
        assert!((t - 1247.0).abs() < 5.0, "tonnes {t}");
        // A low-carbon grid shrinks it by >10x.
        let low = CarbonModel::low_carbon_grid().annual_tonnes(Watts::from_kw(365.0));
        assert!(low < t / 10.0);
    }

    #[test]
    fn annual_total_includes_cooling() {
        let m = CostModel::paper_baseline();
        let p = Watts::from_kw(100.0);
        let total = m.annual_total_cost(p);
        let expected = m.annual_cost(p).value() * 1.3;
        assert!((total.value() - expected).abs() < 1e-6);
    }
}
