//! Fabric tiers for per-device power attribution.
//!
//! PowerScope (see `npp-simnet::powerscope`) aggregates windowed energy
//! and power-state residency per device; every device carries a [`Tier`]
//! so reports can roll joules up the fat-tree: host NICs, top-of-rack
//! switches, aggregation switches, and the spine.

/// Where a device sits in the fabric, from server to spine.
///
/// The discriminants are stable and index-addressable (`Tier::all()[i]`
/// has discriminant `i`), which the powerscope exporter relies on for
/// byte-stable ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tier {
    /// Server-side endpoint: NIC plus its share of host networking.
    Host,
    /// Top-of-rack switch.
    Tor,
    /// Aggregation-layer switch.
    Agg,
    /// Spine / core switch.
    Spine,
}

impl Tier {
    /// All tiers in fixed report order (host → spine).
    pub const fn all() -> [Tier; 4] {
        [Tier::Host, Tier::Tor, Tier::Agg, Tier::Spine]
    }

    /// Stable lowercase name used in `npp.power/v1` documents.
    pub const fn name(self) -> &'static str {
        match self {
            Tier::Host => "host",
            Tier::Tor => "tor",
            Tier::Agg => "agg",
            Tier::Spine => "spine",
        }
    }

    /// Index of this tier in [`Tier::all`] order.
    pub const fn index(self) -> usize {
        match self {
            Tier::Host => 0,
            Tier::Tor => 1,
            Tier::Agg => 2,
            Tier::Spine => 3,
        }
    }

    /// Parses a tier from its [`Tier::name`] form.
    pub fn parse(s: &str) -> Option<Tier> {
        match s {
            "host" => Some(Tier::Host),
            "tor" => Some(Tier::Tor),
            "agg" => Some(Tier::Agg),
            "spine" => Some(Tier::Spine),
            _ => None,
        }
    }
}

impl core::fmt::Display for Tier {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

// Serialized as the lowercase name (`"tor"`), matching the
// `npp.power/v1` document vocabulary.
impl serde::Serialize for Tier {
    fn serialize_value(&self) -> std::result::Result<serde::Value, serde::Error> {
        Ok(serde::Value::String(self.name().to_string()))
    }
}

impl<'de> serde::Deserialize<'de> for Tier {
    fn deserialize_value(value: &serde::Value) -> std::result::Result<Self, serde::Error> {
        match value {
            serde::Value::String(s) => {
                Tier::parse(s).ok_or_else(|| serde::Error::custom(format!("unknown tier {s:?}")))
            }
            other => Err(serde::Error::custom(format!(
                "expected tier string, got {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for (i, tier) in Tier::all().into_iter().enumerate() {
            assert_eq!(tier.index(), i);
            assert_eq!(Tier::parse(tier.name()), Some(tier));
        }
        assert_eq!(Tier::parse("core"), None);
    }

    #[test]
    fn serde_uses_snake_case() {
        let json = serde_json::to_string(&Tier::Tor).unwrap();
        assert_eq!(json, "\"tor\"");
        let back: Tier = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Tier::Tor);
    }
}
