//! Embedded device power database — Tables 1 and 2 of the paper.
//!
//! All constants carry their provenance: either a vendor datasheet cited by
//! the paper, the Alibaba HPN paper, or the paper's own extrapolation. The
//! extrapolation rule for speeds with no published number is *geometric
//! ratio continuation*: `P(2B) = P(B)² / P(B/2)`, i.e. each doubling of
//! bandwidth multiplies power by the same factor as the previous doubling.
//! This rule reproduces the paper's starred values (38.6 W and 58.8 W for
//! 800/1600 G NICs, 27.27 W for the 1600 G transceiver) to within rounding.

use serde::{Deserialize, Serialize};

use npp_units::{Gbps, Watts};

use crate::{PowerError, Proportionality, Result, TwoStatePower};

/// Max power of an Nvidia H100 NVL GPU (Table 1, from the Nvidia
/// datasheet).
pub const H100_NVL_MAX: Watts = Watts::new(400.0);

/// Power drawn by the non-GPU parts of a server (CPUs, RAM, storage, fans)
/// — §2.3.1 assumes ≈800 W per 8-GPU server.
pub const SERVER_OVERHEAD: Watts = Watts::new(800.0);

/// Number of GPUs per server (§2.1).
pub const GPUS_PER_SERVER: usize = 8;

/// Effective max power per GPU including its share of the server overhead:
/// 400 W + 800 W / 8 = 500 W (§2.3.1).
pub const GPU_WITH_SERVER_MAX: Watts = Watts::new(500.0);

/// Idle power per GPU (incl. server share) at the paper's 85 % compute
/// proportionality: 75 W (§2.3.1).
pub const GPU_WITH_SERVER_IDLE: Watts = Watts::new(75.0);

/// Max power of a 51.2 Tbps switch (Table 1, from the Alibaba HPN paper).
pub const SWITCH_51T2_MAX: Watts = Watts::new(750.0);

/// Aggregate capacity of the modeled switch ASIC (§2.1).
pub const SWITCH_CAPACITY: Gbps = Gbps::from_tbps(51.2);

/// Where a power number comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Provenance {
    /// Straight from a vendor datasheet cited by the paper.
    Datasheet,
    /// Extrapolated by the paper itself (starred entries of Table 2).
    PaperExtrapolated,
    /// Extrapolated by this library beyond the paper's table.
    LibraryExtrapolated,
}

/// One `(speed, power)` entry of a device table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedPowerEntry {
    /// Interface speed.
    pub speed: Gbps,
    /// Max power at that speed.
    pub power: Watts,
    /// Where the number comes from.
    pub provenance: Provenance,
}

/// A per-speed max-power table for a device family (NICs or transceivers),
/// reproducing Table 2 of the paper.
///
/// Equality compares the entries only; the `kind` label is diagnostic
/// (and deliberately not serialized).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpeedPowerTable {
    #[serde(skip, default = "default_kind")]
    kind: &'static str,
    entries: Vec<SpeedPowerEntry>,
}

impl SpeedPowerTable {
    /// NIC max powers (NVIDIA ConnectX-7 datasheet + paper extrapolation):
    /// 8.6 / 16.7 / 25.4 / 38.6* / 58.8* W for 100–1600 G.
    pub fn nic_connectx7() -> Self {
        use Provenance::*;
        Self {
            kind: "NIC",
            entries: vec![
                entry(100.0, 8.6, Datasheet),
                entry(200.0, 16.7, Datasheet),
                entry(400.0, 25.4, Datasheet),
                entry(800.0, 38.6, PaperExtrapolated),
                entry(1600.0, 58.8, PaperExtrapolated),
            ],
        }
    }

    /// Short-range (< 2 km) optical transceiver max powers (FS.com
    /// datasheets + paper extrapolation): 4 / 6.5 / 10 / 16.5 / 27.27* W.
    pub fn transceiver_optical() -> Self {
        use Provenance::*;
        Self {
            kind: "transceiver",
            entries: vec![
                entry(100.0, 4.0, Datasheet),
                entry(200.0, 6.5, Datasheet),
                entry(400.0, 10.0, Datasheet),
                entry(800.0, 16.5, Datasheet),
                entry(1600.0, 27.27, PaperExtrapolated),
            ],
        }
    }

    /// The device family this table describes ("NIC" or "transceiver").
    pub fn kind(&self) -> &'static str {
        self.kind
    }

    /// All entries, ordered by ascending speed.
    pub fn entries(&self) -> &[SpeedPowerEntry] {
        &self.entries
    }

    /// Max power at exactly the given speed.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::UnknownDeviceSpeed`] if no entry matches.
    pub fn power(&self, speed: Gbps) -> Result<Watts> {
        self.entries
            .iter()
            .find(|e| e.speed == speed)
            .map(|e| e.power)
            .ok_or(PowerError::UnknownDeviceSpeed {
                kind: self.kind,
                gbps: speed.value(),
            })
    }

    /// Max power at the given speed, extending the table by geometric
    /// ratio continuation when the speed is one or more doublings past the
    /// last entry. Speeds between table entries are interpolated linearly
    /// (the paper never needs this; it is provided for sweep tooling).
    ///
    /// # Errors
    ///
    /// Returns an error for speeds below the table minimum or not reachable
    /// by doubling from the last entry and not bracketed by two entries.
    pub fn power_extrapolated(&self, speed: Gbps) -> Result<Watts> {
        if let Ok(p) = self.power(speed) {
            return Ok(p);
        }
        let first = self.entries.first().expect("tables are non-empty");
        let last = self.entries[self.entries.len() - 1];
        if speed < first.speed {
            return Err(PowerError::UnknownDeviceSpeed {
                kind: self.kind,
                gbps: speed.value(),
            });
        }
        if speed > last.speed {
            // Geometric ratio continuation past the end of the table.
            let prev = self.entries[self.entries.len() - 2];
            let ratio = last.power / prev.power;
            let mut s = last.speed;
            let mut p = last.power;
            while s < speed {
                s = s * 2.0;
                p = p * ratio;
            }
            if s == speed {
                return Ok(p);
            }
            return Err(PowerError::UnknownDeviceSpeed {
                kind: self.kind,
                gbps: speed.value(),
            });
        }
        // Bracketed: linear interpolation between neighbours.
        let (lo, hi) = self
            .entries
            .windows(2)
            .find(|w| w[0].speed < speed && speed < w[1].speed)
            .map(|w| (w[0], w[1]))
            .expect("speed is inside the table range");
        let t = (speed - lo.speed) / (hi.speed - lo.speed);
        Ok(lo.power + (hi.power - lo.power) * t)
    }

    /// Applies the paper's extrapolation rule `P(2B) = P(B)²/P(B/2)` to the
    /// *datasheet* prefix of this table and returns the values it predicts
    /// for the extrapolated speeds. Used by tests and the ablation bench to
    /// document how closely the rule matches the published starred values.
    pub fn recompute_extrapolated(&self) -> Vec<SpeedPowerEntry> {
        let datasheet: Vec<SpeedPowerEntry> = self
            .entries
            .iter()
            .copied()
            .take_while(|e| e.provenance == Provenance::Datasheet)
            .collect();
        let mut out = Vec::new();
        if datasheet.len() < 2 {
            return out;
        }
        let mut prev = datasheet[datasheet.len() - 2];
        let mut last = datasheet[datasheet.len() - 1];
        for e in &self.entries[datasheet.len()..] {
            let ratio = last.power / prev.power;
            let predicted = SpeedPowerEntry {
                speed: last.speed * 2.0,
                power: last.power * ratio,
                provenance: Provenance::LibraryExtrapolated,
            };
            debug_assert_eq!(predicted.speed, e.speed);
            out.push(predicted);
            prev = last;
            last = predicted;
        }
        out
    }
}

impl PartialEq for SpeedPowerTable {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

/// Default kind used when a table is deserialized (the kind is purely
/// diagnostic, so losing it across serialization is acceptable).
fn default_kind() -> &'static str {
    "device"
}

/// Shorthand for building a table entry.
fn entry(gbps: f64, watts: f64, provenance: Provenance) -> SpeedPowerEntry {
    SpeedPowerEntry {
        speed: Gbps::new(gbps),
        power: Watts::new(watts),
        provenance,
    }
}

/// The full device database of the paper, with default proportionalities
/// attached (85 % compute, 10 % network).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceDb {
    nics: SpeedPowerTable,
    transceivers: SpeedPowerTable,
    /// Proportionality applied to compute devices.
    pub compute_proportionality: Proportionality,
    /// Proportionality applied to network devices (the what-if knob).
    pub network_proportionality: Proportionality,
    /// Max power of one switch (defaults to Table 1's 750 W; exposed for
    /// sensitivity analysis).
    #[serde(default = "default_switch_max")]
    pub switch_max: Watts,
    /// Max power of one GPU incl. server share (defaults to §2.3.1's
    /// 500 W; exposed for sensitivity analysis).
    #[serde(default = "default_gpu_max")]
    pub gpu_max: Watts,
    /// Scale factor applied to every NIC and transceiver power (1.0 =
    /// Table 2 as published; exposed for sensitivity analysis).
    #[serde(default = "default_unit_scale")]
    pub interface_power_scale: f64,
}

fn default_switch_max() -> Watts {
    SWITCH_51T2_MAX
}

fn default_gpu_max() -> Watts {
    GPU_WITH_SERVER_MAX
}

fn default_unit_scale() -> f64 {
    1.0
}

impl Default for DeviceDb {
    fn default() -> Self {
        Self::paper_baseline()
    }
}

impl DeviceDb {
    /// The database exactly as the paper configures it (§2.3).
    pub fn paper_baseline() -> Self {
        Self {
            nics: SpeedPowerTable::nic_connectx7(),
            transceivers: SpeedPowerTable::transceiver_optical(),
            compute_proportionality: Proportionality::COMPUTE,
            network_proportionality: Proportionality::NETWORK_BASELINE,
            switch_max: SWITCH_51T2_MAX,
            gpu_max: GPU_WITH_SERVER_MAX,
            interface_power_scale: 1.0,
        }
    }

    /// Same database with a different network proportionality — the paper's
    /// central what-if question.
    pub fn with_network_proportionality(mut self, p: Proportionality) -> Self {
        self.network_proportionality = p;
        self
    }

    /// Two-state model of one GPU including its server share (500 W / 75 W
    /// by default).
    pub fn gpu(&self) -> TwoStatePower {
        TwoStatePower::new(self.gpu_max, self.compute_proportionality)
    }

    /// Two-state model of one 51.2 Tbps switch (750 W by default).
    pub fn switch(&self) -> TwoStatePower {
        TwoStatePower::new(self.switch_max, self.network_proportionality)
    }

    /// Two-state model of one NIC at the given interface speed.
    ///
    /// # Errors
    ///
    /// Propagates [`PowerError::UnknownDeviceSpeed`] for speeds outside the
    /// extended table.
    pub fn nic(&self, speed: Gbps) -> Result<TwoStatePower> {
        Ok(TwoStatePower::new(
            self.nics.power_extrapolated(speed)? * self.interface_power_scale,
            self.network_proportionality,
        ))
    }

    /// Two-state model of one optical transceiver at the given speed.
    ///
    /// # Errors
    ///
    /// Propagates [`PowerError::UnknownDeviceSpeed`].
    pub fn transceiver(&self, speed: Gbps) -> Result<TwoStatePower> {
        Ok(TwoStatePower::new(
            self.transceivers.power_extrapolated(speed)? * self.interface_power_scale,
            self.network_proportionality,
        ))
    }

    /// The raw NIC table (Table 2, row 1).
    pub fn nic_table(&self) -> &SpeedPowerTable {
        &self.nics
    }

    /// The raw transceiver table (Table 2, row 2).
    pub fn transceiver_table(&self) -> &SpeedPowerTable {
        &self.transceivers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PowerModel;

    #[test]
    fn table1_values() {
        assert_eq!(H100_NVL_MAX, Watts::new(400.0));
        assert_eq!(SWITCH_51T2_MAX, Watts::new(750.0));
        assert_eq!(GPU_WITH_SERVER_MAX, Watts::new(500.0));
        assert_eq!(GPU_WITH_SERVER_IDLE, Watts::new(75.0));
        // 500 = 400 + 800/8 exactly.
        assert_eq!(
            GPU_WITH_SERVER_MAX,
            H100_NVL_MAX + SERVER_OVERHEAD / GPUS_PER_SERVER as f64
        );
    }

    #[test]
    fn table2_nic_values() {
        let t = SpeedPowerTable::nic_connectx7();
        for (s, w) in [
            (100.0, 8.6),
            (200.0, 16.7),
            (400.0, 25.4),
            (800.0, 38.6),
            (1600.0, 58.8),
        ] {
            assert_eq!(t.power(Gbps::new(s)).unwrap(), Watts::new(w));
        }
    }

    #[test]
    fn table2_transceiver_values() {
        let t = SpeedPowerTable::transceiver_optical();
        for (s, w) in [
            (100.0, 4.0),
            (200.0, 6.5),
            (400.0, 10.0),
            (800.0, 16.5),
            (1600.0, 27.27),
        ] {
            assert_eq!(t.power(Gbps::new(s)).unwrap(), Watts::new(w));
        }
    }

    #[test]
    fn extrapolation_rule_reproduces_starred_nic_values() {
        // P(800) = 25.4²/16.7 = 38.63…, P(1600) = P(800)²/25.4 = 58.76…;
        // the paper rounds these to 38.6 and 58.8.
        let predicted = SpeedPowerTable::nic_connectx7().recompute_extrapolated();
        assert_eq!(predicted.len(), 2);
        assert!((predicted[0].power.value() - 38.6).abs() < 0.05);
        assert!((predicted[1].power.value() - 58.8).abs() < 0.1);
    }

    #[test]
    fn extrapolation_rule_close_to_starred_transceiver_value() {
        // 16.5²/10 = 27.225 vs the paper's 27.27 (0.2 % difference,
        // attributable to the paper extrapolating from unrounded inputs).
        let predicted = SpeedPowerTable::transceiver_optical().recompute_extrapolated();
        assert_eq!(predicted.len(), 1);
        assert!((predicted[0].power.value() - 27.27).abs() < 0.06);
    }

    #[test]
    fn unknown_speed_is_an_error() {
        let t = SpeedPowerTable::nic_connectx7();
        assert!(matches!(
            t.power(Gbps::new(50.0)),
            Err(PowerError::UnknownDeviceSpeed { kind: "NIC", .. })
        ));
        // Below the table: no extrapolation downward.
        assert!(t.power_extrapolated(Gbps::new(50.0)).is_err());
        // Not a power-of-two multiple of the last entry.
        assert!(t.power_extrapolated(Gbps::new(3000.0)).is_err());
    }

    #[test]
    fn extended_table_continues_geometrically() {
        let t = SpeedPowerTable::nic_connectx7();
        let p3200 = t.power_extrapolated(Gbps::new(3200.0)).unwrap();
        let ratio = 58.8 / 38.6;
        assert!((p3200.value() - 58.8 * ratio).abs() < 1e-9);
    }

    #[test]
    fn bracketed_speed_interpolates_linearly() {
        let t = SpeedPowerTable::nic_connectx7();
        let p = t.power_extrapolated(Gbps::new(300.0)).unwrap();
        assert!((p.value() - (16.7 + 25.4) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn device_db_models() {
        let db = DeviceDb::paper_baseline();
        assert_eq!(db.gpu().max_power(), Watts::new(500.0));
        assert!(db.gpu().idle_power().approx_eq(Watts::new(75.0), 1e-9));
        assert_eq!(db.switch().idle_power(), Watts::new(675.0));
        let nic = db.nic(Gbps::new(400.0)).unwrap();
        assert_eq!(nic.max_power(), Watts::new(25.4));
        let xcvr = db.transceiver(Gbps::new(800.0)).unwrap();
        assert_eq!(xcvr.max_power(), Watts::new(16.5));
    }

    #[test]
    fn what_if_knob_propagates() {
        let db = DeviceDb::paper_baseline().with_network_proportionality(Proportionality::PERFECT);
        assert_eq!(db.switch().idle_power(), Watts::ZERO);
        assert_eq!(db.nic(Gbps::new(400.0)).unwrap().idle_power(), Watts::ZERO);
        // Compute side is untouched.
        assert!(db.gpu().idle_power().approx_eq(Watts::new(75.0), 1e-9));
    }
}
