//! Power-supply efficiency: the wall-side view of proportionality.
//!
//! Device power models describe DC draw; the facility pays for AC. PSU
//! efficiency is load-dependent and *worst at low load* — which is
//! exactly where power-proportional devices spend their time. This
//! module converts DC draw to wall power through an 80-PLUS-style
//! efficiency curve, quantifying the §3.2 aside that savings ripple
//! through the power-delivery chain (and slightly erode at the wall if
//! PSUs are oversized).

use serde::{Deserialize, Serialize};

use npp_units::{Ratio, Watts};

use crate::{PowerError, Proportionality, Result};

/// A PSU with a piecewise-linear efficiency curve over load fraction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PsuModel {
    /// Rated (maximum) DC output.
    pub rated: Watts,
    /// `(load fraction of rated, efficiency)` points, ascending in load.
    /// Efficiency below the first point falls off linearly toward
    /// `efficiency_at_zero`.
    pub curve: Vec<(f64, f64)>,
    /// Efficiency as the load approaches zero (fans/standby overhead
    /// dominate; typically very poor).
    pub efficiency_at_zero: f64,
}

impl PsuModel {
    /// An 80 PLUS Platinum supply: 89 % at 10 % load, 92/94/91 % at
    /// 20/50/100 %, collapsing toward 50 % near zero load.
    pub fn eighty_plus_platinum(rated: Watts) -> Self {
        Self {
            rated,
            curve: vec![(0.10, 0.89), (0.20, 0.92), (0.50, 0.94), (1.00, 0.91)],
            efficiency_at_zero: 0.50,
        }
    }

    /// Efficiency at a DC output level.
    ///
    /// # Errors
    ///
    /// Rejects negative loads and loads beyond the rating.
    pub fn efficiency(&self, dc: Watts) -> Result<Ratio> {
        if dc.value() < 0.0 || dc > self.rated {
            return Err(PowerError::InvalidPower(dc.value()));
        }
        let load = dc / self.rated;
        let (first_l, first_e) = self.curve.first().copied().unwrap_or((1.0, 1.0));
        if load <= first_l {
            // Linear from (0, eff0) to the first curve point.
            let t = if first_l > 0.0 { load / first_l } else { 1.0 };
            return Ok(Ratio::new(
                self.efficiency_at_zero + (first_e - self.efficiency_at_zero) * t,
            ));
        }
        for w in self.curve.windows(2) {
            let &[(l0, e0), (l1, e1)] = w else { continue };
            if load <= l1 {
                let t = (load - l0) / (l1 - l0);
                return Ok(Ratio::new(e0 + (e1 - e0) * t));
            }
        }
        Ok(Ratio::new(
            self.curve.last().map(|&(_, e)| e).unwrap_or(1.0),
        ))
    }

    /// AC (wall) power drawn to deliver `dc` at the output.
    ///
    /// # Errors
    ///
    /// Propagates load-range errors.
    pub fn wall_power(&self, dc: Watts) -> Result<Watts> {
        if dc.value() == 0.0 {
            return Ok(Watts::ZERO);
        }
        let eff = self.efficiency(dc)?;
        Ok(dc / eff.fraction())
    }

    /// The proportionality observed *at the wall* for a device with the
    /// given DC idle/max draws behind this PSU: low-load inefficiency
    /// inflates the idle wall power, eroding the device's proportionality.
    ///
    /// # Errors
    ///
    /// Propagates load-range errors.
    pub fn wall_proportionality(&self, idle: Watts, max: Watts) -> Result<Proportionality> {
        Proportionality::from_idle_max(self.wall_power(idle)?, self.wall_power(max)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn psu() -> PsuModel {
        PsuModel::eighty_plus_platinum(Watts::new(1000.0))
    }

    #[test]
    fn curve_points_interpolate() {
        let p = psu();
        assert!(p
            .efficiency(Watts::new(100.0))
            .unwrap()
            .approx_eq(Ratio::new(0.89), 1e-12));
        assert!(p
            .efficiency(Watts::new(500.0))
            .unwrap()
            .approx_eq(Ratio::new(0.94), 1e-12));
        assert!(p
            .efficiency(Watts::new(1000.0))
            .unwrap()
            .approx_eq(Ratio::new(0.91), 1e-12));
        // Midpoint of the 20–50% segment.
        let mid = p.efficiency(Watts::new(350.0)).unwrap();
        assert!(mid.approx_eq(Ratio::new(0.93), 1e-12), "{mid}");
    }

    #[test]
    fn efficiency_collapses_toward_zero_load() {
        let p = psu();
        let tiny = p.efficiency(Watts::new(10.0)).unwrap();
        assert!(tiny.fraction() < 0.6, "tiny-load efficiency {tiny}");
        assert!(p
            .efficiency(Watts::ZERO)
            .unwrap()
            .approx_eq(Ratio::new(0.5), 1e-12));
    }

    #[test]
    fn wall_power_exceeds_dc_power() {
        let p = psu();
        for dc in [50.0, 100.0, 500.0, 1000.0] {
            let wall = p.wall_power(Watts::new(dc)).unwrap();
            assert!(wall.value() > dc, "dc {dc} → wall {wall}");
        }
        assert_eq!(p.wall_power(Watts::ZERO).unwrap(), Watts::ZERO);
    }

    #[test]
    fn psu_erodes_proportionality_at_the_wall() {
        // A 750 W switch made 85% proportional (idle 112.5 W) behind a
        // 1 kW PSU: the idle point sits in the inefficient low-load
        // region, so the wall-side proportionality is worse than 85%.
        let p = psu();
        let device = Proportionality::COMPUTE; // 85%
        let idle = device.idle_power(Watts::new(750.0));
        let wall = p.wall_proportionality(idle, Watts::new(750.0)).unwrap();
        assert!(
            wall.fraction() < device.fraction(),
            "wall {wall} should be below device {device}"
        );
        // But the erosion is bounded (a few points, not a collapse).
        assert!(wall.fraction() > 0.80, "wall {wall}");
    }

    #[test]
    fn out_of_range_loads_rejected() {
        let p = psu();
        assert!(p.efficiency(Watts::new(-1.0)).is_err());
        assert!(p.efficiency(Watts::new(1001.0)).is_err());
        assert!(p.wall_power(Watts::new(2000.0)).is_err());
    }

    #[test]
    fn right_sized_psu_erodes_less() {
        // The fix: size the PSU to the device. A 750 W-rated PSU keeps
        // the idle point at 15% load instead of 11%.
        let big = PsuModel::eighty_plus_platinum(Watts::new(2000.0));
        let right = PsuModel::eighty_plus_platinum(Watts::new(800.0));
        let idle = Watts::new(112.5);
        let max = Watts::new(750.0);
        let p_big = big.wall_proportionality(idle, max).unwrap();
        let p_right = right.wall_proportionality(idle, max).unwrap();
        assert!(p_right.fraction() > p_big.fraction());
    }
}
