//! Energy accounting over piecewise-constant power profiles, and the
//! energy-efficiency metric of §3.1.

use serde::{Deserialize, Serialize};

use npp_units::{Joules, Ratio, Seconds, Watts};

/// One piecewise-constant segment of a power profile.
///
/// `useful` is the portion of the draw that performs work: for the paper's
/// efficiency metric, a device that is busy contributes its full (max)
/// power as useful, and an idle device contributes zero — so the network's
/// efficiency over an iteration is
/// `max · t_comm / (idle · t_comp + max · t_comm)`, which evaluates to the
/// paper's "appallingly low" 11 % for the baseline cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerSegment {
    /// Human-readable label ("computation", "communication", …).
    pub label: String,
    /// Length of the segment.
    pub duration: Seconds,
    /// Actual power drawn during the segment.
    pub power: Watts,
    /// Power that performs useful work during the segment.
    pub useful: Watts,
}

impl PowerSegment {
    /// Creates a segment where the entire draw is useful (busy device).
    pub fn busy(label: impl Into<String>, duration: Seconds, power: Watts) -> Self {
        Self {
            label: label.into(),
            duration,
            power,
            useful: power,
        }
    }

    /// Creates a segment where none of the draw is useful (idle device).
    pub fn idle(label: impl Into<String>, duration: Seconds, power: Watts) -> Self {
        Self {
            label: label.into(),
            duration,
            power,
            useful: Watts::ZERO,
        }
    }

    /// Energy consumed in this segment.
    pub fn energy(&self) -> Joules {
        self.power * self.duration
    }

    /// Useful energy in this segment.
    pub fn useful_energy(&self) -> Joules {
        self.useful * self.duration
    }
}

/// A piecewise-constant power profile: an ordered list of segments.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PowerProfile {
    segments: Vec<PowerSegment>,
}

impl PowerProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a segment.
    pub fn push(&mut self, segment: PowerSegment) {
        self.segments.push(segment);
    }

    /// Builder-style [`PowerProfile::push`].
    pub fn with(mut self, segment: PowerSegment) -> Self {
        self.push(segment);
        self
    }

    /// The segments in order.
    pub fn segments(&self) -> &[PowerSegment] {
        &self.segments
    }

    /// Total duration across all segments.
    pub fn total_time(&self) -> Seconds {
        self.segments.iter().map(|s| s.duration).sum()
    }

    /// Total energy consumed.
    pub fn energy(&self) -> Joules {
        self.segments.iter().map(|s| s.energy()).sum()
    }

    /// Total useful energy.
    pub fn useful_energy(&self) -> Joules {
        self.segments.iter().map(|s| s.useful_energy()).sum()
    }

    /// Time-averaged power over the whole profile.
    ///
    /// Returns zero power for an empty profile.
    pub fn average_power(&self) -> Watts {
        let t = self.total_time();
        if t.value() <= 0.0 {
            return Watts::ZERO;
        }
        self.energy() / t
    }

    /// Energy efficiency: useful energy divided by consumed energy (§3.1).
    ///
    /// Returns zero for a profile that consumed no energy.
    pub fn efficiency(&self) -> Ratio {
        let consumed = self.energy();
        if consumed.value() <= 0.0 {
            return Ratio::ZERO;
        }
        Ratio::new(self.useful_energy() / consumed)
    }

    /// Scales every segment's duration by `factor` (used when repeating an
    /// iteration profile over a training run).
    pub fn scale_time(&self, factor: f64) -> Self {
        Self {
            segments: self
                .segments
                .iter()
                .map(|s| PowerSegment {
                    label: s.label.clone(),
                    duration: s.duration * factor,
                    power: s.power,
                    useful: s.useful,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The baseline network profile of §3.1: idle for 90 % of the
    /// iteration at 90 % of max power, busy for 10 % at max power.
    fn network_iteration(max: Watts) -> PowerProfile {
        PowerProfile::new()
            .with(PowerSegment::idle(
                "computation",
                Seconds::new(0.9),
                max * 0.9,
            ))
            .with(PowerSegment::busy("communication", Seconds::new(0.1), max))
    }

    #[test]
    fn paper_network_efficiency_is_11_percent() {
        let profile = network_iteration(Watts::new(1000.0));
        // useful = 0.1·1000; consumed = 0.9·900 + 0.1·1000 = 910.
        let eff = profile.efficiency();
        assert!(eff.approx_eq(Ratio::new(100.0 / 910.0), 1e-12));
        assert!((eff.percent() - 11.0).abs() < 0.05);
    }

    #[test]
    fn average_power_time_weighted() {
        let profile = network_iteration(Watts::new(1000.0));
        assert!(profile.average_power().approx_eq(Watts::new(910.0), 1e-9));
        assert_eq!(profile.total_time(), Seconds::new(1.0));
    }

    #[test]
    fn empty_profile_is_safe() {
        let p = PowerProfile::new();
        assert_eq!(p.average_power(), Watts::ZERO);
        assert_eq!(p.efficiency(), Ratio::ZERO);
        assert_eq!(p.energy(), Joules::ZERO);
    }

    #[test]
    fn scale_time_preserves_average_power_and_efficiency() {
        let p = network_iteration(Watts::new(1000.0));
        let scaled = p.scale_time(1000.0);
        assert!(scaled.average_power().approx_eq(p.average_power(), 1e-9));
        assert!(scaled.efficiency().approx_eq(p.efficiency(), 1e-12));
        assert!(scaled.total_time().approx_eq(Seconds::new(1000.0), 1e-9));
    }

    #[test]
    fn busy_idle_constructors() {
        let b = PowerSegment::busy("x", Seconds::new(1.0), Watts::new(5.0));
        assert_eq!(b.useful, Watts::new(5.0));
        let i = PowerSegment::idle("x", Seconds::new(1.0), Watts::new(5.0));
        assert_eq!(i.useful, Watts::ZERO);
        assert_eq!(i.energy(), Joules::new(5.0));
        assert_eq!(i.useful_energy(), Joules::ZERO);
    }
}
