//! Whole-line progress reporting for executor/CLI layers.
//!
//! Replaces ad-hoc `eprint!("\r...")` updates, which interleave garbled
//! when several sweep workers report at once: every progress line goes
//! through one mutex and is written as a complete line, and a process-wide
//! quiet flag silences them (`--quiet`).

use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError};

static QUIET: AtomicBool = AtomicBool::new(false);
static WRITER: Mutex<()> = Mutex::new(());

/// Set the process-wide quiet flag (progress lines are dropped while set).
pub fn set_quiet(quiet: bool) {
    QUIET.store(quiet, Ordering::Relaxed);
}

/// Current quiet flag.
pub fn is_quiet() -> bool {
    QUIET.load(Ordering::Relaxed)
}

/// Emit one complete progress line to stderr (atomic with respect to other
/// `emit` callers; silently dropped when quiet).
pub fn emit(line: &str) {
    if is_quiet() {
        return;
    }
    let _g = WRITER.lock().unwrap_or_else(PoisonError::into_inner);
    let mut err = std::io::stderr().lock();
    let _ = writeln!(err, "{line}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_flag_round_trips() {
        set_quiet(true);
        assert!(is_quiet());
        emit("this line is suppressed");
        set_quiet(false);
        assert!(!is_quiet());
    }
}
