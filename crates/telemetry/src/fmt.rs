//! Byte-stable formatting primitives shared by every deterministic
//! document renderer in the workspace (`npp.trace/v1`, `npp.power/v1`,
//! the Prometheus exposition).
//!
//! The rules are deliberately tiny: integers render through a manual
//! digit loop, floats render as integers when integral (and via Rust's
//! shortest round-trip `Display` otherwise), and strings escape only
//! what JSON requires. Nothing here consults locale, platform, or
//! allocator state, so output is identical across runs, thread counts,
//! and machines.

/// Appends `v` in decimal.
pub fn push_u64(out: &mut String, v: u64) {
    let mut digits = [0u8; 20];
    let mut len = 0usize;
    let mut v = v;
    loop {
        if let Some(slot) = digits.get_mut(len) {
            *slot = b'0' + (v % 10) as u8;
        }
        len += 1;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    for slot in digits.iter().take(len).rev() {
        out.push(*slot as char);
    }
}

/// Appends `v` as exactly 16 lowercase hex digits (scope/seed identity).
pub fn push_hex16(out: &mut String, v: u64) {
    for shift in (0..16).rev() {
        let nibble = ((v >> (shift * 4)) & 0xF) as u32;
        let ch = char::from_digit(nibble, 16).unwrap_or('0');
        out.push(ch);
    }
}

/// Byte-stable float formatting: integral finite values print as integers,
/// everything else via Rust's shortest round-trip `Display` (deterministic
/// across runs and platforms). NaN/inf are not valid JSON; clamp to 0.
pub fn push_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push('0');
    } else if v == v.trunc() && v.abs() < 9.0e15 {
        if v < 0.0 {
            out.push('-');
        }
        push_u64(out, v.abs() as u64);
    } else {
        let mut s = String::new();
        {
            use std::fmt::Write as _;
            let _ = write!(s, "{v}");
        }
        out.push_str(&s);
    }
}

/// Appends `s` with JSON string escaping (quotes, backslash, control).
pub fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u00");
                let hi = char::from_digit((c as u32) >> 4, 16).unwrap_or('0');
                let lo = char::from_digit((c as u32) & 0xF, 16).unwrap_or('0');
                out.push(hi);
                out.push(lo);
            }
            c => out.push(c),
        }
    }
}
