//! Global metrics registry: counters, gauges, and fixed-bucket histograms.
//!
//! Keys are `&'static str` and the backing store is a `BTreeMap`, so
//! snapshots iterate in sorted key order — no floats are ever reduced over
//! hash iteration (npp-lint rule D3 stays structurally satisfied).
//! Histograms use fixed power-of-two buckets over `u64` values (bucket `i`
//! counts values with bit-length `i`), so merging and rendering are exact
//! integer operations.
//!
//! All mutation entry points are no-ops unless recording is active (see
//! [`crate::enabled`]) or the registry has been switched on independently
//! with [`set_standalone`]; without the `trace` cargo feature they compile
//! to nothing. The standalone switch exists for long-running services
//! (`netpp serve`): trace recording accumulates records in memory for the
//! lifetime of the run, which a daemon must not do, while the metrics
//! registry is bounded (one slot per metric name) and safe to leave on
//! forever.

/// Number of histogram buckets: one per possible bit-length of a `u64`
/// value (0 for value 0, 64 for values >= 2^63).
pub const HIST_BUCKETS: usize = 65;

/// A rendered metric value inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic counter.
    Counter(u64),
    /// Last-write or high-water gauge.
    Gauge(f64),
    /// Fixed-bucket histogram summary.
    Histogram(HistogramSummary),
}

/// Exact summary of a fixed-bucket histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values (saturating).
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Non-empty buckets as `(upper_bound_exclusive, count)` pairs, in
    /// ascending bound order. The last bucket's bound saturates at
    /// `u64::MAX`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSummary {
    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A point-in-time copy of the registry, sorted by metric name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` pairs in ascending name order.
    pub entries: Vec<(String, MetricValue)>,
}

impl Snapshot {
    /// Look up one metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Counter value by name (None if absent or not a counter).
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Gauge value by name (None if absent or not a gauge).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Human-readable rendering, one metric per line.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.entries {
            out.push_str("  ");
            out.push_str(name);
            match value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!(" = {v}\n"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!(" = {v}\n"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        " : count={} sum={} min={} max={} mean={:.1}\n",
                        h.count,
                        h.sum,
                        h.min,
                        h.max,
                        h.mean()
                    ));
                }
            }
        }
        out
    }

    /// Byte-stable JSON rendering (sorted keys, exact integers).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":"));
            match value {
                MetricValue::Counter(v) => out.push_str(&format!("{v}")),
                MetricValue::Gauge(v) => {
                    if v.is_finite() {
                        out.push_str(&format!("{v}"));
                    } else {
                        out.push('0');
                    }
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                        h.count, h.sum, h.min, h.max
                    ));
                    for (j, (bound, n)) in h.buckets.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!("[{bound},{n}]"));
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push('}');
        out
    }

    /// Histogram summary by name (None if absent or not a histogram).
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        match self.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Prometheus text-format exposition (content type
    /// `text/plain; version=0.0.4`).
    ///
    /// Metric names are sanitized to `[a-z0-9_]` with an `npp_` prefix;
    /// histograms render cumulative `_bucket{le="..."}` series plus `_sum`
    /// and `_count`, matching the classic Prometheus histogram contract.
    /// Output is byte-stable: entries are already name-sorted and every
    /// number goes through the workspace's deterministic formatters.
    pub fn to_prometheus(&self) -> String {
        use crate::fmt::{push_f64, push_u64};
        let mut out = String::with_capacity(64 + self.entries.len() * 96);
        for (name, value) in &self.entries {
            let prom = prometheus_name(name);
            match value {
                MetricValue::Counter(v) => {
                    out.push_str("# TYPE ");
                    out.push_str(&prom);
                    out.push_str(" counter\n");
                    out.push_str(&prom);
                    out.push(' ');
                    push_u64(&mut out, *v);
                    out.push('\n');
                }
                MetricValue::Gauge(v) => {
                    out.push_str("# TYPE ");
                    out.push_str(&prom);
                    out.push_str(" gauge\n");
                    out.push_str(&prom);
                    out.push(' ');
                    push_f64(&mut out, *v);
                    out.push('\n');
                }
                MetricValue::Histogram(h) => {
                    out.push_str("# TYPE ");
                    out.push_str(&prom);
                    out.push_str(" histogram\n");
                    let mut cumulative = 0u64;
                    for (bound, n) in &h.buckets {
                        cumulative += n;
                        out.push_str(&prom);
                        out.push_str("_bucket{le=\"");
                        if *bound == u64::MAX {
                            out.push_str("+Inf");
                        } else {
                            push_u64(&mut out, *bound);
                        }
                        out.push_str("\"} ");
                        push_u64(&mut out, cumulative);
                        out.push('\n');
                    }
                    if h.buckets.last().map(|(b, _)| *b) != Some(u64::MAX) {
                        out.push_str(&prom);
                        out.push_str("_bucket{le=\"+Inf\"} ");
                        push_u64(&mut out, h.count);
                        out.push('\n');
                    }
                    out.push_str(&prom);
                    out.push_str("_sum ");
                    push_u64(&mut out, h.sum);
                    out.push('\n');
                    out.push_str(&prom);
                    out.push_str("_count ");
                    push_u64(&mut out, h.count);
                    out.push('\n');
                }
            }
        }
        out
    }
}

/// Maps a registry key (dotted, e.g. `serve.request_ns.sweep`) onto a valid
/// Prometheus metric name: `npp_` prefix, `[a-zA-Z0-9_]` body, everything
/// else folded to `_`.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(4 + name.len());
    out.push_str("npp_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

#[cfg(feature = "trace")]
mod imp {
    use super::{HistogramSummary, MetricValue, Snapshot, HIST_BUCKETS};
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Mutex, MutexGuard, PoisonError};

    static STANDALONE: AtomicBool = AtomicBool::new(false);

    pub(super) fn set_standalone(on: bool) {
        STANDALONE.store(on, Ordering::Relaxed);
    }

    pub(super) fn standalone() -> bool {
        STANDALONE.load(Ordering::Relaxed)
    }

    #[derive(Debug, Clone)]
    enum Metric {
        Counter(u64),
        Gauge(f64),
        Hist(Hist),
    }

    #[derive(Debug, Clone)]
    struct Hist {
        counts: Vec<u64>,
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
    }

    impl Hist {
        fn new() -> Self {
            Hist {
                counts: vec![0; HIST_BUCKETS],
                count: 0,
                sum: 0,
                min: u64::MAX,
                max: 0,
            }
        }

        fn observe(&mut self, v: u64) {
            let idx = (64 - v.leading_zeros()) as usize;
            if let Some(slot) = self.counts.get_mut(idx) {
                *slot += 1;
            }
            self.count += 1;
            self.sum = self.sum.saturating_add(v);
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }

        fn summary(&self) -> HistogramSummary {
            let buckets = self
                .counts
                .iter()
                .enumerate()
                .filter(|(_, n)| **n > 0)
                .map(|(i, n)| {
                    let bound = if i >= 64 { u64::MAX } else { 1u64 << i };
                    (bound, *n)
                })
                .collect();
            HistogramSummary {
                count: self.count,
                sum: self.sum,
                min: if self.count == 0 { 0 } else { self.min },
                max: self.max,
                buckets,
            }
        }
    }

    static REGISTRY: Mutex<BTreeMap<&'static str, Metric>> = Mutex::new(BTreeMap::new());

    fn reg() -> MutexGuard<'static, BTreeMap<&'static str, Metric>> {
        REGISTRY.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub(super) fn counter_add(name: &'static str, delta: u64) {
        if let Metric::Counter(v) = reg().entry(name).or_insert(Metric::Counter(0)) {
            *v += delta;
        }
    }

    pub(super) fn gauge_set(name: &'static str, value: f64) {
        reg().insert(name, Metric::Gauge(value));
    }

    pub(super) fn gauge_max(name: &'static str, value: f64) {
        if let Metric::Gauge(v) = reg().entry(name).or_insert(Metric::Gauge(value)) {
            if value > *v {
                *v = value;
            }
        }
    }

    pub(super) fn observe(name: &'static str, value: u64) {
        if let Metric::Hist(h) = reg()
            .entry(name)
            .or_insert_with(|| Metric::Hist(Hist::new()))
        {
            h.observe(value);
        }
    }

    pub(super) fn reset() {
        reg().clear();
    }

    pub(super) fn snapshot() -> Snapshot {
        let entries = reg()
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(v) => MetricValue::Counter(*v),
                    Metric::Gauge(v) => MetricValue::Gauge(*v),
                    Metric::Hist(h) => MetricValue::Histogram(h.summary()),
                };
                ((*name).to_string(), value)
            })
            .collect();
        Snapshot { entries }
    }
}

/// Switch the registry on (or off) independently of trace recording.
///
/// Intended for long-running services: bounded metrics stay live without
/// the unbounded trace sink. No-op without the `trace` feature.
pub fn set_standalone(on: bool) {
    #[cfg(feature = "trace")]
    imp::set_standalone(on);
    #[cfg(not(feature = "trace"))]
    {
        let _ = on;
    }
}

/// `true` when the registry accepts writes (recording active or the
/// standalone switch is on).
pub fn active() -> bool {
    #[cfg(feature = "trace")]
    {
        crate::enabled() || imp::standalone()
    }
    #[cfg(not(feature = "trace"))]
    {
        false
    }
}

/// Add `delta` to the named counter. No-op when the registry is inactive.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    #[cfg(feature = "trace")]
    if active() {
        imp::counter_add(name, delta);
    }
    #[cfg(not(feature = "trace"))]
    {
        let _ = (name, delta);
    }
}

/// Set the named gauge. No-op when the registry is inactive.
#[inline]
pub fn gauge_set(name: &'static str, value: f64) {
    #[cfg(feature = "trace")]
    if active() {
        imp::gauge_set(name, value);
    }
    #[cfg(not(feature = "trace"))]
    {
        let _ = (name, value);
    }
}

/// Raise the named gauge to `value` if larger (high-water mark). No-op when
/// the registry is inactive.
#[inline]
pub fn gauge_max(name: &'static str, value: f64) {
    #[cfg(feature = "trace")]
    if active() {
        imp::gauge_max(name, value);
    }
    #[cfg(not(feature = "trace"))]
    {
        let _ = (name, value);
    }
}

/// Record one observation into the named fixed-bucket histogram. No-op when
/// the registry is inactive.
#[inline]
pub fn observe(name: &'static str, value: u64) {
    #[cfg(feature = "trace")]
    if active() {
        imp::observe(name, value);
    }
    #[cfg(not(feature = "trace"))]
    {
        let _ = (name, value);
    }
}

/// Clear the registry (called by [`crate::start`]).
pub fn reset() {
    #[cfg(feature = "trace")]
    imp::reset();
}

/// Copy the registry out, sorted by name. Empty without the `trace` feature.
pub fn snapshot() -> Snapshot {
    #[cfg(feature = "trace")]
    {
        imp::snapshot()
    }
    #[cfg(not(feature = "trace"))]
    {
        Snapshot::default()
    }
}

#[cfg(test)]
mod prometheus_tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            entries: vec![
                ("cache.hits".to_string(), MetricValue::Counter(12)),
                ("rss.peak".to_string(), MetricValue::Gauge(1.5)),
                (
                    "serve.request_ns.sweep".to_string(),
                    MetricValue::Histogram(HistogramSummary {
                        count: 3,
                        sum: 1031,
                        min: 0,
                        max: 1024,
                        buckets: vec![(1, 1), (8, 1), (2048, 1)],
                    }),
                ),
            ],
        }
    }

    #[test]
    fn exposition_renders_all_metric_kinds() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE npp_cache_hits counter\nnpp_cache_hits 12\n"));
        assert!(text.contains("# TYPE npp_rss_peak gauge\nnpp_rss_peak 1.5\n"));
        // Buckets are cumulative and always end with +Inf.
        assert!(text.contains("npp_serve_request_ns_sweep_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("npp_serve_request_ns_sweep_bucket{le=\"8\"} 2\n"));
        assert!(text.contains("npp_serve_request_ns_sweep_bucket{le=\"2048\"} 3\n"));
        assert!(text.contains("npp_serve_request_ns_sweep_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("npp_serve_request_ns_sweep_sum 1031\n"));
        assert!(text.contains("npp_serve_request_ns_sweep_count 3\n"));
    }

    #[test]
    fn name_sanitizer_folds_non_identifier_chars() {
        assert_eq!(prometheus_name("a.b-c/d"), "npp_a_b_c_d");
    }

    #[test]
    fn histogram_accessor_distinguishes_kinds() {
        let snap = sample();
        assert!(snap.histogram("serve.request_ns.sweep").is_some());
        assert!(snap.histogram("cache.hits").is_none());
    }
}

#[cfg(all(test, feature = "trace"))]
mod tests {
    use super::*;
    use std::sync::Mutex;

    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn with_recording<R>(f: impl FnOnce() -> R) -> R {
        let _g = TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        crate::start();
        let r = f();
        let _ = crate::finish();
        r
    }

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let snap = with_recording(|| {
            counter_add("z.counter", 2);
            counter_add("z.counter", 3);
            gauge_set("a.gauge", 1.25);
            gauge_max("a.high", 10.0);
            gauge_max("a.high", 4.0);
            observe("m.hist", 0);
            observe("m.hist", 7);
            observe("m.hist", 1024);
            snapshot()
        });
        // Sorted by name: a.gauge, a.high, m.hist, z.counter.
        let names: Vec<&str> = snap.entries.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a.gauge", "a.high", "m.hist", "z.counter"]);
        assert_eq!(snap.counter("z.counter"), Some(5));
        assert_eq!(snap.gauge("a.high"), Some(10.0));
        match snap.get("m.hist") {
            Some(MetricValue::Histogram(h)) => {
                assert_eq!(h.count, 3);
                assert_eq!(h.sum, 1031);
                assert_eq!((h.min, h.max), (0, 1024));
                // value 0 -> bucket bound 1, value 7 -> bound 8, 1024 -> bound 2048.
                assert_eq!(h.buckets, vec![(1, 1), (8, 1), (2048, 1)]);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
        let json = snap.to_json();
        assert!(json.contains("\"z.counter\":5"));
        assert!(json.contains("\"buckets\":[[1,1],[8,1],[2048,1]]"));
        assert!(snap.to_text().contains("m.hist"));
    }

    #[test]
    fn standalone_switch_records_without_trace_recording() {
        let _g = TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let _ = crate::finish();
        reset();
        set_standalone(true);
        assert!(active());
        counter_add("standalone.counter", 7);
        observe("standalone.hist", 3);
        let snap = snapshot();
        set_standalone(false);
        reset();
        assert!(!active());
        assert_eq!(snap.counter("standalone.counter"), Some(7));
        assert!(matches!(
            snap.get("standalone.hist"),
            Some(MetricValue::Histogram(h)) if h.count == 1
        ));
    }

    #[test]
    fn inactive_registry_ignores_writes() {
        let _g = TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let _ = crate::finish();
        counter_add("ghost", 1);
        crate::start();
        let snap = snapshot();
        let _ = crate::finish();
        assert!(snap.get("ghost").is_none());
    }
}
