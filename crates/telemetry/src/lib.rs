//! npp-telemetry: deterministic sim-time tracing, metrics, and profiling hooks.
//!
//! Design rules (see DESIGN.md "Observability"):
//!
//! - Simulator code stamps records with **sim time** (`t_ns`), never wall
//!   clock. Wall-clock records exist only for executor/CLI layers and are
//!   excluded from the canonical trace.
//! - The canonical trace (`npp.trace/v1` JSONL) is the sim-clock records
//!   merge-sorted by `(scope, t_ns, seq)`. Because each scenario runs on a
//!   single thread and `seq` is a per-scope counter, the canonical trace of
//!   a `--jobs N` sweep is byte-identical to the serial one.
//! - With the `trace` cargo feature disabled every recording entry point is
//!   an empty `#[inline(always)]` stub: instrumented call sites compile to
//!   nothing. With the feature enabled but recording inactive, each site
//!   costs one relaxed atomic load.
//! - [`wall_clock`] is the one sanctioned wall-clock entry point in the
//!   workspace; npp-lint rule D2 flags any call to it inside determinism
//!   crates so wall time cannot leak into simulation logic.

pub mod fmt;
pub mod metrics;
pub mod progress;
pub mod timer;

use fmt::{push_escaped, push_f64, push_hex16, push_u64};

/// Schema identifier stamped on the canonical JSONL header line.
pub const TRACE_SCHEMA: &str = "npp.trace/v1";

/// What a [`Record`] marks: span boundaries, a point event, or a counter
/// sample (rendered as a Chrome `C` event, i.e. a time series track).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Span opening edge.
    Begin,
    /// Span closing edge.
    End,
    /// A point-in-time event.
    Instant,
    /// A counter sample (`value` is the series value at `t_ns`).
    Counter,
}

impl Phase {
    /// One-letter code used in both JSONL and Chrome trace output.
    pub fn code(self) -> &'static str {
        match self {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Instant => "I",
            Phase::Counter => "C",
        }
    }
}

/// A single trace record.
///
/// `scope` is the scenario identity (the content-hash seed of the scenario
/// spec); `seq` is a per-scope monotonic counter that breaks ties between
/// records carrying the same sim timestamp. Wall-clock records (`wall ==
/// true`) are only ever emitted by executor/CLI layers and never enter the
/// canonical trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Scenario identity (content-hash seed), 0 for the global scope.
    pub scope: u64,
    /// Timestamp: sim nanoseconds, or (for wall records) nanoseconds since
    /// recording started.
    pub t_ns: u64,
    /// Per-scope monotonic sequence number (tie-break at equal `t_ns`).
    pub seq: u64,
    /// True if the timestamp came from the wall clock (executor layer).
    pub wall: bool,
    /// Record kind.
    pub phase: Phase,
    /// Static event name (ASCII identifier-like, e.g. `"switch.freq"`).
    pub name: &'static str,
    /// Integer argument (device index, pipeline id, ...); 0 when unused.
    pub arg: u64,
    /// Numeric payload; 0.0 when unused.
    pub value: f64,
}

/// A finished recording: everything drained out of the per-thread buffers.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// All records, in drain order (not sorted; see [`Trace::canonical`]).
    pub records: Vec<Record>,
}

impl Trace {
    /// Number of records (including wall-clock ones).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no records were captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Canonical view: sim-clock records only, merge-sorted by
    /// `(scope, t_ns, seq)`. This ordering is total (seq is unique within a
    /// scope) so the result is independent of thread scheduling.
    pub fn canonical(&self) -> Vec<&Record> {
        let mut sim: Vec<&Record> = self.records.iter().filter(|r| !r.wall).collect();
        sim.sort_by_key(|r| (r.scope, r.t_ns, r.seq));
        sim
    }

    /// Render the canonical trace as byte-stable `npp.trace/v1` JSONL.
    pub fn to_canonical_jsonl(&self) -> String {
        let sim = self.canonical();
        let mut out = String::with_capacity(64 + sim.len() * 96);
        out.push_str("{\"schema\":\"");
        out.push_str(TRACE_SCHEMA);
        out.push_str("\",\"records\":");
        push_u64(&mut out, sim.len() as u64);
        out.push_str("}\n");
        for r in sim {
            out.push_str("{\"scope\":\"");
            push_hex16(&mut out, r.scope);
            out.push_str("\",\"t_ns\":");
            push_u64(&mut out, r.t_ns);
            out.push_str(",\"seq\":");
            push_u64(&mut out, r.seq);
            out.push_str(",\"ph\":\"");
            out.push_str(r.phase.code());
            out.push_str("\",\"name\":\"");
            push_escaped(&mut out, r.name);
            out.push_str("\",\"arg\":");
            push_u64(&mut out, r.arg);
            out.push_str(",\"value\":");
            push_f64(&mut out, r.value);
            out.push_str("}\n");
        }
        out
    }

    /// Render all records (wall ones included) in Chrome `trace_event` JSON,
    /// loadable in Perfetto / chrome://tracing. Sim scopes map to one `tid`
    /// each (in canonical order); wall records ride on a dedicated track.
    pub fn to_chrome_json(&self) -> String {
        const WALL_TID: u64 = 0;
        let canonical = self.canonical();
        // Deterministic scope -> tid assignment by canonical order.
        let mut tids: Vec<u64> = Vec::new();
        for r in &canonical {
            if !tids.contains(&r.scope) {
                tids.push(r.scope);
            }
        }
        let tid_of = |scope: u64| -> u64 {
            tids.iter()
                .position(|s| *s == scope)
                .map(|p| p as u64 + 1)
                .unwrap_or(WALL_TID)
        };
        let mut out = String::with_capacity(128 + self.records.len() * 128);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{\"schema\":\"");
        out.push_str(TRACE_SCHEMA);
        out.push_str("\"},\"traceEvents\":[");
        let mut first = true;
        let push_sep = |out: &mut String, first: &mut bool| {
            if *first {
                *first = false;
            } else {
                out.push(',');
            }
            out.push_str("\n ");
        };
        // Track-name metadata: one per sim scope, one for the wall track.
        push_sep(&mut out, &mut first);
        out.push_str(
            "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"thread_name\",\
             \"args\":{\"name\":\"wall (executor)\"}}",
        );
        for scope in &tids {
            push_sep(&mut out, &mut first);
            out.push_str("{\"ph\":\"M\",\"pid\":1,\"tid\":");
            push_u64(&mut out, tid_of(*scope));
            out.push_str(",\"name\":\"thread_name\",\"args\":{\"name\":\"scenario ");
            push_hex16(&mut out, *scope);
            out.push_str("\"}}");
        }
        let emit = |out: &mut String, first: &mut bool, r: &Record, tid: u64| {
            push_sep(out, first);
            out.push_str("{\"ph\":\"");
            out.push_str(r.phase.code());
            out.push_str("\",\"pid\":1,\"tid\":");
            push_u64(out, tid);
            out.push_str(",\"ts\":");
            // Chrome trace timestamps are microseconds.
            push_f64(out, r.t_ns as f64 / 1000.0);
            out.push_str(",\"name\":\"");
            push_escaped(out, r.name);
            if r.phase == Phase::Instant {
                out.push_str("\",\"s\":\"t");
            }
            out.push_str("\",\"args\":{\"arg\":");
            push_u64(out, r.arg);
            out.push_str(",\"value\":");
            push_f64(out, r.value);
            out.push_str("}}");
        };
        for r in &canonical {
            emit(&mut out, &mut first, r, tid_of(r.scope));
        }
        let mut walls: Vec<&Record> = self.records.iter().filter(|r| r.wall).collect();
        walls.sort_by_key(|r| (r.t_ns, r.seq));
        for r in walls {
            emit(&mut out, &mut first, r, WALL_TID);
        }
        out.push_str("\n]}\n");
        out
    }
}

/// True when the `trace` cargo feature is compiled in.
#[inline(always)]
pub fn compiled() -> bool {
    cfg!(feature = "trace")
}

/// The one sanctioned wall-clock entry point in the workspace.
///
/// Executor and CLI layers (sweep thread pool, progress reporting, bench
/// timing) read the wall clock through this function only. npp-lint rule D2
/// flags direct `Instant::now()`/`SystemTime` *and* calls to `wall_clock()`
/// inside the determinism crates, so any use inside simulation logic must
/// carry an explicit justification.
pub fn wall_clock() -> std::time::Instant {
    // npp-lint: allow(wall-clock) reason="this is the single sanctioned wall-clock entry point for executor/CLI layers"
    std::time::Instant::now()
}

#[cfg(feature = "trace")]
mod core_impl {
    use super::{Phase, Record, Trace};
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Mutex, MutexGuard, PoisonError};
    use std::time::Instant;

    pub(crate) static ENABLED: AtomicBool = AtomicBool::new(false);
    static EPOCH: AtomicU64 = AtomicU64::new(0);
    static SINK: Mutex<Vec<Record>> = Mutex::new(Vec::new());
    static WALL_START: Mutex<Option<Instant>> = Mutex::new(None);

    /// Per-thread buffer capacity; on overflow the buffer drains into the
    /// global sink (records are never dropped).
    const RING_CAPACITY: usize = 64 * 1024;

    struct Local {
        epoch: u64,
        scope: u64,
        seq: u64,
        wall_seq: u64,
        buf: Vec<Record>,
    }

    impl Local {
        const fn new() -> Self {
            Local {
                epoch: 0,
                scope: 0,
                seq: 0,
                wall_seq: 0,
                buf: Vec::new(),
            }
        }

        fn sync_epoch(&mut self) {
            let now = EPOCH.load(Ordering::Acquire);
            if self.epoch != now {
                self.epoch = now;
                self.scope = 0;
                self.seq = 0;
                self.wall_seq = 0;
                self.buf.clear();
            }
        }

        fn drain(&mut self) {
            if !self.buf.is_empty() && self.epoch == EPOCH.load(Ordering::Acquire) {
                sink().append(&mut self.buf);
            }
            self.buf.clear();
        }
    }

    impl Drop for Local {
        fn drop(&mut self) {
            if ENABLED.load(Ordering::Relaxed) {
                self.drain();
            }
        }
    }

    thread_local! {
        static LOCAL: RefCell<Local> = const { RefCell::new(Local::new()) };
    }

    fn sink() -> MutexGuard<'static, Vec<Record>> {
        SINK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub(crate) fn start_impl() {
        EPOCH.fetch_add(1, Ordering::AcqRel);
        sink().clear();
        // npp-lint: allow(wall-clock) reason="stamps the recording start for the wall track; wall records are excluded from the canonical trace"
        let start = super::wall_clock();
        *WALL_START.lock().unwrap_or_else(PoisonError::into_inner) = Some(start);
        crate::metrics::reset();
        ENABLED.store(true, Ordering::SeqCst);
    }

    pub(crate) fn finish_impl() -> Trace {
        LOCAL.with(|l| l.borrow_mut().drain());
        ENABLED.store(false, Ordering::SeqCst);
        let records = std::mem::take(&mut *sink());
        Trace { records }
    }

    pub(crate) fn record_impl(phase: Phase, name: &'static str, t_ns: u64, arg: u64, value: f64) {
        if !ENABLED.load(Ordering::Relaxed) {
            return;
        }
        LOCAL.with(|l| {
            let mut l = l.borrow_mut();
            l.sync_epoch();
            let seq = l.seq;
            l.seq += 1;
            let scope = l.scope;
            l.buf.push(Record {
                scope,
                t_ns,
                seq,
                wall: false,
                phase,
                name,
                arg,
                value,
            });
            if l.buf.len() >= RING_CAPACITY {
                l.drain();
            }
        });
    }

    pub(crate) fn record_wall_impl(phase: Phase, name: &'static str, arg: u64, value: f64) {
        if !ENABLED.load(Ordering::Relaxed) {
            return;
        }
        let t_ns = WALL_START
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .map(|s| s.elapsed().as_nanos() as u64)
            .unwrap_or(0);
        LOCAL.with(|l| {
            let mut l = l.borrow_mut();
            l.sync_epoch();
            let seq = l.wall_seq;
            l.wall_seq += 1;
            let scope = l.scope;
            l.buf.push(Record {
                scope,
                t_ns,
                seq,
                wall: true,
                phase,
                name,
                arg,
                value,
            });
            if l.buf.len() >= RING_CAPACITY {
                l.drain();
            }
        });
    }

    pub(crate) fn enter_scope(id: u64) -> (u64, u64) {
        LOCAL.with(|l| {
            let mut l = l.borrow_mut();
            l.sync_epoch();
            let prev = (l.scope, l.seq);
            l.scope = id;
            l.seq = 0;
            prev
        })
    }

    pub(crate) fn exit_scope(prev: (u64, u64)) {
        LOCAL.with(|l| {
            let mut l = l.borrow_mut();
            // Drain at scenario boundaries so worker-thread buffers cannot
            // outlive the recording that produced them.
            l.drain();
            l.scope = prev.0;
            l.seq = prev.1;
        });
    }
}

/// True when recording is active (always false without the `trace` feature).
#[inline]
pub fn enabled() -> bool {
    #[cfg(feature = "trace")]
    {
        core_impl::ENABLED.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(feature = "trace"))]
    {
        false
    }
}

/// Begin a recording: clears the sink, resets the metrics registry, and
/// arms every instrumented call site. No-op without the `trace` feature.
pub fn start() {
    #[cfg(feature = "trace")]
    core_impl::start_impl();
}

/// Stop recording and drain all buffered records into a [`Trace`].
///
/// The calling thread's buffer is drained here; worker threads drain at
/// scope exit and on thread exit (the sweep executor joins its scoped
/// threads before returning, so nothing is left behind).
pub fn finish() -> Trace {
    #[cfg(feature = "trace")]
    {
        core_impl::finish_impl()
    }
    #[cfg(not(feature = "trace"))]
    {
        Trace::default()
    }
}

/// Emit a sim-clock record. Prefer the [`trace_event!`]/[`trace_span!`]
/// macros, which skip argument evaluation when recording is inactive.
#[inline]
pub fn record(phase: Phase, name: &'static str, t_ns: u64, arg: u64, value: f64) {
    #[cfg(feature = "trace")]
    core_impl::record_impl(phase, name, t_ns, arg, value);
    #[cfg(not(feature = "trace"))]
    {
        let _ = (phase, name, t_ns, arg, value);
    }
}

/// Emit a wall-clock record (executor/CLI layers only). The timestamp is
/// nanoseconds since [`start`]; wall records never enter the canonical
/// trace.
#[inline]
pub fn record_wall(phase: Phase, name: &'static str, arg: u64, value: f64) {
    #[cfg(feature = "trace")]
    core_impl::record_wall_impl(phase, name, arg, value);
    #[cfg(not(feature = "trace"))]
    {
        let _ = (phase, name, arg, value);
    }
}

/// Guard restoring the previous trace scope (and its sequence counter) on
/// drop. Returned by [`scope`].
#[must_use]
#[derive(Debug)]
pub struct ScopeGuard {
    #[cfg(feature = "trace")]
    prev: Option<(u64, u64)>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        #[cfg(feature = "trace")]
        if let Some(prev) = self.prev.take() {
            core_impl::exit_scope(prev);
        }
    }
}

/// Enter a trace scope for one scenario. `id` is the scenario's content-hash
/// seed; all sim-clock records emitted by this thread until the guard drops
/// carry this scope, with `seq` restarting at 0 (which is what makes the
/// canonical merge deterministic).
pub fn scope(id: u64) -> ScopeGuard {
    #[cfg(feature = "trace")]
    {
        if enabled() {
            ScopeGuard {
                prev: Some(core_impl::enter_scope(id)),
            }
        } else {
            ScopeGuard { prev: None }
        }
    }
    #[cfg(not(feature = "trace"))]
    {
        let _ = id;
        ScopeGuard {}
    }
}

/// Emit a sim-time point event: `trace_event!("name", t_ns)` or
/// `trace_event!("name", t_ns, value)`. Arguments are not evaluated unless
/// recording is active.
#[macro_export]
macro_rules! trace_event {
    ($name:expr, $t_ns:expr) => {
        if $crate::enabled() {
            $crate::record($crate::Phase::Instant, $name, $t_ns, 0, 0.0);
        }
    };
    ($name:expr, $t_ns:expr, $value:expr) => {
        if $crate::enabled() {
            $crate::record($crate::Phase::Instant, $name, $t_ns, 0, $value as f64);
        }
    };
}

/// Emit a sim-time counter sample (a time-series point):
/// `trace_counter!("name", t_ns, arg, value)`.
#[macro_export]
macro_rules! trace_counter {
    ($name:expr, $t_ns:expr, $arg:expr, $value:expr) => {
        if $crate::enabled() {
            $crate::record(
                $crate::Phase::Counter,
                $name,
                $t_ns,
                $arg as u64,
                $value as f64,
            );
        }
    };
}

/// Emit sim-time span edges: `trace_span!(begin "name", t_ns)` /
/// `trace_span!(end "name", t_ns)`. Sim spans carry explicit timestamps
/// (there is no RAII form: sim time is not ambient).
#[macro_export]
macro_rules! trace_span {
    (begin $name:expr, $t_ns:expr) => {
        if $crate::enabled() {
            $crate::record($crate::Phase::Begin, $name, $t_ns, 0, 0.0);
        }
    };
    (end $name:expr, $t_ns:expr) => {
        if $crate::enabled() {
            $crate::record($crate::Phase::End, $name, $t_ns, 0, 0.0);
        }
    };
}

#[cfg(test)]
mod format_tests {
    use super::*;

    #[test]
    fn f64_formatting_is_stable() {
        let mut s = String::new();
        push_f64(&mut s, 3.0);
        push_f64(&mut s, -2.0);
        push_f64(&mut s, 0.125);
        push_f64(&mut s, f64::NAN);
        assert_eq!(s, "3-20.1250");
    }

    #[test]
    fn hex_and_escape() {
        let mut s = String::new();
        push_hex16(&mut s, 0xDEAD_BEEF);
        assert_eq!(s, "00000000deadbeef");
        let mut e = String::new();
        push_escaped(&mut e, "a\"b\\c\n");
        assert_eq!(e, "a\\\"b\\\\c\\u000a");
    }

    #[test]
    fn empty_trace_renders_header_only() {
        let t = Trace::default();
        assert_eq!(
            t.to_canonical_jsonl(),
            "{\"schema\":\"npp.trace/v1\",\"records\":0}\n"
        );
        assert!(t.to_chrome_json().contains("traceEvents"));
    }

    #[test]
    fn canonical_sorts_by_scope_time_seq_and_drops_wall() {
        let rec = |scope, t_ns, seq, wall| Record {
            scope,
            t_ns,
            seq,
            wall,
            phase: Phase::Instant,
            name: "x",
            arg: 0,
            value: 0.0,
        };
        let t = Trace {
            records: vec![
                rec(2, 5, 0, false),
                rec(1, 9, 1, false),
                rec(1, 9, 0, false),
                rec(1, 1, 0, true),
            ],
        };
        let c = t.canonical();
        let keys: Vec<(u64, u64, u64)> = c.iter().map(|r| (r.scope, r.t_ns, r.seq)).collect();
        assert_eq!(keys, vec![(1, 9, 0), (1, 9, 1), (2, 5, 0)]);
    }
}

#[cfg(all(test, feature = "trace"))]
mod recording_tests {
    use super::*;
    use std::sync::Mutex;

    /// Recorder state is process-global; serialize the tests that use it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_recorder_captures_nothing() {
        let _g = locked();
        let _ = finish();
        trace_event!("nope", 1);
        let t = finish();
        assert!(t.is_empty());
    }

    #[test]
    fn scoped_records_merge_deterministically() {
        let _g = locked();
        start();
        {
            let _s = scope(0xAA);
            trace_event!("a", 10, 1.5);
            trace_event!("a", 10, 2.5);
        }
        {
            let _s = scope(0x11);
            trace_span!(begin "b", 0);
            trace_span!(end "b", 7);
        }
        record_wall(Phase::Instant, "wall.mark", 0, 0.0);
        let t = finish();
        assert_eq!(t.len(), 5);
        let c = t.canonical();
        assert_eq!(c.len(), 4);
        // Scope 0x11 sorts before 0xAA regardless of emission order.
        assert_eq!(c[0].scope, 0x11);
        assert_eq!((c[0].phase, c[0].t_ns), (Phase::Begin, 0));
        assert_eq!(c[2].scope, 0xAA);
        assert_eq!((c[2].seq, c[3].seq), (0, 1));
        let jsonl = t.to_canonical_jsonl();
        assert!(jsonl.starts_with("{\"schema\":\"npp.trace/v1\",\"records\":4}\n"));
        assert!(jsonl.contains("\"value\":1.5"));
        // Wall record appears in the Chrome trace but not the canonical one.
        assert!(!jsonl.contains("wall.mark"));
        assert!(t.to_chrome_json().contains("wall.mark"));
    }

    #[test]
    fn worker_threads_drain_on_scope_exit() {
        let _g = locked();
        start();
        std::thread::scope(|s| {
            for id in 1..=4u64 {
                s.spawn(move || {
                    let _sc = scope(id);
                    trace_event!("w", id * 100);
                });
            }
        });
        let t = finish();
        let c = t.canonical();
        assert_eq!(c.len(), 4);
        let scopes: Vec<u64> = c.iter().map(|r| r.scope).collect();
        assert_eq!(scopes, vec![1, 2, 3, 4]);
    }

    #[test]
    fn nested_scopes_restore_seq() {
        let _g = locked();
        start();
        let _outer = scope(5);
        trace_event!("o", 1);
        {
            let _inner = scope(6);
            trace_event!("i", 1);
        }
        trace_event!("o", 2);
        let t = finish();
        let c = t.canonical();
        // Outer scope records got seq 0 then 1; inner restarted at 0.
        let outer: Vec<u64> = c.iter().filter(|r| r.scope == 5).map(|r| r.seq).collect();
        assert_eq!(outer, vec![0, 1]);
    }
}
