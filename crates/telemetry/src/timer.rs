//! Sampling scope timer for hot loops.
//!
//! A [`SampleTimer`] lives inside the instrumented struct (e.g. the simnet
//! engine) and times every Nth pass through a hot section, feeding a
//! fixed-bucket histogram in the metrics registry. Sampling keeps the
//! overhead bounded, and because the measured quantity is wall time the
//! results are profiling data only — they never influence simulation state,
//! so determinism is unaffected.

/// Samples 1-in-`every` passes through a scope when recording is active.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleTimer {
    every: u32,
    tick: u32,
}

impl SampleTimer {
    /// A timer that samples one in `every` passes (`every == 0` behaves
    /// like 1, i.e. sample everything).
    pub const fn every(every: u32) -> Self {
        SampleTimer { every, tick: 0 }
    }

    /// Start timing this pass if it is selected for sampling. Returns
    /// `None` (at the cost of one atomic load plus a counter increment)
    /// otherwise.
    #[inline]
    pub fn maybe_start(&mut self) -> Option<Stamp> {
        if !crate::enabled() {
            return None;
        }
        self.tick = self.tick.wrapping_add(1);
        if self.tick % self.every.max(1) != 0 {
            return None;
        }
        Some(Stamp::now())
    }
}

/// An in-flight sample started by [`SampleTimer::maybe_start`].
#[derive(Debug)]
pub struct Stamp {
    #[cfg(feature = "trace")]
    at: std::time::Instant,
}

impl Stamp {
    #[inline]
    fn now() -> Self {
        Stamp {
            #[cfg(feature = "trace")]
            // npp-lint: allow(wall-clock) reason="sampling timers price host execution; samples feed volatile histograms, never a deterministic document"
            at: crate::wall_clock(),
        }
    }

    /// Nanoseconds elapsed since the stamp was taken.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        #[cfg(feature = "trace")]
        {
            self.at.elapsed().as_nanos() as u64
        }
        #[cfg(not(feature = "trace"))]
        {
            0
        }
    }
}

/// Finish a sample: record its duration into the named histogram (use a
/// `prof.*_ns` name so profile reports can group sampled scopes).
#[inline]
pub fn record_sample(name: &'static str, stamp: Stamp) {
    crate::metrics::observe(name, stamp.elapsed_ns());
}

/// An unconditional wall-clock stopwatch for executor-layer wait
/// accounting (e.g. the parallel coordinator's merge-wait counter).
///
/// Unlike [`Stamp`], a `Stopwatch` ticks even when the `trace` feature
/// is compiled out and no recording is active: its readings land in
/// volatile profiling fields (never the trace document, never
/// simulation state), so there is nothing to gate. This is the
/// sanctioned route to `Instant::elapsed` for crates that must not
/// call [`crate::wall_clock`] directly under lint rule D2.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    at: std::time::Instant,
}

impl Stopwatch {
    /// Starts the stopwatch now.
    #[inline]
    #[must_use]
    pub fn start() -> Self {
        Stopwatch {
            // npp-lint: allow(wall-clock) reason="stopwatch readings feed volatile wait-accounting fields (EngineMetrics), never deterministic simulation state"
            at: crate::wall_clock(),
        }
    }

    /// Nanoseconds elapsed since [`Stopwatch::start`].
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        self.at.elapsed().as_nanos() as u64
    }
}

#[cfg(all(test, feature = "trace"))]
mod tests {
    use super::*;
    use std::sync::Mutex;

    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn samples_one_in_n_only_while_recording() {
        let _g = TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let _ = crate::finish();
        let mut t = SampleTimer::every(3);
        assert!(
            t.maybe_start().is_none(),
            "inactive recorder must not sample"
        );
        crate::start();
        let samples: usize = (0..9).filter_map(|_| t.maybe_start()).count();
        assert_eq!(samples, 3);
        if let Some(stamp) = SampleTimer::every(1).maybe_start() {
            record_sample("prof.test_ns", stamp);
        }
        let snap = crate::metrics::snapshot();
        let _ = crate::finish();
        match snap.get("prof.test_ns") {
            Some(crate::metrics::MetricValue::Histogram(h)) => assert_eq!(h.count, 1),
            other => panic!("expected histogram, got {other:?}"),
        }
    }
}
