//! Relaxing the no-overlap assumption (§3.4).
//!
//! The core model assumes computation and communication never overlap.
//! §3.4 notes that some training schemes *do* overlap them and argues
//! underutilization persists regardless. This module makes that claim
//! checkable: an [`OverlapSchedule`] splits an iteration into three
//! segments — both resources busy, compute-only, comm-only — given the
//! fraction of communication hidden under computation.

use serde::{Deserialize, Serialize};

use npp_units::{Ratio, Seconds};

use crate::{Iteration, Result, WorkloadError};

/// An iteration with partially overlapped phases.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverlapSchedule {
    /// Time with GPUs and network simultaneously busy.
    pub both: Seconds,
    /// Time with only the GPUs busy.
    pub compute_only: Seconds,
    /// Time with only the network busy.
    pub comm_only: Seconds,
}

impl OverlapSchedule {
    /// Builds the schedule for an iteration where a fraction `overlap`
    /// of the communication is hidden under computation (bounded by the
    /// computation time — you cannot hide more communication than there
    /// is computation to hide it under).
    ///
    /// `overlap = 0` reproduces the paper's core model exactly.
    ///
    /// # Errors
    ///
    /// Rejects overlap fractions outside `[0, 1]`.
    pub fn from_iteration(iter: &Iteration, overlap: Ratio) -> Result<Self> {
        let o = overlap.fraction();
        if !(0.0..=1.0).contains(&o) || o.is_nan() {
            return Err(WorkloadError::NonPositive {
                what: "overlap",
                value: o,
            });
        }
        let hidden = (iter.comm * o).min(iter.compute);
        Ok(Self {
            both: hidden,
            compute_only: iter.compute - hidden,
            comm_only: iter.comm - hidden,
        })
    }

    /// Iteration time under this schedule (shorter than the serial
    /// iteration whenever overlap is nonzero).
    pub fn total(&self) -> Seconds {
        self.both + self.compute_only + self.comm_only
    }

    /// Fraction of the iteration during which the network is busy.
    pub fn network_busy_fraction(&self) -> Ratio {
        Ratio::new((self.both + self.comm_only) / self.total())
    }

    /// Fraction of the iteration during which the GPUs are busy.
    pub fn gpu_busy_fraction(&self) -> Ratio {
        Ratio::new((self.both + self.compute_only) / self.total())
    }

    /// Speedup over the serial (no-overlap) iteration.
    pub fn speedup_vs_serial(&self, serial: &Iteration) -> Ratio {
        Ratio::new(serial.total() / self.total() - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IterationModel;
    use npp_units::Gbps;

    fn baseline_iter() -> Iteration {
        IterationModel::paper_baseline()
            .iteration(
                15_360.0,
                Gbps::new(400.0),
                crate::ScalingScenario::FixedWorkload,
            )
            .unwrap()
    }

    #[test]
    fn zero_overlap_reproduces_serial_model() {
        let iter = baseline_iter();
        let s = OverlapSchedule::from_iteration(&iter, Ratio::ZERO).unwrap();
        assert_eq!(s.both, Seconds::ZERO);
        assert_eq!(s.compute_only, iter.compute);
        assert_eq!(s.comm_only, iter.comm);
        assert!(s.total().approx_eq(iter.total(), 1e-12));
        assert!(s.speedup_vs_serial(&iter).approx_eq(Ratio::ZERO, 1e-12));
    }

    #[test]
    fn full_overlap_hides_all_communication() {
        let iter = baseline_iter();
        let s = OverlapSchedule::from_iteration(&iter, Ratio::ONE).unwrap();
        assert!(s.both.approx_eq(iter.comm, 1e-12));
        assert!(s.comm_only.approx_eq(Seconds::ZERO, 1e-12));
        // Iteration shrinks to the computation time: 11.1% speedup.
        assert!(s.total().approx_eq(iter.compute, 1e-12));
        assert!((s.speedup_vs_serial(&iter).percent() - 100.0 / 9.0).abs() < 0.01);
    }

    #[test]
    fn overlap_cannot_exceed_computation() {
        // Pathological iteration: comm longer than compute.
        let iter = Iteration {
            compute: Seconds::new(0.2),
            comm: Seconds::new(0.8),
        };
        let s = OverlapSchedule::from_iteration(&iter, Ratio::ONE).unwrap();
        assert!(s.both.approx_eq(Seconds::new(0.2), 1e-12));
        assert!(s.compute_only.approx_eq(Seconds::ZERO, 1e-12));
        assert!(s.comm_only.approx_eq(Seconds::new(0.6), 1e-12));
    }

    #[test]
    fn network_stays_underutilized_even_with_overlap() {
        // §3.4's point: at 50% overlap the network is still idle ~89.5%
        // of the (shorter) iteration.
        let iter = baseline_iter();
        let s = OverlapSchedule::from_iteration(&iter, Ratio::new(0.5)).unwrap();
        let busy = s.network_busy_fraction();
        assert!(busy.fraction() < 0.12, "network busy {busy}");
        assert!(s.gpu_busy_fraction().fraction() > 0.9);
    }

    #[test]
    fn invalid_overlap_rejected() {
        let iter = baseline_iter();
        assert!(OverlapSchedule::from_iteration(&iter, Ratio::new(-0.1)).is_err());
        assert!(OverlapSchedule::from_iteration(&iter, Ratio::new(1.1)).is_err());
        assert!(OverlapSchedule::from_iteration(&iter, Ratio::new(f64::NAN)).is_err());
    }
}
