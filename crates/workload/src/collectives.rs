//! Analytic cost models for collective communication.
//!
//! The communication phases of §2.2 are, in practice, collectives —
//! all-reduce for data parallelism, all-gather/reduce-scatter for sharded
//! optimizers, all-to-all for expert parallelism. These standard
//! bandwidth-optimal cost models let examples and mechanism evaluations
//! derive communication-phase durations from model sizes instead of
//! assuming them, and generate realistic per-link traffic.

use serde::{Deserialize, Serialize};

use npp_units::{Bytes, Gbps, Seconds};

use crate::{Result, WorkloadError};

/// All-reduce algorithm variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllReduceAlgo {
    /// Ring: bandwidth-optimal, latency ∝ n.
    Ring,
    /// Binary tree: 2·log₂(n) steps on the full volume.
    Tree,
    /// Recursive halving-doubling: log₂(n) steps, bandwidth-optimal.
    RecursiveHalvingDoubling,
}

/// Validates a participant count.
fn check_n(n: usize) -> Result<()> {
    if n < 2 {
        return Err(WorkloadError::TooFewParticipants(n));
    }
    Ok(())
}

/// Validates a bandwidth.
fn check_bw(bw: Gbps) -> Result<()> {
    if bw.value() <= 0.0 {
        return Err(WorkloadError::NonPositive {
            what: "bandwidth",
            value: bw.value(),
        });
    }
    Ok(())
}

/// Bytes each participant must *send* during an all-reduce of a `size`
/// buffer across `n` ranks.
///
/// Ring and recursive halving-doubling are bandwidth-optimal:
/// `2·(n−1)/n · size`. Tree sends the full buffer up and down:
/// `2·size` per rank on the critical path.
///
/// # Errors
///
/// Needs `n ≥ 2`.
pub fn allreduce_bytes_per_rank(algo: AllReduceAlgo, n: usize, size: Bytes) -> Result<Bytes> {
    check_n(n)?;
    let nf = n as f64;
    Ok(match algo {
        AllReduceAlgo::Ring | AllReduceAlgo::RecursiveHalvingDoubling => {
            size * (2.0 * (nf - 1.0) / nf)
        }
        AllReduceAlgo::Tree => size * 2.0,
    })
}

/// Time for an all-reduce, bandwidth-limited (latency/alpha term ignored,
/// consistent with the paper's bulk-transfer view of the communication
/// phase).
///
/// # Errors
///
/// Needs `n ≥ 2` and a positive bandwidth.
pub fn allreduce_time(algo: AllReduceAlgo, n: usize, size: Bytes, link: Gbps) -> Result<Seconds> {
    check_bw(link)?;
    let per_rank = allreduce_bytes_per_rank(algo, n, size)?;
    Ok(per_rank.to_bits() / link)
}

/// Bytes each rank sends in an all-gather of per-rank shards of
/// `shard` bytes across `n` ranks: `(n−1)·shard`.
///
/// # Errors
///
/// Needs `n ≥ 2`.
pub fn allgather_bytes_per_rank(n: usize, shard: Bytes) -> Result<Bytes> {
    check_n(n)?;
    Ok(shard * (n as f64 - 1.0))
}

/// Time for a bandwidth-limited all-gather.
///
/// # Errors
///
/// Needs `n ≥ 2` and a positive bandwidth.
pub fn allgather_time(n: usize, shard: Bytes, link: Gbps) -> Result<Seconds> {
    check_bw(link)?;
    Ok(allgather_bytes_per_rank(n, shard)?.to_bits() / link)
}

/// Bytes each rank sends in an all-to-all where each rank holds `per_pair`
/// bytes for every other rank: `(n−1)·per_pair`.
///
/// # Errors
///
/// Needs `n ≥ 2`.
pub fn alltoall_bytes_per_rank(n: usize, per_pair: Bytes) -> Result<Bytes> {
    check_n(n)?;
    Ok(per_pair * (n as f64 - 1.0))
}

/// Time for a bandwidth-limited all-to-all.
///
/// # Errors
///
/// Needs `n ≥ 2` and a positive bandwidth.
pub fn alltoall_time(n: usize, per_pair: Bytes, link: Gbps) -> Result<Seconds> {
    check_bw(link)?;
    Ok(alltoall_bytes_per_rank(n, per_pair)?.to_bits() / link)
}

/// Derives the gradient all-reduce size for a dense model with
/// `parameters` weights at `bytes_per_param` (2 for fp16/bf16 gradients).
pub fn gradient_bytes(parameters: f64, bytes_per_param: f64) -> Bytes {
    Bytes::new(parameters * bytes_per_param)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bandwidth_optimal() {
        // 4 ranks, 1 GiB: each rank sends 2·3/4 = 1.5 GiB.
        let b = allreduce_bytes_per_rank(AllReduceAlgo::Ring, 4, Bytes::from_gib(1.0)).unwrap();
        assert!(b.approx_eq(Bytes::from_gib(1.5), 1.0));
        // RHD matches ring's volume.
        let rhd = allreduce_bytes_per_rank(
            AllReduceAlgo::RecursiveHalvingDoubling,
            4,
            Bytes::from_gib(1.0),
        )
        .unwrap();
        assert_eq!(b, rhd);
        // Tree sends more.
        let tree = allreduce_bytes_per_rank(AllReduceAlgo::Tree, 4, Bytes::from_gib(1.0)).unwrap();
        assert!(tree > b);
    }

    #[test]
    fn allreduce_volume_approaches_2x_for_large_n() {
        let size = Bytes::from_gib(1.0);
        let b = allreduce_bytes_per_rank(AllReduceAlgo::Ring, 10_000, size).unwrap();
        assert!((b / size - 2.0).abs() < 1e-3);
    }

    #[test]
    fn allreduce_time_scales_inverse_bandwidth() {
        let size = Bytes::from_gib(1.0);
        let t400 = allreduce_time(AllReduceAlgo::Ring, 8, size, Gbps::new(400.0)).unwrap();
        let t800 = allreduce_time(AllReduceAlgo::Ring, 8, size, Gbps::new(800.0)).unwrap();
        assert!(t400.approx_eq(t800 * 2.0, 1e-12));
    }

    #[test]
    fn realistic_gradient_allreduce_duration() {
        // 70 B parameters in bf16 across 1024 ranks at 400 G:
        // volume ≈ 2·140 GB per rank → ≈ 5.6 s. Sanity band only.
        let grads = gradient_bytes(70e9, 2.0);
        let t = allreduce_time(AllReduceAlgo::Ring, 1024, grads, Gbps::new(400.0)).unwrap();
        assert!(t.value() > 1.0 && t.value() < 20.0, "t = {t}");
    }

    #[test]
    fn allgather_and_alltoall_volumes() {
        let shard = Bytes::from_mib(64.0);
        let ag = allgather_bytes_per_rank(16, shard).unwrap();
        assert!(ag.approx_eq(shard * 15.0, 1e-6));
        let a2a = alltoall_bytes_per_rank(16, shard).unwrap();
        assert_eq!(ag, a2a);
    }

    #[test]
    fn validation() {
        assert!(allreduce_bytes_per_rank(AllReduceAlgo::Ring, 1, Bytes::new(1.0)).is_err());
        assert!(allreduce_time(AllReduceAlgo::Ring, 4, Bytes::new(1.0), Gbps::ZERO).is_err());
        assert!(allgather_time(0, Bytes::new(1.0), Gbps::new(1.0)).is_err());
        assert!(alltoall_time(2, Bytes::new(1.0), Gbps::ZERO).is_err());
    }
}
