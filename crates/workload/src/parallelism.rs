//! Traffic matrices induced by ML parallelism strategies.
//!
//! §4.2 observes that ML training traffic is "very predictable and stable
//! over time", which is what makes OCS-based topology tailoring viable.
//! The predictability comes from the parallelism structure: data-parallel
//! rings, tensor-parallel cliques, and pipeline chains each touch a fixed,
//! sparse set of host pairs. This module builds those matrices so the
//! §4.2 scheduler can compute which switches a job actually needs.

use serde::{Deserialize, Serialize};

use npp_units::Gbps;

use crate::{Result, WorkloadError};

/// A dense n×n traffic demand matrix (entry `[s][d]` = demand from rank
/// `s` to rank `d`, in Gbps of sustained communication-phase load).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficMatrix {
    n: usize,
    demand: Vec<f64>,
}

impl TrafficMatrix {
    /// Creates an all-zero matrix over `n` ranks.
    ///
    /// # Errors
    ///
    /// Needs `n ≥ 1`.
    pub fn zeros(n: usize) -> Result<Self> {
        if n == 0 {
            return Err(WorkloadError::TooFewParticipants(0));
        }
        Ok(Self {
            n,
            demand: vec![0.0; n * n],
        })
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.n
    }

    /// Demand from `src` to `dst` (zero for out-of-range ranks — a
    /// matrix has no demand outside itself).
    pub fn get(&self, src: usize, dst: usize) -> Gbps {
        if src >= self.n || dst >= self.n {
            return Gbps::ZERO;
        }
        Gbps::new(self.demand.get(src * self.n + dst).copied().unwrap_or(0.0))
    }

    /// Adds demand from `src` to `dst` (self-demand is ignored: a rank
    /// never crosses the network to reach itself).
    ///
    /// # Errors
    ///
    /// Rejects rank indices outside the matrix.
    pub fn add(&mut self, src: usize, dst: usize, demand: Gbps) -> Result<()> {
        let ranks = self.n;
        for rank in [src, dst] {
            if rank >= ranks {
                return Err(WorkloadError::RankOutOfRange { rank, ranks });
            }
        }
        if src != dst {
            if let Some(cell) = self.demand.get_mut(src * self.n + dst) {
                *cell += demand.value();
            }
        }
        Ok(())
    }

    /// Total demand over all pairs.
    pub fn total(&self) -> Gbps {
        Gbps::new(self.demand.iter().sum())
    }

    /// Number of (ordered) pairs with nonzero demand.
    pub fn active_pairs(&self) -> usize {
        self.demand.iter().filter(|&&d| d > 0.0).count()
    }

    /// Sparsity: fraction of ordered pairs with *zero* demand. High
    /// sparsity is what the §4.2 OCS scheduler exploits.
    pub fn sparsity(&self) -> f64 {
        let off_diag = (self.n * self.n - self.n) as f64;
        if off_diag == 0.0 {
            return 1.0;
        }
        1.0 - self.active_pairs() as f64 / off_diag
    }

    /// Outgoing demand of one rank (zero for out-of-range ranks).
    pub fn egress(&self, src: usize) -> Gbps {
        let row = self
            .demand
            .get(src * self.n..(src + 1) * self.n)
            .unwrap_or(&[]);
        Gbps::new(row.iter().sum())
    }

    /// Merges another matrix (same rank count) into this one.
    ///
    /// # Errors
    ///
    /// Rank counts must match.
    pub fn merge(&mut self, other: &TrafficMatrix) -> Result<()> {
        if self.n != other.n {
            return Err(WorkloadError::TooFewParticipants(other.n));
        }
        for (a, b) in self.demand.iter_mut().zip(&other.demand) {
            *a += b;
        }
        Ok(())
    }

    /// A data-parallel ring all-reduce over the given ranks: each rank
    /// sends `rate` to its successor in ring order.
    ///
    /// # Errors
    ///
    /// Needs at least 2 ranks in the ring and all indices in range.
    pub fn ring(n: usize, ring_ranks: &[usize], rate: Gbps) -> Result<Self> {
        if ring_ranks.len() < 2 {
            return Err(WorkloadError::TooFewParticipants(ring_ranks.len()));
        }
        let mut m = Self::zeros(n)?;
        // Each rank feeds its ring successor; `cycle` wraps the last
        // rank back to the first, and `zip` stops after one lap.
        let successors = ring_ranks.iter().cycle().skip(1);
        for (&src, &dst) in ring_ranks.iter().zip(successors) {
            m.add(src, dst, rate)?;
        }
        Ok(m)
    }

    /// A tensor-parallel clique: all-to-all among `group` at `rate` per
    /// ordered pair.
    ///
    /// # Errors
    ///
    /// Needs at least 2 ranks in the group.
    pub fn clique(n: usize, group: &[usize], rate: Gbps) -> Result<Self> {
        if group.len() < 2 {
            return Err(WorkloadError::TooFewParticipants(group.len()));
        }
        let mut m = Self::zeros(n)?;
        for &s in group {
            for &d in group {
                if s != d {
                    m.add(s, d, rate)?;
                }
            }
        }
        Ok(m)
    }

    /// A pipeline chain: rank `stages[i]` sends activations to
    /// `stages[i+1]` (and gradients back) at `rate` each way.
    ///
    /// # Errors
    ///
    /// Needs at least 2 stages.
    pub fn pipeline(n: usize, stages: &[usize], rate: Gbps) -> Result<Self> {
        if stages.len() < 2 {
            return Err(WorkloadError::TooFewParticipants(stages.len()));
        }
        let mut m = Self::zeros(n)?;
        for pair in stages.windows(2) {
            if let &[a, b] = pair {
                m.add(a, b, rate)?;
                m.add(b, a, rate)?;
            }
        }
        Ok(m)
    }

    /// The canonical 3D-parallel job: ranks are laid out as
    /// `dp × pp × tp`; TP cliques innermost, PP chains across the middle
    /// axis, DP rings across the outer axis.
    ///
    /// # Errors
    ///
    /// All three dimensions must be ≥ 1 and their product ≥ 2.
    pub fn three_d_parallel(
        dp: usize,
        pp: usize,
        tp: usize,
        tp_rate: Gbps,
        pp_rate: Gbps,
        dp_rate: Gbps,
    ) -> Result<Self> {
        let n = dp * pp * tp;
        if n < 2 {
            return Err(WorkloadError::TooFewParticipants(n));
        }
        let rank = |d: usize, p: usize, t: usize| (d * pp + p) * tp + t;
        let mut m = Self::zeros(n)?;
        // TP cliques.
        if tp >= 2 {
            for d in 0..dp {
                for p in 0..pp {
                    let group: Vec<usize> = (0..tp).map(|t| rank(d, p, t)).collect();
                    m.merge(&Self::clique(n, &group, tp_rate)?)?;
                }
            }
        }
        // PP chains.
        if pp >= 2 {
            for d in 0..dp {
                for t in 0..tp {
                    let stages: Vec<usize> = (0..pp).map(|p| rank(d, p, t)).collect();
                    m.merge(&Self::pipeline(n, &stages, pp_rate)?)?;
                }
            }
        }
        // DP rings (one per (p, t) position).
        if dp >= 2 {
            for p in 0..pp {
                for t in 0..tp {
                    let ring: Vec<usize> = (0..dp).map(|d| rank(d, p, t)).collect();
                    m.merge(&Self::ring(n, &ring, dp_rate)?)?;
                }
            }
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_demands() {
        let m = TrafficMatrix::ring(4, &[0, 1, 2, 3], Gbps::new(100.0)).unwrap();
        assert_eq!(m.get(0, 1), Gbps::new(100.0));
        assert_eq!(m.get(3, 0), Gbps::new(100.0));
        assert_eq!(m.get(0, 2), Gbps::ZERO);
        assert_eq!(m.active_pairs(), 4);
        assert!(m.total().approx_eq(Gbps::new(400.0), 1e-9));
    }

    #[test]
    fn clique_demands() {
        let m = TrafficMatrix::clique(8, &[0, 1, 2, 3], Gbps::new(50.0)).unwrap();
        assert_eq!(m.active_pairs(), 12);
        assert_eq!(m.get(0, 3), Gbps::new(50.0));
        assert_eq!(m.get(4, 5), Gbps::ZERO);
    }

    #[test]
    fn pipeline_is_bidirectional() {
        let m = TrafficMatrix::pipeline(4, &[0, 1, 2, 3], Gbps::new(10.0)).unwrap();
        assert_eq!(m.get(0, 1), Gbps::new(10.0));
        assert_eq!(m.get(1, 0), Gbps::new(10.0));
        assert_eq!(m.get(0, 2), Gbps::ZERO);
        assert_eq!(m.active_pairs(), 6);
    }

    #[test]
    fn sparsity_reflects_predictable_ml_traffic() {
        // A 64-rank ring touches 64 of 4032 ordered pairs: >98% sparse —
        // the §4.2 argument in one number.
        let ranks: Vec<usize> = (0..64).collect();
        let m = TrafficMatrix::ring(64, &ranks, Gbps::new(100.0)).unwrap();
        assert!(m.sparsity() > 0.98);
    }

    #[test]
    fn three_d_parallel_structure() {
        let m = TrafficMatrix::three_d_parallel(
            2,
            2,
            2,
            Gbps::new(100.0),
            Gbps::new(10.0),
            Gbps::new(25.0),
        )
        .unwrap();
        assert_eq!(m.ranks(), 8);
        // TP pair within first group.
        assert_eq!(m.get(0, 1), Gbps::new(100.0));
        // PP between stage 0 and 1 of dp-group 0, tp 0: ranks 0 and 2.
        assert_eq!(m.get(0, 2), Gbps::new(10.0));
        // DP ring over {0, 4}: with only 2 members the ring sends twice
        // (successor of 0 is 4 and successor of 4 is 0): 25 each way.
        assert_eq!(m.get(0, 4), Gbps::new(25.0));
        assert_eq!(m.get(4, 0), Gbps::new(25.0));
        // Egress of rank 0: TP 100 + PP 10 + DP 25 = 135.
        assert!(m.egress(0).approx_eq(Gbps::new(135.0), 1e-9));
    }

    #[test]
    fn merge_requires_same_shape() {
        let mut a = TrafficMatrix::zeros(4).unwrap();
        let b = TrafficMatrix::zeros(5).unwrap();
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn diagonal_is_ignored() {
        let mut m = TrafficMatrix::zeros(3).unwrap();
        m.add(1, 1, Gbps::new(100.0)).unwrap();
        assert_eq!(m.total(), Gbps::ZERO);
    }

    #[test]
    fn validation() {
        assert!(TrafficMatrix::zeros(0).is_err());
        assert!(TrafficMatrix::ring(4, &[0], Gbps::new(1.0)).is_err());
        assert!(TrafficMatrix::clique(4, &[1], Gbps::new(1.0)).is_err());
        assert!(TrafficMatrix::pipeline(4, &[2], Gbps::new(1.0)).is_err());
        assert!(TrafficMatrix::ring(2, &[0, 5], Gbps::new(1.0)).is_err());
        // Out-of-range ranks error instead of panicking, everywhere.
        assert!(TrafficMatrix::clique(2, &[0, 7], Gbps::new(1.0)).is_err());
        assert!(TrafficMatrix::pipeline(2, &[0, 7], Gbps::new(1.0)).is_err());
        let mut m = TrafficMatrix::zeros(2).unwrap();
        assert!(m.add(0, 9, Gbps::new(1.0)).is_err());
        assert_eq!(m.get(0, 9), Gbps::ZERO);
        assert_eq!(m.egress(9), Gbps::ZERO);
    }
}
