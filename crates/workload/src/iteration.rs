//! The training-iteration model of §2.2 and Figure 1.
//!
//! A training workload is a sequence of iterations, each consisting of one
//! computation phase (GPUs busy, network idle) and one communication phase
//! (network busy, GPUs idle), with no overlap. The model's scaling rules
//! (Figure 1):
//!
//! - computation time scales inversely with the number of GPUs
//!   (2× GPUs → computation twice as fast; total workload constant);
//! - communication time scales inversely with the per-GPU bandwidth
//!   (0.5× bandwidth → communication twice as long) under the **fixed
//!   workload** scenario;
//! - under the **fixed communication ratio** scenario (§3.3), the
//!   communication workload grows with the bandwidth so that the
//!   communication ratio stays constant.

use serde::{Deserialize, Serialize};

use npp_units::{Gbps, Ratio, Seconds};

use crate::{Result, WorkloadError};

/// The two §3.3 evaluation scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScalingScenario {
    /// Total communication volume fixed: communication time ∝ 1/bandwidth.
    FixedWorkload,
    /// Communication ratio fixed: communication time tracks computation
    /// time so the ratio never changes.
    FixedCommRatio,
}

/// One iteration: a computation phase followed by a communication phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Iteration {
    /// Computation-phase duration (network idle).
    pub compute: Seconds,
    /// Communication-phase duration (GPUs idle).
    pub comm: Seconds,
}

impl Iteration {
    /// Total iteration time.
    pub fn total(&self) -> Seconds {
        self.compute + self.comm
    }

    /// The communication ratio: comm time / iteration time (§2.2).
    pub fn comm_ratio(&self) -> Ratio {
        Ratio::new(self.comm / self.total())
    }

    /// Fraction of the iteration spent computing.
    pub fn compute_ratio(&self) -> Ratio {
        Ratio::new(self.compute / self.total())
    }

    /// Iterations per second at this iteration time.
    pub fn throughput(&self) -> f64 {
        1.0 / self.total().value()
    }
}

/// The reference workload plus the scaling rules of Figure 1.
///
/// All times are normalized to the reference cluster's iteration time
/// (1.0 s split 0.9/0.1 for the paper's baseline); absolute durations can
/// be obtained by scaling, but none of the paper's results depend on them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationModel {
    /// Computation time on the reference cluster.
    pub base_compute: Seconds,
    /// Communication time on the reference cluster.
    pub base_comm: Seconds,
    /// GPU count of the reference cluster.
    pub reference_gpus: f64,
    /// Per-GPU bandwidth of the reference cluster.
    pub reference_bandwidth: Gbps,
}

impl IterationModel {
    /// The paper's baseline (§2.1): 15,360 GPUs at 400 G with a 10 %
    /// communication ratio, normalized to a 1-second iteration.
    pub fn paper_baseline() -> Self {
        Self {
            base_compute: Seconds::new(0.9),
            base_comm: Seconds::new(0.1),
            reference_gpus: 15_360.0,
            reference_bandwidth: Gbps::new(400.0),
        }
    }

    /// Creates a model from a communication ratio and iteration time.
    ///
    /// # Errors
    ///
    /// Rejects ratios outside `(0, 1)` and non-positive times/counts.
    pub fn from_comm_ratio(
        comm_ratio: f64,
        iteration_time: Seconds,
        reference_gpus: f64,
        reference_bandwidth: Gbps,
    ) -> Result<Self> {
        if !(0.0..1.0).contains(&comm_ratio) || comm_ratio == 0.0 {
            return Err(WorkloadError::InvalidCommRatio(comm_ratio));
        }
        if iteration_time.value() <= 0.0 {
            return Err(WorkloadError::NonPositive {
                what: "iteration_time",
                value: iteration_time.value(),
            });
        }
        if reference_gpus <= 0.0 {
            return Err(WorkloadError::NonPositive {
                what: "reference_gpus",
                value: reference_gpus,
            });
        }
        if reference_bandwidth.value() <= 0.0 {
            return Err(WorkloadError::NonPositive {
                what: "reference_bandwidth",
                value: reference_bandwidth.value(),
            });
        }
        Ok(Self {
            base_compute: iteration_time * (1.0 - comm_ratio),
            base_comm: iteration_time * comm_ratio,
            reference_gpus,
            reference_bandwidth,
        })
    }

    /// The reference communication ratio.
    pub fn comm_ratio(&self) -> Ratio {
        Ratio::new(self.base_comm / (self.base_comm + self.base_compute))
    }

    /// Computation time with `gpus` GPUs: the total compute workload is
    /// constant, so time scales as `reference_gpus / gpus` (Figure 1).
    ///
    /// # Errors
    ///
    /// Rejects non-positive GPU counts.
    pub fn compute_time(&self, gpus: f64) -> Result<Seconds> {
        if gpus <= 0.0 {
            return Err(WorkloadError::NonPositive {
                what: "gpus",
                value: gpus,
            });
        }
        Ok(self.base_compute * (self.reference_gpus / gpus))
    }

    /// Communication time at the given per-GPU bandwidth under
    /// [`ScalingScenario::FixedWorkload`]: volume constant, so time scales
    /// as `reference_bandwidth / bandwidth`.
    ///
    /// # Errors
    ///
    /// Rejects non-positive bandwidths.
    pub fn comm_time_fixed_workload(&self, bandwidth: Gbps) -> Result<Seconds> {
        if bandwidth.value() <= 0.0 {
            return Err(WorkloadError::NonPositive {
                what: "bandwidth",
                value: bandwidth.value(),
            });
        }
        Ok(self.base_comm * (self.reference_bandwidth / bandwidth))
    }

    /// Builds the full iteration for a cluster of `gpus` GPUs with
    /// per-GPU `bandwidth`, under the given scenario.
    ///
    /// Under [`ScalingScenario::FixedCommRatio`] the communication time is
    /// tied to the computation time so that the reference communication
    /// ratio is preserved regardless of bandwidth or GPU count.
    ///
    /// # Errors
    ///
    /// Propagates parameter-validation errors.
    pub fn iteration(
        &self,
        gpus: f64,
        bandwidth: Gbps,
        scenario: ScalingScenario,
    ) -> Result<Iteration> {
        let compute = self.compute_time(gpus)?;
        let comm = match scenario {
            ScalingScenario::FixedWorkload => self.comm_time_fixed_workload(bandwidth)?,
            ScalingScenario::FixedCommRatio => {
                let r = self.comm_ratio().fraction();
                compute * (r / (1.0 - r))
            }
        };
        Ok(Iteration { compute, comm })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_90_10() {
        let m = IterationModel::paper_baseline();
        let it = m
            .iteration(15_360.0, Gbps::new(400.0), ScalingScenario::FixedWorkload)
            .unwrap();
        assert!(it.total().approx_eq(Seconds::new(1.0), 1e-12));
        assert!(it.comm_ratio().approx_eq(Ratio::new(0.1), 1e-12));
    }

    #[test]
    fn figure1_doubling_gpus_halves_compute() {
        let m = IterationModel::paper_baseline();
        let it = m
            .iteration(
                2.0 * 15_360.0,
                Gbps::new(400.0),
                ScalingScenario::FixedWorkload,
            )
            .unwrap();
        assert!(it.compute.approx_eq(Seconds::new(0.45), 1e-12));
        assert!(it.comm.approx_eq(Seconds::new(0.1), 1e-12));
        // Figure 1 annotates this case: comm ratio becomes ~18% (0.1/0.55).
        assert!(it.comm_ratio().approx_eq(Ratio::new(0.1 / 0.55), 1e-12));
    }

    #[test]
    fn figure1_halving_bandwidth_doubles_comm() {
        let m = IterationModel::paper_baseline();
        let it = m
            .iteration(15_360.0, Gbps::new(200.0), ScalingScenario::FixedWorkload)
            .unwrap();
        assert!(it.compute.approx_eq(Seconds::new(0.9), 1e-12));
        assert!(it.comm.approx_eq(Seconds::new(0.2), 1e-12));
        // Figure 1's "0.5× BW" case: comm ratio 0.2/1.1 ≈ 18%.
        assert!(it.comm_ratio().approx_eq(Ratio::new(0.2 / 1.1), 1e-12));
    }

    #[test]
    fn fixed_ratio_scenario_pins_ratio_across_bandwidths() {
        let m = IterationModel::paper_baseline();
        for bw in [100.0, 200.0, 400.0, 800.0, 1600.0] {
            let it = m
                .iteration(15_360.0, Gbps::new(bw), ScalingScenario::FixedCommRatio)
                .unwrap();
            assert!(
                it.comm_ratio().approx_eq(Ratio::new(0.1), 1e-12),
                "bw {bw}: ratio {}",
                it.comm_ratio()
            );
        }
    }

    #[test]
    fn fixed_ratio_scenario_tracks_gpu_scaling() {
        let m = IterationModel::paper_baseline();
        let it = m
            .iteration(7_680.0, Gbps::new(400.0), ScalingScenario::FixedCommRatio)
            .unwrap();
        // Half the GPUs: compute doubles to 1.8, comm follows to 0.2.
        assert!(it.compute.approx_eq(Seconds::new(1.8), 1e-12));
        assert!(it.comm.approx_eq(Seconds::new(0.2), 1e-12));
    }

    #[test]
    fn paper_notes_shrinking_ratio_at_high_bandwidth() {
        // §3.3: at 800/1600 G under fixed workload the ratio shrinks to
        // ~5% / ~2.5%, which the paper deems unrealistic.
        let m = IterationModel::paper_baseline();
        let it800 = m
            .iteration(15_360.0, Gbps::new(800.0), ScalingScenario::FixedWorkload)
            .unwrap();
        assert!((it800.comm_ratio().percent() - 5.26).abs() < 0.01);
        let it1600 = m
            .iteration(15_360.0, Gbps::new(1600.0), ScalingScenario::FixedWorkload)
            .unwrap();
        assert!((it1600.comm_ratio().percent() - 2.70).abs() < 0.01);
    }

    #[test]
    fn from_comm_ratio_round_trips() {
        let m = IterationModel::from_comm_ratio(0.25, Seconds::new(2.0), 1_000.0, Gbps::new(400.0))
            .unwrap();
        assert!(m.comm_ratio().approx_eq(Ratio::new(0.25), 1e-12));
        assert!(m.base_compute.approx_eq(Seconds::new(1.5), 1e-12));
        assert!(m.base_comm.approx_eq(Seconds::new(0.5), 1e-12));
    }

    #[test]
    fn validation_errors() {
        let m = IterationModel::paper_baseline();
        assert!(m.compute_time(0.0).is_err());
        assert!(m.comm_time_fixed_workload(Gbps::ZERO).is_err());
        assert!(
            IterationModel::from_comm_ratio(0.0, Seconds::new(1.0), 1.0, Gbps::new(1.0)).is_err()
        );
        assert!(
            IterationModel::from_comm_ratio(1.0, Seconds::new(1.0), 1.0, Gbps::new(1.0)).is_err()
        );
        assert!(IterationModel::from_comm_ratio(0.1, Seconds::ZERO, 1.0, Gbps::new(1.0)).is_err());
    }

    #[test]
    fn throughput_is_inverse_total() {
        let it = Iteration {
            compute: Seconds::new(0.9),
            comm: Seconds::new(0.1),
        };
        assert!((it.throughput() - 1.0).abs() < 1e-12);
    }
}
