//! # npp-workload
//!
//! Workload models for the `netpp` workspace.
//!
//! - [`iteration`] — the paper's §2.2 training-iteration model (Figure 1):
//!   alternating computation and communication phases with linear scaling
//!   in GPUs and bandwidth, under the *fixed workload* and *fixed
//!   communication ratio* scenarios of §3.3;
//! - [`collectives`] — analytic cost models for the collective operations
//!   (ring/tree/recursive-halving-doubling all-reduce, all-gather,
//!   all-to-all) that generate the communication phases;
//! - [`parallelism`] — traffic matrices induced by data/tensor/pipeline
//!   parallelism, consumed by the §4.2 OCS job-scheduling mechanism;
//! - [`trace`] — time-series load generators: the periodic on/off pattern
//!   of ML training (as reported by CASSINI) and the diurnal pattern of
//!   ISP backbones (§3.4).
//!
//! ```
//! use npp_units::Gbps;
//! use npp_workload::{IterationModel, ScalingScenario};
//!
//! // Figure 1: halving the bandwidth doubles the communication phase.
//! let m = IterationModel::paper_baseline();
//! let it = m.iteration(15_360.0, Gbps::new(200.0), ScalingScenario::FixedWorkload).unwrap();
//! assert!((it.comm.value() - 0.2).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collectives;
pub mod iteration;
pub mod models;
pub mod overlap;
pub mod parallelism;
pub mod trace;

pub use iteration::{Iteration, IterationModel, ScalingScenario};

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// A parameter that must be strictly positive was not.
    NonPositive {
        /// Parameter name.
        what: &'static str,
        /// Offending value.
        value: f64,
    },
    /// A communication ratio outside (0, 1).
    InvalidCommRatio(f64),
    /// Collective participant count must be ≥ 2.
    TooFewParticipants(usize),
    /// A rank index referenced a rank outside the traffic matrix.
    RankOutOfRange {
        /// Offending rank index.
        rank: usize,
        /// Number of ranks in the matrix.
        ranks: usize,
    },
}

impl core::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WorkloadError::NonPositive { what, value } => {
                write!(f, "{what} must be positive, got {value}")
            }
            WorkloadError::InvalidCommRatio(r) => {
                write!(f, "communication ratio {r} must be in (0, 1)")
            }
            WorkloadError::TooFewParticipants(n) => {
                write!(f, "collectives need at least 2 participants, got {n}")
            }
            WorkloadError::RankOutOfRange { rank, ranks } => {
                write!(f, "rank {rank} is out of range for a {ranks}-rank matrix")
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, WorkloadError>;
