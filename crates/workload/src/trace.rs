//! Time-series load generators.
//!
//! Two families of utilization traces drive the §4 mechanism evaluations:
//!
//! - [`MlPhaseTrace`] — the periodic on/off square wave of synchronous ML
//!   training (communication bursts every iteration, as reported by the
//!   CASSINI measurements the paper cites);
//! - [`DiurnalTrace`] — the sinusoid-plus-noise daily pattern of ISP
//!   backbone links (§3.4), which is *underutilized* rather than unused:
//!   the load rarely hits zero but spends most of the day well below peak.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use npp_units::{Ratio, Seconds};

/// A deterministic utilization trace: load as a function of time.
pub trait LoadTrace {
    /// Utilization in `[0, 1]` at time `t`.
    fn utilization(&self, t: Seconds) -> Ratio;

    /// Samples the trace at `n` evenly spaced points over `[0, horizon)`.
    fn sample(&self, horizon: Seconds, n: usize) -> Vec<(Seconds, Ratio)> {
        (0..n)
            .map(|i| {
                let t = horizon * (i as f64 / n as f64);
                (t, self.utilization(t))
            })
            .collect()
    }

    /// Mean utilization over `[0, horizon)` using `n` samples.
    fn mean_utilization(&self, horizon: Seconds, n: usize) -> Ratio {
        let total: f64 = self
            .sample(horizon, n)
            .iter()
            .map(|(_, u)| u.fraction())
            .sum();
        Ratio::new(total / n as f64)
    }
}

/// Synchronous ML training: each iteration is `compute` seconds of zero
/// network load followed by `comm` seconds of full load.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MlPhaseTrace {
    /// Computation-phase length (network idle).
    pub compute: Seconds,
    /// Communication-phase length (network at `peak`).
    pub comm: Seconds,
    /// Utilization during the communication phase.
    pub peak: Ratio,
}

impl MlPhaseTrace {
    /// The paper's baseline: 0.9 s compute, 0.1 s comm, full-rate bursts.
    pub fn paper_baseline() -> Self {
        Self {
            compute: Seconds::new(0.9),
            comm: Seconds::new(0.1),
            peak: Ratio::ONE,
        }
    }

    /// Iteration period.
    pub fn period(&self) -> Seconds {
        self.compute + self.comm
    }
}

impl LoadTrace for MlPhaseTrace {
    fn utilization(&self, t: Seconds) -> Ratio {
        let period = self.period().value();
        if period <= 0.0 {
            return Ratio::ZERO;
        }
        let phase = t.value().rem_euclid(period);
        if phase < self.compute.value() {
            Ratio::ZERO
        } else {
            self.peak
        }
    }
}

/// Diurnal ISP load: a 24-hour sinusoid between `trough` and `peak`
/// utilization with optional seeded noise, peaking at `peak_hour`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiurnalTrace {
    /// Minimum (nighttime) utilization.
    pub trough: Ratio,
    /// Maximum (prime-time) utilization.
    pub peak: Ratio,
    /// Hour of day (0–24) at which load peaks.
    pub peak_hour: f64,
    /// Amplitude of uniform noise added to the sinusoid.
    pub noise: f64,
    /// RNG seed for reproducible noise.
    pub seed: u64,
}

impl DiurnalTrace {
    /// A typical backbone link: 10 % at night, 60 % at the 20:00 peak,
    /// ±5 % noise. Mean utilization ≈ 35 % — §3.4's "customers expect
    /// capacity to be there but will not be using it 24/7".
    pub fn typical_backbone(seed: u64) -> Self {
        Self {
            trough: Ratio::new(0.10),
            peak: Ratio::new(0.60),
            peak_hour: 20.0,
            noise: 0.05,
            seed,
        }
    }
}

impl LoadTrace for DiurnalTrace {
    fn utilization(&self, t: Seconds) -> Ratio {
        let hours = t.as_hours().rem_euclid(24.0);
        let mid = (self.peak.fraction() + self.trough.fraction()) / 2.0;
        let amp = (self.peak.fraction() - self.trough.fraction()) / 2.0;
        let angle = (hours - self.peak_hour) / 24.0 * std::f64::consts::TAU;
        let base = mid + amp * angle.cos();
        // Deterministic per-time-slot noise: hash the slot index into the
        // seed so the same t always yields the same value.
        let slot = (t.value() / 60.0).floor() as u64;
        let mut rng = StdRng::seed_from_u64(self.seed ^ slot.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let noise = if self.noise > 0.0 {
            rng.random_range(-self.noise..self.noise)
        } else {
            0.0
        };
        Ratio::new((base + noise).clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ml_trace_square_wave() {
        let tr = MlPhaseTrace::paper_baseline();
        assert_eq!(tr.utilization(Seconds::new(0.0)), Ratio::ZERO);
        assert_eq!(tr.utilization(Seconds::new(0.45)), Ratio::ZERO);
        assert_eq!(tr.utilization(Seconds::new(0.95)), Ratio::ONE);
        // Periodicity.
        assert_eq!(tr.utilization(Seconds::new(1.95)), Ratio::ONE);
        assert_eq!(tr.utilization(Seconds::new(100.4)), Ratio::ZERO);
    }

    #[test]
    fn ml_trace_mean_matches_comm_ratio() {
        let tr = MlPhaseTrace::paper_baseline();
        let mean = tr.mean_utilization(Seconds::new(10.0), 10_000);
        assert!((mean.fraction() - 0.1).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn diurnal_peaks_at_peak_hour_and_troughs_opposite() {
        let tr = DiurnalTrace {
            noise: 0.0,
            ..DiurnalTrace::typical_backbone(7)
        };
        let at_peak = tr.utilization(Seconds::from_hours(20.0));
        let at_trough = tr.utilization(Seconds::from_hours(8.0));
        assert!(at_peak.approx_eq(Ratio::new(0.60), 1e-9), "peak {at_peak}");
        assert!(
            at_trough.approx_eq(Ratio::new(0.10), 1e-9),
            "trough {at_trough}"
        );
    }

    #[test]
    fn diurnal_mean_is_midrange() {
        let tr = DiurnalTrace::typical_backbone(42);
        let mean = tr.mean_utilization(Seconds::from_hours(24.0), 24 * 60);
        assert!((mean.fraction() - 0.35).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn diurnal_noise_is_deterministic_and_bounded() {
        let tr = DiurnalTrace::typical_backbone(42);
        let t = Seconds::from_hours(13.5);
        assert_eq!(tr.utilization(t), tr.utilization(t));
        for i in 0..200 {
            let u = tr.utilization(Seconds::from_hours(i as f64 * 0.12));
            assert!((0.0..=1.0).contains(&u.fraction()));
        }
        // Different seeds differ somewhere.
        let other = DiurnalTrace::typical_backbone(43);
        let differs = (0..100).any(|i| {
            let t = Seconds::from_hours(i as f64 * 0.24);
            tr.utilization(t) != other.utilization(t)
        });
        assert!(differs);
    }

    #[test]
    fn sample_grid_shape() {
        let tr = MlPhaseTrace::paper_baseline();
        let s = tr.sample(Seconds::new(1.0), 10);
        assert_eq!(s.len(), 10);
        assert_eq!(s[0].0, Seconds::ZERO);
        assert!(s[9].0.value() < 1.0);
    }

    #[test]
    fn degenerate_ml_trace() {
        let tr = MlPhaseTrace {
            compute: Seconds::ZERO,
            comm: Seconds::ZERO,
            peak: Ratio::ONE,
        };
        assert_eq!(tr.utilization(Seconds::new(5.0)), Ratio::ZERO);
    }
}

/// Several phase-shifted ML jobs sharing a network — the CASSINI insight
/// the paper cites: synchronized jobs collide at their bursts, while
/// deliberately offset jobs interleave and keep the aggregate load (and
/// hence the needed active capacity) low.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterleavedJobs {
    jobs: Vec<(MlPhaseTrace, Seconds)>,
}

impl InterleavedJobs {
    /// Creates the aggregate of `(trace, phase offset)` pairs.
    pub fn new(jobs: Vec<(MlPhaseTrace, Seconds)>) -> Self {
        Self { jobs }
    }

    /// `n` identical jobs with evenly spread phase offsets (the CASSINI
    /// placement) over the trace's period.
    pub fn staggered(trace: MlPhaseTrace, n: usize) -> Self {
        let period = trace.period();
        Self {
            jobs: (0..n)
                .map(|i| (trace, period * (i as f64 / n.max(1) as f64)))
                .collect(),
        }
    }

    /// `n` identical jobs all in phase (the unlucky default).
    pub fn synchronized(trace: MlPhaseTrace, n: usize) -> Self {
        Self {
            jobs: (0..n).map(|_| (trace, Seconds::ZERO)).collect(),
        }
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether there are no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Peak aggregate utilization over one hyper-period, sampled at `n`
    /// points (normalized per job: `n` jobs at full burst = n.0).
    pub fn peak_aggregate(&self, horizon: Seconds, samples: usize) -> f64 {
        (0..samples)
            .map(|i| {
                let t = horizon * (i as f64 / samples as f64);
                self.aggregate_at(t)
            })
            .fold(0.0, f64::max)
    }

    /// Sum of all jobs' utilizations at time `t` (can exceed 1.0 — that
    /// is precisely the collision the scheduler wants to avoid).
    pub fn aggregate_at(&self, t: Seconds) -> f64 {
        self.jobs
            .iter()
            .map(|(trace, offset)| trace.utilization(t + *offset).fraction())
            .sum()
    }
}

impl LoadTrace for InterleavedJobs {
    /// The aggregate clamped to 1.0 (as a fraction of the shared fabric's
    /// capacity when each job is sized at `1/n` of it).
    fn utilization(&self, t: Seconds) -> Ratio {
        if self.jobs.is_empty() {
            return Ratio::ZERO;
        }
        Ratio::new((self.aggregate_at(t) / self.jobs.len() as f64).clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod interleave_tests {
    use super::*;

    fn job() -> MlPhaseTrace {
        MlPhaseTrace::paper_baseline() // 0.9 + 0.1 s
    }

    #[test]
    fn synchronized_jobs_collide_at_full_aggregate() {
        let sync = InterleavedJobs::synchronized(job(), 4);
        // All four burst together: aggregate peaks at 4.
        assert_eq!(sync.peak_aggregate(Seconds::new(1.0), 1000), 4.0);
    }

    #[test]
    fn staggering_ten_jobs_flattens_the_peak_completely() {
        // 10 jobs with 10% duty, offset by 0.1 s each: at any instant
        // exactly one job bursts — the aggregate never exceeds 1.
        let stag = InterleavedJobs::staggered(job(), 10);
        let peak = stag.peak_aggregate(Seconds::new(1.0), 2000);
        assert!(peak <= 1.0 + 1e-9, "peak {peak}");
        // And the fabric sees a perfectly smooth load — the parking
        // policies in npp-mechanisms can run on `1/10`th of the switch
        // capacity around the clock.
        let mean = stag.mean_utilization(Seconds::new(1.0), 2000);
        assert!((mean.fraction() - 0.1).abs() < 0.01);
    }

    #[test]
    fn partial_stagger_partially_helps() {
        let four = InterleavedJobs::staggered(job(), 4);
        let peak = four.peak_aggregate(Seconds::new(1.0), 2000);
        // 4 offsets over 1 s: bursts (0.1 s long) never overlap either.
        assert!(peak <= 1.0 + 1e-9);
        // But 20 jobs cannot all fit disjoint 10% windows: peaks >= 2.
        let twenty = InterleavedJobs::staggered(job(), 20);
        assert!(twenty.peak_aggregate(Seconds::new(1.0), 4000) >= 2.0 - 1e-9);
    }

    #[test]
    fn empty_and_single() {
        let none = InterleavedJobs::new(vec![]);
        assert!(none.is_empty());
        assert_eq!(none.utilization(Seconds::new(0.5)), Ratio::ZERO);
        let one = InterleavedJobs::staggered(job(), 1);
        assert_eq!(one.len(), 1);
        assert_eq!(one.utilization(Seconds::new(0.95)), Ratio::ONE);
    }
}
